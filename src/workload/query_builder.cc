#include "workload/query_builder.h"

#include "common/check.h"

namespace reopt::workload {

QueryBuilder::QueryBuilder(const storage::Catalog* catalog, std::string name)
    : catalog_(catalog), spec_(std::make_unique<plan::QuerySpec>()) {
  spec_->name = std::move(name);
}

int QueryBuilder::AddRelation(const std::string& table,
                              const std::string& alias) {
  const storage::Table* t = catalog_->FindTable(table);
  REOPT_CHECK_MSG(t != nullptr, "QueryBuilder: unknown table");
  tables_.push_back(t);
  spec_->relations.push_back(plan::RelationRef{table, alias});
  return static_cast<int>(spec_->relations.size()) - 1;
}

common::ColumnIdx QueryBuilder::Col(int rel, const std::string& col) const {
  REOPT_CHECK(rel >= 0 && rel < static_cast<int>(tables_.size()));
  common::ColumnIdx idx =
      tables_[static_cast<size_t>(rel)]->schema().FindColumn(col);
  REOPT_CHECK_MSG(idx != common::kInvalidColumnIdx,
                  "QueryBuilder: unknown column");
  return idx;
}

QueryBuilder& QueryBuilder::Join(int rel_a, const std::string& col_a,
                                 int rel_b, const std::string& col_b) {
  plan::JoinEdge edge;
  edge.left = plan::ColumnRef{rel_a, Col(rel_a, col_a), col_a};
  edge.right = plan::ColumnRef{rel_b, Col(rel_b, col_b), col_b};
  spec_->joins.push_back(edge);
  return *this;
}

QueryBuilder& QueryBuilder::FilterCompare(int rel, const std::string& col,
                                          plan::CompareOp op,
                                          common::Value value) {
  plan::ScanPredicate pred;
  pred.column = plan::ColumnRef{rel, Col(rel, col), col};
  pred.kind = plan::ScanPredicate::Kind::kCompare;
  pred.op = op;
  pred.value = std::move(value);
  spec_->filters.push_back(std::move(pred));
  return *this;
}

QueryBuilder& QueryBuilder::FilterIn(int rel, const std::string& col,
                                     std::vector<common::Value> values) {
  plan::ScanPredicate pred;
  pred.column = plan::ColumnRef{rel, Col(rel, col), col};
  pred.kind = plan::ScanPredicate::Kind::kIn;
  pred.in_list = std::move(values);
  spec_->filters.push_back(std::move(pred));
  return *this;
}

QueryBuilder& QueryBuilder::FilterLike(int rel, const std::string& col,
                                       const std::string& pattern,
                                       bool negated) {
  plan::ScanPredicate pred;
  pred.column = plan::ColumnRef{rel, Col(rel, col), col};
  pred.kind = negated ? plan::ScanPredicate::Kind::kNotLike
                      : plan::ScanPredicate::Kind::kLike;
  pred.value = common::Value::Str(pattern);
  spec_->filters.push_back(std::move(pred));
  return *this;
}

QueryBuilder& QueryBuilder::FilterBetween(int rel, const std::string& col,
                                          common::Value lo,
                                          common::Value hi) {
  plan::ScanPredicate pred;
  pred.column = plan::ColumnRef{rel, Col(rel, col), col};
  pred.kind = plan::ScanPredicate::Kind::kBetween;
  pred.value = std::move(lo);
  pred.value2 = std::move(hi);
  spec_->filters.push_back(std::move(pred));
  return *this;
}

QueryBuilder& QueryBuilder::FilterIsNotNull(int rel, const std::string& col) {
  plan::ScanPredicate pred;
  pred.column = plan::ColumnRef{rel, Col(rel, col), col};
  pred.kind = plan::ScanPredicate::Kind::kIsNotNull;
  spec_->filters.push_back(std::move(pred));
  return *this;
}

QueryBuilder& QueryBuilder::OutputMin(int rel, const std::string& col,
                                      const std::string& label) {
  plan::OutputExpr out;
  out.column = plan::ColumnRef{rel, Col(rel, col), col};
  out.min_agg = true;
  out.label = label;
  spec_->outputs.push_back(std::move(out));
  return *this;
}

std::unique_ptr<plan::QuerySpec> QueryBuilder::Build() {
  REOPT_CHECK_MSG(!spec_->outputs.empty(),
                  "QueryBuilder: query needs at least one output");
  return std::move(spec_);
}

}  // namespace reopt::workload
