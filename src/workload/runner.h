// Workload runner: executes the 113-query suite under a given cardinality
// model and re-optimization setting, producing the per-query records every
// bench table/figure is derived from. Sessions (and their true-cardinality
// caches) are reused across configurations so perfect-(n) and threshold
// sweeps amortize oracle work.
#ifndef REOPT_WORKLOAD_RUNNER_H_
#define REOPT_WORKLOAD_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "imdb/imdb.h"
#include "reopt/query_runner.h"
#include "workload/job_like.h"

namespace reopt::workload {

struct QueryRecord {
  std::string name;
  int num_tables = 0;
  double plan_seconds = 0.0;
  double exec_seconds = 0.0;
  int materializations = 0;
  int64_t raw_rows = 0;

  double total_seconds() const { return plan_seconds + exec_seconds; }
};

struct WorkloadRunResult {
  std::vector<QueryRecord> records;

  double TotalPlanSeconds() const;
  double TotalExecSeconds() const;
  const QueryRecord* Find(const std::string& name) const;
};

class WorkloadRunner {
 public:
  explicit WorkloadRunner(imdb::ImdbDatabase* db,
                          const optimizer::CostParams& params = {})
      : db_(db), params_(params), runner_(&db->catalog, &db->stats, params) {}

  /// Runs one query (session cached across calls).
  common::Result<reoptimizer::RunResult> RunOne(const plan::QuerySpec* query,
                                          const reoptimizer::ModelSpec& model,
                                          const reoptimizer::ReoptOptions& reopt);

  /// Runs every query of the workload in order.
  common::Result<WorkloadRunResult> RunAll(
      const JobLikeWorkload& workload, const reoptimizer::ModelSpec& model,
      const reoptimizer::ReoptOptions& reopt);

  /// The cached session for a query (creating it on first use).
  common::Result<reoptimizer::QuerySession*> GetSession(
      const plan::QuerySpec* query);

  const optimizer::CostParams& params() const { return params_; }

  /// Access for operator-ablation benches.
  reoptimizer::QueryRunner* query_runner() { return &runner_; }

 private:
  imdb::ImdbDatabase* db_;
  optimizer::CostParams params_;
  reoptimizer::QueryRunner runner_;
  std::map<const plan::QuerySpec*, std::unique_ptr<reoptimizer::QuerySession>>
      sessions_;
};

}  // namespace reopt::workload

#endif  // REOPT_WORKLOAD_RUNNER_H_
