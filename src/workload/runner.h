// Workload runner: executes the 113-query suite under a given cardinality
// model and re-optimization setting, producing the per-query records every
// bench table/figure is derived from. Sessions (and their true-cardinality
// caches) are reused across configurations so perfect-(n) and threshold
// sweeps amortize oracle work.
//
// RunAll and RunSweep accept a thread count and fan the work over a
// common::ThreadPool. Results are byte-identical to the serial order:
// every record slot is written by exactly one worker, each (config, query)
// run is deterministic in isolation (worker-private QueryRunner with a
// namespaced temp-table space; thread-safe catalog/stats/oracle), and the
// slots are assembled in config-major, query-minor order regardless of
// which worker ran what. See docs/ARCHITECTURE.md, "Concurrency model".
#ifndef REOPT_WORKLOAD_RUNNER_H_
#define REOPT_WORKLOAD_RUNNER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "imdb/imdb.h"
#include "reopt/query_runner.h"
#include "workload/job_like.h"

namespace reopt::workload {

struct QueryRecord {
  std::string name;
  int num_tables = 0;
  double plan_seconds = 0.0;
  double exec_seconds = 0.0;
  int materializations = 0;
  int64_t raw_rows = 0;

  double total_seconds() const { return plan_seconds + exec_seconds; }
};

struct WorkloadRunResult {
  std::vector<QueryRecord> records;

  double TotalPlanSeconds() const;
  double TotalExecSeconds() const;
  const QueryRecord* Find(const std::string& name) const;
};

/// One configuration of a sweep: a cardinality model plus re-optimization
/// settings, with a label for reporting.
struct SweepConfig {
  std::string label;
  reoptimizer::ModelSpec model;
  reoptimizer::ReoptOptions reopt;
};

/// Progress hook for RunSweep: invoked once per configuration as soon as
/// all of its queries have finished, with the complete result. Invocations
/// are serialized but arrive in *completion* order (== config order when
/// num_threads is 1); long sweeps use it for incremental reporting.
using SweepProgressFn =
    std::function<void(const SweepConfig& config,
                       const WorkloadRunResult& result)>;

class WorkloadRunner {
 public:
  explicit WorkloadRunner(imdb::ImdbDatabase* db,
                          const optimizer::CostParams& params = {})
      : db_(db), params_(params), runner_(&db->catalog, &db->stats, params) {}

  /// Runs one query (session cached across calls).
  common::Result<reoptimizer::RunResult> RunOne(const plan::QuerySpec* query,
                                          const reoptimizer::ModelSpec& model,
                                          const reoptimizer::ReoptOptions& reopt);

  /// Runs every query of the workload. With num_threads > 1 the queries
  /// are fanned over a thread pool; records come back in workload order
  /// with values identical to a serial run.
  common::Result<WorkloadRunResult> RunAll(
      const JobLikeWorkload& workload, const reoptimizer::ModelSpec& model,
      const reoptimizer::ReoptOptions& reopt, int num_threads = 1);

  /// Runs every (configuration, query) pair of a sweep — the unit of work
  /// behind every figure/table driver — over one shared pool, so workers
  /// stay busy across configuration boundaries. Results come back in
  /// `configs` order, each identical to a serial RunAll of that
  /// configuration. On failure every pair still runs, and the error of the
  /// first failing (config, query) pair in serial order is returned —
  /// scheduling cannot change which error the caller sees.
  common::Result<std::vector<WorkloadRunResult>> RunSweep(
      const JobLikeWorkload& workload, const std::vector<SweepConfig>& configs,
      int num_threads = 1, const SweepProgressFn& progress = nullptr);

  /// The cached session for a query (creating it on first use).
  /// Thread-safe; sessions are shared across workers and configurations.
  common::Result<reoptimizer::QuerySession*> GetSession(
      const plan::QuerySpec* query) EXCLUDES(sessions_mu_);

  /// Intra-query thread budget (clamped to >= 1, default 1): every query
  /// run — via RunOne, RunAll, or RunSweep workers — executes its scans
  /// and hash joins over this many morsel workers. Composes with the
  /// RunAll/RunSweep `num_threads` inter-query fan-out: W workers x M
  /// intra-query threads occupy W*M live threads, so callers split one
  /// budget between the two levels (bench drivers: --threads /
  /// --intra-threads). Results stay byte-identical at any setting.
  void set_intra_query_threads(int n) {
    intra_query_threads_ = n < 1 ? 1 : n;
    runner_.set_intra_query_threads(intra_query_threads_);
  }
  int intra_query_threads() const { return intra_query_threads_; }

  /// Attaches the shared learned-cardinality knowledge base to this
  /// runner's queries — the serial runner and every worker runner a sweep
  /// spawns (see QueryRunner::set_knowledge_base). The base is internally
  /// synchronized and must outlive the runner. Caveat: with *learning
  /// enabled*, a parallel sweep's observation commit order depends on
  /// scheduling, so later queries may see a differently-warmed base than
  /// under a serial run — freeze the base (set_learning_enabled(false))
  /// when byte-identical parallel results matter.
  void set_knowledge_base(optimizer::CardinalityKnowledgeBase* kb) {
    runner_.set_knowledge_base(kb);
  }

  const optimizer::CostParams& params() const { return params_; }

  /// Access for operator-ablation benches. Planner options set here also
  /// apply to the worker runners RunAll/RunSweep spawn.
  reoptimizer::QueryRunner* query_runner() { return &runner_; }

 private:
  imdb::ImdbDatabase* db_;
  optimizer::CostParams params_;
  int intra_query_threads_ = 1;
  reoptimizer::QueryRunner runner_;
  common::Mutex sessions_mu_;
  std::map<const plan::QuerySpec*, std::unique_ptr<reoptimizer::QuerySession>>
      sessions_ GUARDED_BY(sessions_mu_);
};

}  // namespace reopt::workload

#endif  // REOPT_WORKLOAD_RUNNER_H_
