// Programmatic construction of QuerySpecs against a catalog, resolving
// column names to indexes at build time. Used by the workload generator,
// the examples and the tests.
#ifndef REOPT_WORKLOAD_QUERY_BUILDER_H_
#define REOPT_WORKLOAD_QUERY_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace reopt::workload {

class QueryBuilder {
 public:
  QueryBuilder(const storage::Catalog* catalog, std::string name);

  /// Adds a FROM entry; returns its relation position. CHECK-fails on
  /// unknown tables (the builder is for trusted, programmatic use).
  int AddRelation(const std::string& table, const std::string& alias);

  /// rel_a.col_a = rel_b.col_b.
  QueryBuilder& Join(int rel_a, const std::string& col_a, int rel_b,
                     const std::string& col_b);

  QueryBuilder& FilterCompare(int rel, const std::string& col,
                              plan::CompareOp op, common::Value value);
  QueryBuilder& FilterEq(int rel, const std::string& col,
                         common::Value value) {
    return FilterCompare(rel, col, plan::CompareOp::kEq, std::move(value));
  }
  QueryBuilder& FilterIn(int rel, const std::string& col,
                         std::vector<common::Value> values);
  QueryBuilder& FilterLike(int rel, const std::string& col,
                           const std::string& pattern, bool negated = false);
  QueryBuilder& FilterBetween(int rel, const std::string& col,
                              common::Value lo, common::Value hi);
  QueryBuilder& FilterIsNotNull(int rel, const std::string& col);

  /// Adds MIN(rel.col) AS label to the output list.
  QueryBuilder& OutputMin(int rel, const std::string& col,
                          const std::string& label);

  std::unique_ptr<plan::QuerySpec> Build();

  /// Filters added so far (generator introspection before Build()).
  const std::vector<plan::ScanPredicate>& PendingFilters() const {
    return spec_->filters;
  }

  /// Column index of `col` in `rel`'s table; CHECK-fails if absent.
  common::ColumnIdx Col(int rel, const std::string& col) const;

 private:
  const storage::Catalog* catalog_;
  std::unique_ptr<plan::QuerySpec> spec_;
  std::vector<const storage::Table*> tables_;
};

}  // namespace reopt::workload

#endif  // REOPT_WORKLOAD_QUERY_BUILDER_H_
