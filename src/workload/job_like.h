// The JOB-like workload: 113 select-project-join queries over the synthetic
// IMDB schema whose table-count distribution matches the paper's Table III
// exactly, including hand-written analogues of the queries the paper
// dissects (6d, 18a, the Fig. 6 rewrite example, and the Fig. 5 iterative-
// correction queries 16b / 25c / 30a).
#ifndef REOPT_WORKLOAD_JOB_LIKE_H_
#define REOPT_WORKLOAD_JOB_LIKE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace reopt::workload {

struct WorkloadOptions {
  uint64_t seed = 20190319;
  /// Fraction of generated queries that draw at least one "trappy"
  /// predicate (skew / correlation patterns the estimator mis-handles).
  /// Calibrated so the relative-runtime distribution resembles Table II.
  double trappy_probability = 0.5;
};

struct JobLikeWorkload {
  std::vector<std::unique_ptr<plan::QuerySpec>> queries;

  const plan::QuerySpec* Find(const std::string& name) const;

  /// The paper's Table III: #tables -> #queries.
  static const std::map<int, int>& TableCountDistribution();
};

/// Builds all 113 queries. Deterministic in `options.seed`.
std::unique_ptr<JobLikeWorkload> BuildJobLikeWorkload(
    const storage::Catalog& catalog, const WorkloadOptions& options = {});

// ---- Signature queries (paper Sec. IV-D / V, Figs. 3, 4, 5, 6) ----------

/// Query 6d analogue: 5-way join, hot-keyword IN-list whose frequency the
/// uniformity assumption underestimates by >2 orders of magnitude.
std::unique_ptr<plan::QuerySpec> MakeQuery6d(const storage::Catalog& catalog);

/// Query 18a analogue: 7-way join with info_type self-pair (budget/votes)
/// and correlated person predicates; only improves at perfect-(4).
std::unique_ptr<plan::QuerySpec> MakeQuery18a(const storage::Catalog& catalog);

/// The Fig. 6 running example (character-name-in-title).
std::unique_ptr<plan::QuerySpec> MakeQueryFig6(const storage::Catalog& catalog);

/// Fig. 5 iterative-correction subjects.
std::unique_ptr<plan::QuerySpec> MakeQuery16b(const storage::Catalog& catalog);
std::unique_ptr<plan::QuerySpec> MakeQuery25c(const storage::Catalog& catalog);
std::unique_ptr<plan::QuerySpec> MakeQuery30a(const storage::Catalog& catalog);

}  // namespace reopt::workload

#endif  // REOPT_WORKLOAD_JOB_LIKE_H_
