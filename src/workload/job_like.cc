#include "workload/job_like.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "imdb/imdb.h"
#include "workload/query_builder.h"

namespace reopt::workload {
namespace {

using common::Rng;
using common::StrPrintf;
using common::Value;

/// One way to grow a query: attach `new_table` to an existing instance of
/// `from_table` joining from_col = new_col.
struct Expansion {
  const char* from_table;
  const char* from_col;
  const char* new_table;
  const char* new_col;
  double weight;
};

const Expansion kExpansions[] = {
    {"title", "id", "movie_keyword", "movie_id", 1.0},
    {"movie_keyword", "keyword_id", "keyword", "id", 1.6},
    {"title", "id", "cast_info", "movie_id", 1.0},
    {"cast_info", "person_id", "name", "id", 1.4},
    {"cast_info", "role_id", "role_type", "id", 0.5},
    {"cast_info", "person_role_id", "char_name", "id", 0.4},
    {"title", "id", "movie_companies", "movie_id", 1.0},
    {"movie_companies", "company_id", "company_name", "id", 1.3},
    {"movie_companies", "company_type_id", "company_type", "id", 0.5},
    {"title", "id", "movie_info", "movie_id", 0.9},
    {"movie_info", "info_type_id", "info_type", "id", 0.9},
    {"title", "id", "movie_info_idx", "movie_id", 0.9},
    {"movie_info_idx", "info_type_id", "info_type", "id", 0.9},
    {"title", "kind_id", "kind_type", "id", 0.5},
    {"title", "id", "aka_title", "movie_id", 0.4},
    {"title", "id", "complete_cast", "movie_id", 0.4},
    {"complete_cast", "subject_id", "comp_cast_type", "id", 0.5},
    {"title", "id", "movie_link", "movie_id", 0.4},
    {"movie_link", "link_type_id", "link_type", "id", 0.5},
    {"movie_link", "linked_movie_id", "title", "id", 0.35},
    {"name", "id", "aka_name", "person_id", 0.5},
    {"name", "id", "person_info", "person_id", 0.5},
    {"person_info", "info_type_id", "info_type", "id", 0.4},
};

/// Per-table instance caps (how many aliases of a table one query may
/// have); JOB repeats info_type, title, cast_info and movie_keyword.
int TableCap(const std::string& table) {
  if (table == "title" || table == "info_type" || table == "cast_info" ||
      table == "movie_keyword" || table == "keyword" || table == "name") {
    return 2;
  }
  return 1;
}

const char* AliasBase(const std::string& table) {
  static const std::map<std::string, const char*>* kAliases =
      new std::map<std::string, const char*>{
          {"title", "t"},          {"keyword", "k"},
          {"movie_keyword", "mk"}, {"cast_info", "ci"},
          {"name", "n"},           {"char_name", "chn"},
          {"company_name", "cn"},  {"company_type", "ct"},
          {"movie_companies", "mc"}, {"movie_info", "mi"},
          {"movie_info_idx", "miidx"}, {"info_type", "it"},
          {"kind_type", "kt"},     {"link_type", "lt"},
          {"movie_link", "ml"},    {"role_type", "rt"},
          {"aka_name", "an"},      {"aka_title", "at"},
          {"person_info", "pi"},   {"complete_cast", "cc"},
          {"comp_cast_type", "cct"}};
  auto it = kAliases->find(table);
  REOPT_CHECK(it != kAliases->end());
  return it->second;
}

struct Instance {
  std::string table;
  int rel;
  std::string parent_table;  // table it was attached to ("" for the root)
};

/// Grows a connected, tree-shaped join graph of `target` relations
/// starting from `title`.
std::vector<Instance> GrowQuery(QueryBuilder* qb, int target, Rng* rng) {
  std::vector<Instance> instances;
  std::map<std::string, int> counts;

  int t = qb->AddRelation("title", "t");
  instances.push_back(Instance{"title", t, ""});
  counts["title"] = 1;

  while (static_cast<int>(instances.size()) < target) {
    // Collect applicable (instance, expansion) pairs with weights.
    struct Candidate {
      size_t instance;
      const Expansion* expansion;
      double weight;
    };
    std::vector<Candidate> candidates;
    double total = 0.0;
    for (size_t i = 0; i < instances.size(); ++i) {
      for (const Expansion& e : kExpansions) {
        if (instances[i].table != e.from_table) continue;
        if (counts[e.new_table] >= TableCap(e.new_table)) continue;
        candidates.push_back(Candidate{i, &e, e.weight});
        total += e.weight;
      }
    }
    REOPT_CHECK_MSG(!candidates.empty(), "query growth stuck");
    double pick = rng->UniformDouble() * total;
    const Candidate* chosen = &candidates.back();
    for (const Candidate& c : candidates) {
      if (pick < c.weight) {
        chosen = &c;
        break;
      }
      pick -= c.weight;
    }
    const Expansion& e = *chosen->expansion;
    int n = ++counts[e.new_table];
    std::string alias = AliasBase(e.new_table);
    if (TableCap(e.new_table) > 1) alias += StrPrintf("%d", n);
    int rel = qb->AddRelation(e.new_table, alias);
    qb->Join(instances[chosen->instance].rel, e.from_col, rel, e.new_col);
    instances.push_back(
        Instance{e.new_table, rel, instances[chosen->instance].table});
  }
  return instances;
}

std::vector<Value> PickHotKeywords(Rng* rng, int count) {
  const std::vector<std::string>& hot = imdb::HotKeywords();
  std::vector<int> idx(hot.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  rng->Shuffle(&idx);
  std::vector<Value> out;
  for (int i = 0; i < count && i < static_cast<int>(idx.size()); ++i) {
    out.push_back(Value::Str(hot[static_cast<size_t>(idx[static_cast<size_t>(i)])]));
  }
  return out;
}

/// Adds a benign (well-estimated) filter to one instance when the table
/// supports one. Returns true if a filter was added.
bool AddBenignFilter(QueryBuilder* qb, const Instance& inst, Rng* rng) {
  const std::string& t = inst.table;
  if (t == "title") {
    int64_t start = 1935 + rng->UniformInt(0, 10) * 5;
    int64_t len = 10 + rng->UniformInt(0, 5) * 5;
    qb->FilterBetween(inst.rel, "production_year", Value::Int(start),
                      Value::Int(start + len));
    return true;
  }
  if (t == "keyword") {
    // A cold keyword: uniform, so the estimate is accurate.
    qb->FilterEq(inst.rel, "keyword",
                 Value::Str(StrPrintf("kw_%06d",
                                      static_cast<int>(rng->UniformInt(
                                          200, 2000)))));
    return true;
  }
  if (t == "company_name") {
    static const char* kCodes[] = {"[us]", "[gb]", "[de]", "[fr]", "[jp]"};
    qb->FilterEq(inst.rel, "country_code",
                 Value::Str(kCodes[rng->UniformInt(0, 4)]));
    return true;
  }
  if (t == "info_type") {
    static const char* kInfos[] = {"genres", "countries", "languages",
                                   "release dates", "runtimes"};
    qb->FilterEq(inst.rel, "info", Value::Str(kInfos[rng->UniformInt(0, 4)]));
    return true;
  }
  if (t == "kind_type") {
    qb->FilterEq(inst.rel, "kind", Value::Str("movie"));
    return true;
  }
  if (t == "role_type") {
    static const char* kRoles[] = {"actor", "actress", "writer", "director"};
    qb->FilterEq(inst.rel, "role", Value::Str(kRoles[rng->UniformInt(0, 3)]));
    return true;
  }
  if (t == "link_type") {
    qb->FilterEq(inst.rel, "link",
                 Value::Str(rng->Bernoulli(0.5) ? "sequel" : "prequel"));
    return true;
  }
  if (t == "name") {
    qb->FilterEq(inst.rel, "gender", Value::Str("f"));
    return true;
  }
  if (t == "movie_info") {
    static const char* kGenres[] = {"Drama", "Comedy", "Thriller", "Romance"};
    qb->FilterEq(inst.rel, "info", Value::Str(kGenres[rng->UniformInt(0, 3)]));
    return true;
  }
  return false;
}

/// Adds a trappy filter (skew / correlation the estimator mis-handles).
bool AddTrappyFilter(QueryBuilder* qb, const Instance& inst, Rng* rng) {
  const std::string& t = inst.table;
  if (t == "keyword") {
    qb->FilterIn(inst.rel, "keyword",
                 PickHotKeywords(rng, static_cast<int>(rng->UniformInt(3, 8))));
    return true;
  }
  if (t == "name") {
    const std::vector<std::string>& tokens = imdb::StarNameTokens();
    const std::string& tok = tokens[static_cast<size_t>(rng->UniformInt(
        0, static_cast<int64_t>(tokens.size()) - 1))];
    qb->FilterLike(inst.rel, "name", "%" + tok + "%");
    if (rng->Bernoulli(0.5)) {
      // Correlated pair: stars skew male.
      qb->FilterEq(inst.rel, "gender", Value::Str("m"));
    }
    return true;
  }
  if (t == "cast_info") {
    qb->FilterIn(inst.rel, "note",
                 {Value::Str("(producer)"),
                  Value::Str("(executive producer)")});
    return true;
  }
  if (t == "movie_info") {
    qb->FilterEq(inst.rel, "info",
                 Value::Str(rng->Bernoulli(0.6) ? "Action" : "Adventure"));
    return true;
  }
  if (t == "info_type" && inst.parent_table == "movie_info_idx") {
    qb->FilterEq(inst.rel, "info",
                 Value::Str(rng->Bernoulli(0.5) ? "votes" : "budget"));
    return true;
  }
  if (t == "title") {
    qb->FilterCompare(inst.rel, "production_year", plan::CompareOp::kGt,
                      Value::Int(2000));
    return true;
  }
  return false;
}

/// Output candidates: string columns that read nicely in results.
void AddOutputs(QueryBuilder* qb, const std::vector<Instance>& instances,
                Rng* rng) {
  struct Option {
    const char* table;
    const char* col;
    const char* label;
  };
  static const Option kOptions[] = {
      {"title", "title", "movie_title"},
      {"name", "name", "person_name"},
      {"keyword", "keyword", "movie_keyword"},
      {"company_name", "name", "company"},
      {"char_name", "name", "character"},
      {"movie_info_idx", "info", "rating_info"},
      {"link_type", "link", "link_kind"},
      {"aka_title", "title", "alt_title"},
  };
  int added = 0;
  int want = 1 + static_cast<int>(rng->UniformInt(0, 2));
  for (const Option& opt : kOptions) {
    if (added >= want) break;
    for (const Instance& inst : instances) {
      if (inst.table == opt.table) {
        qb->OutputMin(inst.rel, opt.col, opt.label);
        ++added;
        break;
      }
    }
  }
  if (added == 0) {
    qb->OutputMin(instances.front().rel, "title", "movie_title");
  }
}

std::unique_ptr<plan::QuerySpec> GenerateQuery(
    const storage::Catalog& catalog, const std::string& name, int size,
    bool trappy, Rng* rng) {
  QueryBuilder qb(&catalog, name);
  std::vector<Instance> instances = GrowQuery(&qb, size, rng);

  // Shuffled visiting order so filters land on different relations.
  std::vector<size_t> order(instances.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  int filters = 0;
  int want_trappy = trappy ? 1 + (rng->Bernoulli(0.35) ? 1 : 0) : 0;
  // Larger queries carry more predicates (JOB style) so results stay
  // selective — multi-million-row outputs would be un-JOB-like.
  int want_total = 2 + size / 4 + static_cast<int>(rng->UniformInt(0, 2));

  if (trappy) {
    for (size_t i : order) {
      if (want_trappy == 0) break;
      if (AddTrappyFilter(&qb, instances[i], rng)) {
        --want_trappy;
        ++filters;
      }
    }
  }
  for (size_t i : order) {
    if (filters >= want_total) break;
    if (AddBenignFilter(&qb, instances[i], rng)) ++filters;
  }
  // Guarantee selectivity: queries of 8+ relations always get a title
  // year-range (in addition to whatever else was drawn), and every query
  // has at least one filter. Without this, large generated queries can
  // emit millions of rows, which JOB's hand-tuned predicates never do.
  bool has_title_filter = false;
  for (const plan::ScanPredicate& p : qb.PendingFilters()) {
    if (p.column.rel == instances.front().rel) has_title_filter = true;
  }
  if (filters == 0 || (size >= 8 && !has_title_filter)) {
    int64_t start = 1950 + rng->UniformInt(0, 9) * 5;
    qb.FilterBetween(instances.front().rel, "production_year",
                     Value::Int(start), Value::Int(start + 25));
  }
  AddOutputs(&qb, instances, rng);
  return qb.Build();
}

}  // namespace

const plan::QuerySpec* JobLikeWorkload::Find(const std::string& name) const {
  for (const auto& q : queries) {
    if (q->name == name) return q.get();
  }
  return nullptr;
}

const std::map<int, int>& JobLikeWorkload::TableCountDistribution() {
  static const std::map<int, int>* kDist = new std::map<int, int>{
      {4, 3}, {5, 20}, {6, 2},  {7, 16},  {8, 21}, {9, 14},
      {10, 7}, {11, 10}, {12, 11}, {14, 6}, {17, 3}};
  return *kDist;
}

std::unique_ptr<JobLikeWorkload> BuildJobLikeWorkload(
    const storage::Catalog& catalog, const WorkloadOptions& options) {
  auto workload = std::make_unique<JobLikeWorkload>();
  Rng rng(options.seed);

  // Signature queries first (they occupy slots in the Table III counts).
  workload->queries.push_back(MakeQuery6d(catalog));     // 5 tables
  workload->queries.push_back(MakeQuery18a(catalog));    // 7 tables
  workload->queries.push_back(MakeQueryFig6(catalog));   // 7 tables
  workload->queries.push_back(MakeQuery16b(catalog));    // 8 tables
  workload->queries.push_back(MakeQuery25c(catalog));    // 9 tables
  workload->queries.push_back(MakeQuery30a(catalog));    // 9 tables

  std::map<int, int> remaining = JobLikeWorkload::TableCountDistribution();
  for (const auto& q : workload->queries) {
    int size = q->num_relations();
    REOPT_CHECK(remaining[size] > 0);
    --remaining[size];
  }

  for (const auto& [size, count] : remaining) {
    for (int i = 0; i < count; ++i) {
      bool trappy = rng.Bernoulli(options.trappy_probability);
      std::string name = StrPrintf("q%d_%02d", size, i + 1);
      workload->queries.push_back(
          GenerateQuery(catalog, name, size, trappy, &rng));
    }
  }
  REOPT_CHECK(workload->queries.size() == 113);
  return workload;
}

}  // namespace reopt::workload
