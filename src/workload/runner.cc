#include "workload/runner.h"

namespace reopt::workload {

double WorkloadRunResult::TotalPlanSeconds() const {
  double total = 0.0;
  for (const QueryRecord& r : records) total += r.plan_seconds;
  return total;
}

double WorkloadRunResult::TotalExecSeconds() const {
  double total = 0.0;
  for (const QueryRecord& r : records) total += r.exec_seconds;
  return total;
}

const QueryRecord* WorkloadRunResult::Find(const std::string& name) const {
  for (const QueryRecord& r : records) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

common::Result<reoptimizer::QuerySession*> WorkloadRunner::GetSession(
    const plan::QuerySpec* query) {
  auto it = sessions_.find(query);
  if (it != sessions_.end()) return it->second.get();
  auto created =
      reoptimizer::QuerySession::Create(query, &db_->catalog, &db_->stats);
  if (!created.ok()) return created.status();
  reoptimizer::QuerySession* raw = created.value().get();
  sessions_[query] = std::move(created.value());
  return raw;
}

common::Result<reoptimizer::RunResult> WorkloadRunner::RunOne(
    const plan::QuerySpec* query, const reoptimizer::ModelSpec& model,
    const reoptimizer::ReoptOptions& reopt) {
  REOPT_ASSIGN_OR_RETURN(reoptimizer::QuerySession * session, GetSession(query));
  return runner_.Run(session, model, reopt);
}

common::Result<WorkloadRunResult> WorkloadRunner::RunAll(
    const JobLikeWorkload& workload, const reoptimizer::ModelSpec& model,
    const reoptimizer::ReoptOptions& reopt) {
  WorkloadRunResult out;
  out.records.reserve(workload.queries.size());
  for (const auto& query : workload.queries) {
    auto run = RunOne(query.get(), model, reopt);
    if (!run.ok()) return run.status();
    QueryRecord record;
    record.name = query->name;
    record.num_tables = query->num_relations();
    record.plan_seconds = run->plan_seconds();
    record.exec_seconds = run->exec_seconds();
    record.materializations = run->num_materializations;
    record.raw_rows = run->raw_rows;
    out.records.push_back(std::move(record));
  }
  return out;
}

}  // namespace reopt::workload
