#include "workload/runner.h"

#include <atomic>
#include <string>
#include <utility>

#include "common/thread_pool.h"

namespace reopt::workload {

double WorkloadRunResult::TotalPlanSeconds() const {
  double total = 0.0;
  for (const QueryRecord& r : records) total += r.plan_seconds;
  return total;
}

double WorkloadRunResult::TotalExecSeconds() const {
  double total = 0.0;
  for (const QueryRecord& r : records) total += r.exec_seconds;
  return total;
}

const QueryRecord* WorkloadRunResult::Find(const std::string& name) const {
  for (const QueryRecord& r : records) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

namespace {

QueryRecord MakeRecord(const plan::QuerySpec& query,
                       const reoptimizer::RunResult& run) {
  QueryRecord record;
  record.name = query.name;
  record.num_tables = query.num_relations();
  record.plan_seconds = run.plan_seconds();
  record.exec_seconds = run.exec_seconds();
  record.materializations = run.num_materializations;
  record.raw_rows = run.raw_rows;
  return record;
}

}  // namespace

common::Result<reoptimizer::QuerySession*> WorkloadRunner::GetSession(
    const plan::QuerySpec* query) {
  // Creation stays under the lock: two workers racing on the same query's
  // first use must not each build a session — the loser's insert would
  // destroy the session the winner is already running on.
  common::MutexLock lock(&sessions_mu_);
  auto it = sessions_.find(query);
  if (it != sessions_.end()) return it->second.get();
  auto created =
      reoptimizer::QuerySession::Create(query, &db_->catalog, &db_->stats);
  if (!created.ok()) return created.status();
  reoptimizer::QuerySession* raw = created.value().get();
  sessions_[query] = std::move(created.value());
  return raw;
}

common::Result<reoptimizer::RunResult> WorkloadRunner::RunOne(
    const plan::QuerySpec* query, const reoptimizer::ModelSpec& model,
    const reoptimizer::ReoptOptions& reopt) {
  REOPT_ASSIGN_OR_RETURN(reoptimizer::QuerySession * session, GetSession(query));
  return runner_.Run(session, model, reopt);
}

common::Result<WorkloadRunResult> WorkloadRunner::RunAll(
    const JobLikeWorkload& workload, const reoptimizer::ModelSpec& model,
    const reoptimizer::ReoptOptions& reopt, int num_threads) {
  if (num_threads <= 1) {
    // Serial fast path: no worker runners, stop at the first error.
    WorkloadRunResult out;
    out.records.reserve(workload.queries.size());
    for (const auto& query : workload.queries) {
      auto run = RunOne(query.get(), model, reopt);
      if (!run.ok()) return run.status();
      out.records.push_back(MakeRecord(*query, *run));
    }
    return out;
  }
  std::vector<SweepConfig> configs(1);
  configs[0].model = model;
  configs[0].reopt = reopt;
  REOPT_ASSIGN_OR_RETURN(std::vector<WorkloadRunResult> results,
                         RunSweep(workload, configs, num_threads));
  return std::move(results[0]);
}

common::Result<std::vector<WorkloadRunResult>> WorkloadRunner::RunSweep(
    const JobLikeWorkload& workload, const std::vector<SweepConfig>& configs,
    int num_threads, const SweepProgressFn& progress) {
  const int64_t num_queries = static_cast<int64_t>(workload.queries.size());
  const int64_t num_configs = static_cast<int64_t>(configs.size());
  std::vector<WorkloadRunResult> out(configs.size());
  for (WorkloadRunResult& r : out) r.records.resize(workload.queries.size());
  if (num_configs == 0 || num_queries == 0) return out;

  const int64_t num_tasks = num_configs * num_queries;
  int workers = num_threads < 1 ? 1 : num_threads;
  if (workers > num_tasks) workers = static_cast<int>(num_tasks);

  // Worker-private runners: same catalog/stats/params/planner options as
  // the serial runner, plus a per-worker temp-table namespace so
  // re-optimization rounds on different threads can never collide.
  std::vector<reoptimizer::QueryRunner> runners;
  runners.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    runners.emplace_back(&db_->catalog, &db_->stats, params_);
    runners.back().set_planner_options(runner_.planner_options());
    runners.back().set_incremental_replanning(
        runner_.incremental_replanning());
    runners.back().set_plan_observer(runner_.plan_observer());
    runners.back().set_knowledge_base(runner_.knowledge_base());
    runners.back().set_temp_namespace("w" + std::to_string(w));
    // Each worker gets the full intra-query budget: the two levels
    // multiply, and the caller is responsible for splitting one hardware
    // budget between them (see set_intra_query_threads).
    runners.back().set_intra_query_threads(intra_query_threads_);
  }

  // One slot per (config, query) task, config-major — the serial execution
  // order — so both record assembly and error selection below are
  // deterministic no matter which worker ran what. Every task runs even
  // after a failure (errors are rare and each task is bounded); skipping
  // would let scheduling decide which error slot gets filled first and the
  // returned error would differ run to run.
  std::vector<common::Status> statuses(static_cast<size_t>(num_tasks));
  std::atomic<bool> failed{false};
  std::vector<std::atomic<int64_t>> unfinished(configs.size());
  for (auto& n : unfinished) n.store(num_queries, std::memory_order_relaxed);
  common::Mutex progress_mu;
  common::ParallelFor(
      num_tasks, workers, [&](int64_t task, int worker) {
        const size_t c = static_cast<size_t>(task / num_queries);
        const size_t q = static_cast<size_t>(task % num_queries);
        const plan::QuerySpec* spec = workload.queries[q].get();
        auto session = GetSession(spec);
        if (!session.ok()) {
          statuses[static_cast<size_t>(task)] = session.status();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        auto run = runners[static_cast<size_t>(worker)].Run(
            session.value(), configs[c].model, configs[c].reopt);
        if (!run.ok()) {
          statuses[static_cast<size_t>(task)] = run.status();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        out[c].records[q] = MakeRecord(*spec, *run);
        // Last finished query of a config fires the progress hook with the
        // complete result (a failed query never decrements, so a failing
        // config never reports).
        if (progress &&
            unfinished[c].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          common::MutexLock lock(&progress_mu);
          progress(configs[c], out[c]);
        }
      });

  if (failed.load()) {
    for (const common::Status& status : statuses) {
      if (!status.ok()) return status;
    }
  }
  return out;
}

}  // namespace reopt::workload
