#include "workload/job_like.h"

#include "common/value.h"
#include "workload/query_builder.h"

namespace reopt::workload {

using common::Value;

std::unique_ptr<plan::QuerySpec> MakeQuery6d(const storage::Catalog& catalog) {
  // SELECT MIN(k.keyword), MIN(n.name), MIN(t.title)
  // FROM cast_info ci, keyword k, movie_keyword mk, name n, title t
  // WHERE k.keyword IN (8 hot keywords)
  //   AND n.name LIKE '%Downey%Robert%'  (-> our '%Downey%' star token)
  //   AND t.production_year > 2000
  //   AND mk.keyword_id = k.id AND t.id = mk.movie_id
  //   AND t.id = ci.movie_id AND ci.person_id = n.id;
  QueryBuilder qb(&catalog, "6d");
  int ci = qb.AddRelation("cast_info", "ci");
  int k = qb.AddRelation("keyword", "k");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int n = qb.AddRelation("name", "n");
  int t = qb.AddRelation("title", "t");
  qb.Join(mk, "keyword_id", k, "id")
      .Join(t, "id", mk, "movie_id")
      .Join(t, "id", ci, "movie_id")
      .Join(ci, "person_id", n, "id")
      .FilterIn(k, "keyword",
                {Value::Str("superhero"), Value::Str("sequel"),
                 Value::Str("second-part"), Value::Str("marvel-comics"),
                 Value::Str("based-on-comic"), Value::Str("tv-special"),
                 Value::Str("fight"), Value::Str("violence")})
      .FilterLike(n, "name", "%Downey%")
      .FilterCompare(t, "production_year", plan::CompareOp::kGt,
                     Value::Int(2000))
      .OutputMin(k, "keyword", "movie_keyword")
      .OutputMin(n, "name", "actor_name")
      .OutputMin(t, "title", "hero_movie");
  return qb.Build();
}

std::unique_ptr<plan::QuerySpec> MakeQuery18a(
    const storage::Catalog& catalog) {
  // SELECT MIN(mi.info), MIN(mi_idx.info), MIN(t.title)
  // FROM cast_info ci, info_type it1, info_type it2, movie_info mi,
  //      movie_info_idx mi_idx, name n, title t
  // WHERE ci.note IN ('(producer)', '(executive producer)')
  //   AND it1.info = 'genres' AND it2.info = 'votes'
  //   (the paper filters it1 on 'budget'; in our generator budget rows
  //    live in movie_info_idx, so the mi-side filter uses 'genres' — the
  //    it2/'votes' x mi_idx correlation trap is preserved)
  //   AND n.gender = 'm' AND n.name LIKE '%Tim%'
  //   AND t.id = ci.movie_id AND t.id = mi.movie_id
  //   AND t.id = mi_idx.movie_id AND ci.person_id = n.id
  //   AND it1.id = mi.info_type_id AND it2.id = mi_idx.info_type_id;
  QueryBuilder qb(&catalog, "18a");
  int ci = qb.AddRelation("cast_info", "ci");
  int it1 = qb.AddRelation("info_type", "it1");
  int it2 = qb.AddRelation("info_type", "it2");
  int mi = qb.AddRelation("movie_info", "mi");
  int mi_idx = qb.AddRelation("movie_info_idx", "mi_idx");
  int n = qb.AddRelation("name", "n");
  int t = qb.AddRelation("title", "t");
  qb.Join(t, "id", ci, "movie_id")
      .Join(t, "id", mi, "movie_id")
      .Join(t, "id", mi_idx, "movie_id")
      .Join(ci, "person_id", n, "id")
      .Join(it1, "id", mi, "info_type_id")
      .Join(it2, "id", mi_idx, "info_type_id")
      .FilterIn(ci, "note",
                {Value::Str("(producer)"),
                 Value::Str("(executive producer)")})
      .FilterEq(it1, "info", Value::Str("genres"))
      .FilterEq(it2, "info", Value::Str("votes"))
      .FilterEq(n, "gender", Value::Str("m"))
      .FilterLike(n, "name", "%Tim%")
      .OutputMin(mi, "info", "movie_budget")
      .OutputMin(mi_idx, "info", "movie_votes")
      .OutputMin(t, "title", "movie_title");
  return qb.Build();
}

std::unique_ptr<plan::QuerySpec> MakeQueryFig6(
    const storage::Catalog& catalog) {
  // The paper's re-optimization example (Fig. 6):
  // FROM cast_info ci, company_name cn, keyword k, movie_companies mc,
  //      movie_keyword mk, name n, title t
  // WHERE k.keyword = 'character-name-in-title' AND n.name LIKE 'X%'
  //   AND the join chain over person/movie ids. Our surnames start with
  //   A-Z; 'W%' selects a few (White/Wilson/Walker/Wright).
  QueryBuilder qb(&catalog, "fig6");
  int ci = qb.AddRelation("cast_info", "ci");
  int cn = qb.AddRelation("company_name", "cn");
  int k = qb.AddRelation("keyword", "k");
  int mc = qb.AddRelation("movie_companies", "mc");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int n = qb.AddRelation("name", "n");
  int t = qb.AddRelation("title", "t");
  qb.Join(n, "id", ci, "person_id")
      .Join(ci, "movie_id", t, "id")
      .Join(t, "id", mk, "movie_id")
      .Join(mk, "keyword_id", k, "id")
      .Join(t, "id", mc, "movie_id")
      .Join(mc, "company_id", cn, "id")
      .FilterEq(k, "keyword", Value::Str("character-name-in-title"))
      .FilterLike(n, "name", "W%")
      .OutputMin(n, "name", "of_person")
      .OutputMin(t, "title", "biography_movie");
  return qb.Build();
}

std::unique_ptr<plan::QuerySpec> MakeQuery16b(
    const storage::Catalog& catalog) {
  // 8-way: aka_name + the Fig. 6 shape; several interacting mis-estimates
  // (hot keyword + un-anchored LIKE), the Fig. 5 slow-convergence subject.
  QueryBuilder qb(&catalog, "16b");
  int an = qb.AddRelation("aka_name", "an");
  int ci = qb.AddRelation("cast_info", "ci");
  int cn = qb.AddRelation("company_name", "cn");
  int k = qb.AddRelation("keyword", "k");
  int mc = qb.AddRelation("movie_companies", "mc");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int n = qb.AddRelation("name", "n");
  int t = qb.AddRelation("title", "t");
  qb.Join(an, "person_id", n, "id")
      .Join(n, "id", ci, "person_id")
      .Join(ci, "movie_id", t, "id")
      .Join(t, "id", mk, "movie_id")
      .Join(mk, "keyword_id", k, "id")
      .Join(t, "id", mc, "movie_id")
      .Join(mc, "company_id", cn, "id")
      .FilterEq(k, "keyword", Value::Str("character-name-in-title"))
      .FilterEq(cn, "country_code", Value::Str("[us]"))
      .FilterLike(n, "name", "%Chris%")
      .OutputMin(an, "name", "cool_actor_pseudonym")
      .OutputMin(t, "title", "series_named_after_char");
  return qb.Build();
}

std::unique_ptr<plan::QuerySpec> MakeQuery25c(
    const storage::Catalog& catalog) {
  // 9-way: hot keywords x producer notes x budget/votes info pair — three
  // stacked correlation traps.
  QueryBuilder qb(&catalog, "25c");
  int ci = qb.AddRelation("cast_info", "ci");
  int it1 = qb.AddRelation("info_type", "it1");
  int it2 = qb.AddRelation("info_type", "it2");
  int k = qb.AddRelation("keyword", "k");
  int mi = qb.AddRelation("movie_info", "mi");
  int mi_idx = qb.AddRelation("movie_info_idx", "mi_idx");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int n = qb.AddRelation("name", "n");
  int t = qb.AddRelation("title", "t");
  qb.Join(t, "id", mi, "movie_id")
      .Join(t, "id", mi_idx, "movie_id")
      .Join(t, "id", ci, "movie_id")
      .Join(t, "id", mk, "movie_id")
      .Join(ci, "person_id", n, "id")
      .Join(mi, "info_type_id", it1, "id")
      .Join(mi_idx, "info_type_id", it2, "id")
      .Join(mk, "keyword_id", k, "id")
      .FilterIn(k, "keyword",
                {Value::Str("murder"), Value::Str("violence"),
                 Value::Str("blood"), Value::Str("gore")})
      .FilterIn(ci, "note",
                {Value::Str("(producer)"),
                 Value::Str("(executive producer)")})
      .FilterEq(it1, "info", Value::Str("genres"))
      .FilterEq(it2, "info", Value::Str("votes"))
      .FilterEq(n, "gender", Value::Str("m"))
      .OutputMin(mi, "info", "movie_budget")
      .OutputMin(mi_idx, "info", "movie_votes")
      .OutputMin(n, "name", "male_writer")
      .OutputMin(t, "title", "violent_movie_title");
  return qb.Build();
}

std::unique_ptr<plan::QuerySpec> MakeQuery30a(
    const storage::Catalog& catalog) {
  // 9-way with complete_cast: hot keywords and Action genre, moderate
  // errors that a few corrections fix (then over-correct, Fig. 5 bottom).
  QueryBuilder qb(&catalog, "30a");
  int cc = qb.AddRelation("complete_cast", "cc");
  int cct = qb.AddRelation("comp_cast_type", "cct1");
  int ci = qb.AddRelation("cast_info", "ci");
  int k = qb.AddRelation("keyword", "k");
  int mi = qb.AddRelation("movie_info", "mi");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int n = qb.AddRelation("name", "n");
  int t = qb.AddRelation("title", "t");
  int it = qb.AddRelation("info_type", "it1");
  qb.Join(t, "id", cc, "movie_id")
      .Join(cc, "subject_id", cct, "id")
      .Join(t, "id", ci, "movie_id")
      .Join(t, "id", mk, "movie_id")
      .Join(t, "id", mi, "movie_id")
      .Join(mk, "keyword_id", k, "id")
      .Join(ci, "person_id", n, "id")
      .Join(mi, "info_type_id", it, "id")
      .FilterIn(k, "keyword",
                {Value::Str("superhero"), Value::Str("based-on-comic"),
                 Value::Str("fight"), Value::Str("revenge")})
      .FilterEq(it, "info", Value::Str("genres"))
      .FilterEq(mi, "info", Value::Str("Action"))
      .FilterEq(cct, "kind", Value::Str("cast"))
      .FilterCompare(t, "production_year", plan::CompareOp::kGt,
                     Value::Int(2000))
      .OutputMin(mi, "info", "movie_budget")
      .OutputMin(n, "name", "writer")
      .OutputMin(t, "title", "complete_violent_movie");
  return qb.Build();
}

}  // namespace reopt::workload
