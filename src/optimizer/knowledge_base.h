// Learned cardinality knowledge base (PostgreSQL AQO style): the
// re-optimization loop observes true cardinalities for every join subset it
// checks against the Q-error trigger; instead of discarding them at query
// end, the runner feeds them here. Each observation lands in a *feature
// subspace* keyed by a hash of the subset's structure — table names,
// predicate clause shapes (column + operator, literal values excluded) and
// the join edges inside the subset — and carries the clauses' marginal
// log-selectivities as features with the observed log-selectivity of the
// whole subset as the target. Prediction is distance-weighted kNN over the
// matching subspace, so an estimate learned for `title.production_year >
// 1990` generalizes to `> 2005`: same subspace, nearby feature vector.
//
// The base is shared across queries, sweep workers and service sessions;
// all state sits behind one annotated mutex. It stays *frozen during a
// single Run*: observations are buffered by the runner and committed only
// after the run succeeds, which keeps incremental re-planning byte-identical
// to from-scratch re-planning within every run.
#ifndef REOPT_OPTIMIZER_KNOWLEDGE_BASE_H_
#define REOPT_OPTIMIZER_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "optimizer/query_context.h"
#include "plan/rel_set.h"

namespace reopt::optimizer {

/// The learned-feature view of one relation subset: a structural subspace
/// hash (constants excluded, so it is stable across literal changes *and*
/// across the relation renumbering done by re-opt rewrites) plus the
/// numeric features kNN interpolates over.
struct SubsetFeatures {
  /// Hash of {sorted table names} x {sorted clause structures} x {sorted
  /// internal join-edge structures}. Two subsets share a subspace iff they
  /// join the same tables under the same predicate/edge shapes.
  uint64_t fss_hash = 0;
  /// Marginal log-selectivity of each predicate clause (estimator-derived),
  /// in a canonical order tied to the clause-structure hashes.
  std::vector<double> log_selectivities;
  /// log of the subset's cartesian row product; targets are stored as
  /// log-selectivities relative to it so they transfer across scales.
  double log_cartesian = 0.0;
};

/// Tuning knobs; defaults follow AQO's spirit (small k, bounded per-space
/// memory, FIFO staleness).
struct KnowledgeBaseOptions {
  /// Neighbors consulted per prediction.
  int k = 3;
  /// Max observations retained per feature subspace; beyond it the oldest
  /// observation is overwritten (FIFO ring) so drifting data ages out.
  int capacity_per_space = 32;
  /// Squared feature distance at or below which an observation counts as an
  /// exact hit: predictions return its target directly, and new
  /// observations overwrite it (latest truth wins) instead of appending.
  double exact_distance = 1e-12;
};

/// Aggregate counters for reporting (bench/ablation_learned).
struct KnowledgeBaseStats {
  int64_t spaces = 0;        // distinct feature subspaces
  int64_t observations = 0;  // observations currently retained
  int64_t inserts = 0;       // Observe() calls that appended
  int64_t updates = 0;       // Observe() calls that refreshed an exact hit
  int64_t evictions = 0;     // appends that displaced the oldest entry
  int64_t predictions = 0;   // Predict() calls
  int64_t hits = 0;          // predictions answered from the base
  int64_t exact_hits = 0;    // hits within exact_distance
};

class CardinalityKnowledgeBase {
 public:
  CardinalityKnowledgeBase() = default;
  explicit CardinalityKnowledgeBase(const KnowledgeBaseOptions& options)
      : options_(options) {}

  /// Extracts the feature view of `set` under `ctx`. Returns false — no
  /// feature space, neither learn nor predict — when the subset touches a
  /// re-optimization temp relation: temp tables are query-local artifacts
  /// whose names and contents never recur, so learning from them would
  /// poison the base (their *origin* subsets are observed pre-rewrite).
  static bool FeaturesOf(const QueryContext& ctx, plan::RelSet set,
                         SubsetFeatures* out);

  /// Records one observed truth for a subset (row count before the >= 1
  /// clamp is fine; it is clamped here). Within exact_distance of an
  /// existing observation the target is overwritten; otherwise appended,
  /// evicting the oldest entry once the subspace is full. No-op while
  /// learning is disabled.
  void Observe(const SubsetFeatures& features, double true_rows)
      EXCLUDES(mu_);
  /// Batch form: one lock acquisition for a whole run's buffered
  /// observations, applied in order.
  void ObserveBatch(
      const std::vector<std::pair<SubsetFeatures, double>>& batch)
      EXCLUDES(mu_);

  /// Predicted row count for a subset, or nullopt when the subspace is
  /// unknown/empty (caller falls back to the default estimator — AQO's
  /// "refuse to predict" contract). Distance-weighted average of the k
  /// nearest neighbors' log-selectivity targets, exponentiated back
  /// through log_cartesian.
  std::optional<double> PredictRows(const SubsetFeatures& features) const
      EXCLUDES(mu_);

  /// Freezes/unfreezes learning. Predictions keep working either way; a
  /// frozen base makes parallel sweeps byte-identical to serial runs
  /// (observation commit order no longer matters).
  void set_learning_enabled(bool enabled) EXCLUDES(mu_);
  bool learning_enabled() const EXCLUDES(mu_);

  /// Drops every observation and resets the counters.
  void Clear() EXCLUDES(mu_);

  KnowledgeBaseStats Stats() const EXCLUDES(mu_);

 private:
  struct Observation {
    std::vector<double> features;
    double target = 0.0;  // log-selectivity of the observed truth
  };
  struct FeatureSpace {
    std::vector<Observation> observations;
    int next_evict = 0;  // FIFO ring cursor once at capacity
  };

  void ObserveLocked(const SubsetFeatures& features, double true_rows)
      REQUIRES(mu_);

  const KnowledgeBaseOptions options_;
  mutable common::Mutex mu_;
  std::unordered_map<uint64_t, FeatureSpace> spaces_ GUARDED_BY(mu_);
  bool learning_enabled_ GUARDED_BY(mu_) = true;
  int64_t inserts_ GUARDED_BY(mu_) = 0;
  int64_t updates_ GUARDED_BY(mu_) = 0;
  int64_t evictions_ GUARDED_BY(mu_) = 0;
  mutable int64_t predictions_ GUARDED_BY(mu_) = 0;
  mutable int64_t hits_ GUARDED_BY(mu_) = 0;
  mutable int64_t exact_hits_ GUARDED_BY(mu_) = 0;
};

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_KNOWLEDGE_BASE_H_
