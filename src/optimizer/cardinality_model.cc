#include "optimizer/cardinality_model.h"

#include <algorithm>

#include "optimizer/knowledge_base.h"
#include "optimizer/selectivity.h"

namespace reopt::optimizer {

double CardinalityModel::Cardinality(plan::RelSet set) {
  REOPT_CHECK(!set.empty());
  auto it = cache_.find(set.bits());
  if (it != cache_.end()) return it->second;
  double rows = std::max(1.0, Compute(set));
  cache_[set.bits()] = rows;
  ++num_estimates_;
  ++estimates_by_size_[set.count()];
  return rows;
}

void CardinalityModel::SeedEstimate(plan::RelSet set, double rows) {
  REOPT_CHECK(!set.empty());
  if (!cache_.emplace(set.bits(), rows).second) return;
  ++num_estimates_;
  ++estimates_by_size_[set.count()];
}

std::map<int, int64_t> CardinalityModel::estimates_by_size() const {
  std::map<int, int64_t> out;
  for (int size = 0; size < 65; ++size) {
    if (estimates_by_size_[size] != 0) out[size] = estimates_by_size_[size];
  }
  return out;
}

void CardinalityModel::Rebind(const QueryContext* ctx,
                              TrueCardinalityOracle* oracle) {
  (void)oracle;
  REOPT_CHECK(ctx != nullptr);
  ctx_ = ctx;
  cache_.clear();
}

namespace {

// Extracts the single equality value of a predicate usable for joint
// column-group lookup (col = v, or col IN (v)).
const common::Value* EqualityValue(const plan::ScanPredicate& pred) {
  if (pred.kind == plan::ScanPredicate::Kind::kCompare &&
      pred.op == plan::CompareOp::kEq) {
    return &pred.value;
  }
  if (pred.kind == plan::ScanPredicate::Kind::kIn &&
      pred.in_list.size() == 1) {
    return &pred.in_list[0];
  }
  return nullptr;
}

}  // namespace

double CardinalityModel::BaseEstimate(int rel) const {
  const stats::TableStats* ts = ctx().table_stats(rel);
  double rows = ts != nullptr
                    ? ts->row_count
                    : static_cast<double>(ctx().table(rel).num_rows());
  std::vector<const plan::ScanPredicate*> preds =
      ctx().query().FiltersFor(rel);
  std::vector<bool> handled(preds.size(), false);
  double sel = 1.0;

  // CORDS correction: greedily pair equality predicates whose columns
  // have joint group statistics.
  if (use_column_groups_ && ts != nullptr && !ts->groups.empty()) {
    for (size_t i = 0; i < preds.size(); ++i) {
      if (handled[i]) continue;
      const common::Value* vi = EqualityValue(*preds[i]);
      if (vi == nullptr) continue;
      for (size_t j = i + 1; j < preds.size(); ++j) {
        if (handled[j]) continue;
        const common::Value* vj = EqualityValue(*preds[j]);
        if (vj == nullptr) continue;
        const stats::ColumnGroupStats* group = stats::FindGroup(
            ts->groups, preds[i]->column.col, preds[j]->column.col);
        if (group == nullptr) continue;
        // Order values to match the group's (col_a < col_b) layout.
        const common::Value* va = vi;
        const common::Value* vb = vj;
        if (preds[i]->column.col > preds[j]->column.col) std::swap(va, vb);
        std::optional<double> joint = group->Find(*va, *vb);
        // A pair absent from the joint MCVs of a strongly-correlated
        // group is rare: estimate the leftover mass spread uniformly.
        double joint_sel;
        if (joint.has_value()) {
          joint_sel = *joint;
        } else {
          double covered = 0.0;
          for (double f : group->freqs) covered += f;
          double leftover_pairs = std::max(
              1.0, group->num_distinct_pairs -
                       static_cast<double>(group->pairs.size()));
          joint_sel = std::max(1e-9, (1.0 - covered) / leftover_pairs);
        }
        sel *= joint_sel;
        handled[i] = handled[j] = true;
        break;
      }
    }
  }

  for (size_t i = 0; i < preds.size(); ++i) {
    if (handled[i]) continue;
    const stats::ColumnStats* cs = ctx().column_stats(preds[i]->column);
    sel *= EstimateFilterSelectivity(*preds[i], cs);  // independence
  }
  return rows * sel;
}

double CardinalityModel::PeelEstimate(plan::RelSet set) {
  const plan::JoinGraph& graph = ctx().graph();

  // Disconnected subsets: multiply component estimates.
  if (!graph.IsConnected(set)) {
    double product = 1.0;
    plan::RelSet remaining = set;
    while (!remaining.empty()) {
      plan::RelSet component = plan::RelSet::Single(remaining.Lowest());
      while (true) {
        plan::RelSet grow =
            graph.NeighborsOf(component).Intersect(remaining);
        if (grow.empty()) break;
        component = component.Union(grow);
      }
      product *= Cardinality(component);
      remaining = remaining.Minus(component);
    }
    return product;
  }

  // Peel the highest relation that keeps the rest connected (one always
  // exists: a connected graph has at least two non-cut vertices). Prefer
  // peeling relations outside the anchor so known sub-cardinalities stay
  // intact in the recursion.
  plan::RelSet anchor = AnchorSubset(set);
  int peel = -1;
  std::vector<int> members;
  for (int r : set.Members()) members.push_back(r);
  for (bool respect_anchor : {true, false}) {
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      if (respect_anchor && anchor.Contains(*it)) continue;
      plan::RelSet rest = set.Without(*it);
      if (rest.count() == 0 || graph.IsConnected(rest)) {
        peel = *it;
        break;
      }
    }
    if (peel >= 0) break;
  }
  REOPT_CHECK_MSG(peel >= 0, "no peelable relation in connected set");

  plan::RelSet rest = set.Without(peel);
  double rows = Cardinality(rest) * Cardinality(plan::RelSet::Single(peel));
  // Edges between `rest` and the peeled relation, off the precomputed
  // adjacency table (no per-estimate JoinsBetween allocation).
  const uint64_t rest_bits = rest.bits();
  const uint64_t peel_bit = uint64_t{1} << peel;
  for (const QueryContext::BoundEdge& be : ctx().join_edges()) {
    bool crosses = ((be.left_bit & rest_bits) && (be.right_bit & peel_bit)) ||
                   ((be.left_bit & peel_bit) && (be.right_bit & rest_bits));
    if (crosses) rows *= EstimateJoinEdgeSelectivity(*be.edge, ctx());
  }
  return rows;
}

double EstimatorModel::Compute(plan::RelSet set) {
  if (set.count() == 1) return BaseEstimate(set.Lowest());
  return PeelEstimate(set);
}

double PerfectNModel::Compute(plan::RelSet set) {
  if (set.count() <= n_) return oracle_->True(set);
  if (set.count() == 1) return BaseEstimate(set.Lowest());
  return PeelEstimate(set);
}

void PerfectNModel::Rebind(const QueryContext* ctx,
                           TrueCardinalityOracle* oracle) {
  CardinalityModel::Rebind(ctx, oracle);
  REOPT_CHECK(oracle != nullptr);
  oracle_ = oracle;
}

void InjectedModel::Inject(plan::RelSet set, double cardinality) {
  overrides_[set.bits()] = cardinality;
  // Corrections change everything computed on top of them.
  ClearCache();
}

void InjectedModel::Rebind(const QueryContext* ctx,
                           TrueCardinalityOracle* oracle) {
  EstimatorModel::Rebind(ctx, oracle);
  overrides_.clear();
}

double InjectedModel::Compute(plan::RelSet set) {
  auto it = overrides_.find(set.bits());
  if (it != overrides_.end()) return it->second;
  return EstimatorModel::Compute(set);
}

double LearnedModel::Compute(plan::RelSet set) {
  if (kb_ != nullptr) {
    SubsetFeatures features;
    if (CardinalityKnowledgeBase::FeaturesOf(ctx(), set, &features)) {
      if (std::optional<double> rows = kb_->PredictRows(features)) {
        ++num_predicted_;
        return *rows;
      }
    }
  }
  // Miss: exactly the EstimatorModel computation, so an empty base changes
  // nothing (the model-sweep differential suite pins this bit-for-bit).
  if (set.count() == 1) return BaseEstimate(set.Lowest());
  return PeelEstimate(set);
}

plan::RelSet InjectedModel::AnchorSubset(plan::RelSet set) const {
  plan::RelSet best;
  for (const auto& [bits, value] : overrides_) {
    (void)value;
    plan::RelSet candidate(bits);
    if (set.ContainsAll(candidate) && candidate.count() > best.count()) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace reopt::optimizer
