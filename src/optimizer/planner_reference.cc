#include "optimizer/planner_reference.h"

#include <algorithm>

#include "optimizer/cost_formulas.h"
#include "optimizer/selectivity.h"

namespace reopt::optimizer::reference {

common::Result<PlannerResult> Planner::Plan() {
  best_.clear();
  const plan::QuerySpec& query = ctx_->query();
  int64_t estimates_before = model_->num_estimates();
  int64_t num_paths = 0;

  for (int rel = 0; rel < query.num_relations(); ++rel) {
    PlanBaseRelation(rel);
    ++num_paths;
  }
  if (query.num_relations() > 1) {
    PlanJoins(&num_paths);
  }

  uint64_t all = query.AllRelations().bits();
  auto it = best_.find(all);
  if (it == best_.end()) {
    return common::Status::Internal(
        "DP found no plan for the full relation set (disconnected graph?)");
  }

  PlannerResult result;
  plan::PlanNodePtr tree = BuildTree(all);
  if (options_.add_aggregate) {
    auto agg = std::make_unique<plan::PlanNode>();
    agg->op = plan::PlanOp::kAggregate;
    agg->rels = query.AllRelations();
    agg->est_rows = 1.0;
    agg->est_cost =
        tree->est_cost + AggregateCost(params_, tree->est_rows,
                                       static_cast<int>(query.outputs.size()));
    agg->left = std::move(tree);
    result.root = std::move(agg);
  } else {
    result.root = std::move(tree);
  }

  result.num_estimates = model_->num_estimates() - estimates_before;
  result.num_paths = num_paths;
  result.planning_cost_units =
      static_cast<double>(result.num_estimates) *
          params_.plan_cost_per_estimate +
      static_cast<double>(result.num_paths) * params_.plan_cost_per_path;
  return result;
}

void Planner::PlanBaseRelation(int rel) {
  const plan::QuerySpec& query = ctx_->query();
  const storage::Table& table = ctx_->table(rel);
  const stats::TableStats* ts = ctx_->table_stats(rel);
  double table_rows = ts != nullptr
                          ? ts->row_count
                          : static_cast<double>(table.num_rows());
  std::vector<const plan::ScanPredicate*> filters = query.FiltersFor(rel);
  double out_rows = model_->Cardinality(plan::RelSet::Single(rel));

  Cand cand;
  cand.op = plan::PlanOp::kSeqScan;
  cand.rel = rel;
  cand.rows = out_rows;
  cand.cost = SeqScanCost(params_, table_rows,
                          static_cast<int>(filters.size()), out_rows);

  if (options_.enable_index_scan) {
    // Try answering one equality/IN filter with a hash index.
    for (const plan::ScanPredicate* pred : filters) {
      bool indexable =
          (pred->kind == plan::ScanPredicate::Kind::kCompare &&
           pred->op == plan::CompareOp::kEq) ||
          pred->kind == plan::ScanPredicate::Kind::kIn;
      if (!indexable) continue;
      if (table.FindIndex(pred->column.col) == nullptr) continue;
      const stats::ColumnStats* cs = ctx_->column_stats(pred->column);
      double index_rows =
          table_rows * EstimateFilterSelectivity(*pred, cs);
      double cost =
          IndexScanCost(params_, index_rows,
                        static_cast<int>(filters.size()) - 1, out_rows);
      if (cost < cand.cost) {
        cand.op = plan::PlanOp::kIndexScan;
        cand.cost = cost;
        cand.index_pred = pred;
      }
    }
  }
  best_[plan::RelSet::Single(rel).bits()] = cand;
}

void Planner::PlanJoins(int64_t* num_paths) {
  // Csg-cmp pairs are produced grouped by ascending union, so both sides'
  // best plans exist when a pair is considered.
  for (const plan::CsgCmpPair& pair : ctx_->graph().ConnectedPairs()) {
    ConsiderJoin(pair.left, pair.right, num_paths);
    ConsiderJoin(pair.right, pair.left, num_paths);
  }
}

void Planner::ConsiderJoin(plan::RelSet outer, plan::RelSet inner,
                           int64_t* num_paths) {
  auto outer_it = best_.find(outer.bits());
  auto inner_it = best_.find(inner.bits());
  if (outer_it == best_.end() || inner_it == best_.end()) return;
  const Cand& outer_cand = outer_it->second;
  const Cand& inner_cand = inner_it->second;

  plan::RelSet all = outer.Union(inner);
  double out_rows = model_->Cardinality(all);
  std::vector<const plan::JoinEdge*> edges =
      ctx_->query().JoinsBetween(outer, inner);
  REOPT_CHECK_MSG(!edges.empty(), "csg-cmp pair without connecting edge");

  auto keep_if_better = [&](const Cand& cand) {
    auto it = best_.find(all.bits());
    if (it == best_.end() || cand.cost < it->second.cost) {
      best_[all.bits()] = cand;
    }
  };

  double child_cost = outer_cand.cost + inner_cand.cost;

  if (options_.enable_hash_join) {
    // Convention: left child = build side. Building on `inner` here; the
    // symmetric call covers building on `outer`.
    Cand cand;
    cand.op = plan::PlanOp::kHashJoin;
    cand.left = inner.bits();
    cand.right = outer.bits();
    cand.rows = out_rows;
    cand.cost = child_cost + HashJoinCost(params_, inner_cand.rows,
                                          outer_cand.rows, out_rows);
    keep_if_better(cand);
    ++*num_paths;
  }

  if (options_.enable_nested_loop) {
    Cand cand;
    cand.op = plan::PlanOp::kNestedLoopJoin;
    cand.left = outer.bits();
    cand.right = inner.bits();
    cand.rows = out_rows;
    cand.cost = child_cost + NestedLoopJoinCost(params_, outer_cand.rows,
                                                inner_cand.rows, out_rows);
    keep_if_better(cand);
    ++*num_paths;
  }

  if (options_.enable_index_nested_loop && inner.count() == 1) {
    int inner_rel = inner.Lowest();
    const storage::Table& inner_table = ctx_->table(inner_rel);
    const stats::TableStats* its = ctx_->table_stats(inner_rel);
    double inner_table_rows =
        its != nullptr ? its->row_count
                       : static_cast<double>(inner_table.num_rows());
    int num_inner_filters =
        static_cast<int>(ctx_->query().FiltersFor(inner_rel).size());
    for (const plan::JoinEdge* edge : edges) {
      common::ColumnIdx inner_col =
          edge->left.rel == inner_rel ? edge->left.col : edge->right.col;
      if (inner_table.FindIndex(inner_col) == nullptr) continue;
      // Index matches before inner filters / residual edges.
      double match_rows = outer_cand.rows * inner_table_rows *
                          EstimateJoinEdgeSelectivity(*edge, *ctx_);
      Cand cand;
      cand.op = plan::PlanOp::kIndexNestedLoopJoin;
      cand.left = outer.bits();
      cand.right = inner.bits();
      cand.rows = out_rows;
      cand.index_edge = edge;
      cand.cost =
          outer_cand.cost +  // inner side is probed, not scanned
          IndexNestedLoopJoinCost(
              params_, outer_cand.rows, match_rows,
              static_cast<int>(edges.size()) - 1 + num_inner_filters,
              out_rows);
      keep_if_better(cand);
      ++*num_paths;
    }
  }
}

plan::PlanNodePtr Planner::BuildTree(uint64_t bits) const {
  auto it = best_.find(bits);
  REOPT_CHECK_MSG(it != best_.end(), "missing DP entry during rebuild");
  const Cand& cand = it->second;

  auto node = std::make_unique<plan::PlanNode>();
  node->op = cand.op;
  node->rels = plan::RelSet(bits);
  node->est_rows = cand.rows;
  node->est_cost = cand.cost;

  if (cand.op == plan::PlanOp::kSeqScan ||
      cand.op == plan::PlanOp::kIndexScan) {
    node->scan_rel = cand.rel;
    node->filters = ctx_->query().FiltersFor(cand.rel);
    node->index_pred = cand.index_pred;
    return node;
  }

  plan::RelSet left(cand.left);
  plan::RelSet right(cand.right);
  node->edges = ctx_->query().JoinsBetween(left, right);
  node->left = BuildTree(cand.left);
  if (cand.op == plan::PlanOp::kIndexNestedLoopJoin) {
    // The inner side is described by a scan node but executed via index
    // probes; its filters are applied per match.
    int inner_rel = right.Lowest();
    auto inner = std::make_unique<plan::PlanNode>();
    inner->op = plan::PlanOp::kSeqScan;
    inner->rels = right;
    inner->scan_rel = inner_rel;
    inner->filters = ctx_->query().FiltersFor(inner_rel);
    inner->est_rows = model_->Cardinality(right);
    inner->est_cost = 0.0;
    node->right = std::move(inner);
    node->index_edge = cand.index_edge;
  } else {
    node->right = BuildTree(cand.right);
  }
  return node;
}

}  // namespace reopt::optimizer::reference
