// QueryContext: a QuerySpec bound to storage and statistics, with the join
// graph built. One context per (query, database); reused across repeated
// plannings (perfect-(n) sweeps, threshold sweeps) so the join-graph
// connectivity tables and oracle caches amortize.
#ifndef REOPT_OPTIMIZER_QUERY_CONTEXT_H_
#define REOPT_OPTIMIZER_QUERY_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/kernel.h"
#include "plan/join_graph.h"
#include "plan/query_spec.h"
#include "stats/stats_catalog.h"
#include "storage/catalog.h"

namespace reopt::optimizer {

class QueryContext {
 public:
  /// Validates and binds `query`: all tables exist, all column references
  /// are in range, all join edges connect INT64 columns, and the join graph
  /// is connected. The spec/catalogs must outlive the context.
  static common::Result<std::unique_ptr<QueryContext>> Bind(
      const plan::QuerySpec* query, const storage::Catalog* catalog,
      const stats::StatsCatalog* stats_catalog);

  const plan::QuerySpec& query() const { return *query_; }
  const plan::JoinGraph& graph() const { return *graph_; }
  const exec::BoundRelations& bound() const { return bound_; }

  /// One join edge with its endpoint relations pre-resolved to single-bit
  /// masks. The planner's ConsiderJoin and the estimator's peel recursion
  /// walk this table with two bit tests per edge instead of allocating a
  /// QuerySpec::JoinsBetween vector per call.
  struct BoundEdge {
    const plan::JoinEdge* edge;
    uint64_t left_bit;
    uint64_t right_bit;
  };
  /// All join edges in spec order.
  const std::vector<BoundEdge>& join_edges() const { return join_edges_; }

  /// Filters on relation `rel`, in spec order (same contents as
  /// query().FiltersFor(rel), precomputed once at bind).
  const std::vector<const plan::ScanPredicate*>& filters_for(int rel) const {
    return filters_for_[static_cast<size_t>(rel)];
  }

  const storage::Table& table(int rel) const { return bound_.table(rel); }
  /// Statistics for relation `rel`'s table; nullptr if never analyzed.
  const stats::TableStats* table_stats(int rel) const {
    return rel_stats_[static_cast<size_t>(rel)];
  }
  /// Column statistics behind a column reference; nullptr if unavailable.
  const stats::ColumnStats* column_stats(const plan::ColumnRef& ref) const {
    const stats::TableStats* ts = table_stats(ref.rel);
    if (ts == nullptr ||
        ref.col >= static_cast<int>(ts->columns.size())) {
      return nullptr;
    }
    return &ts->column(ref.col);
  }

 private:
  QueryContext() = default;

  const plan::QuerySpec* query_ = nullptr;
  std::unique_ptr<plan::JoinGraph> graph_;
  exec::BoundRelations bound_;
  std::vector<const stats::TableStats*> rel_stats_;
  std::vector<BoundEdge> join_edges_;
  std::vector<std::vector<const plan::ScanPredicate*>> filters_for_;
};

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_QUERY_CONTEXT_H_
