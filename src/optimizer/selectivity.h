// PostgreSQL-style selectivity estimation. This module embodies exactly
// the simplifying assumptions the paper blames for catastrophic plans:
//   * independence across predicates (selectivities multiply),
//   * uniformity outside the MCV list,
//   * join selectivity 1/max(ndv) from *base-table* statistics,
//   * fixed defaults for unestimatable predicates (un-anchored LIKE).
#ifndef REOPT_OPTIMIZER_SELECTIVITY_H_
#define REOPT_OPTIMIZER_SELECTIVITY_H_

#include "optimizer/query_context.h"
#include "plan/query_spec.h"
#include "stats/column_stats.h"

namespace reopt::optimizer {

/// Default selectivities used when statistics cannot answer (PostgreSQL's
/// DEFAULT_EQ_SEL / DEFAULT_MATCH_SEL / DEFAULT_INEQ_SEL analogues).
inline constexpr double kDefaultEqSel = 0.005;
inline constexpr double kDefaultMatchSel = 0.005;
inline constexpr double kDefaultRangeSel = 0.3333;

/// Selectivity floor/ceiling applied to every estimate.
inline constexpr double kMinSel = 1e-9;

/// Estimated fraction of rows satisfying one filter predicate.
/// `stats` may be null (falls back to defaults).
double EstimateFilterSelectivity(const plan::ScanPredicate& pred,
                                 const stats::ColumnStats* stats);

/// Estimated selectivity of one equi-join edge, from base-table column
/// statistics on both sides: (1-nullfrac_l)(1-nullfrac_r) / max(ndv_l,
/// ndv_r) — PostgreSQL's eqjoinsel without MCV refinement.
double EstimateJoinEdgeSelectivity(const plan::JoinEdge& edge,
                                   const QueryContext& ctx);

/// Selectivity of an equality match against a specific value.
double EqualitySelectivity(const common::Value& value,
                           const stats::ColumnStats* stats);

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_SELECTIVITY_H_
