#include "optimizer/planner.h"

#include <algorithm>
#include <utility>

#include "optimizer/cost_formulas.h"
#include "optimizer/selectivity.h"

namespace reopt::optimizer {

common::Result<PlannerResult> Planner::Plan() {
  best_.clear();
  fresh_paths_ = 0;
  const plan::QuerySpec& query = ctx_->query();
  best_.reserve(64);
  int64_t estimates_before = model_->num_estimates();

  for (int rel = 0; rel < query.num_relations(); ++rel) {
    PlanBaseRelation(rel);
  }
  if (query.num_relations() > 1) {
    // Csg-cmp pairs are produced grouped by ascending union, so both sides'
    // best plans exist when a pair is considered.
    for (const plan::CsgCmpPair& pair : ctx_->graph().ConnectedPairs()) {
      ConsiderJoin(pair.left, pair.right);
      ConsiderJoin(pair.right, pair.left);
    }
  }

  return Finish(model_->num_estimates() - estimates_before, fresh_paths_);
}

common::Result<PlannerResult> Planner::PlanIncremental(
    const PlanMemo& prev, const MemoTranslation& t) {
  const plan::QuerySpec& query = ctx_->query();
  const int n = query.num_relations();

  // ---- Validation (no state is touched until the carry-over is known to
  // be sound; a failed check falls back to from-scratch DP). -------------
  auto fallback = [this]() { return Plan(); };
  if (!t.valid || prev.empty() || t.temp_rel < 0 || t.temp_rel >= n ||
      static_cast<int>(t.rel_remap.size()) < 1) {
    return fallback();
  }
  const uint64_t temp_bit = uint64_t{1} << t.temp_rel;
  const uint64_t old_mat = t.old_materialized.bits();
  int64_t estimates_before = model_->num_estimates();

  // The remap must send every surviving old relation to a distinct new
  // relation other than the temp, and every materialized one to -1.
  uint64_t seen_targets = 0;
  int survivors = 0;
  for (size_t r = 0; r < t.rel_remap.size(); ++r) {
    int to = t.rel_remap[r];
    bool materialized = (old_mat >> r) & 1;
    if (materialized != (to < 0)) return fallback();
    if (to < 0) continue;
    if (to >= n || to == t.temp_rel ||
        ((seen_targets >> to) & 1) != 0) {
      return fallback();
    }
    seen_targets |= uint64_t{1} << to;
    ++survivors;
  }
  if (survivors != n - 1) return fallback();

  // Old subset bits -> new subset bits for survivor-only subsets.
  auto remap_bits = [&t](uint64_t bits) {
    uint64_t out = 0;
    while (bits != 0) {
      int r = __builtin_ctzll(bits);
      bits &= bits - 1;
      out |= uint64_t{1} << t.rel_remap[static_cast<size_t>(r)];
    }
    return out;
  };

  // ---- Carry (reversible: the model is not touched until every check
  // has passed, so a fallback can still run a clean from-scratch DP). ----
  best_.clear();
  fresh_paths_ = 0;
  best_.reserve(prev.best.size() * 2);
  int64_t carried_paths = 0;
  for (const auto& [bits, cand] : prev.best) {
    if (bits & old_mat) continue;  // dropped: estimate changed
    PlanCand carried = cand;
    if (carried.index_pred != nullptr) {
      auto it = t.preds.find(carried.index_pred);
      if (it == t.preds.end()) return fallback();
      carried.index_pred = it->second;
    }
    if (carried.index_edge != nullptr) {
      auto it = t.edges.find(carried.index_edge);
      if (it == t.edges.end()) return fallback();
      carried.index_edge = it->second;
    }
    carried.left = remap_bits(carried.left);
    carried.right = remap_bits(carried.right);
    if (carried.rel >= 0) {
      carried.rel = t.rel_remap[static_cast<size_t>(carried.rel)];
    }
    best_.emplace(remap_bits(bits), carried);
    carried_paths += carried.paths;
  }

  // Shape invariant, checked while splitting the pair list: every
  // connected survivor-only subset of the NEW graph must have been
  // connected (and hence carried) before the rewrite. The rewrite only
  // ever contracts relations into the temp, so a violation means the
  // graph changed shape some other way — re-plan from scratch.
  pair_scratch_.clear();
  for (const plan::CsgCmpPair& pair : ctx_->graph().ConnectedPairs()) {
    uint64_t u = pair.left.bits() | pair.right.bits();
    if (u & temp_bit) {
      pair_scratch_.push_back(&pair);
    } else if (best_.find(u) == best_.end()) {
      return fallback();
    }
  }

  // ---- Commit: seed the model with the carried estimates (counting them
  // exactly like fresh computations — the simulated planner re-estimates
  // every round), then run the DP over temp-containing subsets only. -----
  model_->ReserveEstimates(best_.size() + pair_scratch_.size() + 1);
  for (const auto& [bits, cand] : best_) {
    model_->SeedEstimate(plan::RelSet(bits), cand.rows);
  }
  PlanBaseRelation(t.temp_rel);
  for (const plan::CsgCmpPair* pair : pair_scratch_) {
    ConsiderJoin(pair->left, pair->right);
    ConsiderJoin(pair->right, pair->left);
  }

  auto result = Finish(model_->num_estimates() - estimates_before,
                       carried_paths + fresh_paths_);
  if (result.ok()) result.value().used_incremental = true;
  return result;
}

common::Result<PlannerResult> Planner::PlanFromMemo(const PlanMemo& memo) {
  uint64_t all = ctx_->query().AllRelations().bits();
  if (memo.best.count(all) == 0) return Plan();
  best_ = memo.best;
  fresh_paths_ = 0;
  model_->ReserveEstimates(best_.size());
  for (const auto& [bits, cand] : best_) {
    model_->SeedEstimate(plan::RelSet(bits), cand.rows);
  }
  return Finish(memo.num_estimates, memo.num_paths);
}

PlanMemo Planner::TakeMemo() {
  PlanMemo memo;
  memo.best = std::move(best_);
  memo.num_estimates = memo_estimates_;
  memo.num_paths = memo_paths_;
  best_.clear();
  return memo;
}

common::Result<PlannerResult> Planner::Finish(int64_t num_estimates,
                                              int64_t num_paths) {
  const plan::QuerySpec& query = ctx_->query();
  uint64_t all = query.AllRelations().bits();
  auto it = best_.find(all);
  if (it == best_.end()) {
    return common::Status::Internal(
        "DP found no plan for the full relation set (disconnected graph?)");
  }

  PlannerResult result;
  plan::PlanNodePtr tree = BuildTree(all);
  if (options_.add_aggregate) {
    auto agg = std::make_unique<plan::PlanNode>();
    agg->op = plan::PlanOp::kAggregate;
    agg->rels = query.AllRelations();
    agg->est_rows = 1.0;
    agg->est_cost =
        tree->est_cost + AggregateCost(params_, tree->est_rows,
                                       static_cast<int>(query.outputs.size()));
    agg->left = std::move(tree);
    result.root = std::move(agg);
  } else {
    result.root = std::move(tree);
  }

  result.num_estimates = num_estimates;
  result.num_paths = num_paths;
  result.planning_cost_units =
      static_cast<double>(result.num_estimates) *
          params_.plan_cost_per_estimate +
      static_cast<double>(result.num_paths) * params_.plan_cost_per_path;
  memo_estimates_ = num_estimates;
  memo_paths_ = num_paths;
  return result;
}

void Planner::PlanBaseRelation(int rel) {
  const storage::Table& table = ctx_->table(rel);
  const stats::TableStats* ts = ctx_->table_stats(rel);
  double table_rows = ts != nullptr
                          ? ts->row_count
                          : static_cast<double>(table.num_rows());
  const std::vector<const plan::ScanPredicate*>& filters =
      ctx_->filters_for(rel);
  double out_rows = model_->Cardinality(plan::RelSet::Single(rel));

  PlanCand cand;
  cand.op = plan::PlanOp::kSeqScan;
  cand.rel = rel;
  cand.rows = out_rows;
  cand.cost = SeqScanCost(params_, table_rows,
                          static_cast<int>(filters.size()), out_rows);

  if (options_.enable_index_scan) {
    // Try answering one equality/IN filter with a hash index.
    for (const plan::ScanPredicate* pred : filters) {
      bool indexable =
          (pred->kind == plan::ScanPredicate::Kind::kCompare &&
           pred->op == plan::CompareOp::kEq) ||
          pred->kind == plan::ScanPredicate::Kind::kIn;
      if (!indexable) continue;
      if (table.FindIndex(pred->column.col) == nullptr) continue;
      const stats::ColumnStats* cs = ctx_->column_stats(pred->column);
      double index_rows =
          table_rows * EstimateFilterSelectivity(*pred, cs);
      double cost =
          IndexScanCost(params_, index_rows,
                        static_cast<int>(filters.size()) - 1, out_rows);
      if (cost < cand.cost) {
        cand.op = plan::PlanOp::kIndexScan;
        cand.cost = cost;
        cand.index_pred = pred;
      }
    }
  }
  cand.paths = 1;
  best_[plan::RelSet::Single(rel).bits()] = cand;
  ++fresh_paths_;
}

void Planner::ConsiderJoin(plan::RelSet outer, plan::RelSet inner) {
  auto outer_it = best_.find(outer.bits());
  auto inner_it = best_.find(inner.bits());
  if (outer_it == best_.end() || inner_it == best_.end()) return;
  const PlanCand& outer_cand = outer_it->second;
  const PlanCand& inner_cand = inner_it->second;

  plan::RelSet all = outer.Union(inner);
  double out_rows = model_->Cardinality(all);
  // Connecting edges off the precomputed adjacency table; the scratch
  // vector is reused across calls, so steady-state plans allocate nothing
  // here.
  edge_scratch_.clear();
  for (const QueryContext::BoundEdge& be : ctx_->join_edges()) {
    bool crosses =
        ((be.left_bit & outer.bits()) && (be.right_bit & inner.bits())) ||
        ((be.left_bit & inner.bits()) && (be.right_bit & outer.bits()));
    if (crosses) edge_scratch_.push_back(be.edge);
  }
  const std::vector<const plan::JoinEdge*>& edges = edge_scratch_;
  REOPT_CHECK_MSG(!edges.empty(), "csg-cmp pair without connecting edge");

  // The union's entry is created on the first candidate (default cost is
  // infinity, so the first keep always wins); `paths` accumulates across
  // winners and losers alike. unordered_map references are stable, so the
  // pointer survives any inserts best_ might see elsewhere.
  PlanCand* entry = nullptr;
  auto keep_if_better = [&](const PlanCand& cand) {
    if (entry == nullptr) entry = &best_[all.bits()];
    int64_t paths = entry->paths + 1;
    if (cand.cost < entry->cost) *entry = cand;
    entry->paths = paths;
    ++fresh_paths_;
  };

  double child_cost = outer_cand.cost + inner_cand.cost;

  if (options_.enable_hash_join) {
    // Convention: left child = build side. Building on `inner` here; the
    // symmetric call covers building on `outer`.
    PlanCand cand;
    cand.op = plan::PlanOp::kHashJoin;
    cand.left = inner.bits();
    cand.right = outer.bits();
    cand.rows = out_rows;
    cand.cost = child_cost + HashJoinCost(params_, inner_cand.rows,
                                          outer_cand.rows, out_rows);
    keep_if_better(cand);
  }

  if (options_.enable_nested_loop) {
    PlanCand cand;
    cand.op = plan::PlanOp::kNestedLoopJoin;
    cand.left = outer.bits();
    cand.right = inner.bits();
    cand.rows = out_rows;
    cand.cost = child_cost + NestedLoopJoinCost(params_, outer_cand.rows,
                                                inner_cand.rows, out_rows);
    keep_if_better(cand);
  }

  if (options_.enable_index_nested_loop && inner.count() == 1) {
    int inner_rel = inner.Lowest();
    const storage::Table& inner_table = ctx_->table(inner_rel);
    const stats::TableStats* its = ctx_->table_stats(inner_rel);
    double inner_table_rows =
        its != nullptr ? its->row_count
                       : static_cast<double>(inner_table.num_rows());
    int num_inner_filters =
        static_cast<int>(ctx_->filters_for(inner_rel).size());
    for (const plan::JoinEdge* edge : edges) {
      common::ColumnIdx inner_col =
          edge->left.rel == inner_rel ? edge->left.col : edge->right.col;
      if (inner_table.FindIndex(inner_col) == nullptr) continue;
      // Index matches before inner filters / residual edges.
      double match_rows = outer_cand.rows * inner_table_rows *
                          EstimateJoinEdgeSelectivity(*edge, *ctx_);
      PlanCand cand;
      cand.op = plan::PlanOp::kIndexNestedLoopJoin;
      cand.left = outer.bits();
      cand.right = inner.bits();
      cand.rows = out_rows;
      cand.index_edge = edge;
      cand.cost =
          outer_cand.cost +  // inner side is probed, not scanned
          IndexNestedLoopJoinCost(
              params_, outer_cand.rows, match_rows,
              static_cast<int>(edges.size()) - 1 + num_inner_filters,
              out_rows);
      keep_if_better(cand);
    }
  }
}

plan::PlanNodePtr Planner::BuildTree(uint64_t bits) const {
  auto it = best_.find(bits);
  REOPT_CHECK_MSG(it != best_.end(), "missing DP entry during rebuild");
  const PlanCand& cand = it->second;

  auto node = std::make_unique<plan::PlanNode>();
  node->op = cand.op;
  node->rels = plan::RelSet(bits);
  node->est_rows = cand.rows;
  node->est_cost = cand.cost;

  if (cand.op == plan::PlanOp::kSeqScan ||
      cand.op == plan::PlanOp::kIndexScan) {
    node->scan_rel = cand.rel;
    node->filters = ctx_->filters_for(cand.rel);
    node->index_pred = cand.index_pred;
    return node;
  }

  plan::RelSet left(cand.left);
  plan::RelSet right(cand.right);
  node->edges = ctx_->query().JoinsBetween(left, right);
  node->left = BuildTree(cand.left);
  if (cand.op == plan::PlanOp::kIndexNestedLoopJoin) {
    // The inner side is described by a scan node but executed via index
    // probes; its filters are applied per match.
    int inner_rel = right.Lowest();
    auto inner = std::make_unique<plan::PlanNode>();
    inner->op = plan::PlanOp::kSeqScan;
    inner->rels = right;
    inner->scan_rel = inner_rel;
    inner->filters = ctx_->filters_for(inner_rel);
    inner->est_rows = model_->Cardinality(right);
    inner->est_cost = 0.0;
    node->right = std::move(inner);
    node->index_edge = cand.index_edge;
  } else {
    node->right = BuildTree(cand.right);
  }
  return node;
}

}  // namespace reopt::optimizer
