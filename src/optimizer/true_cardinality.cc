#include "optimizer/true_cardinality.h"

#include "common/check.h"
#include "exec/kernel.h"

namespace reopt::optimizer {

double TrueCardinalityOracle::True(plan::RelSet set) {
  common::MutexLock lock(&mu_);
  return TrueLocked(set);
}

double TrueCardinalityOracle::TrueLocked(plan::RelSet set) {
  REOPT_CHECK(!set.empty());
  auto it = cache_.find(set.bits());
  if (it != cache_.end()) return it->second;
  double count = Compute(set);
  cache_[set.bits()] = count;
  ++num_computed_;
  return count;
}

void TrueCardinalityOracle::ReleaseScratch() {
  common::MutexLock lock(&mu_);
  filtered_.clear();
  weights_.clear();
}

void TrueCardinalityOracle::Preload(const std::map<uint64_t, double>& counts) {
  common::MutexLock lock(&mu_);
  for (const auto& [bits, count] : counts) cache_[bits] = count;
}

double TrueCardinalityOracle::Compute(plan::RelSet set) {
  // Disconnected sets multiply component counts (Cartesian semantics).
  const plan::JoinGraph& graph = ctx_->graph();
  double product = 1.0;
  plan::RelSet remaining = set;
  while (!remaining.empty()) {
    plan::RelSet component = plan::RelSet::Single(remaining.Lowest());
    while (true) {
      plan::RelSet grow = graph.NeighborsOf(component).Intersect(remaining);
      if (grow.empty()) break;
      component = component.Union(grow);
    }
    if (component == set) return ComputeConnected(set);
    product *= TrueLocked(component);
    remaining = remaining.Minus(component);
    if (product == 0.0) return 0.0;
  }
  return product;
}

double TrueCardinalityOracle::ComputeConnected(plan::RelSet set) {
  if (set.count() == 1) {
    return static_cast<double>(FilteredRows(set.Lowest()).size());
  }
  if (IsTreeSubset(set)) {
    return FactorizedCount(set);
  }
  // Cyclic subset: exact hash-join materialization.
  return exec::ExactJoinCount(ctx_->query(), set, ctx_->bound());
}

bool TrueCardinalityOracle::IsTreeSubset(plan::RelSet set) const {
  int edges = 0;
  for (const plan::JoinEdge& e : ctx_->query().joins) {
    if (set.ContainsAll(e.Relations())) ++edges;
  }
  return edges == set.count() - 1;
}

const std::vector<common::RowIdx>& TrueCardinalityOracle::FilteredRows(
    int rel) {
  if (filtered_.size() < static_cast<size_t>(ctx_->query().num_relations())) {
    filtered_.resize(static_cast<size_t>(ctx_->query().num_relations()));
  }
  auto& slot = filtered_[static_cast<size_t>(rel)];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<common::RowIdx>>(exec::FilterScan(
        ctx_->table(rel), ctx_->query().FiltersFor(rel)));
  }
  return *slot;
}

namespace {

/// One child edge of `rel` within a subtree: the neighbor relation, the
/// column of `rel` on this edge, and the neighbor's key column.
struct ChildEdge {
  int child;
  common::ColumnIdx my_col;
  common::ColumnIdx child_col;
  plan::RelSet child_subtree;
};

// Component of `within` containing `start` (graph restricted to `within`).
plan::RelSet ComponentOf(const plan::JoinGraph& graph, int start,
                         plan::RelSet within) {
  plan::RelSet component = plan::RelSet::Single(start);
  while (true) {
    plan::RelSet grow = graph.NeighborsOf(component).Intersect(within);
    if (grow.empty()) break;
    component = component.Union(grow);
  }
  return component;
}

// Child edges of `rel` inside `subtree` (which contains rel), excluding the
// edge back to `parent` (-1 for the root).
std::vector<ChildEdge> ChildEdgesOf(const QueryContext& ctx, int rel,
                                    plan::RelSet subtree, int parent) {
  std::vector<ChildEdge> out;
  plan::RelSet rest = subtree.Without(rel);
  for (const plan::JoinEdge& e : ctx.query().joins) {
    int other;
    common::ColumnIdx my_col;
    common::ColumnIdx other_col;
    if (e.left.rel == rel) {
      other = e.right.rel;
      my_col = e.left.col;
      other_col = e.right.col;
    } else if (e.right.rel == rel) {
      other = e.left.rel;
      my_col = e.right.col;
      other_col = e.left.col;
    } else {
      continue;
    }
    if (other == parent || !subtree.Contains(other)) continue;
    ChildEdge ce;
    ce.child = other;
    ce.my_col = my_col;
    ce.child_col = other_col;
    ce.child_subtree = ComponentOf(ctx.graph(), other, rest);
    out.push_back(ce);
  }
  return out;
}

}  // namespace

double TrueCardinalityOracle::FactorizedCount(plan::RelSet set) {
  int root = set.Lowest();
  std::vector<ChildEdge> children = ChildEdgesOf(*ctx_, root, set, -1);
  // Resolve child weight maps first (SubtreeWeights may recurse and we hold
  // pointers into the memo map, which is node-stable).
  std::vector<const WeightMap*> maps;
  maps.reserve(children.size());
  for (const ChildEdge& ce : children) {
    maps.push_back(
        &SubtreeWeights(ce.child, ce.child_col, ce.child_subtree, root));
  }
  // Per-child key columns resolved once; the row loop reads raw spans.
  const storage::Table& table = ctx_->table(root);
  std::vector<storage::ColumnView> cols;
  cols.reserve(children.size());
  for (const ChildEdge& ce : children) {
    cols.push_back(table.column(ce.my_col).View());
  }
  double total = 0.0;
  for (common::RowIdx row : FilteredRows(root)) {
    double w = 1.0;
    for (size_t i = 0; i < children.size() && w != 0.0; ++i) {
      if (cols[i].IsNull(row)) {
        w = 0.0;
        break;
      }
      auto it = maps[i]->find(cols[i].ints[static_cast<size_t>(row)]);
      w = it == maps[i]->end() ? 0.0 : w * it->second;
    }
    total += w;
  }
  return total;
}

const TrueCardinalityOracle::WeightMap& TrueCardinalityOracle::SubtreeWeights(
    int rel, common::ColumnIdx key_col, plan::RelSet subtree, int parent_rel) {
  auto key = std::make_tuple(rel, key_col, subtree.bits());
  auto it = weights_.find(key);
  if (it != weights_.end()) return *it->second;

  std::vector<ChildEdge> children =
      ChildEdgesOf(*ctx_, rel, subtree, parent_rel);
  std::vector<const WeightMap*> maps;
  maps.reserve(children.size());
  for (const ChildEdge& ce : children) {
    maps.push_back(
        &SubtreeWeights(ce.child, ce.child_col, ce.child_subtree, rel));
  }

  auto result = std::make_unique<WeightMap>();
  const storage::Table& table = ctx_->table(rel);
  const storage::ColumnView key_column = table.column(key_col).View();
  std::vector<storage::ColumnView> cols;
  cols.reserve(children.size());
  for (const ChildEdge& ce : children) {
    cols.push_back(table.column(ce.my_col).View());
  }
  for (common::RowIdx row : FilteredRows(rel)) {
    if (key_column.IsNull(row)) continue;
    double w = 1.0;
    for (size_t i = 0; i < children.size() && w != 0.0; ++i) {
      if (cols[i].IsNull(row)) {
        w = 0.0;
        break;
      }
      auto cit = maps[i]->find(cols[i].ints[static_cast<size_t>(row)]);
      w = cit == maps[i]->end() ? 0.0 : w * cit->second;
    }
    if (w != 0.0) (*result)[key_column.ints[static_cast<size_t>(row)]] += w;
  }

  const WeightMap& ref = *result;
  weights_[key] = std::move(result);
  return ref;
}

}  // namespace reopt::optimizer
