// Operator cost formulas, used twice: by the optimizer with *estimated*
// cardinalities (plan selection) and by the executor with *actual*
// cardinalities (runtime charging / simulated time). Header-only pure
// functions so the executor does not link against the optimizer.
#ifndef REOPT_OPTIMIZER_COST_FORMULAS_H_
#define REOPT_OPTIMIZER_COST_FORMULAS_H_

#include "optimizer/cost_params.h"

namespace reopt::optimizer {

/// Full scan of `table_rows` rows evaluating `num_filters` predicates per
/// row, emitting `out_rows`.
inline double SeqScanCost(const CostParams& p, double table_rows,
                          int num_filters, double out_rows) {
  return p.PagesFor(table_rows) * p.seq_page_cost +
         table_rows * (p.cpu_tuple_cost +
                       static_cast<double>(num_filters) * p.cpu_operator_cost) +
         out_rows * p.cpu_tuple_cost;
}

/// Hash-index lookup answering an equality/IN predicate that matches
/// `index_rows` rows, with `num_residual` further predicates per match and
/// `out_rows` survivors.
inline double IndexScanCost(const CostParams& p, double index_rows,
                            int num_residual, double out_rows) {
  return 2.0 * p.cpu_operator_cost  // hash probe
         + p.PagesFor(index_rows) * p.random_page_cost +
         index_rows * (p.cpu_index_tuple_cost +
                       static_cast<double>(num_residual) * p.cpu_operator_cost) +
         out_rows * p.cpu_tuple_cost;
}

/// Hash join: build on `build_rows`, probe with `probe_rows`, emit
/// `out_rows`.
inline double HashJoinCost(const CostParams& p, double build_rows,
                           double probe_rows, double out_rows) {
  return build_rows *
             (p.hash_build_factor * p.cpu_operator_cost + p.cpu_tuple_cost) +
         probe_rows * p.hash_probe_factor * p.cpu_operator_cost +
         out_rows * p.cpu_tuple_cost;
}

/// Nested-loop join with a materialized inner: every outer tuple is
/// compared against every inner tuple. This is the operator that turns a
/// two-orders-of-magnitude cardinality underestimate into a catastrophic
/// plan (paper Sec. IV-D, query 18a).
inline double NestedLoopJoinCost(const CostParams& p, double outer_rows,
                                 double inner_rows, double out_rows) {
  return inner_rows * p.cpu_tuple_cost  // materialize inner once
         + outer_rows * inner_rows * p.cpu_operator_cost +
         out_rows * p.cpu_tuple_cost;
}

/// Index nested-loop join: one hash-index probe per outer tuple plus
/// per-match work; `match_rows` are index matches before residual edges,
/// `out_rows` after.
inline double IndexNestedLoopJoinCost(const CostParams& p, double outer_rows,
                                      double match_rows, int num_residual,
                                      double out_rows) {
  return outer_rows * (2.0 * p.cpu_operator_cost +
                       0.25 * p.random_page_cost)  // probe + fetch
         + match_rows * (p.cpu_index_tuple_cost +
                         static_cast<double>(num_residual) * p.cpu_operator_cost) +
         out_rows * p.cpu_tuple_cost;
}

/// MIN() aggregation over `in_rows` with `num_outputs` aggregates.
inline double AggregateCost(const CostParams& p, double in_rows,
                            int num_outputs) {
  return in_rows * static_cast<double>(num_outputs) * p.cpu_operator_cost +
         p.cpu_tuple_cost;
}

/// Materializing `rows` x `num_cols` into a temp table (the re-optimizer's
/// CREATE TEMP TABLE ... AS SELECT), including ANALYZE of the result.
inline double TempWriteCost(const CostParams& p, double rows, int num_cols) {
  return rows * static_cast<double>(num_cols) * p.temp_write_cost +
         p.PagesFor(rows) * p.seq_page_cost;
}

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_COST_FORMULAS_H_
