// Cost-model parameters, mirroring PostgreSQL's planner GUCs (Section II-A
// of the paper discusses how these are machine- and workload-dependent and
// hard to tune). The same parameters drive both the optimizer's cost
// estimates (fed *estimated* cardinalities) and the runtime charge model
// (fed *actual* cardinalities) — so a plan's charged execution time is
// exactly what the optimizer would have predicted had its cardinalities
// been right. That makes cardinality error the only source of bad plans,
// which is the regime the paper isolates.
#ifndef REOPT_OPTIMIZER_COST_PARAMS_H_
#define REOPT_OPTIMIZER_COST_PARAMS_H_

namespace reopt::optimizer {

struct CostParams {
  // Per-page I/O costs. All data is cached in the paper's setup, but
  // PostgreSQL still charges page costs; we keep them for fidelity.
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  // Per-tuple CPU costs.
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  // Rows per storage page (our columns are in memory; this models the
  // paper's fully-cached tables).
  double rows_per_page = 100.0;
  // Hash join: per-build-row and per-probe-row multipliers over
  // cpu_operator_cost (hashing is ~2 ops).
  double hash_build_factor = 2.0;
  double hash_probe_factor = 2.0;
  // Temp-table materialization: per-row-per-column write cost (the
  // paper's re-optimization scheme pays full materialization of
  // intermediates; writes are in-memory columnar appends, roughly half a
  // cpu_tuple_cost per column).
  double temp_write_cost = 0.005;
  // Planning charges (simulated planning time): per cardinality estimate
  // and per (join pair, physical operator) costed.
  double plan_cost_per_estimate = 0.25;
  double plan_cost_per_path = 0.05;

  /// Pages occupied by `rows` tuples.
  double PagesFor(double rows) const {
    double pages = rows / rows_per_page;
    return pages < 1.0 ? 1.0 : pages;
  }
};

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_COST_PARAMS_H_
