// Cardinality models: the planner asks one of these for the estimated row
// count of every relation subset it considers. Swapping the model is the
// paper's experimental lever:
//   * EstimatorModel      — PostgreSQL-style estimates (the baseline),
//   * PerfectNModel       — oracle for joins of <= n tables, estimator
//                           extrapolation above (Sec. III perfect-(n)),
//   * InjectedModel       — per-subset overrides on top of the estimator
//                           (Sec. IV-E LEO-style iterative correction),
//   * LearnedModel        — AQO-style kNN predictions from a shared
//                           CardinalityKnowledgeBase fed by re-opt
//                           feedback, estimator fallback on a miss.
// Estimates are memoized per subset; the per-size call counts reproduce
// Table I.
#ifndef REOPT_OPTIMIZER_CARDINALITY_MODEL_H_
#define REOPT_OPTIMIZER_CARDINALITY_MODEL_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "optimizer/query_context.h"
#include "optimizer/true_cardinality.h"
#include "plan/rel_set.h"

namespace reopt::optimizer {

class CardinalityKnowledgeBase;

class CardinalityModel {
 public:
  explicit CardinalityModel(const QueryContext* ctx) : ctx_(ctx) {}
  virtual ~CardinalityModel() = default;

  /// Estimated row count of joining `set` (filters + internal edges
  /// applied). Memoized; clamped to >= 1 row like PostgreSQL.
  double Cardinality(plan::RelSet set);

  /// Distinct subsets estimated so far, total and grouped by subset size
  /// (Table I's "number of estimates on joins of N tables").
  int64_t num_estimates() const { return num_estimates_; }
  std::map<int, int64_t> estimates_by_size() const;

  /// Seeds the memo with a known estimate for `set`, counting it exactly as
  /// if this model had just computed it. Used when the planner carries DP
  /// entries across re-optimization rounds or replays a session-cached
  /// memo: the *simulated* accounting (num_estimates, estimates_by_size,
  /// and hence planning_cost_units) must match a from-scratch re-plan —
  /// the paper's PostgreSQL re-plans every round — while the recomputation
  /// itself is skipped. No-op on an already-memoized subset.
  void SeedEstimate(plan::RelSet set, double rows);
  /// Pre-sizes the memo before a bulk SeedEstimate pass.
  void ReserveEstimates(size_t n) { cache_.reserve(n); }

  /// Rebinds the model to a new context after a re-optimization rewrite
  /// renumbered the relations, clearing the estimate memo (the counters
  /// keep accumulating; planner results report per-round deltas). `oracle`
  /// is the new context's true-cardinality oracle; models that do not
  /// consult one ignore it.
  virtual void Rebind(const QueryContext* ctx, TrueCardinalityOracle* oracle);

 protected:
  virtual double Compute(plan::RelSet set) = 0;

  /// A subset of `set` whose cardinality the model knows exactly (injected
  /// or oracle-backed). PeelEstimate avoids peeling its members so the
  /// known value anchors the recursion and corrections propagate upward —
  /// mirroring how PostgreSQL derives a join rel's size from its input
  /// rels' (possibly corrected) sizes. Empty = no anchor.
  virtual plan::RelSet AnchorSubset(plan::RelSet set) const {
    (void)set;
    return plan::RelSet();
  }

  /// Default System-R style estimate: peel one relation r off `set` (the
  /// highest-numbered one keeping the rest connected, preferring relations
  /// outside AnchorSubset()), then
  ///   |set| = |set \ r| * |r| * prod(selectivity of edges r <-> rest).
  /// Sub-cardinalities go through Cardinality(), so a subclass's corrected
  /// values propagate upward — exactly the perfect-(n) semantics.
  double PeelEstimate(plan::RelSet set);

  /// Base-relation estimate: row count times the product of filter
  /// selectivities (the independence assumption). When column-group usage
  /// is enabled and the table has CORDS-style group statistics, pairs of
  /// equality predicates on correlated columns use their joint frequency
  /// instead of the independent product.
  double BaseEstimate(int rel) const;

 public:
  /// Enables CORDS-style column-group correction (paper Sec. IV-B).
  void set_use_column_groups(bool use) { use_column_groups_ = use; }
  bool use_column_groups() const { return use_column_groups_; }

 protected:

  /// Clears the memo (after injecting overrides).
  void ClearCache() { cache_.clear(); }

  const QueryContext& ctx() const { return *ctx_; }

 private:
  const QueryContext* ctx_;
  // Hot path: the memo is consulted on every Cardinality() call and bulk
  // re-seeded every re-opt round, so it is an open hash map and the
  // per-size counters a flat array (RelSet holds at most 64 relations).
  std::unordered_map<uint64_t, double> cache_;
  int64_t num_estimates_ = 0;
  int64_t estimates_by_size_[65] = {};
  bool use_column_groups_ = false;
};

/// The default PostgreSQL-style estimator.
class EstimatorModel : public CardinalityModel {
 public:
  explicit EstimatorModel(const QueryContext* ctx) : CardinalityModel(ctx) {}

 protected:
  double Compute(plan::RelSet set) override;
};

/// Perfect-(n): true cardinalities for subsets of <= n relations, estimator
/// extrapolation above. Perfect-(0) degenerates to the plain estimator;
/// perfect-(num_relations) is a full oracle. The oracle is shared (and its
/// cache reused) across models.
class PerfectNModel : public CardinalityModel {
 public:
  PerfectNModel(const QueryContext* ctx, TrueCardinalityOracle* oracle, int n)
      : CardinalityModel(ctx), oracle_(oracle), n_(n) {}

  int n() const { return n_; }

  void Rebind(const QueryContext* ctx, TrueCardinalityOracle* oracle) override;

 protected:
  double Compute(plan::RelSet set) override;

 private:
  TrueCardinalityOracle* oracle_;
  int n_;
};

/// Estimator plus per-subset injected true values (LEO-style feedback).
/// Injected values participate in the peel recursion, so corrections to a
/// sub-join also shift every estimate above it.
class InjectedModel : public EstimatorModel {
 public:
  explicit InjectedModel(const QueryContext* ctx) : EstimatorModel(ctx) {}

  /// Overrides the estimate for exactly `set`.
  void Inject(plan::RelSet set, double cardinality);
  /// Rebinding drops the injected corrections along with the memo — they
  /// are keyed on the old context's relation numbering.
  void Rebind(const QueryContext* ctx, TrueCardinalityOracle* oracle) override;
  int64_t num_injected() const {
    return static_cast<int64_t>(overrides_.size());
  }
  bool HasInjection(plan::RelSet set) const {
    return overrides_.count(set.bits()) > 0;
  }

 protected:
  double Compute(plan::RelSet set) override;
  plan::RelSet AnchorSubset(plan::RelSet set) const override;

 private:
  std::map<uint64_t, double> overrides_;
};

/// Estimator backed by the learned knowledge base: each subset first asks
/// the base's kNN predictor (keyed by the subset's feature-space hash);
/// unknown subspaces fall back to the plain estimator computation, so a
/// LearnedModel over an empty (or absent) base is bit-identical to
/// EstimatorModel. Predictions participate in the peel recursion exactly
/// like injected corrections, so a learned sub-join size also shifts every
/// estimate above it. The base is shared and may be null (pure fallback).
class LearnedModel : public CardinalityModel {
 public:
  LearnedModel(const QueryContext* ctx, CardinalityKnowledgeBase* kb)
      : CardinalityModel(ctx), kb_(kb) {}

  /// Subsets answered by the knowledge base (vs. estimator fallback).
  int64_t num_predicted() const { return num_predicted_; }

 protected:
  double Compute(plan::RelSet set) override;

 private:
  CardinalityKnowledgeBase* kb_;
  int64_t num_predicted_ = 0;
};

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_CARDINALITY_MODEL_H_
