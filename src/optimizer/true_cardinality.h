// The true-cardinality oracle: exact row counts of sub-joins, used by
// perfect-(n) models (Sec. III), by the re-optimization trigger (Sec. V-A,
// standing in for the actual counts EXPLAIN ANALYZE reports), and by the
// LEO-style iterative-correction experiment (Sec. IV-E).
//
// Counts are computed lazily and memoized per (query, relation subset).
// Tree-shaped sub-joins (the common JOB case) are counted in time linear
// in the base data via factorized (Yannakakis-style) counting without ever
// materializing the join; cyclic subsets fall back to hash-join
// materialization.
//
// Thread safety: True(), ReleaseScratch(), Preload() and the counters are
// mutex-guarded, so one session's oracle may be shared by concurrent sweep
// workers running the same query under different configurations. The lock
// is coarse (held for the whole count computation): contention only arises
// when two workers need the *same* query's counts at the same moment, and
// the second then hits the fresh memo entry. counts() exposes the raw cache
// and is for quiescent (single-threaded) use only.
#ifndef REOPT_OPTIMIZER_TRUE_CARDINALITY_H_
#define REOPT_OPTIMIZER_TRUE_CARDINALITY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "optimizer/query_context.h"
#include "plan/rel_set.h"

namespace reopt::optimizer {

/// Per-query oracle. The context must outlive the oracle.
class TrueCardinalityOracle {
 public:
  explicit TrueCardinalityOracle(const QueryContext* ctx) : ctx_(ctx) {}

  /// Exact cardinality of joining `set` with all filters and internal join
  /// edges applied.
  double True(plan::RelSet set) EXCLUDES(mu_);

  /// Number of counts computed (excluding cache hits).
  int64_t num_computed() const EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return num_computed_;
  }
  /// Number of cached entries.
  int64_t cache_size() const EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return static_cast<int64_t>(cache_.size());
  }

  /// Releases the factorized-counting scratch memory (weight maps and
  /// filtered base rows), keeping the count cache. Call between queries.
  void ReleaseScratch() EXCLUDES(mu_);

  /// Pre-populates count cache entries (from a disk cache).
  void Preload(const std::map<uint64_t, double>& counts) EXCLUDES(mu_);
  /// Snapshot of the count cache (for a disk cache). Quiescent use only —
  /// do not call while other threads may be counting; the deliberate
  /// unlocked read is why the analysis is suppressed here.
  const std::map<uint64_t, double>& counts() const
      NO_THREAD_SAFETY_ANALYSIS {
    return cache_;
  }

 private:
  using WeightMap = std::unordered_map<int64_t, double>;

  /// True() with mu_ already held; Compute recurses through this entry so
  /// the (non-recursive) lock is taken exactly once per public call.
  double TrueLocked(plan::RelSet set) REQUIRES(mu_);
  double Compute(plan::RelSet set) REQUIRES(mu_);
  double ComputeConnected(plan::RelSet set) REQUIRES(mu_);
  /// True if every relation pair in `set` is linked by at most one edge and
  /// the edge count equals |set|-1 (a join tree).
  bool IsTreeSubset(plan::RelSet set) const;
  double FactorizedCount(plan::RelSet set) REQUIRES(mu_);
  /// Weight map of `rel`'s subtree (within `subtree`), keyed by `rel`'s
  /// value in `key_col`; `subtree` must contain `rel` and be connected.
  const WeightMap& SubtreeWeights(int rel, common::ColumnIdx key_col,
                                  plan::RelSet subtree, int parent_rel)
      REQUIRES(mu_);
  const std::vector<common::RowIdx>& FilteredRows(int rel) REQUIRES(mu_);

  const QueryContext* ctx_;
  mutable common::Mutex mu_;  // guards everything below
  int64_t num_computed_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, double> cache_ GUARDED_BY(mu_);

  // Scratch (released by ReleaseScratch): filtered base rows per relation
  // and memoized subtree weight maps keyed by (rel, key_col, subtree bits).
  std::vector<std::unique_ptr<std::vector<common::RowIdx>>> filtered_
      GUARDED_BY(mu_);
  std::map<std::tuple<int, common::ColumnIdx, uint64_t>,
           std::unique_ptr<WeightMap>>
      weights_ GUARDED_BY(mu_);
};

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_TRUE_CARDINALITY_H_
