#include "optimizer/query_context.h"

#include "common/string_util.h"

namespace reopt::optimizer {

common::Result<std::unique_ptr<QueryContext>> QueryContext::Bind(
    const plan::QuerySpec* query, const storage::Catalog* catalog,
    const stats::StatsCatalog* stats_catalog) {
  auto ctx = std::unique_ptr<QueryContext>(new QueryContext());
  ctx->query_ = query;

  if (query->relations.empty()) {
    return common::Status::InvalidArgument("query has no relations");
  }

  // Bind tables.
  for (const plan::RelationRef& ref : query->relations) {
    const storage::Table* table = catalog->FindTable(ref.table_name);
    if (table == nullptr) {
      return common::Status::NotFound("no such table: " + ref.table_name);
    }
    ctx->bound_.tables.push_back(table);
    ctx->rel_stats_.push_back(
        stats_catalog == nullptr ? nullptr
                                 : stats_catalog->Find(ref.table_name));
  }

  auto check_ref = [&](const plan::ColumnRef& ref) -> common::Status {
    if (ref.rel < 0 || ref.rel >= query->num_relations()) {
      return common::Status::InvalidArgument("column ref: bad relation");
    }
    const storage::Table& table = ctx->bound_.table(ref.rel);
    if (ref.col < 0 || ref.col >= table.num_columns()) {
      return common::Status::InvalidArgument(common::StrPrintf(
          "column ref: no column %d in %s", ref.col, table.name().c_str()));
    }
    return common::Status::OK();
  };

  for (const plan::ScanPredicate& p : query->filters) {
    REOPT_RETURN_IF_ERROR(check_ref(p.column));
  }
  for (const plan::JoinEdge& e : query->joins) {
    REOPT_RETURN_IF_ERROR(check_ref(e.left));
    REOPT_RETURN_IF_ERROR(check_ref(e.right));
    if (ctx->bound_.table(e.left.rel).schema().column(e.left.col).type !=
            common::DataType::kInt64 ||
        ctx->bound_.table(e.right.rel).schema().column(e.right.col).type !=
            common::DataType::kInt64) {
      return common::Status::InvalidArgument(
          "join edges must connect INT64 columns");
    }
  }
  for (const plan::OutputExpr& out : query->outputs) {
    REOPT_RETURN_IF_ERROR(check_ref(out.column));
  }

  // Connectivity tables for the planner hot loop: per-relation filter lists
  // and the edge-adjacency table, resolved once per bind instead of being
  // rebuilt (with a vector allocation) on every FiltersFor / JoinsBetween.
  ctx->filters_for_.resize(static_cast<size_t>(query->num_relations()));
  for (const plan::ScanPredicate& p : query->filters) {
    ctx->filters_for_[static_cast<size_t>(p.column.rel)].push_back(&p);
  }
  ctx->join_edges_.reserve(query->joins.size());
  for (const plan::JoinEdge& e : query->joins) {
    ctx->join_edges_.push_back(BoundEdge{
        &e, uint64_t{1} << e.left.rel, uint64_t{1} << e.right.rel});
  }

  ctx->graph_ = std::make_unique<plan::JoinGraph>(*query);
  if (query->num_relations() > 1 &&
      !ctx->graph_->IsConnected(query->AllRelations())) {
    return common::Status::InvalidArgument(
        "query join graph is disconnected (Cartesian products are not "
        "planned, matching the System R heritage)");
  }
  return ctx;
}

}  // namespace reopt::optimizer
