#include "optimizer/knowledge_base.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include "common/string_util.h"
#include "optimizer/selectivity.h"

namespace reopt::optimizer {
namespace {

// FNV-1a: the repo's standing choice for structural hashes (MemoKey,
// signature workload); deterministic across platforms.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixByte(uint64_t h, unsigned char b) {
  h ^= b;
  h *= kFnvPrime;
  return h;
}

uint64_t MixU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) h = MixByte(h, (v >> (i * 8)) & 0xff);
  return h;
}

uint64_t MixStr(uint64_t h, const std::string& s) {
  for (char c : s) h = MixByte(h, static_cast<unsigned char>(c));
  return MixByte(h, 0xff);  // terminator: "ab"+"c" != "a"+"bc"
}

// Structural hash of one predicate clause: which table/column it touches
// and its shape (kind + operator + IN-list arity), literal values excluded
// so constants generalize through the kNN features instead of fragmenting
// the subspace — AQO's clause hashing makes the same cut.
uint64_t ClauseHash(const std::string& table_name,
                    const plan::ScanPredicate& pred) {
  uint64_t h = kFnvOffset;
  h = MixStr(h, table_name);
  h = MixU64(h, static_cast<uint64_t>(pred.column.col));
  h = MixU64(h, static_cast<uint64_t>(pred.kind));
  h = MixU64(h, static_cast<uint64_t>(pred.op));
  h = MixU64(h, static_cast<uint64_t>(pred.in_list.size()));
  return h;
}

// Structural hash of one join edge inside the subset: both endpoints as
// (table name, column), order-normalized so a==b and b==a collide.
uint64_t EdgeHash(const std::string& left_table, int left_col,
                  const std::string& right_table, int right_col) {
  uint64_t a = MixU64(MixStr(kFnvOffset, left_table),
                      static_cast<uint64_t>(left_col));
  uint64_t b = MixU64(MixStr(kFnvOffset, right_table),
                      static_cast<uint64_t>(right_col));
  if (a > b) std::swap(a, b);
  return MixU64(MixU64(kFnvOffset, a), b);
}

// Temp tables from re-optimization rewrites (storage::Catalog::NextTempName
// generates "reopt_temp_[<ns>_]<n>") are query-local and never recur.
bool IsReoptTempTable(const std::string& name) {
  return common::StartsWith(name, "reopt_temp_");
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

bool CardinalityKnowledgeBase::FeaturesOf(const QueryContext& ctx,
                                          plan::RelSet set,
                                          SubsetFeatures* out) {
  const plan::QuerySpec& query = ctx.query();

  // Tables: sorted name multiset + cartesian row product.
  std::vector<const std::string*> tables;
  double log_cartesian = 0.0;
  for (int rel : set.Members()) {
    const std::string& name =
        query.relations[static_cast<size_t>(rel)].table_name;
    if (IsReoptTempTable(name)) return false;
    tables.push_back(&name);
    const stats::TableStats* ts = ctx.table_stats(rel);
    double rows = ts != nullptr
                      ? ts->row_count
                      : static_cast<double>(ctx.table(rel).num_rows());
    log_cartesian += std::log(std::max(1.0, rows));
  }
  std::sort(tables.begin(), tables.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  // Clauses: structure hash + marginal log-selectivity, canonically ordered
  // by (hash, selectivity) so feature positions line up across queries.
  std::vector<std::pair<uint64_t, double>> clauses;
  for (int rel : set.Members()) {
    const std::string& table_name =
        query.relations[static_cast<size_t>(rel)].table_name;
    for (const plan::ScanPredicate* pred : ctx.filters_for(rel)) {
      double sel =
          EstimateFilterSelectivity(*pred, ctx.column_stats(pred->column));
      clauses.emplace_back(ClauseHash(table_name, *pred),
                           std::log(std::max(kMinSel, sel)));
    }
  }
  std::sort(clauses.begin(), clauses.end());

  // Join edges with both endpoints inside the subset.
  std::vector<uint64_t> edges;
  const uint64_t bits = set.bits();
  for (const QueryContext::BoundEdge& be : ctx.join_edges()) {
    if ((be.left_bit & bits) == 0 || (be.right_bit & bits) == 0) continue;
    const plan::JoinEdge& edge = *be.edge;
    edges.push_back(EdgeHash(
        query.relations[static_cast<size_t>(edge.left.rel)].table_name,
        edge.left.col,
        query.relations[static_cast<size_t>(edge.right.rel)].table_name,
        edge.right.col));
  }
  std::sort(edges.begin(), edges.end());

  uint64_t fss = kFnvOffset;
  fss = MixU64(fss, tables.size());
  for (const std::string* t : tables) fss = MixStr(fss, *t);
  fss = MixU64(fss, clauses.size());
  for (const auto& [hash, sel] : clauses) fss = MixU64(fss, hash);
  fss = MixU64(fss, edges.size());
  for (uint64_t e : edges) fss = MixU64(fss, e);

  out->fss_hash = fss;
  out->log_cartesian = log_cartesian;
  out->log_selectivities.clear();
  out->log_selectivities.reserve(clauses.size());
  for (const auto& [hash, sel] : clauses) {
    (void)hash;
    out->log_selectivities.push_back(sel);
  }
  return true;
}

void CardinalityKnowledgeBase::Observe(const SubsetFeatures& features,
                                       double true_rows) {
  common::MutexLock lock(&mu_);
  ObserveLocked(features, true_rows);
}

void CardinalityKnowledgeBase::ObserveBatch(
    const std::vector<std::pair<SubsetFeatures, double>>& batch) {
  common::MutexLock lock(&mu_);
  for (const auto& [features, true_rows] : batch) {
    ObserveLocked(features, true_rows);
  }
}

void CardinalityKnowledgeBase::ObserveLocked(const SubsetFeatures& features,
                                             double true_rows) {
  if (!learning_enabled_) return;
  double target =
      std::log(std::max(1.0, true_rows)) - features.log_cartesian;
  FeatureSpace& space = spaces_[features.fss_hash];

  // Exact-duplicate features: refresh the target in place — latest truth
  // wins (re-observing a subset after the data shifted must not leave the
  // stale value voting in the kNN average).
  for (Observation& obs : space.observations) {
    if (obs.features.size() != features.log_selectivities.size()) continue;
    if (SquaredDistance(obs.features, features.log_selectivities) <=
        options_.exact_distance) {
      obs.target = target;
      ++updates_;
      return;
    }
  }

  Observation obs;
  obs.features = features.log_selectivities;
  obs.target = target;
  if (static_cast<int>(space.observations.size()) <
      options_.capacity_per_space) {
    space.observations.push_back(std::move(obs));
    ++inserts_;
  } else {
    space.observations[static_cast<size_t>(space.next_evict)] =
        std::move(obs);
    space.next_evict = (space.next_evict + 1) % options_.capacity_per_space;
    ++evictions_;
  }
}

std::optional<double> CardinalityKnowledgeBase::PredictRows(
    const SubsetFeatures& features) const {
  common::MutexLock lock(&mu_);
  ++predictions_;
  auto it = spaces_.find(features.fss_hash);
  if (it == spaces_.end()) return std::nullopt;

  // (distance, insertion index, target); index breaks distance ties
  // deterministically.
  std::vector<std::tuple<double, size_t, double>> candidates;
  const std::vector<Observation>& observations = it->second.observations;
  for (size_t i = 0; i < observations.size(); ++i) {
    const Observation& obs = observations[i];
    // A hash collision between structurally different subspaces could mix
    // feature dimensionalities; skip rather than compare apples to oranges.
    if (obs.features.size() != features.log_selectivities.size()) continue;
    candidates.emplace_back(
        SquaredDistance(obs.features, features.log_selectivities), i,
        obs.target);
  }
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end());

  ++hits_;
  double predicted_target;
  if (std::get<0>(candidates.front()) <= options_.exact_distance) {
    ++exact_hits_;
    predicted_target = std::get<2>(candidates.front());
  } else {
    size_t k = std::min(candidates.size(),
                        static_cast<size_t>(std::max(1, options_.k)));
    double weight_sum = 0.0;
    double weighted_target = 0.0;
    for (size_t i = 0; i < k; ++i) {
      double w = 1.0 / (1e-6 + std::sqrt(std::get<0>(candidates[i])));
      weight_sum += w;
      weighted_target += w * std::get<2>(candidates[i]);
    }
    predicted_target = weighted_target / weight_sum;
  }
  double rows = std::exp(predicted_target + features.log_cartesian);
  return std::clamp(rows, 1.0, 1e30);
}

void CardinalityKnowledgeBase::set_learning_enabled(bool enabled) {
  common::MutexLock lock(&mu_);
  learning_enabled_ = enabled;
}

bool CardinalityKnowledgeBase::learning_enabled() const {
  common::MutexLock lock(&mu_);
  return learning_enabled_;
}

void CardinalityKnowledgeBase::Clear() {
  common::MutexLock lock(&mu_);
  spaces_.clear();
  inserts_ = updates_ = evictions_ = 0;
  predictions_ = hits_ = exact_hits_ = 0;
}

KnowledgeBaseStats CardinalityKnowledgeBase::Stats() const {
  common::MutexLock lock(&mu_);
  KnowledgeBaseStats stats;
  stats.spaces = static_cast<int64_t>(spaces_.size());
  for (const auto& [hash, space] : spaces_) {
    (void)hash;
    stats.observations += static_cast<int64_t>(space.observations.size());
  }
  stats.inserts = inserts_;
  stats.updates = updates_;
  stats.evictions = evictions_;
  stats.predictions = predictions_;
  stats.hits = hits_;
  stats.exact_hits = exact_hits_;
  return stats;
}

}  // namespace reopt::optimizer
