// The pre-fast-path plan enumerator, retained verbatim as a correctness
// oracle and benchmark baseline (same pattern as exec::reference and
// stats::reference): System-R DP with a std::map table, per-call
// JoinsBetween/FiltersFor vector allocation, and no memo reuse of any
// kind. The optimized planner (planner.h) must produce identical plans,
// costs and accounting; tests/planner_incremental_test.cc and
// bench/perf_smoke hold it to that.
#ifndef REOPT_OPTIMIZER_PLANNER_REFERENCE_H_
#define REOPT_OPTIMIZER_PLANNER_REFERENCE_H_

#include <cstdint>
#include <map>

#include "optimizer/planner.h"

namespace reopt::optimizer::reference {

class Planner {
 public:
  Planner(const QueryContext* ctx, CardinalityModel* model,
          const CostParams& params, const PlannerOptions& options = {})
      : ctx_(ctx), model_(model), params_(params), options_(options) {}

  /// Plans the context's query from scratch. Fails only on malformed specs
  /// (bind validation catches most of those earlier).
  common::Result<PlannerResult> Plan();

 private:
  struct Cand {
    plan::PlanOp op = plan::PlanOp::kSeqScan;
    double rows = 0.0;   // estimated output rows of the subset
    double cost = 0.0;   // cumulative estimated cost
    uint64_t left = 0;   // join children (subset bits)
    uint64_t right = 0;
    int rel = -1;                                     // scans
    const plan::ScanPredicate* index_pred = nullptr;  // kIndexScan
    const plan::JoinEdge* index_edge = nullptr;       // kIndexNestedLoopJoin
  };

  void PlanBaseRelation(int rel);
  void PlanJoins(int64_t* num_paths);
  /// Considers `outer` joining `inner` (in that role order) and keeps the
  /// cheapest candidate for the union.
  void ConsiderJoin(plan::RelSet outer, plan::RelSet inner,
                    int64_t* num_paths);
  plan::PlanNodePtr BuildTree(uint64_t bits) const;

  const QueryContext* ctx_;
  CardinalityModel* model_;
  CostParams params_;
  PlannerOptions options_;
  std::map<uint64_t, Cand> best_;
};

}  // namespace reopt::optimizer::reference

#endif  // REOPT_OPTIMIZER_PLANNER_REFERENCE_H_
