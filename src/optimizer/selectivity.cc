#include "optimizer/selectivity.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace reopt::optimizer {
namespace {

double Clamp(double sel) { return std::clamp(sel, kMinSel, 1.0); }

// Range selectivity P(col <op> value) for an inequality, using MCVs plus
// histogram, scaled to non-null rows.
double RangeSelectivity(const plan::ScanPredicate& pred,
                        const stats::ColumnStats* stats) {
  if (stats == nullptr || (stats->histogram.empty() && stats->mcv.empty())) {
    return kDefaultRangeSel;
  }
  bool want_below =
      pred.op == plan::CompareOp::kLt || pred.op == plan::CompareOp::kLe;
  bool inclusive =
      pred.op == plan::CompareOp::kLe || pred.op == plan::CompareOp::kGe;

  // MCV contribution: exact check per most-common value. Size-typed loop:
  // the old `int i < mcv.size()` comparison relied on the accessor's return
  // type; iterate the underlying vector directly.
  double mcv_part = 0.0;
  double mcv_total = 0.0;
  for (size_t i = 0; i < stats->mcv.values.size(); ++i) {
    mcv_total += stats->mcv.freqs[i];
    int cmp = stats->mcv.values[i].Compare(pred.value);
    bool sat = want_below ? (inclusive ? cmp <= 0 : cmp < 0)
                          : (inclusive ? cmp >= 0 : cmp > 0);
    if (sat) mcv_part += stats->mcv.freqs[i];
  }
  // Histogram contribution for the non-MCV mass. With MCVs but no
  // histogram (every distinct value made the MCV list, or ANALYZE kept no
  // histogram), the MCVs themselves are the best evidence for how the
  // residual non-MCV mass splits around the bound — blending the blind
  // kDefaultRangeSel with exact MCV mass systematically skewed such
  // columns toward 1/3.
  double hist_frac;
  if (stats->histogram.empty()) {
    hist_frac = mcv_total > 0.0 ? mcv_part / mcv_total : kDefaultRangeSel;
  } else {
    double below = stats->histogram.FractionBelow(pred.value, inclusive);
    hist_frac = want_below ? below : 1.0 - below;
  }
  return mcv_part + stats->non_mcv_frac * hist_frac;
}

// LIKE selectivity. A pattern with a literal prefix is estimated as a
// range over [prefix, prefix~] shrunk per extra pattern segment; a pattern
// starting with a wildcard gets the fixed default — which is how
// PostgreSQL (and we) mis-estimate '%Downey%Robert%'-style predicates.
double LikeSelectivity(const std::string& pattern,
                       const stats::ColumnStats* stats) {
  size_t prefix_len = 0;
  while (prefix_len < pattern.size() && pattern[prefix_len] != '%' &&
         pattern[prefix_len] != '_') {
    ++prefix_len;
  }
  // Count literal segments after the prefix ("%abc%def" has 2).
  int extra_segments = 0;
  bool in_segment = false;
  for (size_t i = prefix_len; i < pattern.size(); ++i) {
    if (pattern[i] == '%' || pattern[i] == '_') {
      in_segment = false;
    } else if (!in_segment) {
      ++extra_segments;
      in_segment = true;
    }
  }

  if (prefix_len == 0) {
    // Un-anchored pattern: no statistics can help; fixed default shrunk a
    // little per extra literal segment.
    return kDefaultMatchSel * std::pow(0.5, std::max(0, extra_segments - 1));
  }
  if (stats == nullptr || stats->histogram.empty()) {
    return kDefaultMatchSel;
  }
  // Anchored: selectivity of prefix range, shrunk per extra segment.
  std::string prefix = pattern.substr(0, prefix_len);
  std::string upper = prefix;
  upper.push_back('\x7f');
  double range = stats->histogram.FractionBetween(
      common::Value::Str(prefix), true, common::Value::Str(upper), false);
  range *= stats->non_mcv_frac;
  // MCVs matching the prefix.
  for (size_t i = 0; i < stats->mcv.values.size(); ++i) {
    const common::Value& v = stats->mcv.values[i];
    if (v.is_string() && common::StartsWith(v.AsString(), prefix)) {
      range += stats->mcv.freqs[i];
    }
  }
  return range * std::pow(0.25, extra_segments);
}

}  // namespace

double EqualitySelectivity(const common::Value& value,
                           const stats::ColumnStats* stats) {
  if (stats == nullptr || stats->num_distinct <= 0.0) return kDefaultEqSel;
  if (auto freq = stats->mcv.Find(value)) {
    return Clamp(*freq);
  }
  // Uniformity over the non-MCV distinct values.
  if (stats->non_mcv_distinct > 0.0) {
    return Clamp(stats->non_mcv_frac / stats->non_mcv_distinct);
  }
  return Clamp(1.0 / stats->num_distinct);
}

double EstimateFilterSelectivity(const plan::ScanPredicate& pred,
                                 const stats::ColumnStats* stats) {
  using Kind = plan::ScanPredicate::Kind;
  double null_frac = stats == nullptr ? 0.0 : stats->null_frac;
  double non_null = 1.0 - null_frac;

  switch (pred.kind) {
    case Kind::kCompare:
      switch (pred.op) {
        case plan::CompareOp::kEq:
          return Clamp(EqualitySelectivity(pred.value, stats) * non_null);
        case plan::CompareOp::kNe:
          return Clamp(
              (1.0 - EqualitySelectivity(pred.value, stats)) * non_null);
        default:
          return Clamp(RangeSelectivity(pred, stats) * non_null);
      }
    case Kind::kIn: {
      double sum = 0.0;
      for (const common::Value& v : pred.in_list) {
        sum += EqualitySelectivity(v, stats);
      }
      return Clamp(sum * non_null);
    }
    case Kind::kLike:
      return Clamp(LikeSelectivity(pred.value.AsString(), stats) * non_null);
    case Kind::kNotLike:
      return Clamp(
          (1.0 - LikeSelectivity(pred.value.AsString(), stats)) * non_null);
    case Kind::kBetween: {
      if (stats == nullptr ||
          (stats->histogram.empty() && stats->mcv.empty())) {
        return Clamp(kDefaultRangeSel * kDefaultRangeSel);
      }
      double mcv_part = 0.0;
      for (size_t i = 0; i < stats->mcv.values.size(); ++i) {
        const common::Value& v = stats->mcv.values[i];
        if (v >= pred.value && v <= pred.value2) {
          mcv_part += stats->mcv.freqs[i];
        }
      }
      double hist = stats->histogram.empty()
                        ? kDefaultRangeSel
                        : stats->histogram.FractionBetween(
                              pred.value, true, pred.value2, true);
      return Clamp((mcv_part + stats->non_mcv_frac * hist) * non_null);
    }
    case Kind::kIsNull:
      return Clamp(null_frac);
    case Kind::kIsNotNull:
      return Clamp(non_null);
  }
  return kDefaultEqSel;
}

double EstimateJoinEdgeSelectivity(const plan::JoinEdge& edge,
                                   const QueryContext& ctx) {
  const stats::ColumnStats* left = ctx.column_stats(edge.left);
  const stats::ColumnStats* right = ctx.column_stats(edge.right);
  double ndv_left = left == nullptr ? 0.0 : left->num_distinct;
  double ndv_right = right == nullptr ? 0.0 : right->num_distinct;
  double ndv = std::max(ndv_left, ndv_right);
  if (ndv <= 0.0) {
    // No statistics on either side: PostgreSQL falls back to a default.
    return kDefaultEqSel;
  }
  double non_null_left = left == nullptr ? 1.0 : 1.0 - left->null_frac;
  double non_null_right = right == nullptr ? 1.0 : 1.0 - right->null_frac;
  return Clamp(non_null_left * non_null_right / ndv);
}

}  // namespace reopt::optimizer
