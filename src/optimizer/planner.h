// The plan enumerator: System-R-style dynamic programming over connected
// subgraphs (bushy trees, no Cartesian products), with access-path
// selection (seq vs hash-index scan) and join-algorithm selection (hash
// join, nested loop, index nested loop). Costs come from cost_formulas.h
// fed by the supplied CardinalityModel — the single lever all of the
// paper's experiments pull.
//
// Re-plans are the hot path of the paper's loop (plan, materialize a
// subtree, rewrite, re-plan, repeat), so the DP table is a first-class
// object: a completed PlanMemo can be replayed for the same context
// (PlanFromMemo — session-cached plans across sweep configurations) or
// carried across a re-opt rewrite (PlanIncremental — only subsets touching
// the new temp relation are re-costed; everything over surviving relations
// is translated through the rewrite's relation remap). Both replay paths
// charge the *same* simulated planning cost as a from-scratch run — the
// paper's PostgreSQL re-plans every round, so num_estimates/num_paths are
// accounted for carried entries too, via CardinalityModel::SeedEstimate —
// and fall back to from-scratch DP whenever the join-graph shape breaks
// the carry-over invariants. See docs/ARCHITECTURE.md, "Planning fast
// path".
#ifndef REOPT_OPTIMIZER_PLANNER_H_
#define REOPT_OPTIMIZER_PLANNER_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/cost_params.h"
#include "optimizer/query_context.h"
#include "plan/physical_plan.h"

namespace reopt::optimizer {

struct PlannerOptions {
  bool enable_hash_join = true;
  bool enable_nested_loop = true;
  bool enable_index_nested_loop = true;
  bool enable_index_scan = true;
  /// If true the root is an Aggregate over the join tree; otherwise the
  /// bare join tree is returned (used for temp-table subplans).
  bool add_aggregate = true;
};

/// One DP table entry: the best (cheapest) candidate found for a relation
/// subset, with `rows` the model's (clamped) cardinality estimate for it
/// and `paths` the number of candidates costed for the subset (1 for base
/// relations) — summed when entries are carried across rounds so
/// incremental accounting matches from-scratch.
struct PlanCand {
  plan::PlanOp op = plan::PlanOp::kSeqScan;
  double rows = 0.0;  // estimated output rows of the subset
  /// Cumulative estimated cost; infinity marks "no candidate kept yet".
  double cost = std::numeric_limits<double>::infinity();
  uint64_t left = 0;  // join children (subset bits)
  uint64_t right = 0;
  int64_t paths = 0;
  int rel = -1;                                     // scans
  const plan::ScanPredicate* index_pred = nullptr;  // kIndexScan
  const plan::JoinEdge* index_edge = nullptr;       // kIndexNestedLoopJoin
};

/// A completed DP table plus the accounting the from-scratch DP charged for
/// it. Owned by the caller (the re-optimizer keeps one per round in the
/// query session); immutable once taken from the planner, so sessions may
/// share memos across threads behind shared_ptr<const PlanMemo>.
struct PlanMemo {
  /// Best candidate per connected relation subset (keyed on RelSet bits).
  std::unordered_map<uint64_t, PlanCand> best;
  int64_t num_estimates = 0;
  int64_t num_paths = 0;

  bool empty() const { return best.empty(); }
};

/// How a re-opt rewrite contracted the previous round's query into the
/// current one: which old relations were materialized, where the survivors
/// moved, and where each surviving predicate/edge lives in the new spec.
/// Produced by reoptimizer::MemoTranslationFor; consumed by
/// Planner::PlanIncremental to translate carried memo entries.
struct MemoTranslation {
  bool valid = false;
  /// Old-numbering relations merged into the temp relation.
  plan::RelSet old_materialized;
  /// The temp relation's index in the new spec (appended last).
  int temp_rel = -1;
  /// Old relation -> new relation; -1 for materialized relations.
  std::vector<int> rel_remap;
  /// Surviving filter predicates / join edges, old spec -> new spec.
  std::unordered_map<const plan::ScanPredicate*, const plan::ScanPredicate*>
      preds;
  std::unordered_map<const plan::JoinEdge*, const plan::JoinEdge*> edges;
};

struct PlannerResult {
  plan::PlanNodePtr root;
  /// Simulated planning time in cost units: charged per new cardinality
  /// estimate and per join path costed. Memo replay charges exactly what a
  /// from-scratch plan would (the simulated system re-plans every round);
  /// only the wall-clock work is skipped.
  double planning_cost_units = 0.0;
  /// New (not previously memoized) estimates this planning made.
  int64_t num_estimates = 0;
  /// Join alternatives costed.
  int64_t num_paths = 0;
  /// True when PlanIncremental carried the previous round's memo (false on
  /// from-scratch planning, memo replay, and incremental fallback).
  bool used_incremental = false;
};

class Planner {
 public:
  Planner(const QueryContext* ctx, CardinalityModel* model,
          const CostParams& params, const PlannerOptions& options = {})
      : ctx_(ctx), model_(model), params_(params), options_(options) {}

  /// Plans the context's query from scratch. Fails only on malformed specs
  /// (bind validation catches most of those earlier).
  common::Result<PlannerResult> Plan();

  /// Re-plans after a re-opt rewrite, carrying every DP entry of `prev`
  /// whose subset avoids the materialized relations (their estimates are
  /// unchanged by the rewrite) and running the DP only over subsets that
  /// contain the new temp relation. Falls back to Plan() when `translation`
  /// is invalid or the new join graph's shape breaks the carry-over
  /// invariant (a surviving-relation subset is connected now but was not
  /// before). Plans, costs and accounting are identical to Plan().
  common::Result<PlannerResult> PlanIncremental(
      const PlanMemo& prev, const MemoTranslation& translation);

  /// Replays a memo previously produced by Plan() for an identical context
  /// (same spec, statistics, model configuration and operator options):
  /// seeds the model, rebuilds the tree and charges the recorded
  /// accounting without re-costing anything. Falls back to Plan() if the
  /// memo does not cover this query.
  common::Result<PlannerResult> PlanFromMemo(const PlanMemo& memo);

  /// The DP table of the last successful Plan*/ call, with its accounting.
  /// Moves the state out; the planner is single-shot per plan.
  PlanMemo TakeMemo();

 private:
  void PlanBaseRelation(int rel);
  /// Considers `outer` joining `inner` (in that role order) and keeps the
  /// cheapest candidate for the union.
  void ConsiderJoin(plan::RelSet outer, plan::RelSet inner);
  plan::PlanNodePtr BuildTree(uint64_t bits) const;
  /// Assembles the PlannerResult (aggregate root, cost accounting) from the
  /// completed DP table.
  common::Result<PlannerResult> Finish(int64_t num_estimates,
                                       int64_t num_paths);

  const QueryContext* ctx_;
  CardinalityModel* model_;
  CostParams params_;
  PlannerOptions options_;
  std::unordered_map<uint64_t, PlanCand> best_;
  /// Paths costed by this planning (excludes carried path counts).
  int64_t fresh_paths_ = 0;
  /// Scratch for the edges between two subsets (reused across
  /// ConsiderJoin calls to avoid per-call allocation).
  std::vector<const plan::JoinEdge*> edge_scratch_;
  /// Scratch for the temp-containing csg-cmp pairs of an incremental plan.
  std::vector<const plan::CsgCmpPair*> pair_scratch_;
  /// Accounting of the last successful plan, for TakeMemo.
  int64_t memo_estimates_ = 0;
  int64_t memo_paths_ = 0;
};

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_PLANNER_H_
