// The plan enumerator: System-R-style dynamic programming over connected
// subgraphs (bushy trees, no Cartesian products), with access-path
// selection (seq vs hash-index scan) and join-algorithm selection (hash
// join, nested loop, index nested loop). Costs come from cost_formulas.h
// fed by the supplied CardinalityModel — the single lever all of the
// paper's experiments pull.
#ifndef REOPT_OPTIMIZER_PLANNER_H_
#define REOPT_OPTIMIZER_PLANNER_H_

#include <cstdint>
#include <map>

#include "common/status.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/cost_params.h"
#include "optimizer/query_context.h"
#include "plan/physical_plan.h"

namespace reopt::optimizer {

struct PlannerOptions {
  bool enable_hash_join = true;
  bool enable_nested_loop = true;
  bool enable_index_nested_loop = true;
  bool enable_index_scan = true;
  /// If true the root is an Aggregate over the join tree; otherwise the
  /// bare join tree is returned (used for temp-table subplans).
  bool add_aggregate = true;
};

struct PlannerResult {
  plan::PlanNodePtr root;
  /// Simulated planning time in cost units: charged per new cardinality
  /// estimate and per join path costed.
  double planning_cost_units = 0.0;
  /// New (not previously memoized) estimates this planning made.
  int64_t num_estimates = 0;
  /// Join alternatives costed.
  int64_t num_paths = 0;
};

class Planner {
 public:
  Planner(const QueryContext* ctx, CardinalityModel* model,
          const CostParams& params, const PlannerOptions& options = {})
      : ctx_(ctx), model_(model), params_(params), options_(options) {}

  /// Plans the context's query. Fails only on malformed specs (bind
  /// validation catches most of those earlier).
  common::Result<PlannerResult> Plan();

 private:
  struct Cand {
    plan::PlanOp op = plan::PlanOp::kSeqScan;
    double rows = 0.0;   // estimated output rows of the subset
    double cost = 0.0;   // cumulative estimated cost
    uint64_t left = 0;   // join children (subset bits)
    uint64_t right = 0;
    int rel = -1;                                     // scans
    const plan::ScanPredicate* index_pred = nullptr;  // kIndexScan
    const plan::JoinEdge* index_edge = nullptr;       // kIndexNestedLoopJoin
  };

  void PlanBaseRelation(int rel);
  void PlanJoins(int64_t* num_paths);
  /// Considers `outer` joining `inner` (in that role order) and keeps the
  /// cheapest candidate for the union.
  void ConsiderJoin(plan::RelSet outer, plan::RelSet inner,
                    int64_t* num_paths);
  plan::PlanNodePtr BuildTree(uint64_t bits) const;

  const QueryContext* ctx_;
  CardinalityModel* model_;
  CostParams params_;
  PlannerOptions options_;
  std::map<uint64_t, Cand> best_;
};

}  // namespace reopt::optimizer

#endif  // REOPT_OPTIMIZER_PLANNER_H_
