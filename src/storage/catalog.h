// The catalog maps table names to Table objects, with a separate namespace
// flag for temporary tables created by the re-optimizer (CREATE TEMP TABLE
// ... AS SELECT in the paper's Fig. 6 rewrite).
//
// Thread safety: all member functions are safe to call concurrently. The
// map is guarded by a mutex and the temp-name counter is atomic, so
// parallel workload runners can register/drop their (namespaced) temp
// tables while other threads resolve base tables. Table* pointers returned
// by lookup stay valid until *that table* is dropped — the map is
// node-based and tables are heap-owned — so concurrent DDL on unrelated
// tables never invalidates them. The Table objects themselves are not
// internally synchronized: a temp table must be fully populated by its
// creating thread before its name is shared.
#ifndef REOPT_STORAGE_CATALOG_H_
#define REOPT_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/table.h"

namespace reopt::storage {

/// Owns all tables in a database instance.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on a name collision.
  common::Result<Table*> CreateTable(const std::string& name, Schema schema,
                                     bool temporary = false);

  /// Registers a prebuilt table (used by generators). Takes ownership.
  common::Status AddTable(std::unique_ptr<Table> table,
                          bool temporary = false);

  /// Lookup; nullptr if absent.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// Drops a table (temp tables after a re-optimized query finishes).
  common::Status DropTable(const std::string& name);

  /// Drops every temporary table.
  void DropTempTables();

  bool IsTemporary(const std::string& name) const;

  /// Names of all (or only temporary) tables, sorted.
  std::vector<std::string> TableNames(bool temp_only = false) const;

  /// Generates a unique temp-table name: "reopt_temp_1", ... or, with a
  /// non-empty namespace, "reopt_temp_<ns>_1", ... . Each parallel runner
  /// passes its own namespace so names are collision-free by construction
  /// even before the atomic counter makes them unique.
  std::string NextTempName(const std::string& name_space = "");

 private:
  struct Entry {
    std::unique_ptr<Table> table;
    bool temporary = false;
  };
  mutable common::Mutex mu_;
  std::map<std::string, Entry> tables_ GUARDED_BY(mu_);
  std::atomic<int64_t> temp_counter_{0};
};

}  // namespace reopt::storage

#endif  // REOPT_STORAGE_CATALOG_H_
