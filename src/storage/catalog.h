// The catalog maps table names to Table objects, with a separate namespace
// flag for temporary tables created by the re-optimizer (CREATE TEMP TABLE
// ... AS SELECT in the paper's Fig. 6 rewrite).
#ifndef REOPT_STORAGE_CATALOG_H_
#define REOPT_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace reopt::storage {

/// Owns all tables in a database instance.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on a name collision.
  common::Result<Table*> CreateTable(const std::string& name, Schema schema,
                                     bool temporary = false);

  /// Registers a prebuilt table (used by generators). Takes ownership.
  common::Status AddTable(std::unique_ptr<Table> table,
                          bool temporary = false);

  /// Lookup; nullptr if absent.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// Drops a table (temp tables after a re-optimized query finishes).
  common::Status DropTable(const std::string& name);

  /// Drops every temporary table.
  void DropTempTables();

  bool IsTemporary(const std::string& name) const;

  /// Names of all (or only temporary) tables, sorted.
  std::vector<std::string> TableNames(bool temp_only = false) const;

  /// Generates a unique temp-table name ("reopt_temp_1", ...).
  std::string NextTempName();

 private:
  struct Entry {
    std::unique_ptr<Table> table;
    bool temporary = false;
  };
  std::map<std::string, Entry> tables_;
  int64_t temp_counter_ = 0;
};

}  // namespace reopt::storage

#endif  // REOPT_STORAGE_CATALOG_H_
