#include "storage/index.h"

#include "common/check.h"
#include "storage/table.h"

namespace reopt::storage {

HashIndex::HashIndex(common::ColumnIdx column, const Table& table)
    : column_(column) {
  const Column& col = table.column(column);
  REOPT_CHECK(col.type() == common::DataType::kInt64);
  map_.reserve(static_cast<size_t>(col.size()));
  for (common::RowIdx row = 0; row < col.size(); ++row) {
    if (col.IsNull(row)) continue;
    map_[col.GetInt(row)].push_back(row);
    ++num_entries_;
  }
}

const std::vector<common::RowIdx>& HashIndex::Lookup(int64_t key) const {
  static const std::vector<common::RowIdx> kEmpty;
  auto it = map_.find(key);
  if (it == map_.end()) return kEmpty;
  return it->second;
}

}  // namespace reopt::storage
