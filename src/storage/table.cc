#include "storage/table.h"

#include "common/string_util.h"

namespace reopt::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_columns()));
  for (const ColumnDef& def : schema_.columns()) {
    columns_.push_back(std::make_unique<Column>(def.type));
  }
}

void Table::AppendRow(const std::vector<common::Value>& values) {
  REOPT_CHECK_MSG(static_cast<int>(values.size()) == schema_.num_columns(),
                  "row arity mismatch");
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i]->AppendValue(values[i]);
  }
  ++num_rows_;
}

void Table::Reserve(int64_t n) {
  for (auto& col : columns_) col->Reserve(n);
}

void Table::SyncRowCountFromColumns() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return;
  }
  int64_t n = columns_.front()->size();
  for (const auto& col : columns_) {
    REOPT_CHECK_MSG(col->size() == n, "ragged columns");
  }
  num_rows_ = n;
}

void Table::ApplyEncoding(EncodingPolicy policy) {
  if (policy == EncodingPolicy::kForcePlain) return;
  for (auto& col : columns_) {
    if (col->encoding() != ColumnEncoding::kPlain) continue;
    switch (policy) {
      case EncodingPolicy::kForceDictionary:
        if (col->type() == common::DataType::kString) col->EncodeDictionary();
        break;
      case EncodingPolicy::kForcePartitioned:
        if (col->type() != common::DataType::kString) col->EncodePartitioned();
        break;
      case EncodingPolicy::kAuto:
        if (col->type() == common::DataType::kString) {
          if (col->DictionaryWorthwhile()) col->EncodeDictionary();
        } else if (col->size() >= 4 * kPartitionRows) {
          col->EncodePartitioned();
        }
        break;
      case EncodingPolicy::kForcePlain:
        break;
    }
  }
}

common::Status Table::CreateIndex(common::ColumnIdx column) {
  if (column < 0 || column >= schema_.num_columns()) {
    return common::Status::InvalidArgument(common::StrPrintf(
        "no column %d in table %s", column, name_.c_str()));
  }
  if (schema_.column(column).type != common::DataType::kInt64) {
    return common::Status::InvalidArgument(
        "hash indexes are only supported on INT64 columns");
  }
  if (FindIndex(column) != nullptr) return common::Status::OK();
  indexes_.push_back(std::make_unique<HashIndex>(column, *this));
  return common::Status::OK();
}

const HashIndex* Table::FindIndex(common::ColumnIdx column) const {
  for (const auto& idx : indexes_) {
    if (idx->column() == column) return idx.get();
  }
  return nullptr;
}

std::vector<common::Value> Table::GetRow(common::RowIdx row) const {
  std::vector<common::Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col->GetValue(row));
  return out;
}

}  // namespace reopt::storage
