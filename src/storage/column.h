// In-memory typed column storage. A Column stores one attribute of a table
// as a contiguous typed vector plus an optional validity bitmap.
#ifndef REOPT_STORAGE_COLUMN_H_
#define REOPT_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "common/value.h"

namespace reopt::storage {

/// A borrowed, raw-span view of one column: the typed data pointers plus
/// the validity bitmap, resolved once so batch kernels can run tight loops
/// without per-row accessor calls. Only the pointer matching `type` spans
/// `size` elements; the others point at empty storage and must not be
/// indexed. Invalidated by appends to the underlying column.
struct ColumnView {
  common::DataType type = common::DataType::kInt64;
  int64_t size = 0;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const std::string* strings = nullptr;
  /// nullptr means every row is valid; otherwise 0 marks a NULL row.
  const uint8_t* valid = nullptr;

  bool IsNull(common::RowIdx row) const {
    return valid != nullptr && valid[static_cast<size_t>(row)] == 0;
  }
  bool AllValid() const { return valid == nullptr; }
};

/// A single typed column. Rows are addressed by RowIdx (0-based). Values may
/// be null; a null row's slot in the typed vector holds a default value and
/// must not be interpreted.
class Column {
 public:
  explicit Column(common::DataType type) : type_(type) {}

  common::DataType type() const { return type_; }
  int64_t size() const { return size_; }

  // ---- Appends -------------------------------------------------------
  void AppendInt(int64_t v) {
    REOPT_CHECK(type_ == common::DataType::kInt64);
    ints_.push_back(v);
    NoteAppend(true);
  }
  void AppendDouble(double v) {
    REOPT_CHECK(type_ == common::DataType::kDouble);
    doubles_.push_back(v);
    NoteAppend(true);
  }
  void AppendString(std::string v) {
    REOPT_CHECK(type_ == common::DataType::kString);
    strings_.push_back(std::move(v));
    NoteAppend(true);
  }
  /// Appends a NULL of this column's type.
  void AppendNull();
  /// Appends any Value (must match the column type or be null).
  void AppendValue(const common::Value& v);

  void Reserve(int64_t n);

  // ---- Reads ---------------------------------------------------------
  bool IsNull(common::RowIdx row) const {
    return !valid_.empty() && valid_[static_cast<size_t>(row)] == 0;
  }
  int64_t GetInt(common::RowIdx row) const {
    return ints_[static_cast<size_t>(row)];
  }
  double GetDouble(common::RowIdx row) const {
    return doubles_[static_cast<size_t>(row)];
  }
  const std::string& GetString(common::RowIdx row) const {
    return strings_[static_cast<size_t>(row)];
  }
  /// Boxed access (used off the hot path).
  common::Value GetValue(common::RowIdx row) const;

  /// Direct typed access for scans.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Raw-span view for batch kernels (see ColumnView).
  ColumnView View() const {
    ColumnView view;
    view.type = type_;
    view.size = size_;
    view.ints = ints_.data();
    view.doubles = doubles_.data();
    view.strings = strings_.data();
    view.valid = valid_.empty() ? nullptr : valid_.data();
    return view;
  }

  /// True if no row is null.
  bool AllValid() const { return valid_.empty(); }

 private:
  void NoteAppend(bool valid);

  common::DataType type_;
  int64_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  // Empty means "all valid". Lazily materialized on the first null.
  std::vector<uint8_t> valid_;
};

}  // namespace reopt::storage

#endif  // REOPT_STORAGE_COLUMN_H_
