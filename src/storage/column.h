// In-memory typed column storage. A Column stores one attribute of a table
// as a contiguous typed vector plus an optional validity bitmap, under one
// of three physical encodings:
//
//   kPlain        — the reference encoding: one contiguous typed vector.
//                   Every other encoding must be observationally identical
//                   to it through the boxed accessors (GetValue/GetString/
//                   IsNull), which is what the per-encoding differential
//                   suites prove.
//   kDictionary   — strings only: a sorted, de-duplicated dictionary plus
//                   one int32 code per row. Because the dictionary is
//                   sorted, code order == lexicographic string order, so
//                   equality binds to a single code compare and range
//                   predicates become code-range compares. NULL rows carry
//                   code -1 and decode to the empty string (matching the
//                   default-constructed slot a plain column stores).
//   kPartitioned  — int64/double only: data stays in the plain contiguous
//                   vector, but per-partition (kPartitionRows rows) min/max
//                   zone maps are built so FilterScan can skip whole
//                   partitions that provably cannot satisfy a predicate.
//
// Encoded columns are frozen: any append after EncodeDictionary() /
// EncodePartitioned() CHECK-fails. Encode before serving reads.
#ifndef REOPT_STORAGE_COLUMN_H_
#define REOPT_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "common/value.h"

namespace reopt::storage {

class Column;

/// Physical layout of a Column. kPlain is the reference encoding.
enum class ColumnEncoding { kPlain, kDictionary, kPartitioned };

const char* ColumnEncodingName(ColumnEncoding e);

/// Fixed partition width for kPartitioned zone maps. Must match the
/// kernel batch size (exec::kKernelBatchSize) so a skipped partition is
/// exactly one selection-vector batch; kernel.cc static_asserts this.
inline constexpr int64_t kPartitionRows = 1024;

/// Per-partition summary for kPartitioned columns. min/max cover the
/// non-NULL rows of the partition in the column's native type (for int64
/// columns the double fields hold the monotone-cast values so predicates
/// coerced to double can be tested without per-row casts).
struct ZoneMap {
  int64_t min_int = 0;
  int64_t max_int = 0;
  double min_double = 0.0;
  double max_double = 0.0;
  int64_t row_count = 0;
  int64_t null_count = 0;
  /// False when every row in the partition is NULL (min/max meaningless).
  bool has_values = false;
  /// False disables skipping for this partition entirely (set when a double
  /// partition contains NaN, whose ordering the kernels define specially).
  bool skippable = true;

  bool AllNull() const { return null_count == row_count; }
};

/// A borrowed, raw-span view of one column: the typed data pointers plus
/// the validity bitmap, resolved once so batch kernels can run tight loops
/// without per-row accessor calls. Only the pointers matching `type` and
/// `encoding` span `size` elements; the others point at empty storage and
/// must not be indexed. Invalidated by appends to (or encoding of) the
/// underlying column; debug builds catch stale use via a version check in
/// IsNull() and the checked span accessors.
struct ColumnView {
  common::DataType type = common::DataType::kInt64;
  ColumnEncoding encoding = ColumnEncoding::kPlain;
  int64_t size = 0;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  /// Plain string rows; nullptr under kDictionary (use codes/dict).
  const std::string* strings = nullptr;
  /// nullptr means every row is valid; otherwise 0 marks a NULL row.
  const uint8_t* valid = nullptr;
  /// kDictionary only: per-row code into `dict` (-1 for NULL rows).
  const int32_t* codes = nullptr;
  /// kDictionary only: sorted unique dictionary, `dict_size` entries.
  const std::string* dict = nullptr;
  int32_t dict_size = 0;
  /// kPartitioned only: one ZoneMap per kPartitionRows rows.
  const ZoneMap* zones = nullptr;
  int64_t num_zones = 0;
#ifndef NDEBUG
  const Column* owner = nullptr;
  uint64_t version = 0;
#endif

  /// Debug builds abort if the owning column was appended to or re-encoded
  /// after this view was taken. No-op in release builds.
  void CheckFresh() const;

  bool IsNull(common::RowIdx row) const {
    CheckFresh();
    return valid != nullptr && valid[static_cast<size_t>(row)] == 0;
  }
  bool AllValid() const { return valid == nullptr; }

  /// Checked span accessors: same pointers as the raw members, with a
  /// staleness check in debug builds. Hoist these out of hot loops.
  const int64_t* Ints() const { CheckFresh(); return ints; }
  const double* Doubles() const { CheckFresh(); return doubles; }
  const std::string* Strings() const { CheckFresh(); return strings; }
  const uint8_t* Valid() const { CheckFresh(); return valid; }
  const int32_t* Codes() const { CheckFresh(); return codes; }

  /// Decoded string for `row`, regardless of encoding. NULL rows decode to
  /// the empty string (the same value a plain column's slot holds).
  const std::string& StringAt(common::RowIdx row) const;
};

/// A single typed column. Rows are addressed by RowIdx (0-based). Values may
/// be null; a null row's slot in the typed vector holds a default value and
/// must not be interpreted.
class Column {
 public:
  explicit Column(common::DataType type) : type_(type) {}

  common::DataType type() const { return type_; }
  int64_t size() const { return size_; }
  ColumnEncoding encoding() const { return encoding_; }

  // ---- Appends (kPlain only; encoded columns are frozen) -------------
  void AppendInt(int64_t v) {
    REOPT_CHECK(type_ == common::DataType::kInt64);
    ints_.push_back(v);
    NoteAppend(true);
  }
  void AppendDouble(double v) {
    REOPT_CHECK(type_ == common::DataType::kDouble);
    doubles_.push_back(v);
    NoteAppend(true);
  }
  void AppendString(std::string v) {
    REOPT_CHECK(type_ == common::DataType::kString);
    strings_.push_back(std::move(v));
    NoteAppend(true);
  }
  /// Appends a NULL of this column's type.
  void AppendNull();
  /// Appends any Value (must match the column type or be null).
  void AppendValue(const common::Value& v);

  /// Bulk appends: one type/bitmap bookkeeping step for `n` rows instead of
  /// n accessor round-trips. All appended rows are valid (non-NULL).
  void AppendInts(const int64_t* data, int64_t n);
  void AppendDoubles(const double* data, int64_t n);
  void AppendStrings(const std::string* data, int64_t n);
  /// Move-appends the buffer's strings (buffer is left valid but drained).
  void AppendStrings(std::vector<std::string>&& data);

  void Reserve(int64_t n);

  // ---- Encoding ------------------------------------------------------
  /// Rewrites a kPlain string column as sorted-dictionary + int32 codes.
  /// The plain string vector is released; the column is frozen afterwards.
  void EncodeDictionary();
  /// Builds per-partition zone maps over a kPlain int64/double column.
  /// Data stays in place (plain spans remain valid); frozen afterwards.
  void EncodePartitioned();
  /// Heuristic: true when dictionary-encoding this string column would
  /// clearly pay (enough rows, few distinct values relative to row count).
  bool DictionaryWorthwhile() const;

  const std::vector<std::string>& dictionary() const { return dict_; }
  const std::vector<int32_t>& dict_codes() const { return codes_; }
  const std::vector<ZoneMap>& zones() const { return zones_; }

  // ---- Reads ---------------------------------------------------------
  bool IsNull(common::RowIdx row) const {
    return !valid_.empty() && valid_[static_cast<size_t>(row)] == 0;
  }
  int64_t GetInt(common::RowIdx row) const {
    return ints_[static_cast<size_t>(row)];
  }
  double GetDouble(common::RowIdx row) const {
    return doubles_[static_cast<size_t>(row)];
  }
  /// Decodes through the dictionary when encoded; identical to the plain
  /// slot value either way (NULL rows read as the empty string).
  const std::string& GetString(common::RowIdx row) const {
    if (encoding_ == ColumnEncoding::kDictionary) {
      int32_t c = codes_[static_cast<size_t>(row)];
      return c < 0 ? EmptyString() : dict_[static_cast<size_t>(c)];
    }
    return strings_[static_cast<size_t>(row)];
  }
  /// Boxed access (used off the hot path). Decodes transparently for any
  /// encoding — this is the invariant the differential suites pin.
  common::Value GetValue(common::RowIdx row) const;

  /// Direct typed access for scans. strings() is only meaningful for
  /// kPlain (a dictionary column has released its plain string vector).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const {
    REOPT_CHECK_MSG(encoding_ != ColumnEncoding::kDictionary,
                    "plain string span requested from a dictionary column");
    return strings_;
  }

  /// Raw-span view for batch kernels (see ColumnView).
  ColumnView View() const {
    ColumnView view;
    view.type = type_;
    view.encoding = encoding_;
    view.size = size_;
    view.ints = ints_.data();
    view.doubles = doubles_.data();
    view.strings =
        encoding_ == ColumnEncoding::kDictionary ? nullptr : strings_.data();
    view.valid = valid_.empty() ? nullptr : valid_.data();
    view.codes = codes_.data();
    view.dict = dict_.data();
    view.dict_size = static_cast<int32_t>(dict_.size());
    view.zones = zones_.data();
    view.num_zones = static_cast<int64_t>(zones_.size());
#ifndef NDEBUG
    view.owner = this;
    view.version = version_;
#endif
    return view;
  }

  /// True if no row is null.
  bool AllValid() const { return valid_.empty(); }

#ifndef NDEBUG
  uint64_t version() const { return version_; }
#endif

  static const std::string& EmptyString();

 private:
  void NoteAppend(bool valid);
  void NoteBulkAppend(int64_t n);
  void NoteMutation() {
#ifndef NDEBUG
    ++version_;
#endif
  }

  common::DataType type_;
  ColumnEncoding encoding_ = ColumnEncoding::kPlain;
  int64_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  // Empty means "all valid". Lazily materialized on the first null.
  std::vector<uint8_t> valid_;
  // kDictionary: sorted unique values + one code per row (-1 = NULL).
  std::vector<std::string> dict_;
  std::vector<int32_t> codes_;
  // kPartitioned: one zone map per kPartitionRows rows.
  std::vector<ZoneMap> zones_;
#ifndef NDEBUG
  // Bumped by every append/encode; outstanding ColumnViews compare against
  // it so stale raw-span use aborts in debug builds instead of reading
  // freed memory.
  uint64_t version_ = 0;
#endif
};

#ifndef NDEBUG
inline void ColumnView::CheckFresh() const {
  REOPT_CHECK_MSG(owner == nullptr || version == owner->version(),
                  "stale ColumnView: the column was appended to or "
                  "re-encoded after View() was taken");
}
#else
inline void ColumnView::CheckFresh() const {}
#endif

inline const std::string& ColumnView::StringAt(common::RowIdx row) const {
  if (encoding == ColumnEncoding::kDictionary) {
    int32_t c = codes[static_cast<size_t>(row)];
    return c < 0 ? Column::EmptyString() : dict[static_cast<size_t>(c)];
  }
  return strings[static_cast<size_t>(row)];
}

}  // namespace reopt::storage

#endif  // REOPT_STORAGE_COLUMN_H_
