// In-memory tables: a Schema plus one Column per attribute, with optional
// hash indexes on integer columns.
#ifndef REOPT_STORAGE_TABLE_H_
#define REOPT_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/value.h"
#include "storage/column.h"
#include "storage/index.h"
#include "storage/schema.h"

namespace reopt::storage {

/// How a table picks physical column encodings when loading finishes.
/// kAuto applies per-column heuristics (dictionary for low-cardinality
/// strings, zone maps for large numeric columns); the forced modes exist
/// for differential tests that pin every encoding's behavior.
enum class EncodingPolicy {
  kAuto,
  kForcePlain,
  kForceDictionary,
  kForcePartitioned,
};

/// A named table. Append-only; rows are addressed by 0-based RowIdx.
class Table {
 public:
  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return schema_.num_columns(); }

  const Column& column(common::ColumnIdx idx) const {
    return *columns_[static_cast<size_t>(idx)];
  }
  Column& mutable_column(common::ColumnIdx idx) {
    return *columns_[static_cast<size_t>(idx)];
  }

  /// Appends one row; `values` must have one entry per column with matching
  /// types (or null).
  void AppendRow(const std::vector<common::Value>& values);

  void Reserve(int64_t n);

  /// Recomputes the row count from column sizes after direct per-column
  /// appends (bulk loaders, temp-table materialization). CHECK-fails if
  /// columns disagree in length.
  void SyncRowCountFromColumns();

  /// Applies physical encodings per `policy` to every still-plain column
  /// (see EncodingPolicy). Call once after loading; encoded columns are
  /// frozen, so this is the load/serve boundary. Idempotent on columns
  /// that are already encoded.
  void ApplyEncoding(EncodingPolicy policy);

  /// Builds a hash index on an INT64 column (no-op if one already exists).
  /// Returns InvalidArgument for non-integer columns.
  common::Status CreateIndex(common::ColumnIdx column);

  /// The index on `column`, or nullptr if none.
  const HashIndex* FindIndex(common::ColumnIdx column) const;

  /// All indexes on this table.
  const std::vector<std::unique_ptr<HashIndex>>& indexes() const {
    return indexes_;
  }

  /// Boxed row access (tests / debugging).
  std::vector<common::Value> GetRow(common::RowIdx row) const;

 private:
  std::string name_;
  Schema schema_;
  int64_t num_rows_ = 0;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
};

}  // namespace reopt::storage

#endif  // REOPT_STORAGE_TABLE_H_
