// Table schemas: ordered, named, typed columns.
#ifndef REOPT_STORAGE_SCHEMA_H_
#define REOPT_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace reopt::storage {

/// One column definition.
struct ColumnDef {
  std::string name;
  common::DataType type;
};

/// An ordered list of column definitions with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(common::ColumnIdx idx) const {
    return columns_[static_cast<size_t>(idx)];
  }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with this name, or kInvalidColumnIdx.
  common::ColumnIdx FindColumn(const std::string& name) const;

  /// Appends a column definition; returns its index.
  common::ColumnIdx AddColumn(ColumnDef def);

  /// "name:TYPE, name:TYPE, ..." rendering.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace reopt::storage

#endif  // REOPT_STORAGE_SCHEMA_H_
