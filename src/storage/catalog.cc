#include "storage/catalog.h"

#include "common/string_util.h"

namespace reopt::storage {

common::Result<Table*> Catalog::CreateTable(const std::string& name,
                                            Schema schema, bool temporary) {
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  common::MutexLock lock(&mu_);
  if (tables_.count(name) > 0) {
    return common::Status::AlreadyExists("table exists: " + name);
  }
  tables_[name] = Entry{std::move(table), temporary};
  return raw;
}

common::Status Catalog::AddTable(std::unique_ptr<Table> table,
                                 bool temporary) {
  const std::string& name = table->name();
  common::MutexLock lock(&mu_);
  if (tables_.count(name) > 0) {
    return common::Status::AlreadyExists("table exists: " + name);
  }
  tables_[name] = Entry{std::move(table), temporary};
  return common::Status::OK();
}

Table* Catalog::FindTable(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

const Table* Catalog::FindTable(const std::string& name) const {
  common::MutexLock lock(&mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

common::Status Catalog::DropTable(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return common::Status::NotFound("no such table: " + name);
  }
  tables_.erase(it);
  return common::Status::OK();
}

void Catalog::DropTempTables() {
  common::MutexLock lock(&mu_);
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (it->second.temporary) {
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Catalog::IsTemporary(const std::string& name) const {
  common::MutexLock lock(&mu_);
  auto it = tables_.find(name);
  return it != tables_.end() && it->second.temporary;
}

std::vector<std::string> Catalog::TableNames(bool temp_only) const {
  common::MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (const auto& [name, entry] : tables_) {
    if (!temp_only || entry.temporary) out.push_back(name);
  }
  return out;
}

std::string Catalog::NextTempName(const std::string& name_space) {
  int64_t n = temp_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (name_space.empty()) {
    return common::StrPrintf("reopt_temp_%lld", static_cast<long long>(n));
  }
  return common::StrPrintf("reopt_temp_%s_%lld", name_space.c_str(),
                           static_cast<long long>(n));
}

}  // namespace reopt::storage
