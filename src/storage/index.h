// Hash indexes on integer key columns. The paper's experimental setup adds
// foreign-key indexes to every join column, "making access path selection
// more challenging" — we mirror that: the data generator indexes every id
// and FK column, and the optimizer can pick index scans / index nested-loop
// joins against them.
#ifndef REOPT_STORAGE_INDEX_H_
#define REOPT_STORAGE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace reopt::storage {

class Table;

/// A hash index over one INT64 column: key -> list of matching row indexes.
/// NULL keys are not indexed (equi-joins never match NULL).
class HashIndex {
 public:
  HashIndex(common::ColumnIdx column, const Table& table);

  common::ColumnIdx column() const { return column_; }

  /// Rows whose key equals `key`; empty vector if none.
  const std::vector<common::RowIdx>& Lookup(int64_t key) const;

  /// Number of distinct keys.
  int64_t num_keys() const { return static_cast<int64_t>(map_.size()); }
  /// Total indexed entries.
  int64_t num_entries() const { return num_entries_; }

 private:
  common::ColumnIdx column_;
  int64_t num_entries_ = 0;
  std::unordered_map<int64_t, std::vector<common::RowIdx>> map_;
};

}  // namespace reopt::storage

#endif  // REOPT_STORAGE_INDEX_H_
