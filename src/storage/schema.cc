#include "storage/schema.h"

#include "common/string_util.h"

namespace reopt::storage {

common::ColumnIdx Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<common::ColumnIdx>(i);
  }
  return common::kInvalidColumnIdx;
}

common::ColumnIdx Schema::AddColumn(ColumnDef def) {
  columns_.push_back(std::move(def));
  return static_cast<common::ColumnIdx>(columns_.size() - 1);
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += common::DataTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace reopt::storage
