#include "storage/column.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string_view>
#include <unordered_set>
#include <utility>

namespace reopt::storage {

const char* ColumnEncodingName(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain:
      return "plain";
    case ColumnEncoding::kDictionary:
      return "dictionary";
    case ColumnEncoding::kPartitioned:
      return "partitioned";
  }
  REOPT_UNREACHABLE("bad column encoding");
}

const std::string& Column::EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

void Column::AppendNull() {
  switch (type_) {
    case common::DataType::kInt64:
      ints_.push_back(0);
      break;
    case common::DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case common::DataType::kString:
      strings_.emplace_back();
      break;
  }
  NoteAppend(false);
}

void Column::AppendValue(const common::Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case common::DataType::kInt64:
      AppendInt(v.AsInt());
      return;
    case common::DataType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case common::DataType::kString:
      AppendString(v.AsString());
      return;
  }
  REOPT_UNREACHABLE("bad column type");
}

void Column::AppendInts(const int64_t* data, int64_t n) {
  REOPT_CHECK(type_ == common::DataType::kInt64);
  ints_.insert(ints_.end(), data, data + n);
  NoteBulkAppend(n);
}

void Column::AppendDoubles(const double* data, int64_t n) {
  REOPT_CHECK(type_ == common::DataType::kDouble);
  doubles_.insert(doubles_.end(), data, data + n);
  NoteBulkAppend(n);
}

void Column::AppendStrings(const std::string* data, int64_t n) {
  REOPT_CHECK(type_ == common::DataType::kString);
  strings_.insert(strings_.end(), data, data + n);
  NoteBulkAppend(n);
}

void Column::AppendStrings(std::vector<std::string>&& data) {
  REOPT_CHECK(type_ == common::DataType::kString);
  const int64_t n = static_cast<int64_t>(data.size());
  if (strings_.empty()) {
    strings_ = std::move(data);
  } else {
    strings_.insert(strings_.end(), std::make_move_iterator(data.begin()),
                    std::make_move_iterator(data.end()));
  }
  NoteBulkAppend(n);
}

void Column::Reserve(int64_t n) {
  switch (type_) {
    case common::DataType::kInt64:
      ints_.reserve(static_cast<size_t>(n));
      break;
    case common::DataType::kDouble:
      doubles_.reserve(static_cast<size_t>(n));
      break;
    case common::DataType::kString:
      strings_.reserve(static_cast<size_t>(n));
      break;
  }
}

void Column::EncodeDictionary() {
  REOPT_CHECK_MSG(type_ == common::DataType::kString,
                  "dictionary encoding is for string columns");
  REOPT_CHECK_MSG(encoding_ == ColumnEncoding::kPlain,
                  "column is already encoded");
  // Sorted unique dictionary over the non-NULL rows, so that code order ==
  // lexicographic string order (range predicates become code ranges).
  dict_.clear();
  dict_.reserve(strings_.size());
  for (size_t r = 0; r < strings_.size(); ++r) {
    if (valid_.empty() || valid_[r] != 0) dict_.push_back(strings_[r]);
  }
  std::sort(dict_.begin(), dict_.end());
  dict_.erase(std::unique(dict_.begin(), dict_.end()), dict_.end());
  dict_.shrink_to_fit();
  REOPT_CHECK_MSG(
      dict_.size() <= static_cast<size_t>(std::numeric_limits<int32_t>::max()),
      "dictionary too large for int32 codes");
  codes_.resize(strings_.size());
  for (size_t r = 0; r < strings_.size(); ++r) {
    if (!valid_.empty() && valid_[r] == 0) {
      codes_[r] = -1;
      continue;
    }
    auto it = std::lower_bound(dict_.begin(), dict_.end(), strings_[r]);
    codes_[r] = static_cast<int32_t>(it - dict_.begin());
  }
  strings_.clear();
  strings_.shrink_to_fit();
  encoding_ = ColumnEncoding::kDictionary;
  NoteMutation();
}

void Column::EncodePartitioned() {
  REOPT_CHECK_MSG(type_ == common::DataType::kInt64 ||
                      type_ == common::DataType::kDouble,
                  "zone maps are for int64/double columns");
  REOPT_CHECK_MSG(encoding_ == ColumnEncoding::kPlain,
                  "column is already encoded");
  const int64_t n = size_;
  const int64_t num_parts = (n + kPartitionRows - 1) / kPartitionRows;
  zones_.assign(static_cast<size_t>(num_parts), ZoneMap{});
  for (int64_t p = 0; p < num_parts; ++p) {
    ZoneMap& z = zones_[static_cast<size_t>(p)];
    const int64_t lo = p * kPartitionRows;
    const int64_t hi = std::min(n, lo + kPartitionRows);
    z.row_count = hi - lo;
    for (int64_t r = lo; r < hi; ++r) {
      if (!valid_.empty() && valid_[static_cast<size_t>(r)] == 0) {
        ++z.null_count;
        continue;
      }
      if (type_ == common::DataType::kInt64) {
        const int64_t v = ints_[static_cast<size_t>(r)];
        if (!z.has_values) {
          z.min_int = z.max_int = v;
        } else {
          z.min_int = std::min(z.min_int, v);
          z.max_int = std::max(z.max_int, v);
        }
      } else {
        const double v = doubles_[static_cast<size_t>(r)];
        if (std::isnan(v)) {
          // The kernels give NaN bespoke ordering; never skip a partition
          // that contains one.
          z.skippable = false;
        } else if (!z.has_values) {
          z.min_double = z.max_double = v;
        } else {
          z.min_double = std::min(z.min_double, v);
          z.max_double = std::max(z.max_double, v);
        }
      }
      z.has_values = true;
    }
    if (type_ == common::DataType::kInt64 && z.has_values) {
      // static_cast<double> is monotone, so these bound the per-row casts
      // the double-coerced predicate path performs.
      z.min_double = static_cast<double>(z.min_int);
      z.max_double = static_cast<double>(z.max_int);
    }
  }
  encoding_ = ColumnEncoding::kPartitioned;
  NoteMutation();
}

bool Column::DictionaryWorthwhile() const {
  if (type_ != common::DataType::kString ||
      encoding_ != ColumnEncoding::kPlain) {
    return false;
  }
  if (size_ < kPartitionRows) return false;
  // Worth it when distinct values are rare relative to rows (codes pay for
  // the dictionary indirection many times over). Early-exits as soon as the
  // column looks near-unique.
  const size_t max_interesting = static_cast<size_t>(size_ / 8) + 1;
  std::unordered_set<std::string_view> distinct;
  for (size_t r = 0; r < strings_.size(); ++r) {
    if (!valid_.empty() && valid_[r] == 0) continue;
    distinct.insert(std::string_view(strings_[r]));
    if (distinct.size() > max_interesting) return false;
  }
  return true;
}

common::Value Column::GetValue(common::RowIdx row) const {
  if (IsNull(row)) return common::Value::Null_();
  switch (type_) {
    case common::DataType::kInt64:
      return common::Value::Int(GetInt(row));
    case common::DataType::kDouble:
      return common::Value::Real(GetDouble(row));
    case common::DataType::kString:
      return common::Value::Str(GetString(row));
  }
  REOPT_UNREACHABLE("bad column type");
}

void Column::NoteAppend(bool valid) {
  REOPT_CHECK_MSG(encoding_ == ColumnEncoding::kPlain,
                  "append to an encoded (frozen) column");
  ++size_;
  NoteMutation();
  if (!valid && valid_.empty()) {
    // First null: materialize the bitmap with all prior rows valid.
    valid_.assign(static_cast<size_t>(size_), 1);
    valid_.back() = 0;
    return;
  }
  if (!valid_.empty()) {
    valid_.push_back(valid ? 1 : 0);
  }
}

void Column::NoteBulkAppend(int64_t n) {
  REOPT_CHECK_MSG(encoding_ == ColumnEncoding::kPlain,
                  "append to an encoded (frozen) column");
  size_ += n;
  NoteMutation();
  if (!valid_.empty()) {
    valid_.insert(valid_.end(), static_cast<size_t>(n), 1);
  }
}

}  // namespace reopt::storage
