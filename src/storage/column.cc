#include "storage/column.h"

namespace reopt::storage {

void Column::AppendNull() {
  switch (type_) {
    case common::DataType::kInt64:
      ints_.push_back(0);
      break;
    case common::DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case common::DataType::kString:
      strings_.emplace_back();
      break;
  }
  NoteAppend(false);
}

void Column::AppendValue(const common::Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case common::DataType::kInt64:
      AppendInt(v.AsInt());
      return;
    case common::DataType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case common::DataType::kString:
      AppendString(v.AsString());
      return;
  }
  REOPT_UNREACHABLE("bad column type");
}

void Column::Reserve(int64_t n) {
  switch (type_) {
    case common::DataType::kInt64:
      ints_.reserve(static_cast<size_t>(n));
      break;
    case common::DataType::kDouble:
      doubles_.reserve(static_cast<size_t>(n));
      break;
    case common::DataType::kString:
      strings_.reserve(static_cast<size_t>(n));
      break;
  }
}

common::Value Column::GetValue(common::RowIdx row) const {
  if (IsNull(row)) return common::Value::Null_();
  switch (type_) {
    case common::DataType::kInt64:
      return common::Value::Int(GetInt(row));
    case common::DataType::kDouble:
      return common::Value::Real(GetDouble(row));
    case common::DataType::kString:
      return common::Value::Str(GetString(row));
  }
  REOPT_UNREACHABLE("bad column type");
}

void Column::NoteAppend(bool valid) {
  ++size_;
  if (!valid && valid_.empty()) {
    // First null: materialize the bitmap with all prior rows valid.
    valid_.assign(static_cast<size_t>(size_), 1);
    valid_.back() = 0;
    return;
  }
  if (!valid_.empty()) {
    valid_.push_back(valid ? 1 : 0);
  }
}

}  // namespace reopt::storage
