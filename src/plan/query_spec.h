// The logical representation of a select-project-join query: relations
// (with aliases), single-table filter predicates, equi-join edges, and a
// MIN() output list — exactly the JOB query class. Produced either by the
// SQL binder or programmatically by the workload generator; consumed by the
// optimizer and rewritten by the re-optimizer.
#ifndef REOPT_PLAN_QUERY_SPEC_H_
#define REOPT_PLAN_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "common/value.h"
#include "plan/rel_set.h"

namespace reopt::plan {

/// One FROM-list entry: a base (or temp) table with an alias.
struct RelationRef {
  std::string table_name;
  std::string alias;
};

/// A column of one of the query's relations, by relation position and
/// column index within that relation's schema. `name` is display-only
/// metadata (rendering, temp-table schemas) and does not participate in
/// equality.
struct ColumnRef {
  int rel = -1;
  common::ColumnIdx col = common::kInvalidColumnIdx;
  std::string name;

  bool operator==(const ColumnRef& other) const {
    return rel == other.rel && col == other.col;
  }
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// A single-table filter predicate.
struct ScanPredicate {
  enum class Kind {
    kCompare,   // col <op> literal
    kIn,        // col IN (v1, v2, ...)
    kLike,      // col LIKE pattern
    kNotLike,   // col NOT LIKE pattern
    kBetween,   // col BETWEEN lo AND hi (inclusive)
    kIsNull,    // col IS NULL
    kIsNotNull  // col IS NOT NULL
  };

  ColumnRef column;
  Kind kind = Kind::kCompare;
  CompareOp op = CompareOp::kEq;       // kCompare only
  common::Value value;                 // kCompare literal / LIKE pattern /
                                       // BETWEEN lower bound
  common::Value value2;                // BETWEEN upper bound
  std::vector<common::Value> in_list;  // kIn only
};

/// An equi-join edge between two relations' columns.
struct JoinEdge {
  ColumnRef left;
  ColumnRef right;

  /// The set {left.rel, right.rel}.
  RelSet Relations() const {
    return RelSet::Single(left.rel).Union(RelSet::Single(right.rel));
  }
};

/// One SELECT-list item: MIN(col) AS label (JOB outputs are all MIN), or a
/// plain column when `min_agg` is false (used for temp-table materialization
/// where raw columns are projected).
struct OutputExpr {
  ColumnRef column;
  bool min_agg = true;
  std::string label;
};

/// A complete SPJ query.
struct QuerySpec {
  std::string name;  // e.g. "q18a" — used in reports and oracle cache keys.
  std::vector<RelationRef> relations;
  std::vector<ScanPredicate> filters;
  std::vector<JoinEdge> joins;
  std::vector<OutputExpr> outputs;

  int num_relations() const { return static_cast<int>(relations.size()); }
  RelSet AllRelations() const { return RelSet::FirstN(num_relations()); }

  /// Filters that apply to relation `rel`.
  std::vector<const ScanPredicate*> FiltersFor(int rel) const;

  /// Join edges fully contained in `set`.
  std::vector<const JoinEdge*> JoinsWithin(RelSet set) const;

  /// Join edges connecting `left` to `right` (one endpoint in each).
  std::vector<const JoinEdge*> JoinsBetween(RelSet left, RelSet right) const;

  /// SQL-ish rendering for debugging and examples.
  std::string ToString() const;
};

}  // namespace reopt::plan

#endif  // REOPT_PLAN_QUERY_SPEC_H_
