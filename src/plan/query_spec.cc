#include "plan/query_spec.h"

#include "common/string_util.h"

namespace reopt::plan {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string RelSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int r : Members()) {
    if (!first) out += ",";
    out += std::to_string(r);
    first = false;
  }
  out += "}";
  return out;
}

std::vector<const ScanPredicate*> QuerySpec::FiltersFor(int rel) const {
  std::vector<const ScanPredicate*> out;
  for (const ScanPredicate& p : filters) {
    if (p.column.rel == rel) out.push_back(&p);
  }
  return out;
}

std::vector<const JoinEdge*> QuerySpec::JoinsWithin(RelSet set) const {
  std::vector<const JoinEdge*> out;
  for (const JoinEdge& e : joins) {
    if (set.ContainsAll(e.Relations())) out.push_back(&e);
  }
  return out;
}

std::vector<const JoinEdge*> QuerySpec::JoinsBetween(RelSet left,
                                                     RelSet right) const {
  std::vector<const JoinEdge*> out;
  for (const JoinEdge& e : joins) {
    bool l_in_left = left.Contains(e.left.rel);
    bool r_in_right = right.Contains(e.right.rel);
    bool l_in_right = right.Contains(e.left.rel);
    bool r_in_left = left.Contains(e.right.rel);
    if ((l_in_left && r_in_right) || (l_in_right && r_in_left)) {
      out.push_back(&e);
    }
  }
  return out;
}

namespace {

std::string ColumnRefToString(const QuerySpec& q, const ColumnRef& c) {
  const std::string& alias = q.relations[static_cast<size_t>(c.rel)].alias;
  if (!c.name.empty()) {
    return common::StrPrintf("%s.%s", alias.c_str(), c.name.c_str());
  }
  return common::StrPrintf("%s.#%d", alias.c_str(), c.col);
}

std::string PredicateToString(const QuerySpec& q, const ScanPredicate& p) {
  std::string col = ColumnRefToString(q, p.column);
  switch (p.kind) {
    case ScanPredicate::Kind::kCompare:
      return col + " " + CompareOpName(p.op) + " " + p.value.ToString();
    case ScanPredicate::Kind::kIn: {
      std::string out = col + " IN (";
      for (size_t i = 0; i < p.in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += p.in_list[i].ToString();
      }
      return out + ")";
    }
    case ScanPredicate::Kind::kLike:
      return col + " LIKE " + p.value.ToString();
    case ScanPredicate::Kind::kNotLike:
      return col + " NOT LIKE " + p.value.ToString();
    case ScanPredicate::Kind::kBetween:
      return col + " BETWEEN " + p.value.ToString() + " AND " +
             p.value2.ToString();
    case ScanPredicate::Kind::kIsNull:
      return col + " IS NULL";
    case ScanPredicate::Kind::kIsNotNull:
      return col + " IS NOT NULL";
  }
  return "?";
}

}  // namespace

std::string QuerySpec::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i > 0) out += ", ";
    const OutputExpr& e = outputs[i];
    std::string col = ColumnRefToString(*this, e.column);
    out += e.min_agg ? ("MIN(" + col + ")") : col;
    if (!e.label.empty()) out += " AS " + e.label;
  }
  out += "\nFROM ";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) out += ", ";
    out += relations[i].table_name + " AS " + relations[i].alias;
  }
  out += "\nWHERE ";
  bool first = true;
  for (const ScanPredicate& p : filters) {
    if (!first) out += "\n  AND ";
    out += PredicateToString(*this, p);
    first = false;
  }
  for (const JoinEdge& e : joins) {
    if (!first) out += "\n  AND ";
    out += ColumnRefToString(*this, e.left) + " = " +
           ColumnRefToString(*this, e.right);
    first = false;
  }
  out += ";";
  return out;
}

}  // namespace reopt::plan
