// The query's join graph: relations as nodes, equi-join edges. Provides the
// connectivity machinery the DP enumerator and the true-cardinality oracle
// need, including a memoized enumeration of connected-subset /
// connected-complement pairs (csg-cmp pairs).
#ifndef REOPT_PLAN_JOIN_GRAPH_H_
#define REOPT_PLAN_JOIN_GRAPH_H_

#include <vector>

#include "plan/query_spec.h"
#include "plan/rel_set.h"

namespace reopt::plan {

/// A pair (left, right) of disjoint, individually-connected relation sets
/// with at least one join edge between them. The DP considers joining the
/// two sides for the combined set left ∪ right.
struct CsgCmpPair {
  RelSet left;
  RelSet right;
};

class JoinGraph {
 public:
  explicit JoinGraph(const QuerySpec& query);

  int num_relations() const { return num_relations_; }

  /// Relations adjacent to `rel`.
  RelSet Neighbors(int rel) const {
    return neighbors_[static_cast<size_t>(rel)];
  }

  /// Relations adjacent to any member of `set` (excluding `set` itself).
  RelSet NeighborsOf(RelSet set) const;

  /// True if the induced subgraph on `set` is connected (singletons are
  /// connected; the empty set is not).
  bool IsConnected(RelSet set) const;

  /// All connected subsets of the full relation set, ascending by bits.
  /// Computed lazily and cached.
  const std::vector<RelSet>& ConnectedSubsets() const;

  /// All csg-cmp pairs, grouped by their union; within one union the pairs
  /// are deduplicated so (A,B) appears once (not also as (B,A)).
  /// Computed lazily and cached; reused across repeated plannings of the
  /// same query (perfect-(n) sweeps, threshold sweeps).
  const std::vector<CsgCmpPair>& ConnectedPairs() const;

 private:
  int num_relations_;
  std::vector<RelSet> neighbors_;
  mutable std::vector<RelSet> connected_subsets_;      // lazy
  mutable std::vector<CsgCmpPair> connected_pairs_;    // lazy
  mutable std::vector<uint8_t> connected_bitmap_;      // lazy, 2^n entries
  void EnsureConnectivityComputed() const;
};

}  // namespace reopt::plan

#endif  // REOPT_PLAN_JOIN_GRAPH_H_
