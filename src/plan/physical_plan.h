// Physical plan trees produced by the optimizer and consumed by the
// executor. Nodes carry the optimizer's cardinality/cost estimates and,
// after execution, the actual row counts and charged runtime — the
// EXPLAIN ANALYZE view the re-optimizer compares against.
#ifndef REOPT_PLAN_PHYSICAL_PLAN_H_
#define REOPT_PLAN_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "plan/query_spec.h"
#include "plan/rel_set.h"

namespace reopt::plan {

enum class PlanOp {
  kSeqScan,
  kIndexScan,            // equality predicate looked up in a hash index
  kHashJoin,             // left child = build side, right child = probe side
  kNestedLoopJoin,       // left child = outer, right child = inner
  kIndexNestedLoopJoin,  // left child = outer; inner base rel probed by index
  kAggregate,            // MIN() outputs over the single child
  kTempWrite,            // materialize child into a temp table (re-optimizer)
};

const char* PlanOpName(PlanOp op);

/// One node of a physical plan. Plain struct: the optimizer fills the shape
/// and estimates; the executor fills the `actual_*` fields.
struct PlanNode {
  // Plan trees are built and torn down on every planning round (the re-opt
  // loop re-plans per round, sweeps re-plan per configuration), so node
  // blocks come from a thread-local slab pool instead of the general heap —
  // transparent to make_unique/unique_ptr call sites. Constraint: a node
  // must be freed on the thread that allocated it; every plan today lives
  // and dies within one query run on one worker, and the TSan suites hold
  // the line.
  static void* operator new(std::size_t size);
  static void operator delete(void* ptr) noexcept;

  PlanOp op;
  /// Base relations (positions in the QuerySpec) covered by this subtree.
  RelSet rels;

  // ---- Optimizer estimates --------------------------------------------
  double est_rows = 0.0;  // estimated output rows of this node
  double est_cost = 0.0;  // cumulative estimated cost (this + children)

  // ---- Children --------------------------------------------------------
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  // ---- Scan fields (kSeqScan / kIndexScan) ------------------------------
  int scan_rel = -1;
  /// Filters applied during the scan (all of the relation's filters).
  std::vector<const ScanPredicate*> filters;
  /// kIndexScan: the equality/IN predicate answered by the index.
  const ScanPredicate* index_pred = nullptr;

  // ---- Join fields ------------------------------------------------------
  /// Equi-join edges applied at this node (all edges connecting the two
  /// sides).
  std::vector<const JoinEdge*> edges;
  /// kIndexNestedLoopJoin: the edge whose inner-side column is probed via
  /// the inner relation's hash index (must be one of `edges`; the rest are
  /// evaluated as residual conditions). The inner relation is
  /// right->scan_rel and right must be a scan node.
  const JoinEdge* index_edge = nullptr;

  // ---- TempWrite fields -------------------------------------------------
  std::string temp_table_name;
  /// Columns (of the covered relations) to materialize.
  std::vector<ColumnRef> temp_columns;

  // ---- Execution actuals (filled by the executor) -----------------------
  double actual_rows = -1.0;   // -1 = not executed
  double charged_cost = 0.0;   // this node only, in cost units

  bool is_scan() const {
    return op == PlanOp::kSeqScan || op == PlanOp::kIndexScan;
  }
  bool is_join() const {
    return op == PlanOp::kHashJoin || op == PlanOp::kNestedLoopJoin ||
           op == PlanOp::kIndexNestedLoopJoin;
  }

  /// Total charged cost of this subtree.
  double SubtreeChargedCost() const;

  /// Applies `fn` to every node, children before parents.
  template <typename Fn>
  void PostOrder(Fn&& fn) {
    if (left) left->PostOrder(fn);
    if (right) right->PostOrder(fn);
    fn(this);
  }
  template <typename Fn>
  void PostOrderConst(Fn&& fn) const {
    if (left) left->PostOrderConst(fn);
    if (right) right->PostOrderConst(fn);
    fn(this);
  }
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Deep copy of a plan subtree (actuals reset). Predicate/edge pointers
/// still reference the originating QuerySpec.
PlanNodePtr ClonePlan(const PlanNode& node);

/// Renders the plan tree, one node per line, EXPLAIN-style. When actuals
/// are present they are shown next to the estimates.
std::string ExplainPlan(const PlanNode& root, const QuerySpec& query);

}  // namespace reopt::plan

#endif  // REOPT_PLAN_PHYSICAL_PLAN_H_
