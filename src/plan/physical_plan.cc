#include "plan/physical_plan.h"

#include <new>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"

namespace reopt::plan {

namespace {

// Thread-local slab pool behind PlanNode::operator new/delete: allocation
// pops a free-listed block or bumps the current slab; deallocation pushes
// the block back. Slabs are returned to the heap when the thread exits, so
// short-lived sweep workers do not leak their arenas.
constexpr size_t kPoolSlabNodes = 256;

struct NodePool {
  void* free_list = nullptr;
  std::vector<char*> slabs;
  size_t used_in_slab = kPoolSlabNodes;  // forces a slab on first alloc
  bool alive = true;

  ~NodePool() {
    alive = false;
    free_list = nullptr;
    for (char* slab : slabs) ::operator delete(slab);
  }
};

thread_local NodePool g_node_pool;

}  // namespace

void* PlanNode::operator new(std::size_t size) {
  REOPT_CHECK(size == sizeof(PlanNode));
  NodePool& pool = g_node_pool;
  if (pool.free_list != nullptr) {
    void* node = pool.free_list;
    pool.free_list = *static_cast<void**>(node);
    return node;
  }
  if (pool.used_in_slab == kPoolSlabNodes) {
    pool.slabs.push_back(static_cast<char*>(
        ::operator new(sizeof(PlanNode) * kPoolSlabNodes)));
    pool.used_in_slab = 0;
  }
  return pool.slabs.back() + sizeof(PlanNode) * pool.used_in_slab++;
}

void PlanNode::operator delete(void* ptr) noexcept {
  if (ptr == nullptr) return;
  NodePool& pool = g_node_pool;
  // Thread teardown: the pool destructor already reclaimed every slab, so
  // a straggling node (static-duration tree torn down during exit) has
  // nothing to return to.
  if (!pool.alive) return;
  *static_cast<void**>(ptr) = pool.free_list;
  pool.free_list = ptr;
}

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kSeqScan:
      return "SeqScan";
    case PlanOp::kIndexScan:
      return "IndexScan";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kNestedLoopJoin:
      return "NestedLoop";
    case PlanOp::kIndexNestedLoopJoin:
      return "IndexNestedLoop";
    case PlanOp::kAggregate:
      return "Aggregate";
    case PlanOp::kTempWrite:
      return "TempWrite";
  }
  return "?";
}

double PlanNode::SubtreeChargedCost() const {
  double total = 0.0;
  PostOrderConst([&total](const PlanNode* n) { total += n->charged_cost; });
  return total;
}

PlanNodePtr ClonePlan(const PlanNode& node) {
  auto copy = std::make_unique<PlanNode>();
  copy->op = node.op;
  copy->rels = node.rels;
  copy->est_rows = node.est_rows;
  copy->est_cost = node.est_cost;
  copy->scan_rel = node.scan_rel;
  copy->filters = node.filters;
  copy->index_pred = node.index_pred;
  copy->edges = node.edges;
  copy->index_edge = node.index_edge;
  copy->temp_table_name = node.temp_table_name;
  copy->temp_columns = node.temp_columns;
  if (node.left) copy->left = ClonePlan(*node.left);
  if (node.right) copy->right = ClonePlan(*node.right);
  return copy;
}

namespace {

void ExplainNode(const PlanNode& node, const QuerySpec& query, int depth,
                 std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(PlanOpName(node.op));
  if (node.is_scan()) {
    const RelationRef& rel =
        query.relations[static_cast<size_t>(node.scan_rel)];
    out->append(common::StrPrintf(" %s AS %s", rel.table_name.c_str(),
                                  rel.alias.c_str()));
    if (!node.filters.empty()) {
      out->append(
          common::StrPrintf(" (%d filters)",
                            static_cast<int>(node.filters.size())));
    }
  } else if (node.is_join()) {
    out->append(common::StrPrintf(" on %d edge(s)",
                                  static_cast<int>(node.edges.size())));
  } else if (node.op == PlanOp::kTempWrite) {
    out->append(" -> ");
    out->append(node.temp_table_name);
  }
  out->append(common::StrPrintf("  (est_rows=%.0f est_cost=%.1f",
                                node.est_rows, node.est_cost));
  if (node.actual_rows >= 0.0) {
    out->append(common::StrPrintf(" actual_rows=%.0f charged=%.1f",
                                  node.actual_rows, node.charged_cost));
  }
  out->append(")\n");
  if (node.left) ExplainNode(*node.left, query, depth + 1, out);
  if (node.right) ExplainNode(*node.right, query, depth + 1, out);
}

}  // namespace

std::string ExplainPlan(const PlanNode& root, const QuerySpec& query) {
  std::string out;
  ExplainNode(root, query, 0, &out);
  return out;
}

}  // namespace reopt::plan
