#include "plan/physical_plan.h"

#include "common/string_util.h"

namespace reopt::plan {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kSeqScan:
      return "SeqScan";
    case PlanOp::kIndexScan:
      return "IndexScan";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kNestedLoopJoin:
      return "NestedLoop";
    case PlanOp::kIndexNestedLoopJoin:
      return "IndexNestedLoop";
    case PlanOp::kAggregate:
      return "Aggregate";
    case PlanOp::kTempWrite:
      return "TempWrite";
  }
  return "?";
}

double PlanNode::SubtreeChargedCost() const {
  double total = 0.0;
  PostOrderConst([&total](const PlanNode* n) { total += n->charged_cost; });
  return total;
}

PlanNodePtr ClonePlan(const PlanNode& node) {
  auto copy = std::make_unique<PlanNode>();
  copy->op = node.op;
  copy->rels = node.rels;
  copy->est_rows = node.est_rows;
  copy->est_cost = node.est_cost;
  copy->scan_rel = node.scan_rel;
  copy->filters = node.filters;
  copy->index_pred = node.index_pred;
  copy->edges = node.edges;
  copy->index_edge = node.index_edge;
  copy->temp_table_name = node.temp_table_name;
  copy->temp_columns = node.temp_columns;
  if (node.left) copy->left = ClonePlan(*node.left);
  if (node.right) copy->right = ClonePlan(*node.right);
  return copy;
}

namespace {

void ExplainNode(const PlanNode& node, const QuerySpec& query, int depth,
                 std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(PlanOpName(node.op));
  if (node.is_scan()) {
    const RelationRef& rel =
        query.relations[static_cast<size_t>(node.scan_rel)];
    out->append(common::StrPrintf(" %s AS %s", rel.table_name.c_str(),
                                  rel.alias.c_str()));
    if (!node.filters.empty()) {
      out->append(
          common::StrPrintf(" (%d filters)",
                            static_cast<int>(node.filters.size())));
    }
  } else if (node.is_join()) {
    out->append(common::StrPrintf(" on %d edge(s)",
                                  static_cast<int>(node.edges.size())));
  } else if (node.op == PlanOp::kTempWrite) {
    out->append(" -> ");
    out->append(node.temp_table_name);
  }
  out->append(common::StrPrintf("  (est_rows=%.0f est_cost=%.1f",
                                node.est_rows, node.est_cost));
  if (node.actual_rows >= 0.0) {
    out->append(common::StrPrintf(" actual_rows=%.0f charged=%.1f",
                                  node.actual_rows, node.charged_cost));
  }
  out->append(")\n");
  if (node.left) ExplainNode(*node.left, query, depth + 1, out);
  if (node.right) ExplainNode(*node.right, query, depth + 1, out);
}

}  // namespace

std::string ExplainPlan(const PlanNode& root, const QuerySpec& query) {
  std::string out;
  ExplainNode(root, query, 0, &out);
  return out;
}

}  // namespace reopt::plan
