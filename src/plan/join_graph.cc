#include "plan/join_graph.h"

#include "common/check.h"

namespace reopt::plan {

JoinGraph::JoinGraph(const QuerySpec& query)
    : num_relations_(query.num_relations()),
      neighbors_(static_cast<size_t>(query.num_relations())) {
  REOPT_CHECK_MSG(num_relations_ <= 22,
                  "join graph connectivity tables support <= 22 relations");
  for (const JoinEdge& e : query.joins) {
    neighbors_[static_cast<size_t>(e.left.rel)] =
        neighbors_[static_cast<size_t>(e.left.rel)].With(e.right.rel);
    neighbors_[static_cast<size_t>(e.right.rel)] =
        neighbors_[static_cast<size_t>(e.right.rel)].With(e.left.rel);
  }
}

RelSet JoinGraph::NeighborsOf(RelSet set) const {
  RelSet out;
  for (int r : set.Members()) {
    out = out.Union(Neighbors(r));
  }
  return out.Minus(set);
}

bool JoinGraph::IsConnected(RelSet set) const {
  if (set.empty()) return false;
  if (set.count() == 1) return true;
  // Expand from the lowest member until a fixpoint; connected iff we reach
  // the whole set.
  RelSet reached = RelSet::Single(set.Lowest());
  while (true) {
    RelSet frontier;
    for (int r : reached.Members()) {
      frontier = frontier.Union(Neighbors(r));
    }
    RelSet next = reached.Union(frontier.Intersect(set));
    if (next == reached) break;
    reached = next;
  }
  return reached == set;
}

void JoinGraph::EnsureConnectivityComputed() const {
  if (!connected_bitmap_.empty()) return;
  size_t total = size_t{1} << num_relations_;
  connected_bitmap_.assign(total, 0);
  connected_subsets_.clear();
  for (uint64_t bits = 1; bits < total; ++bits) {
    RelSet set(bits);
    if (IsConnected(set)) {
      connected_bitmap_[bits] = 1;
      connected_subsets_.push_back(set);
    }
  }
}

const std::vector<RelSet>& JoinGraph::ConnectedSubsets() const {
  EnsureConnectivityComputed();
  return connected_subsets_;
}

const std::vector<CsgCmpPair>& JoinGraph::ConnectedPairs() const {
  EnsureConnectivityComputed();
  if (!connected_pairs_.empty() || num_relations_ < 2) {
    return connected_pairs_;
  }
  for (RelSet s : connected_subsets_) {
    if (s.count() < 2) continue;
    uint64_t low_bit = uint64_t{1} << s.Lowest();
    uint64_t rest = s.bits() & ~low_bit;
    // Enumerate submasks s1 of s that contain the lowest bit (so each
    // unordered partition appears exactly once).
    for (uint64_t sub = rest;; sub = (sub - 1) & rest) {
      uint64_t left_bits = sub | low_bit;
      uint64_t right_bits = s.bits() & ~left_bits;
      if (right_bits != 0 && connected_bitmap_[left_bits] &&
          connected_bitmap_[right_bits]) {
        RelSet left(left_bits);
        RelSet right(right_bits);
        if (NeighborsOf(left).Intersects(right)) {
          connected_pairs_.push_back(CsgCmpPair{left, right});
        }
      }
      if (sub == 0) break;
    }
  }
  return connected_pairs_;
}

}  // namespace reopt::plan
