// RelSet: a bitmap over the relations of one query (JOB maxes out at 17
// relations; we support 64). Used as the DP table key, the oracle cache key
// and the re-optimizer's subtree identifier.
#ifndef REOPT_PLAN_REL_SET_H_
#define REOPT_PLAN_REL_SET_H_

#include <cstdint>
#include <string>

#include "common/check.h"

namespace reopt::plan {

/// A set of relation positions (0-based) within one query.
class RelSet {
 public:
  constexpr RelSet() : bits_(0) {}
  constexpr explicit RelSet(uint64_t bits) : bits_(bits) {}

  static constexpr RelSet Single(int rel) {
    return RelSet(uint64_t{1} << rel);
  }
  /// The set {0, 1, ..., n-1}.
  static constexpr RelSet FirstN(int n) {
    return RelSet(n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1);
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  int count() const { return __builtin_popcountll(bits_); }

  constexpr bool Contains(int rel) const {
    return (bits_ >> rel) & uint64_t{1};
  }
  constexpr bool ContainsAll(RelSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Intersects(RelSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  constexpr RelSet Union(RelSet other) const {
    return RelSet(bits_ | other.bits_);
  }
  constexpr RelSet Intersect(RelSet other) const {
    return RelSet(bits_ & other.bits_);
  }
  constexpr RelSet Minus(RelSet other) const {
    return RelSet(bits_ & ~other.bits_);
  }
  constexpr RelSet With(int rel) const {
    return RelSet(bits_ | (uint64_t{1} << rel));
  }
  constexpr RelSet Without(int rel) const {
    return RelSet(bits_ & ~(uint64_t{1} << rel));
  }

  /// Lowest relation in the set; undefined on empty sets.
  int Lowest() const {
    REOPT_CHECK(!empty());
    return __builtin_ctzll(bits_);
  }

  /// Iterates set members: `for (int r : set.Members())`.
  class MemberIterator {
   public:
    explicit MemberIterator(uint64_t bits) : bits_(bits) {}
    int operator*() const { return __builtin_ctzll(bits_); }
    MemberIterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const MemberIterator& other) const {
      return bits_ != other.bits_;
    }

   private:
    uint64_t bits_;
  };
  struct MemberRange {
    uint64_t bits;
    MemberIterator begin() const { return MemberIterator(bits); }
    MemberIterator end() const { return MemberIterator(0); }
  };
  MemberRange Members() const { return MemberRange{bits_}; }

  constexpr bool operator==(const RelSet& other) const {
    return bits_ == other.bits_;
  }
  constexpr bool operator!=(const RelSet& other) const {
    return bits_ != other.bits_;
  }
  constexpr bool operator<(const RelSet& other) const {
    return bits_ < other.bits_;
  }

  /// "{0,3,5}" rendering.
  std::string ToString() const;

 private:
  uint64_t bits_;
};

}  // namespace reopt::plan

#endif  // REOPT_PLAN_REL_SET_H_
