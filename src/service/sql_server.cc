#include "service/sql_server.h"

#include <cmath>
#include <functional>
#include <thread>
#include <utility>

#include "common/fail_point.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace reopt::service {

// ---- Ticket ----------------------------------------------------------------

const QueryReply& Ticket::Wait() const {
  common::MutexLock lock(&mu_);
  while (!done_) cv_.Wait(&mu_);
  return reply_;
}

const QueryReply* Ticket::WaitFor(double timeout_seconds) const {
  if (timeout_seconds < 0.0) timeout_seconds = 0.0;
  const auto deadline =
      SqlServer::Clock::now() +
      std::chrono::duration_cast<SqlServer::Clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  common::MutexLock lock(&mu_);
  while (!done_) {
    const auto now = SqlServer::Clock::now();
    if (now >= deadline) return nullptr;
    (void)cv_.WaitFor(&mu_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                                deadline - now));
  }
  return &reply_;
}

void Ticket::Cancel() {
  if (cancel_ != nullptr) cancel_->Cancel();
}

bool Ticket::done() const {
  common::MutexLock lock(&mu_);
  return done_;
}

void Ticket::Fulfill(QueryReply reply) {
  {
    common::MutexLock lock(&mu_);
    // lint: allow-check(internal invariant, not user input: exactly one
    // worker fulfills a ticket; a second Fulfill is a server bug)
    REOPT_CHECK_MSG(!done_, "ticket fulfilled twice");
    reply_ = std::move(reply);
    done_ = true;
  }
  cv_.NotifyAll();
}

// ---- SqlSession ------------------------------------------------------------

namespace {

/// The statement's cancellation token, with the deadline (if any) already
/// set — the token is about to be shared with a worker, and
/// CancelToken::set_deadline must happen before that.
std::shared_ptr<exec::CancelToken> MakeToken(SqlServer::Clock::time_point now,
                                             double timeout_seconds) {
  auto token = std::make_shared<exec::CancelToken>();
  if (timeout_seconds > 0.0) {
    token->set_deadline(now +
                        std::chrono::duration_cast<SqlServer::Clock::duration>(
                            std::chrono::duration<double>(timeout_seconds)));
  }
  return token;
}

}  // namespace

TicketPtr SqlSession::Submit(std::string sql) {
  return Submit(std::move(sql), server_->options_.default_timeout_seconds);
}

TicketPtr SqlSession::Submit(std::string sql, double timeout_seconds) {
  const SqlServer::Clock::time_point now = SqlServer::Clock::now();
  auto ticket = std::make_shared<Ticket>();
  auto token = MakeToken(now, timeout_seconds);
  ticket->cancel_ = token;
  if (common::failpoint::Triggered("service.queue_push")) {
    QueryReply reply;
    reply.status = common::Status::Unavailable(
        "injected fault at fail point service.queue_push");
    ticket->Fulfill(std::move(reply));
    server_->CountSubmission(/*admitted=*/false);
    return ticket;
  }
  SqlServer::Pending pending{std::move(sql), ticket, now, std::move(token)};
  bool pushed;
  if (timeout_seconds > 0.0) {
    // Bounded backpressure: waiting for queue space counts against the
    // statement's own deadline, so an admission that cannot happen in time
    // is shed instead of blocking the client past it.
    pushed = server_->queue_.PushFor(
        std::move(pending),
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(timeout_seconds)));
  } else {
    pushed = server_->queue_.Push(std::move(pending));
  }
  if (!pushed) {
    QueryReply reply;
    reply.status =
        server_->queue_.closed()
            ? common::Status::Internal("server is shut down")
            : common::Status::ResourceExhausted(
                  "submission queue still full at the statement deadline");
    ticket->Fulfill(std::move(reply));
    server_->CountSubmission(/*admitted=*/false);
    return ticket;
  }
  server_->CountSubmission(/*admitted=*/true);
  return ticket;
}

TicketPtr SqlSession::TrySubmit(std::string sql) {
  const SqlServer::Clock::time_point now = SqlServer::Clock::now();
  auto ticket = std::make_shared<Ticket>();
  auto token = MakeToken(now, server_->options_.default_timeout_seconds);
  ticket->cancel_ = token;
  SqlServer::Pending pending{std::move(sql), ticket, now, std::move(token)};
  if (!server_->queue_.TryPush(std::move(pending))) {
    server_->CountSubmission(/*admitted=*/false);
    return nullptr;
  }
  server_->CountSubmission(/*admitted=*/true);
  return ticket;
}

QueryReply SqlSession::Execute(std::string sql) {
  return Submit(std::move(sql))->Wait();
}

// ---- SqlServer -------------------------------------------------------------

namespace {

ServerOptions Sanitize(ServerOptions options) {
  if (options.session_workers < 1) options.session_workers = 1;
  if (options.intra_query_threads < 1) options.intra_query_threads = 1;
  if (options.queue_capacity < 1) options.queue_capacity = 1;
  return options;
}

double SecondsBetween(SqlServer::Clock::time_point from,
                      SqlServer::Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

SqlServer::SqlServer(storage::Catalog* catalog,
                     stats::StatsCatalog* stats_catalog,
                     ServerOptions options)
    : catalog_(catalog),
      stats_catalog_(stats_catalog),
      options_(Sanitize(std::move(options))),
      queue_(static_cast<std::size_t>(options_.queue_capacity)) {
  workers_ = std::make_unique<common::ThreadPool>(options_.session_workers);
  // One long-running drain loop per worker, each with its own loop id:
  // distinct ids guarantee distinct temp-table namespaces no matter how the
  // pool schedules the loop tasks.
  for (int w = 0; w < options_.session_workers; ++w) {
    workers_->Submit([this, w](int) { WorkerLoop(w); });
  }
}

SqlServer::~SqlServer() { Shutdown(); }

void SqlServer::CountSubmission(bool admitted) {
  common::MutexLock lock(&stats_mu_);
  if (admitted) {
    ++stats_.submitted;
  } else {
    ++stats_.rejected;
  }
}

SqlSession* SqlServer::OpenSession(std::string name) {
  common::MutexLock lock(&sessions_mu_);
  int id = static_cast<int>(sessions_.size());
  if (name.empty()) name = "session" + std::to_string(id);
  sessions_.push_back(std::unique_ptr<SqlSession>(
      new SqlSession(this, id, std::move(name))));
  return sessions_.back().get();
}

void SqlServer::Shutdown() {
  common::MutexLock lock(&shutdown_mu_);
  if (shut_down_.exchange(true)) return;
  // Close() fails further pushes but lets the workers drain every accepted
  // statement, so no ticket is ever left unfulfilled.
  queue_.Close();
  workers_->Wait();
  workers_.reset();  // joins the threads
  // Temp tables created through the server die with it, as session-scoped
  // temp tables do in a real DBMS.
  std::vector<std::string> created;
  {
    common::MutexLock stats_lock(&stats_mu_);
    created.swap(created_tables_);
  }
  for (const std::string& name : created) {
    (void)catalog_->DropTable(name);
    stats_catalog_->Remove(name);
  }
}

ServerStats SqlServer::Snapshot() const {
  common::MutexLock lock(&stats_mu_);
  return stats_;
}

void SqlServer::WorkerLoop(int worker) {
  // Worker-private execution state, mirroring the parallel sweep engine:
  // same catalog/stats/params as every other worker, plus a namespaced
  // temp-table space so concurrent re-optimization rounds never collide.
  reoptimizer::QueryRunner runner(catalog_, stats_catalog_, options_.params);
  runner.set_temp_namespace("svc_w" + std::to_string(worker));
  runner.set_intra_query_threads(options_.intra_query_threads);
  runner.set_knowledge_base(options_.knowledge_base);
  sql::Engine engine(catalog_, stats_catalog_, options_.params);
  engine.set_intra_query_threads(options_.intra_query_threads);

  while (true) {
    std::optional<Pending> pending = queue_.Pop();
    if (!pending.has_value()) break;  // closed and drained
    const Clock::time_point dequeued_at = Clock::now();
    const exec::CancelToken* token = pending->cancel.get();
    QueryReply reply;
    common::Status admit =
        token != nullptr ? token->Check() : common::Status::OK();
    if (!admit.ok()) {
      // The deadline expired (or the client cancelled) while the statement
      // sat in the queue: fail it at dequeue time without charging any
      // planning or execution work, freeing the worker for the next one.
      reply.status = std::move(admit);
    } else {
      // A failing statement fails *that* statement only: the worker and its
      // sibling sessions keep serving. The engine/runner report errors as
      // Status; the catch is a backstop so even an escaped exception cannot
      // take the drain loop (and every later ticket) down with it.
      try {
        reply = RunWithRetries(worker, &runner, &engine, pending->sql, token);
      } catch (const std::exception& e) {
        reply = QueryReply{};
        reply.status = common::Status::Internal(
            std::string("statement execution threw: ") + e.what());
      } catch (...) {
        reply = QueryReply{};
        reply.status =
            common::Status::Internal("statement execution threw");
      }
    }
    reply.worker = worker;
    reply.queue_seconds = SecondsBetween(pending->submitted_at, dequeued_at);
    reply.wall_seconds = SecondsBetween(pending->submitted_at, Clock::now());
    RecordReply(reply);
    pending->ticket->Fulfill(std::move(reply));
  }
}

common::Result<std::shared_ptr<SqlServer::CachedStatement>>
SqlServer::LookupStatement(const std::string& sql, bool* hit) {
  *hit = false;
  {
    common::MutexLock lock(&cache_mu_);
    auto it = statement_cache_.find(sql);
    if (it != statement_cache_.end()) {
      *hit = true;
      return it->second;
    }
  }
  // Parse and bind outside the lock; workers racing on the same new
  // statement each build an identical entry and the first insert wins.
  auto parsed = sql::ParseStatement(sql, *catalog_, "svc");
  if (!parsed.ok()) return parsed.status();
  auto entry = std::make_shared<CachedStatement>();
  entry->parsed = std::move(parsed.value());

  const bool is_select = entry->parsed.create_table_name.empty();
  bool cacheable = is_select;
  for (const plan::RelationRef& rel : entry->parsed.query->relations) {
    // A statement over a temp table must not outlive the table in the
    // cache (the table can be dropped while the entry survives).
    if (catalog_->IsTemporary(rel.table_name)) cacheable = false;
  }
  if (is_select) {
    auto session = reoptimizer::QuerySession::Create(
        entry->parsed.query.get(), catalog_, stats_catalog_);
    if (!session.ok()) return session.status();
    entry->session = std::move(session.value());
  }
  if (!cacheable) return entry;

  common::MutexLock lock(&cache_mu_);
  auto inserted = statement_cache_.emplace(sql, entry);
  if (!inserted.second) {
    // A racing worker published first; share its entry (and its session —
    // the whole point of the cross-session cache).
    *hit = true;
    return inserted.first->second;
  }
  return entry;
}

QueryReply SqlServer::RunWithRetries(int worker,
                                     reoptimizer::QueryRunner* runner,
                                     sql::Engine* engine,
                                     const std::string& sql,
                                     const exec::CancelToken* cancel) {
  const int max_retries = options_.max_retries < 0 ? 0 : options_.max_retries;
  QueryReply reply;
  for (int attempt = 0;; ++attempt) {
    reply = RunStatement(worker, runner, engine, sql, cancel);
    reply.retry_attempts = attempt;
    if (reply.status.ok() || !common::IsTransient(reply.status.code()) ||
        attempt >= max_retries) {
      return reply;
    }
    // Exponential backoff with deterministic jitter: seeded from the
    // statement text and the attempt number, so replays reproduce the same
    // schedule and concurrent workers retrying distinct statements spread
    // out, with no shared state between them.
    common::Rng rng(static_cast<uint64_t>(std::hash<std::string>{}(sql)) ^
                    (0x9e3779b97f4a7c15ull *
                     static_cast<uint64_t>(attempt + 1)));
    double sleep_seconds = options_.retry_backoff_seconds *
                           std::ldexp(1.0, attempt) *
                           (0.5 + rng.UniformDouble());
    if (cancel != nullptr && cancel->has_deadline()) {
      // Never sleep past the statement's deadline; the re-check below turns
      // an expiry during backoff into DeadlineExceeded immediately.
      const double remaining =
          std::chrono::duration<double>(cancel->deadline() - Clock::now())
              .count();
      if (remaining < sleep_seconds) sleep_seconds = remaining;
    }
    if (sleep_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
    }
    if (cancel != nullptr) {
      common::Status tripped = cancel->Check();
      if (!tripped.ok()) {
        reply = QueryReply{};
        reply.status = std::move(tripped);
        reply.retry_attempts = attempt;
        return reply;
      }
    }
  }
}

QueryReply SqlServer::RunStatement(int worker,
                                   reoptimizer::QueryRunner* runner,
                                   sql::Engine* engine,
                                   const std::string& sql,
                                   const exec::CancelToken* cancel) {
  (void)worker;
  QueryReply reply;
  if (common::failpoint::Triggered("service.worker_exec")) {
    reply.status = common::Status::Unavailable(
        "injected fault at fail point service.worker_exec");
    return reply;
  }
  bool hit = false;
  auto looked_up = LookupStatement(sql, &hit);
  if (!looked_up.ok()) {
    reply.status = looked_up.status();
    return reply;
  }
  std::shared_ptr<CachedStatement> stmt = std::move(looked_up.value());
  reply.cache_hit = hit;

  if (stmt->session != nullptr) {
    // SELECT: through the re-optimizing runner, sharing the statement's
    // QuerySession (oracle cache + round-0 plan memos) across sessions.
    auto run = runner->Run(stmt->session.get(), options_.model,
                           options_.reopt, cancel);
    if (!run.ok()) {
      reply.status = run.status();
      return reply;
    }
    reply.outcome.aggregates = std::move(run->aggregates);
    reply.outcome.raw_rows = run->raw_rows;
    reply.outcome.plan_cost_units = run->plan_cost_units;
    reply.outcome.exec_cost_units = run->exec_cost_units;
    reply.outcome.num_materializations = run->num_materializations;
    reply.outcome.degraded = run->degraded;
    return reply;
  }

  // CREATE TEMP TABLE ... AS SELECT: through the plain engine pipeline.
  engine->set_cancel_token(cancel);
  auto executed = engine->ExecuteParsed(stmt->parsed);
  engine->set_cancel_token(nullptr);  // token dies with the Pending entry
  if (!executed.ok()) {
    reply.status = executed.status();
    return reply;
  }
  reply.outcome = std::move(executed.value());
  if (!reply.outcome.created_table.empty()) {
    common::MutexLock lock(&stats_mu_);
    created_tables_.push_back(reply.outcome.created_table);
  }
  return reply;
}

void SqlServer::RecordReply(const QueryReply& reply) {
  common::MutexLock lock(&stats_mu_);
  if (reply.status.ok()) {
    ++stats_.completed;
    if (reply.outcome.degraded) ++stats_.degraded;
    stats_.sim_plan_seconds +=
        common::CostUnitsToSeconds(reply.outcome.plan_cost_units);
    stats_.sim_exec_seconds +=
        common::CostUnitsToSeconds(reply.outcome.exec_cost_units);
  } else {
    ++stats_.failed;
    if (reply.status.code() == common::StatusCode::kDeadlineExceeded) {
      ++stats_.timed_out;
    } else if (reply.status.code() == common::StatusCode::kCancelled) {
      ++stats_.cancelled;
    }
  }
  stats_.retried += reply.retry_attempts;
  if (reply.cache_hit) ++stats_.cache_hits;
  stats_.wall_latency_seconds.push_back(reply.wall_seconds);
}

}  // namespace reopt::service
