// An embedded multi-session SQL server: the concurrent front end the
// ROADMAP's "millions of users" north star needs in order to mean anything.
// N client sessions submit SQL statements into one bounded queue; a fixed
// pool of session workers drains it, running every statement through the
// shared parse -> bind -> plan -> execute pipeline (sql/engine.h), with the
// re-optimizing QueryRunner underneath when re-optimization is enabled.
//
// Concurrency budget (docs/ARCHITECTURE.md, "Service layer"): the server
// occupies session_workers x intra_query_threads live threads — the same
// two-level inter x intra budget the workload sweeps use — and the bounded
// queue is the admission-control valve in front of it: Submit applies
// backpressure (blocks when the queue is full), TrySubmit sheds load
// (rejects, counted in ServerStats::rejected).
//
// Cache sharing: SELECT statements are cached by SQL text in a
// cross-session statement cache. Each entry owns the bound spec plus a
// reoptimizer::QuerySession, so all sessions share one true-cardinality
// oracle and one round-0 plan memo per distinct statement — the second
// client to send a popular query replays the first client's memo instead of
// re-running the DP. The StatsCatalog is shared by construction.
//
// Determinism invariant: per-query results (aggregates, raw_rows, plan and
// exec cost units) are byte-identical to a serial single-session run at any
// (sessions x workers x intra-threads) setting. SELECTs read shared
// immutable state through thread-safe catalogs; every worker plans with the
// same model over the same statistics; re-optimization temp tables are
// namespaced per worker ("svc_w<k>"). The service differential suite
// (tests/service_test.cc, tsan-labelled) proves it over all 113 queries.
#ifndef REOPT_SERVICE_SQL_SERVER_H_
#define REOPT_SERVICE_SQL_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/cancel.h"
#include "optimizer/cost_params.h"
#include "reopt/query_runner.h"
#include "sql/engine.h"
#include "stats/stats_catalog.h"
#include "storage/catalog.h"

namespace reopt::service {

struct ServerOptions {
  /// Inter-session worker threads draining the submission queue.
  int session_workers = 2;
  /// Morsel threads per executing statement. The server occupies
  /// session_workers x intra_query_threads live threads total.
  int intra_query_threads = 1;
  /// Bounded submission-queue capacity (admission control).
  int queue_capacity = 64;
  /// Default per-statement deadline applied by Submit/TrySubmit when the
  /// caller passes no explicit timeout (seconds; <= 0 = none). The deadline
  /// covers queue wait + execution and is enforced cooperatively through an
  /// exec::CancelToken: expiry surfaces as DeadlineExceeded, never a crash,
  /// and any temp tables/statistics the statement materialized are dropped.
  double default_timeout_seconds = 0.0;
  /// Bounded retry for transient failures (common::IsTransient, e.g. an
  /// injected Unavailable): up to this many re-runs of the statement on the
  /// same worker, with exponential backoff and deterministic jitter seeded
  /// from the statement text, capped by the remaining deadline. 0 = fail on
  /// the first error. DeadlineExceeded/Cancelled are never retried.
  int max_retries = 0;
  /// Base backoff before the first retry (doubles each further attempt).
  double retry_backoff_seconds = 0.0005;
  optimizer::CostParams params;
  /// Cardinality model and re-optimization setting applied to every SELECT.
  /// Defaults: plain estimator, re-optimization off.
  reoptimizer::ModelSpec model;
  reoptimizer::ReoptOptions reopt;
  /// Shared learned-cardinality knowledge base, attached to every session
  /// worker's QueryRunner (nullptr, the default, disables learning). Must
  /// outlive the server; internally synchronized, so one base may warm
  /// across several servers and workload sweeps at once. Note the
  /// determinism invariant below assumes a frozen or absent base — with
  /// learning enabled, reply *contents* for re-optimized statements can
  /// depend on how warm the base was when the statement ran.
  optimizer::CardinalityKnowledgeBase* knowledge_base = nullptr;
};

/// Outcome of one submitted statement, delivered through its Ticket.
struct QueryReply {
  common::Status status;
  /// Valid only when status.ok().
  sql::StatementOutcome outcome;
  /// Wall-clock submit -> completion (includes queue wait).
  double wall_seconds = 0.0;
  /// Wall-clock submit -> dequeue (the admission/queueing share).
  double queue_seconds = 0.0;
  /// True when the statement hit the shared statement cache.
  bool cache_hit = false;
  /// Transient-failure re-runs this statement consumed (0 = first run
  /// settled it; counted into ServerStats::retried).
  int retry_attempts = 0;
  /// Worker that executed the statement (-1 = rejected before dispatch).
  int worker = -1;
};

/// One submitted statement's completion handle. Thread-safe: any thread may
/// Wait(); the executing worker fulfills it exactly once.
class Ticket {
 public:
  /// Blocks until the statement finishes; the reply stays valid for the
  /// ticket's lifetime.
  const QueryReply& Wait() const EXCLUDES(mu_);
  /// Blocks until the statement finishes or `timeout_seconds` elapses.
  /// Returns nullptr on timeout — the statement keeps running and the
  /// ticket stays waitable; pair with Cancel() to abandon it instead.
  const QueryReply* WaitFor(double timeout_seconds) const EXCLUDES(mu_);
  /// Requests cooperative cancellation of the statement this ticket tracks.
  /// Safe from any thread, idempotent, best-effort by design: a statement
  /// that completes first simply delivers its reply; one still queued or
  /// executing finishes early with status Cancelled (temp state dropped).
  void Cancel();
  bool done() const EXCLUDES(mu_);

 private:
  friend class SqlServer;
  friend class SqlSession;
  void Fulfill(QueryReply reply) EXCLUDES(mu_);

  mutable common::Mutex mu_;
  mutable common::CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  /// Written exactly once (before done_ flips); Wait() binds the returned
  /// reference under the lock, after which the reply is immutable.
  QueryReply reply_ GUARDED_BY(mu_);
  /// Set once by Submit/TrySubmit before the ticket is shared, never
  /// reassigned, so Cancel() needs no lock; shared with the Pending entry
  /// the workers poll.
  std::shared_ptr<exec::CancelToken> cancel_;
};
using TicketPtr = std::shared_ptr<Ticket>;

class SqlServer;

/// A client connection. Sessions are cheap handles owned by the server;
/// statements from any number of sessions interleave through the shared
/// queue. Statements within a session are *submitted* in order but may
/// complete out of order — a client with a dependent statement (SELECT
/// against its own CREATE TEMP TABLE) waits on the earlier ticket first.
class SqlSession {
 public:
  const std::string& name() const { return name_; }
  int id() const { return id_; }

  /// Blocking admission: waits for queue space (backpressure). The
  /// returned ticket is always non-null; if the server is shut down the
  /// ticket is already fulfilled with an error status. Applies the server's
  /// default_timeout_seconds as the statement deadline.
  TicketPtr Submit(std::string sql);

  /// Submit with an explicit deadline (seconds; <= 0 = none), overriding
  /// the server default. The deadline starts now — it covers waiting for
  /// queue space, queue residency, and execution. When the queue stays full
  /// past the deadline the statement is shed with ResourceExhausted; when
  /// the deadline expires in the queue or mid-execution the reply carries
  /// DeadlineExceeded. Always returns a non-null ticket.
  TicketPtr Submit(std::string sql, double timeout_seconds);

  /// Non-blocking admission: returns nullptr when the queue is full or the
  /// server is shut down (counted in ServerStats::rejected).
  TicketPtr TrySubmit(std::string sql);

  /// Submit + Wait.
  QueryReply Execute(std::string sql);

 private:
  friend class SqlServer;
  SqlSession(SqlServer* server, int id, std::string name)
      : server_(server), id_(id), name_(std::move(name)) {}

  SqlServer* server_;
  int id_;
  std::string name_;
};

/// Aggregate serving counters; Snapshot() returns a consistent copy.
struct ServerStats {
  int64_t submitted = 0;
  int64_t completed = 0;   // finished with an OK status
  int64_t failed = 0;      // finished with an error status
  int64_t rejected = 0;    // TrySubmit shed by admission control
  int64_t cache_hits = 0;  // statement-cache hits
  int64_t timed_out = 0;   // failed with DeadlineExceeded (subset of failed)
  int64_t cancelled = 0;   // failed with Cancelled (subset of failed)
  int64_t retried = 0;     // transient-failure re-runs (sum of attempts)
  int64_t degraded = 0;    // completed under a materialization budget
  /// Simulated plan/exec time summed over completed statements.
  double sim_plan_seconds = 0.0;
  double sim_exec_seconds = 0.0;
  /// Wall-clock submit -> completion per finished statement, in completion
  /// order (the replay driver computes p50/p99 from this).
  std::vector<double> wall_latency_seconds;
};

class SqlServer {
 public:
  using Clock = std::chrono::steady_clock;

  /// The catalog/stats must outlive the server. Workers start immediately.
  SqlServer(storage::Catalog* catalog, stats::StatsCatalog* stats_catalog,
            ServerOptions options = ServerOptions{});
  /// Shuts down (draining accepted statements) if the caller has not.
  ~SqlServer();

  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;

  /// Opens a session; the handle is owned by the server and valid until the
  /// server is destroyed. Empty name -> "session<id>".
  SqlSession* OpenSession(std::string name = "") EXCLUDES(sessions_mu_);

  /// Closes the queue, drains every accepted statement, joins the workers,
  /// and drops temp tables created through the server (with their
  /// statistics). Idempotent; no new statements are accepted afterwards.
  void Shutdown() EXCLUDES(shutdown_mu_, stats_mu_);

  ServerStats Snapshot() const EXCLUDES(stats_mu_);
  const ServerOptions& options() const { return options_; }
  /// Live threads the server occupies: session_workers x intra threads.
  int total_thread_budget() const {
    return options_.session_workers * options_.intra_query_threads;
  }
  int queue_depth() const { return static_cast<int>(queue_.size()); }

 private:
  friend class SqlSession;

  struct Pending {
    std::string sql;
    TicketPtr ticket;
    Clock::time_point submitted_at;
    /// The statement's cancellation/deadline token (never null); workers
    /// poll it at dequeue time and thread it through execution.
    std::shared_ptr<exec::CancelToken> cancel;
  };

  /// One cross-session statement-cache entry: the bound spec (stable
  /// address — plans and sessions point into it) plus the shared
  /// QuerySession carrying the oracle cache and round-0 plan memos.
  struct CachedStatement {
    sql::ParsedStatement parsed;
    std::unique_ptr<reoptimizer::QuerySession> session;
  };

  TicketPtr MakeRejectedTicket(common::Status status);
  void WorkerLoop(int worker);
  /// RunStatement wrapped in the bounded-retry loop: transient statuses
  /// (common::IsTransient) re-run up to options_.max_retries times with
  /// exponential backoff x deterministic jitter, capped by the remaining
  /// deadline; the token is re-checked after every backoff sleep.
  QueryReply RunWithRetries(int worker, reoptimizer::QueryRunner* runner,
                            sql::Engine* engine, const std::string& sql,
                            const exec::CancelToken* cancel);
  QueryReply RunStatement(int worker, reoptimizer::QueryRunner* runner,
                          sql::Engine* engine, const std::string& sql,
                          const exec::CancelToken* cancel);
  /// The cached entry for `sql`, creating (and publishing) it on first use;
  /// nullptr when the statement is not cacheable (CREATE TEMP TABLE, or it
  /// references a temp table whose lifetime the cache cannot track) or not
  /// parseable (the error is returned instead). `hit` reports whether the
  /// entry already existed.
  common::Result<std::shared_ptr<CachedStatement>> LookupStatement(
      const std::string& sql, bool* hit) EXCLUDES(cache_mu_);
  void RecordReply(const QueryReply& reply) EXCLUDES(stats_mu_);
  /// Admission accounting for Submit/TrySubmit (`admitted` false counts a
  /// rejection).
  void CountSubmission(bool admitted) EXCLUDES(stats_mu_);

  storage::Catalog* catalog_;
  stats::StatsCatalog* stats_catalog_;
  ServerOptions options_;

  common::BoundedQueue<Pending> queue_;
  std::unique_ptr<common::ThreadPool> workers_;
  std::atomic<bool> shut_down_{false};
  common::Mutex shutdown_mu_;  // serializes Shutdown()

  mutable common::Mutex sessions_mu_;
  std::deque<std::unique_ptr<SqlSession>> sessions_ GUARDED_BY(sessions_mu_);

  mutable common::Mutex cache_mu_;
  std::unordered_map<std::string, std::shared_ptr<CachedStatement>>
      statement_cache_ GUARDED_BY(cache_mu_);

  mutable common::Mutex stats_mu_;
  ServerStats stats_ GUARDED_BY(stats_mu_);
  /// Temp tables created via CREATE TEMP TABLE, dropped at Shutdown().
  std::vector<std::string> created_tables_ GUARDED_BY(stats_mu_);
};

}  // namespace reopt::service

#endif  // REOPT_SERVICE_SQL_SERVER_H_
