// The relational evaluation kernel: predicate evaluation over base tables
// and equi-join evaluation over intermediates. Shared by the executor
// (which charges operator-specific costs on top) and by the
// true-cardinality oracle (which only wants exact counts).
//
// Execution is vectorized (MonetDB/X100-style): FilterScan works on
// fixed-size batches of row ids (selection vectors), dispatching one typed
// tight loop per (column type, comparison op) pair instead of one boxed
// EvalPredicate call per row, and HashJoinIntermediates is a two-phase
// hash join (batch key computation into a sized open-addressing table,
// then a batch probe pass with all FindRel/column lookups hoisted out of
// the tuple loop, then column-wise gather materialization). The retained
// pre-vectorization scalar kernel lives in kernel_reference.h and serves
// as the correctness oracle for the differential-test harness; both
// produce identical tuples in identical order.
#ifndef REOPT_EXEC_KERNEL_H_
#define REOPT_EXEC_KERNEL_H_

#include <vector>

#include "exec/cancel.h"
#include "exec/intermediate.h"
#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace reopt::common {
class ThreadPool;
}  // namespace reopt::common

namespace reopt::exec {

/// Rows per selection-vector batch in FilterScan. Small enough that a
/// batch's selection vector stays cache-resident, large enough to amortize
/// per-batch dispatch.
inline constexpr int kKernelBatchSize = 1024;

/// Which kernel implementation the Executor routes scans and joins
/// through. The reference (scalar) mode exists for differential testing
/// and benchmarking only.
enum class KernelMode { kVectorized, kReference };

/// Process-wide default mode picked up by newly created Executors
/// (including the ones QueryRunner creates internally, so differential
/// tests can flip a whole workload run). Defaults to kVectorized.
void SetDefaultKernelMode(KernelMode mode);
KernelMode DefaultKernelMode();

/// Binds the relations of one query to storage tables. Built once per
/// (query, catalog) and handed to kernel calls.
struct BoundRelations {
  std::vector<const storage::Table*> tables;

  const storage::Table& table(int rel) const {
    return *tables[static_cast<size_t>(rel)];
  }
};

/// Resolves every relation of `query` against `catalog`. CHECK-fails if a
/// table is missing (binder validation happens earlier).
BoundRelations BindRelations(const plan::QuerySpec& query,
                             const storage::Catalog& catalog);

/// Evaluates one predicate on one row of the relation's base table. Scalar
/// entry point for sparse row sets (index-scan residual filters); batch
/// scans go through FilterScan, which dispatches typed kernels instead.
bool EvalPredicate(const plan::ScanPredicate& pred,
                   const storage::Table& table, common::RowIdx row);

/// Row ids of `rel` passing all of `filters` (full scan). Vectorized:
/// processes the table in kKernelBatchSize batches, compacting a selection
/// vector through one typed kernel per predicate.
///
/// Cancellation (here and in the join kernels): when `cancel` trips, the
/// kernel stops at the next batch/morsel boundary and returns whatever it
/// produced so far — the Executor re-checks the token at the top level and
/// discards the truncated result behind a Cancelled/DeadlineExceeded
/// Status, so partial output never escapes.
std::vector<common::RowIdx> FilterScan(
    const storage::Table& table,
    const std::vector<const plan::ScanPredicate*>& filters,
    const CancelToken* cancel = nullptr);

/// Intra-query morsel parallelism budget handed to the *Parallel kernel
/// entry points: how many of `pool`'s workers one operator may fan its
/// morsels over. Disabled (threads <= 1 or no pool) routes straight to the
/// serial kernel, so serial callers pay nothing. The submitting thread
/// blocks while morsels run, so one executing query occupies `threads`
/// live threads.
struct MorselContext {
  int threads = 1;
  common::ThreadPool* pool = nullptr;
  /// Optional cooperative-cancellation token polled at morsel boundaries.
  const CancelToken* cancel = nullptr;

  bool enabled() const { return threads > 1 && pool != nullptr; }
};

/// FilterScan over 1024-row-aligned morsels dispatched on `ctx.pool`:
/// every worker compacts its own selection-vector buffer and appends to a
/// per-morsel output, and the morsel outputs are concatenated in index
/// order — so the result is byte-identical to the serial FilterScan at any
/// thread count (ascending row ids, same batch boundaries). Falls back to
/// the serial kernel when disabled or the table is small.
std::vector<common::RowIdx> FilterScanParallel(
    const storage::Table& table,
    const std::vector<const plan::ScanPredicate*>& filters,
    const MorselContext& ctx);

/// Equi-joins two intermediates on `edges` (every edge must connect the two
/// sides). Implemented as a two-phase hash join: build on the smaller
/// input. Join columns must be INT64 (id/FK columns, as in JOB). Output
/// tuple order matches the scalar reference kernel: probe order major,
/// build insertion order minor.
Intermediate HashJoinIntermediates(
    const Intermediate& left, const Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const BoundRelations& rels, const CancelToken* cancel = nullptr);

/// HashJoinIntermediates with morsel parallelism on every phase: the key /
/// hash pass fans over tuple morsels, the build is radix-partitioned by the
/// high hash bits (each partition built by one worker in reverse tuple
/// order, so duplicate chains stay ascending exactly like the serial
/// build), the probe fans over probe morsels emitting into per-morsel match
/// buffers that are merged in morsel order (probe-order-major, chain-
/// ascending-minor — the serial tuple order), and the gather writes
/// disjoint output ranges. Output is byte-identical to the serial join at
/// any thread count. Falls back to the serial kernel when disabled or the
/// inputs are small.
Intermediate HashJoinIntermediatesParallel(
    const Intermediate& left, const Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const BoundRelations& rels, const MorselContext& ctx);

/// Exact row count of joining the relations in `set` with all single-table
/// filters and all internal join edges of `query` applied. Joins in a
/// connectivity-preserving order (smallest filtered relation first). For a
/// disconnected `set`, multiplies component counts (Cartesian product
/// semantics) without materializing the product.
double ExactJoinCount(const plan::QuerySpec& query, plan::RelSet set,
                      const BoundRelations& rels);

/// As ExactJoinCount but returns the materialized intermediate for a
/// connected `set` (used by temp-table materialization in tests).
Intermediate ExactJoin(const plan::QuerySpec& query, plan::RelSet set,
                       const BoundRelations& rels);

}  // namespace reopt::exec

#endif  // REOPT_EXEC_KERNEL_H_
