// The relational evaluation kernel: predicate evaluation over base tables
// and equi-join evaluation over intermediates. Shared by the executor
// (which charges operator-specific costs on top) and by the
// true-cardinality oracle (which only wants exact counts).
#ifndef REOPT_EXEC_KERNEL_H_
#define REOPT_EXEC_KERNEL_H_

#include <vector>

#include "exec/intermediate.h"
#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace reopt::exec {

/// Binds the relations of one query to storage tables. Built once per
/// (query, catalog) and handed to kernel calls.
struct BoundRelations {
  std::vector<const storage::Table*> tables;

  const storage::Table& table(int rel) const {
    return *tables[static_cast<size_t>(rel)];
  }
};

/// Resolves every relation of `query` against `catalog`. CHECK-fails if a
/// table is missing (binder validation happens earlier).
BoundRelations BindRelations(const plan::QuerySpec& query,
                             const storage::Catalog& catalog);

/// Evaluates one predicate on one row of the relation's base table.
bool EvalPredicate(const plan::ScanPredicate& pred,
                   const storage::Table& table, common::RowIdx row);

/// Row ids of `rel` passing all of `filters` (full scan).
std::vector<common::RowIdx> FilterScan(
    const storage::Table& table,
    const std::vector<const plan::ScanPredicate*>& filters);

/// Equi-joins two intermediates on `edges` (every edge must connect the two
/// sides). Implemented as a hash join: build on the smaller input. Join
/// columns must be INT64 (id/FK columns, as in JOB).
Intermediate HashJoinIntermediates(
    const Intermediate& left, const Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const BoundRelations& rels);

/// Exact row count of joining the relations in `set` with all single-table
/// filters and all internal join edges of `query` applied. Joins in a
/// connectivity-preserving order (smallest filtered relation first). For a
/// disconnected `set`, multiplies component counts (Cartesian product
/// semantics) without materializing the product.
double ExactJoinCount(const plan::QuerySpec& query, plan::RelSet set,
                      const BoundRelations& rels);

/// As ExactJoinCount but returns the materialized intermediate for a
/// connected `set` (used by temp-table materialization in tests).
Intermediate ExactJoin(const plan::QuerySpec& query, plan::RelSet set,
                       const BoundRelations& rels);

}  // namespace reopt::exec

#endif  // REOPT_EXEC_KERNEL_H_
