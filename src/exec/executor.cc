#include "exec/executor.h"

#include <algorithm>

#include "common/fail_point.h"
#include "common/scope_guard.h"
#include "common/string_util.h"
#include "exec/kernel_reference.h"
#include "optimizer/cost_formulas.h"
#include "stats/analyze.h"

namespace reopt::exec {

using optimizer::AggregateCost;
using optimizer::HashJoinCost;
using optimizer::IndexNestedLoopJoinCost;
using optimizer::IndexScanCost;
using optimizer::NestedLoopJoinCost;
using optimizer::SeqScanCost;
using optimizer::TempWriteCost;

std::vector<common::RowIdx> Executor::RunFilterScan(
    const storage::Table& table,
    const std::vector<const plan::ScanPredicate*>& filters) const {
  if (kernel_mode_ == KernelMode::kReference) {
    return reference::FilterScan(table, filters, cancel_);
  }
  return intra_.enabled() ? FilterScanParallel(table, filters, intra_)
                          : FilterScan(table, filters, cancel_);
}

Intermediate Executor::RunHashJoin(
    const Intermediate& left, const Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const BoundRelations& rels) const {
  if (kernel_mode_ == KernelMode::kReference) {
    return reference::HashJoinIntermediates(left, right, edges, rels, cancel_);
  }
  return intra_.enabled()
             ? HashJoinIntermediatesParallel(left, right, edges, rels, intra_)
             : HashJoinIntermediates(left, right, edges, rels, cancel_);
}

common::Result<QueryResult> Executor::Execute(const plan::QuerySpec& query,
                                              plan::PlanNode* plan_root) {
  if (cancel_ != nullptr) REOPT_RETURN_IF_ERROR(cancel_->Check());
  for (const plan::RelationRef& ref : query.relations) {
    if (catalog_->FindTable(ref.table_name) == nullptr) {
      return common::Status::NotFound("no such table: " + ref.table_name);
    }
  }
  BoundRelations rels = BindRelations(query, *catalog_);

  QueryResult result;
  if (plan_root->op == plan::PlanOp::kAggregate) {
    REOPT_CHECK(plan_root->left != nullptr);
    Intermediate input = ExecuteNode(query, rels, plan_root->left.get());
    result.raw_rows = input.size();

    // MIN() per output, skipping NULLs. The relation's tuple column and the
    // base column span are resolved once per output; the tuple loop runs
    // typed (boxing the minimum once at the end).
    result.aggregates.reserve(query.outputs.size());
    const int64_t num_tuples = input.size();
    for (const plan::OutputExpr& out : query.outputs) {
      int rel_idx = input.FindRel(out.column.rel);
      REOPT_CHECK_MSG(rel_idx >= 0, "aggregate over absent relation");
      const common::RowIdx* tuple_rows =
          input.columns[static_cast<size_t>(rel_idx)].data();
      const storage::ColumnView col =
          rels.table(out.column.rel).column(out.column.col).View();
      common::Value best;
      switch (col.type) {
        case common::DataType::kInt64: {
          bool found = false;
          int64_t min_v = 0;
          for (int64_t t = 0; t < num_tuples; ++t) {
            common::RowIdx row = tuple_rows[t];
            if (col.IsNull(row)) continue;
            int64_t v = col.ints[static_cast<size_t>(row)];
            if (!found || v < min_v) {
              min_v = v;
              found = true;
            }
          }
          if (found) best = common::Value::Int(min_v);
          break;
        }
        case common::DataType::kDouble: {
          bool found = false;
          double min_v = 0.0;
          for (int64_t t = 0; t < num_tuples; ++t) {
            common::RowIdx row = tuple_rows[t];
            if (col.IsNull(row)) continue;
            double v = col.doubles[static_cast<size_t>(row)];
            if (!found || v < min_v) {
              min_v = v;
              found = true;
            }
          }
          if (found) best = common::Value::Real(min_v);
          break;
        }
        case common::DataType::kString: {
          if (col.encoding == storage::ColumnEncoding::kDictionary) {
            // Sorted dictionary: the minimum code decodes to the minimum
            // string, so the tuple loop stays integer-only.
            int32_t min_code = -1;
            for (int64_t t = 0; t < num_tuples; ++t) {
              common::RowIdx row = tuple_rows[t];
              if (col.IsNull(row)) continue;
              int32_t c = col.codes[static_cast<size_t>(row)];
              if (min_code < 0 || c < min_code) min_code = c;
            }
            if (min_code >= 0) {
              best = common::Value::Str(col.dict[static_cast<size_t>(min_code)]);
            }
            break;
          }
          const std::string* min_v = nullptr;
          for (int64_t t = 0; t < num_tuples; ++t) {
            common::RowIdx row = tuple_rows[t];
            if (col.IsNull(row)) continue;
            const std::string& v = col.strings[static_cast<size_t>(row)];
            if (min_v == nullptr || v < *min_v) min_v = &v;
          }
          if (min_v != nullptr) best = common::Value::Str(*min_v);
          break;
        }
      }
      result.aggregates.push_back(std::move(best));
    }
    plan_root->actual_rows = result.aggregates.empty() ? 0.0 : 1.0;
    plan_root->charged_cost =
        AggregateCost(params_, static_cast<double>(input.size()),
                      static_cast<int>(query.outputs.size()));
  } else if (plan_root->op == plan::PlanOp::kTempWrite) {
    REOPT_CHECK(plan_root->left != nullptr);
    Intermediate input = ExecuteNode(query, rels, plan_root->left.get());
    result.raw_rows = input.size();
    REOPT_RETURN_IF_ERROR(ExecuteTempWrite(query, rels, plan_root, input));
  } else {
    // Bare join/scan root (used by tests): no aggregation.
    Intermediate input = ExecuteNode(query, rels, plan_root);
    result.raw_rows = input.size();
  }
  // Kernels stop early (truncated intermediates) when the token trips;
  // this re-check turns any such run into an error before results escape.
  if (cancel_ != nullptr) REOPT_RETURN_IF_ERROR(cancel_->Check());
  result.cost_units = plan_root->SubtreeChargedCost();
  return result;
}

Intermediate Executor::ExecuteNode(const plan::QuerySpec& query,
                                   const BoundRelations& rels,
                                   plan::PlanNode* node) {
  switch (node->op) {
    case plan::PlanOp::kSeqScan:
    case plan::PlanOp::kIndexScan:
      return ExecuteScan(query, rels, node);
    case plan::PlanOp::kHashJoin:
      return ExecuteHashJoin(query, rels, node);
    case plan::PlanOp::kNestedLoopJoin:
      return ExecuteNestedLoop(query, rels, node);
    case plan::PlanOp::kIndexNestedLoopJoin:
      return ExecuteIndexNestedLoop(query, rels, node);
    case plan::PlanOp::kAggregate:
    case plan::PlanOp::kTempWrite:
      break;
  }
  REOPT_UNREACHABLE("non-root aggregate/temp-write node");
}

Intermediate Executor::ExecuteScan(const plan::QuerySpec& query,
                                   const BoundRelations& rels,
                                   plan::PlanNode* node) {
  (void)query;
  const storage::Table& table = rels.table(node->scan_rel);
  std::vector<common::RowIdx> rows;

  if (node->op == plan::PlanOp::kIndexScan) {
    REOPT_CHECK(node->index_pred != nullptr);
    const plan::ScanPredicate& pred = *node->index_pred;
    const storage::HashIndex* index = table.FindIndex(pred.column.col);
    REOPT_CHECK_MSG(index != nullptr, "IndexScan without index");
    // Collect candidates from the index (Eq value, or each IN value).
    std::vector<common::RowIdx> candidates;
    auto add_key = [&](const common::Value& v) {
      if (v.is_null()) return;
      const auto& matches = index->Lookup(v.AsInt());
      candidates.insert(candidates.end(), matches.begin(), matches.end());
    };
    if (pred.kind == plan::ScanPredicate::Kind::kIn) {
      for (const common::Value& v : pred.in_list) add_key(v);
    } else {
      add_key(pred.value);
    }
    std::sort(candidates.begin(), candidates.end());
    // Residual filters: everything except the index predicate.
    std::vector<const plan::ScanPredicate*> residual;
    for (const plan::ScanPredicate* f : node->filters) {
      if (f != node->index_pred) residual.push_back(f);
    }
    for (common::RowIdx row : candidates) {
      bool pass = true;
      for (const plan::ScanPredicate* f : residual) {
        if (!EvalPredicate(*f, table, row)) {
          pass = false;
          break;
        }
      }
      if (pass) rows.push_back(row);
    }
    node->charged_cost =
        IndexScanCost(params_, static_cast<double>(candidates.size()),
                      static_cast<int>(residual.size()),
                      static_cast<double>(rows.size()));
  } else {
    rows = RunFilterScan(table, node->filters);
    node->charged_cost =
        SeqScanCost(params_, static_cast<double>(table.num_rows()),
                    static_cast<int>(node->filters.size()),
                    static_cast<double>(rows.size()));
  }
  node->actual_rows = static_cast<double>(rows.size());
  return Intermediate::FromRows(node->scan_rel, std::move(rows));
}

Intermediate Executor::ExecuteHashJoin(const plan::QuerySpec& query,
                                       const BoundRelations& rels,
                                       plan::PlanNode* node) {
  Intermediate build = ExecuteNode(query, rels, node->left.get());
  Intermediate probe = ExecuteNode(query, rels, node->right.get());
  Intermediate out = RunHashJoin(build, probe, node->edges, rels);
  node->actual_rows = static_cast<double>(out.size());
  node->charged_cost =
      HashJoinCost(params_, static_cast<double>(build.size()),
                   static_cast<double>(probe.size()),
                   static_cast<double>(out.size()));
  return out;
}

Intermediate Executor::ExecuteNestedLoop(const plan::QuerySpec& query,
                                         const BoundRelations& rels,
                                         plan::PlanNode* node) {
  Intermediate outer = ExecuteNode(query, rels, node->left.get());
  Intermediate inner = ExecuteNode(query, rels, node->right.get());
  // Physical-operator simulation: the result of an equi-join NLJ is
  // identical to the hash join's, so we compute it by hashing but charge
  // the quadratic nested-loop cost the plan committed to.
  Intermediate out = RunHashJoin(outer, inner, node->edges, rels);
  node->actual_rows = static_cast<double>(out.size());
  node->charged_cost =
      NestedLoopJoinCost(params_, static_cast<double>(outer.size()),
                         static_cast<double>(inner.size()),
                         static_cast<double>(out.size()));
  return out;
}

Intermediate Executor::ExecuteIndexNestedLoop(const plan::QuerySpec& query,
                                              const BoundRelations& rels,
                                              plan::PlanNode* node) {
  Intermediate outer = ExecuteNode(query, rels, node->left.get());
  REOPT_CHECK(node->right != nullptr && node->right->is_scan());
  REOPT_CHECK(node->index_edge != nullptr);
  plan::PlanNode* inner_scan = node->right.get();
  int inner_rel = inner_scan->scan_rel;
  const storage::Table& inner_table = rels.table(inner_rel);

  // The edge's inner-side column is probed through the inner hash index.
  const plan::JoinEdge& edge = *node->index_edge;
  bool inner_is_left = edge.left.rel == inner_rel;
  common::ColumnIdx inner_col = inner_is_left ? edge.left.col : edge.right.col;
  plan::ColumnRef outer_ref = inner_is_left ? edge.right : edge.left;
  const storage::HashIndex* index = inner_table.FindIndex(inner_col);
  REOPT_CHECK_MSG(index != nullptr, "IndexNLJ without inner index");

  // Residual join edges (beyond the indexed one), with the per-tuple
  // FindRel/column lookups resolved once: the inner and outer key column
  // views plus the outer side's tuple column for the edge's outer relation.
  struct ResidualEdge {
    storage::ColumnView inner_col;
    storage::ColumnView outer_col;
    const common::RowIdx* outer_tuple_rows;
  };
  std::vector<ResidualEdge> residual_edges;
  for (const plan::JoinEdge* e : node->edges) {
    if (e == node->index_edge) continue;
    bool e_inner_is_left = e->left.rel == inner_rel;
    const plan::ColumnRef& in_ref = e_inner_is_left ? e->left : e->right;
    const plan::ColumnRef& out_ref2 = e_inner_is_left ? e->right : e->left;
    int rel_idx = outer.FindRel(out_ref2.rel);
    REOPT_CHECK_MSG(rel_idx >= 0, "residual edge relation not on outer side");
    residual_edges.push_back(ResidualEdge{
        inner_table.column(in_ref.col).View(),
        rels.table(out_ref2.rel).column(out_ref2.col).View(),
        outer.columns[static_cast<size_t>(rel_idx)].data()});
  }

  const storage::Table& outer_table = rels.table(outer_ref.rel);
  const storage::ColumnView outer_col = outer_table.column(outer_ref.col).View();
  int outer_key_idx = outer.FindRel(outer_ref.rel);
  REOPT_CHECK_MSG(outer_key_idx >= 0, "index edge relation not on outer side");
  const common::RowIdx* outer_key_rows =
      outer.columns[static_cast<size_t>(outer_key_idx)].data();

  Intermediate out;
  out.rels = outer.rels;
  out.rels.push_back(inner_rel);
  out.columns.resize(out.rels.size());

  int64_t match_rows = 0;  // index matches before residual filtering
  const int64_t outer_n = outer.size();
  for (int64_t t = 0; t < outer_n; ++t) {
    common::RowIdx outer_row = outer_key_rows[t];
    if (outer_col.IsNull(outer_row)) continue;
    const auto& matches =
        index->Lookup(outer_col.ints[static_cast<size_t>(outer_row)]);
    for (common::RowIdx inner_row : matches) {
      ++match_rows;
      // Inner filters.
      bool pass = true;
      for (const plan::ScanPredicate* f : inner_scan->filters) {
        if (!EvalPredicate(*f, inner_table, inner_row)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      // Residual join edges.
      for (const ResidualEdge& e : residual_edges) {
        common::RowIdx orow = e.outer_tuple_rows[t];
        if (e.inner_col.IsNull(inner_row) || e.outer_col.IsNull(orow) ||
            e.inner_col.ints[static_cast<size_t>(inner_row)] !=
                e.outer_col.ints[static_cast<size_t>(orow)]) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      for (size_t c = 0; c < outer.columns.size(); ++c) {
        out.columns[c].push_back(outer.columns[c][static_cast<size_t>(t)]);
      }
      out.columns.back().push_back(inner_row);
    }
  }

  inner_scan->actual_rows = static_cast<double>(match_rows);
  inner_scan->charged_cost = 0.0;  // charged on the join node
  node->actual_rows = static_cast<double>(out.size());
  node->charged_cost = IndexNestedLoopJoinCost(
      params_, static_cast<double>(outer.size()),
      static_cast<double>(match_rows),
      static_cast<int>(residual_edges.size() + inner_scan->filters.size()),
      static_cast<double>(out.size()));
  return out;
}

common::Status Executor::ExecuteTempWrite(const plan::QuerySpec& query,
                                          const BoundRelations& rels,
                                          plan::PlanNode* node,
                                          const Intermediate& input) {
  REOPT_INJECT_FAULT("exec.temp_write");
  // Materialize the requested columns into a new temp table.
  storage::Schema schema;
  for (const plan::ColumnRef& ref : node->temp_columns) {
    const plan::RelationRef& rel =
        query.relations[static_cast<size_t>(ref.rel)];
    const storage::Table& table = rels.table(ref.rel);
    const storage::ColumnDef& def = table.schema().column(ref.col);
    schema.AddColumn(storage::ColumnDef{rel.alias + "_" + def.name, def.type});
  }
  auto created = catalog_->CreateTable(node->temp_table_name,
                                       std::move(schema), /*temporary=*/true);
  // The re-optimizer's generated names are collision-free by construction,
  // but user DDL (CREATE TEMP TABLE through the SQL service) can race on a
  // name — that must surface as a clean error, never a crash.
  if (!created.ok()) return created.status();
  storage::Table* temp = created.value();
  // Any error or cancellation between CreateTable and the final commit
  // below must not leak a half-written temp table (or its stats) into the
  // catalogs: a leaked name would break the re-optimizer's retry and show
  // up as phantom state in catalog listings.
  auto abort_cleanup = common::MakeScopeGuard([this, node] {
    if (stats_catalog_ != nullptr) stats_catalog_->Remove(node->temp_table_name);
    (void)catalog_->DropTable(node->temp_table_name);  // name just created
  });
  temp->Reserve(input.size());
  // Column-at-a-time materialization with fused ANALYZE: the source column
  // span and the intermediate's tuple column are resolved once per output
  // column, the type switch runs per column instead of per (tuple, column),
  // and the gather loop feeds the same values straight into the typed
  // ANALYZE core — the temp column is scanned once, not written and then
  // re-read by a separate ANALYZE pass. The re-optimizer always ANALYZEs a
  // fresh temp table with default options (full scan), so the stats are
  // identical to stats::Analyze over the finished table.
  const int64_t num_tuples = input.size();
  const bool analyze = stats_catalog_ != nullptr;
  stats::TableStats temp_stats;
  temp_stats.row_count = static_cast<double>(num_tuples);
  if (analyze) {
    temp_stats.columns.reserve(node->temp_columns.size());
  }
  for (size_t c = 0; c < node->temp_columns.size(); ++c) {
    if (cancel_ != nullptr) REOPT_RETURN_IF_ERROR(cancel_->Check());
    const plan::ColumnRef& ref = node->temp_columns[c];
    const storage::ColumnView src = rels.table(ref.rel).column(ref.col).View();
    int rel_idx = input.FindRel(ref.rel);
    REOPT_CHECK_MSG(rel_idx >= 0, "temp column relation not in intermediate");
    const common::RowIdx* tuple_rows =
        input.columns[static_cast<size_t>(rel_idx)].data();
    storage::Column& dst = temp->mutable_column(static_cast<common::ColumnIdx>(c));
    int64_t null_rows = 0;
    // All-valid sources gather into a buffer and land in one bulk append
    // (one bookkeeping step per column instead of per row); nullable
    // sources keep the per-row appends that grow the validity bitmap. The
    // buffered non-null values then feed the fused ANALYZE unchanged.
    switch (src.type) {
      case common::DataType::kInt64: {
        std::vector<int64_t> values;
        values.reserve(static_cast<size_t>(num_tuples));
        if (src.AllValid()) {
          for (int64_t t = 0; t < num_tuples; ++t) {
            values.push_back(
                src.ints[static_cast<size_t>(tuple_rows[t])]);
          }
          dst.AppendInts(values.data(), num_tuples);
        } else {
          for (int64_t t = 0; t < num_tuples; ++t) {
            common::RowIdx row = tuple_rows[t];
            if (src.IsNull(row)) {
              dst.AppendNull();
              ++null_rows;
            } else {
              int64_t v = src.ints[static_cast<size_t>(row)];
              dst.AppendInt(v);
              values.push_back(v);
            }
          }
        }
        if (analyze) {
          temp_stats.columns.push_back(stats::ComputeColumnStats(
              std::move(values), num_tuples, null_rows));
        }
        break;
      }
      case common::DataType::kDouble: {
        std::vector<double> values;
        values.reserve(static_cast<size_t>(num_tuples));
        if (src.AllValid()) {
          for (int64_t t = 0; t < num_tuples; ++t) {
            values.push_back(
                src.doubles[static_cast<size_t>(tuple_rows[t])]);
          }
          dst.AppendDoubles(values.data(), num_tuples);
        } else {
          for (int64_t t = 0; t < num_tuples; ++t) {
            common::RowIdx row = tuple_rows[t];
            if (src.IsNull(row)) {
              dst.AppendNull();
              ++null_rows;
            } else {
              double v = src.doubles[static_cast<size_t>(row)];
              dst.AppendDouble(v);
              values.push_back(v);
            }
          }
        }
        if (analyze) {
          temp_stats.columns.push_back(stats::ComputeColumnStats(
              std::move(values), num_tuples, null_rows));
        }
        break;
      }
      case common::DataType::kString: {
        std::vector<std::string> values;
        values.reserve(static_cast<size_t>(num_tuples));
        if (src.AllValid()) {
          for (int64_t t = 0; t < num_tuples; ++t) {
            values.push_back(src.StringAt(tuple_rows[t]));
          }
          if (analyze) {
            dst.AppendStrings(values.data(), num_tuples);
          } else {
            dst.AppendStrings(std::move(values));
          }
        } else {
          for (int64_t t = 0; t < num_tuples; ++t) {
            common::RowIdx row = tuple_rows[t];
            if (src.IsNull(row)) {
              dst.AppendNull();
              ++null_rows;
            } else {
              const std::string& v = src.StringAt(row);
              dst.AppendString(v);
              values.push_back(v);
            }
          }
        }
        if (analyze) {
          temp_stats.columns.push_back(stats::ComputeColumnStats(
              std::move(values), num_tuples, null_rows));
        }
        break;
      }
    }
  }
  // The per-column appends above bypass Table::AppendRow's row counter.
  temp->SyncRowCountFromColumns();
  // Re-optimization runs over encoded intermediates too: pick physical
  // encodings for the materialized columns before the table starts
  // serving reads. Deterministic per input, so differential runs agree.
  temp->ApplyEncoding(storage::EncodingPolicy::kAuto);

  REOPT_INJECT_FAULT("exec.analyze");
  if (analyze) {
    stats_catalog_->Set(node->temp_table_name, std::move(temp_stats));
  }
  abort_cleanup.Dismiss();  // table + stats committed
  node->actual_rows = static_cast<double>(input.size());
  node->charged_cost =
      TempWriteCost(params_, static_cast<double>(input.size()),
                    static_cast<int>(node->temp_columns.size()));
  return common::Status::OK();
}

}  // namespace reopt::exec
