// Cooperative cancellation and deadlines for query execution. A
// CancelToken is shared between the submitting thread (which may call
// Cancel()) and the executing thread, which polls it at natural pause
// points: morsel/batch boundaries inside kernels, per-column loops in
// temp-table writes, and re-optimization round boundaries in
// reopt::QueryRunner. A stop always surfaces as a Status
// (Cancelled / DeadlineExceeded), never a CHECK, and the executing side's
// ScopeGuards drop any temp tables and statistics created so far.
//
// Thread model: Cancel() is the only cross-thread mutation (an atomic
// store). The deadline must be set before the token is shared — tokens are
// created per submission, so there is no reason to move a deadline later.
#ifndef REOPT_EXEC_CANCEL_H_
#define REOPT_EXEC_CANCEL_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace reopt::exec {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute deadline after which execution stops with DeadlineExceeded.
  /// Set before sharing the token with executing threads.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Cheap boundary poll: true when execution should stop. Reads the
  /// clock only when a deadline is set.
  bool ShouldStop() const {
    if (cancelled()) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// The boundary poll as a Status, for call sites that propagate errors.
  common::Status Check() const {
    if (cancelled()) return common::Status::Cancelled("query cancelled");
    if (has_deadline_ && Clock::now() >= deadline_) {
      return common::Status::DeadlineExceeded("query deadline exceeded");
    }
    return common::Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// nullptr-tolerant poll for code paths where no token may be attached.
inline bool ShouldStop(const CancelToken* token) {
  return token != nullptr && token->ShouldStop();
}

}  // namespace reopt::exec

#endif  // REOPT_EXEC_CANCEL_H_
