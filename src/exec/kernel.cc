#include "exec/kernel.h"

#include <algorithm>
#include <atomic>
#include <string_view>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "plan/join_graph.h"

namespace reopt::exec {

// A skipped zone-map partition must be exactly one selection-vector batch,
// or partition skipping would change which rows a batch sees.
static_assert(storage::kPartitionRows == kKernelBatchSize,
              "zone-map partitions must align with kernel batches");

namespace {

std::atomic<KernelMode> g_default_kernel_mode{KernelMode::kVectorized};

}  // namespace

void SetDefaultKernelMode(KernelMode mode) {
  g_default_kernel_mode.store(mode, std::memory_order_relaxed);
}

KernelMode DefaultKernelMode() {
  return g_default_kernel_mode.load(std::memory_order_relaxed);
}

BoundRelations BindRelations(const plan::QuerySpec& query,
                             const storage::Catalog& catalog) {
  BoundRelations out;
  out.tables.reserve(query.relations.size());
  for (const plan::RelationRef& ref : query.relations) {
    const storage::Table* table = catalog.FindTable(ref.table_name);
    REOPT_CHECK_MSG(table != nullptr, "unbound table in query");
    out.tables.push_back(table);
  }
  return out;
}

bool EvalPredicate(const plan::ScanPredicate& pred,
                   const storage::Table& table, common::RowIdx row) {
  using Kind = plan::ScanPredicate::Kind;
  const storage::Column& col = table.column(pred.column.col);
  if (pred.kind == Kind::kIsNull) return col.IsNull(row);
  if (pred.kind == Kind::kIsNotNull) return !col.IsNull(row);
  if (col.IsNull(row)) return false;  // SQL: NULL fails every comparison.

  switch (pred.kind) {
    case Kind::kCompare: {
      int cmp = col.GetValue(row).Compare(pred.value);
      switch (pred.op) {
        case plan::CompareOp::kEq:
          return cmp == 0;
        case plan::CompareOp::kNe:
          return cmp != 0;
        case plan::CompareOp::kLt:
          return cmp < 0;
        case plan::CompareOp::kLe:
          return cmp <= 0;
        case plan::CompareOp::kGt:
          return cmp > 0;
        case plan::CompareOp::kGe:
          return cmp >= 0;
      }
      return false;
    }
    case Kind::kIn: {
      common::Value v = col.GetValue(row);
      for (const common::Value& candidate : pred.in_list) {
        if (v == candidate) return true;
      }
      return false;
    }
    case Kind::kLike:
      return common::LikeMatch(col.GetString(row), pred.value.AsString());
    case Kind::kNotLike:
      return !common::LikeMatch(col.GetString(row), pred.value.AsString());
    case Kind::kBetween:
      return col.GetValue(row) >= pred.value &&
             col.GetValue(row) <= pred.value2;
    case Kind::kIsNull:
    case Kind::kIsNotNull:
      break;  // handled above
  }
  REOPT_UNREACHABLE("bad predicate kind");
}

// ---------------------------------------------------------------------------
// Vectorized predicate kernels
// ---------------------------------------------------------------------------
namespace {

using common::RowIdx;

/// Compacts `rows` in place through `pass`, skipping NULL rows (the SQL
/// "NULL fails every comparison" rule). Returns the surviving count.
template <typename PassFn>
int CompactNotNull(const uint8_t* valid, RowIdx* rows, int n, PassFn pass) {
  int out = 0;
  if (valid == nullptr) {
    for (int i = 0; i < n; ++i) {
      RowIdx r = rows[i];
      rows[out] = r;
      out += pass(r) ? 1 : 0;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      RowIdx r = rows[i];
      rows[out] = r;
      out += (valid[static_cast<size_t>(r)] != 0 && pass(r)) ? 1 : 0;
    }
  }
  return out;
}

/// Compacts `rows` in place through `pass` with no implicit NULL handling
/// (IS [NOT] NULL kinds and the generic fallback, whose scalar evaluation
/// owns the null semantics).
template <typename PassFn>
int CompactPlain(RowIdx* rows, int n, PassFn pass) {
  int out = 0;
  for (int i = 0; i < n; ++i) {
    RowIdx r = rows[i];
    rows[out] = r;
    out += pass(r) ? 1 : 0;
  }
  return out;
}

/// One tight loop per comparison op. `get(row)` yields the typed value to
/// compare against `c`. Every op is phrased in terms of `<` and `>` alone
/// so the result matches common::Value::Compare exactly — including for
/// NaN doubles, where Compare's 'a < b ? -1 : (a > b ? 1 : 0)' yields 0
/// (equal), unlike raw IEEE ==/<=/>=.
template <typename K, typename GetFn>
int CompareKernel(plan::CompareOp op, const uint8_t* valid, RowIdx* rows,
                  int n, GetFn get, const K& c) {
  switch (op) {
    case plan::CompareOp::kEq:
      return CompactNotNull(valid, rows, n, [&](RowIdx r) {
        return !(get(r) < c) && !(get(r) > c);
      });
    case plan::CompareOp::kNe:
      return CompactNotNull(valid, rows, n, [&](RowIdx r) {
        return get(r) < c || get(r) > c;
      });
    case plan::CompareOp::kLt:
      return CompactNotNull(valid, rows, n,
                            [&](RowIdx r) { return get(r) < c; });
    case plan::CompareOp::kLe:
      return CompactNotNull(valid, rows, n,
                            [&](RowIdx r) { return !(get(r) > c); });
    case plan::CompareOp::kGt:
      return CompactNotNull(valid, rows, n,
                            [&](RowIdx r) { return get(r) > c; });
    case plan::CompareOp::kGe:
      return CompactNotNull(valid, rows, n,
                            [&](RowIdx r) { return !(get(r) < c); });
  }
  REOPT_UNREACHABLE("bad compare op");
}

/// A ScanPredicate resolved against one table: raw column spans plus typed
/// constants, dispatched to one tight loop per batch. Anything the typed
/// fast paths cannot mirror exactly (NULL literals, mixed numeric/string
/// operand types) falls back to per-row scalar evaluation, which is
/// byte-identical to the reference kernel by construction.
struct BoundPredicate {
  enum class Path {
    kIntCompare,     // INT64 column, int64 constant
    kDoubleCompare,  // numeric column, constants coerced to double
    kStringCompare,  // STRING column, string constant
    kIntBetween,
    kDoubleBetween,
    kStringBetween,
    kIntIn,     // INT64 column, all-integer IN list
    kStringIn,  // STRING column, all-string IN list
    kLike,
    kNotLike,
    kIsNull,
    kIsNotNull,
    // Dictionary-encoded string columns: every string predicate is
    // translated once at bind time into integer work over the sorted
    // codes, so the per-row loop never touches a string.
    kDictCodeRange,  // pass iff code_lo <= code < code_hi (Eq/range/Between)
    kDictNotEq,      // pass iff code != code_ne
    kDictMatch,      // pass iff dict_match[code] (LIKE / NOT LIKE / IN)
    kGeneric,        // scalar EvalPredicate per row
  };

  /// LIKE patterns are classified once per scan; anchored shapes run as
  /// plain prefix/suffix/substring checks instead of the backtracking
  /// matcher. `kGeneralPattern` (inner '%' or any '_') keeps LikeMatch.
  enum class LikeShape {
    kExact,     // no wildcards: equality
    kPrefix,    // "lit%"
    kSuffix,    // "%lit"
    kContains,  // "%lit%"
    kAny,       // "%", "%%", ...: matches everything
    kGeneralPattern,
  };

  const plan::ScanPredicate* pred = nullptr;
  const storage::Table* table = nullptr;  // kGeneric only
  storage::ColumnView view;
  Path path = Path::kGeneric;
  plan::CompareOp op = plan::CompareOp::kEq;
  int64_t int_c = 0;
  int64_t int_c2 = 0;
  double dbl_c = 0.0;
  double dbl_c2 = 0.0;
  const std::string* str_c = nullptr;
  const std::string* str_c2 = nullptr;
  std::vector<int64_t> int_list;                // kIntIn
  std::vector<const std::string*> str_list;     // kStringIn
  LikeShape like_shape = LikeShape::kGeneralPattern;
  std::string_view like_needle;  // into *str_c (the pattern literal)
  int32_t code_lo = 0;           // kDictCodeRange: half-open [code_lo,
  int32_t code_hi = 0;           //                           code_hi)
  int32_t code_ne = -1;          // kDictNotEq
  std::vector<uint8_t> dict_match;  // kDictMatch: one flag per dict entry
};

/// Classifies a LIKE pattern into an anchored shape when that shape's
/// direct check is exactly equivalent to LikeMatch.
void ClassifyLike(const std::string& pattern, BoundPredicate* bp) {
  using LikeShape = BoundPredicate::LikeShape;
  if (pattern.find('_') != std::string::npos) {
    bp->like_shape = LikeShape::kGeneralPattern;
    return;
  }
  size_t begin = 0;
  while (begin < pattern.size() && pattern[begin] == '%') ++begin;
  size_t end = pattern.size();
  while (end > begin && pattern[end - 1] == '%') --end;
  std::string_view core(pattern.data() + begin, end - begin);
  if (core.find('%') != std::string_view::npos) {
    bp->like_shape = LikeShape::kGeneralPattern;
    return;
  }
  bool leading = begin > 0;
  bool trailing = end < pattern.size();
  bp->like_needle = core;
  if (core.empty()) {
    // All-'%' pattern matches everything; a fully empty pattern matches
    // only the empty string (exact with an empty needle).
    bp->like_shape = leading ? LikeShape::kAny : LikeShape::kExact;
  } else if (!leading && !trailing) {
    bp->like_shape = LikeShape::kExact;
  } else if (!leading) {
    bp->like_shape = LikeShape::kPrefix;
  } else if (!trailing) {
    bp->like_shape = LikeShape::kSuffix;
  } else {
    bp->like_shape = LikeShape::kContains;
  }
}

/// Evaluates a classified LIKE pattern against one string.
inline bool LikeShapeMatch(const BoundPredicate& bp, const std::string& v) {
  using LikeShape = BoundPredicate::LikeShape;
  switch (bp.like_shape) {
    case LikeShape::kExact:
      return std::string_view(v) == bp.like_needle;
    case LikeShape::kPrefix:
      return common::StartsWith(v, bp.like_needle);
    case LikeShape::kSuffix:
      return common::EndsWith(v, bp.like_needle);
    case LikeShape::kContains:
      return common::Contains(v, bp.like_needle);
    case LikeShape::kAny:
      return true;
    case LikeShape::kGeneralPattern:
      return common::LikeMatch(v, *bp.str_c);
  }
  REOPT_UNREACHABLE("bad like shape");
}

BoundPredicate BindPredicateTyped(const plan::ScanPredicate& pred,
                                  const storage::Table& table) {
  using Kind = plan::ScanPredicate::Kind;
  using Path = BoundPredicate::Path;
  BoundPredicate bp;
  bp.pred = &pred;
  bp.table = &table;
  bp.view = table.column(pred.column.col).View();
  bp.op = pred.op;
  const common::DataType type = bp.view.type;

  switch (pred.kind) {
    case Kind::kIsNull:
      bp.path = Path::kIsNull;
      return bp;
    case Kind::kIsNotNull:
      bp.path = Path::kIsNotNull;
      return bp;
    case Kind::kCompare:
      if (type == common::DataType::kInt64 && pred.value.is_int()) {
        bp.path = Path::kIntCompare;
        bp.int_c = pred.value.AsInt();
      } else if (type != common::DataType::kString &&
                 (pred.value.is_int() || pred.value.is_double())) {
        bp.path = Path::kDoubleCompare;
        bp.dbl_c = pred.value.AsDouble();
      } else if (type == common::DataType::kString &&
                 pred.value.is_string()) {
        bp.path = Path::kStringCompare;
        bp.str_c = &pred.value.AsString();
      }
      return bp;
    case Kind::kBetween: {
      bool numeric_bounds =
          (pred.value.is_int() || pred.value.is_double()) &&
          (pred.value2.is_int() || pred.value2.is_double());
      // An INT64 column takes the double path only when BOTH bounds are
      // doubles: Value::Compare coerces per bound, so a mixed int/double
      // pair compares one side exactly and one side coerced — the generic
      // fallback preserves that (matters beyond 2^53).
      if (type == common::DataType::kInt64 && pred.value.is_int() &&
          pred.value2.is_int()) {
        bp.path = Path::kIntBetween;
        bp.int_c = pred.value.AsInt();
        bp.int_c2 = pred.value2.AsInt();
      } else if ((type == common::DataType::kDouble && numeric_bounds) ||
                 (type == common::DataType::kInt64 &&
                  pred.value.is_double() && pred.value2.is_double())) {
        bp.path = Path::kDoubleBetween;
        bp.dbl_c = pred.value.AsDouble();
        bp.dbl_c2 = pred.value2.AsDouble();
      } else if (type == common::DataType::kString &&
                 pred.value.is_string() && pred.value2.is_string()) {
        bp.path = Path::kStringBetween;
        bp.str_c = &pred.value.AsString();
        bp.str_c2 = &pred.value2.AsString();
      }
      return bp;
    }
    case Kind::kIn: {
      // NULL list entries never match a non-null row value and are dropped;
      // mixed numeric lists keep the scalar path's exact/coerced semantics
      // by falling back.
      bool all_int = type == common::DataType::kInt64;
      bool all_str = type == common::DataType::kString;
      for (const common::Value& v : pred.in_list) {
        if (v.is_null()) continue;
        all_int = all_int && v.is_int();
        all_str = all_str && v.is_string();
      }
      if (all_int) {
        bp.path = Path::kIntIn;
        for (const common::Value& v : pred.in_list) {
          if (!v.is_null()) bp.int_list.push_back(v.AsInt());
        }
      } else if (all_str) {
        bp.path = Path::kStringIn;
        for (const common::Value& v : pred.in_list) {
          if (!v.is_null()) bp.str_list.push_back(&v.AsString());
        }
      }
      return bp;
    }
    case Kind::kLike:
    case Kind::kNotLike:
      if (type == common::DataType::kString && pred.value.is_string()) {
        bp.path = pred.kind == Kind::kLike ? Path::kLike : Path::kNotLike;
        bp.str_c = &pred.value.AsString();
        ClassifyLike(*bp.str_c, &bp);
      }
      return bp;
  }
  return bp;
}

/// Rewrites a string-path predicate over a dictionary-encoded column into
/// integer work over the sorted codes. Because the dictionary is sorted,
/// every comparison/range becomes a half-open code range, and LIKE / IN are
/// evaluated once per *dictionary entry* into a match bitmap instead of
/// once per row. Predicates the typed binder left generic stay generic
/// (the scalar fallback decodes through the boxed accessors).
void BindDictionaryPaths(BoundPredicate* bp) {
  using Path = BoundPredicate::Path;
  if (bp->view.encoding != storage::ColumnEncoding::kDictionary) return;
  const std::string* dict = bp->view.dict;
  const int32_t nd = bp->view.dict_size;
  const auto lower = [&](const std::string& s) {
    return static_cast<int32_t>(std::lower_bound(dict, dict + nd, s) - dict);
  };
  const auto upper = [&](const std::string& s) {
    return static_cast<int32_t>(std::upper_bound(dict, dict + nd, s) - dict);
  };
  switch (bp->path) {
    case Path::kStringCompare: {
      const std::string& c = *bp->str_c;
      const int32_t lb = lower(c);
      const bool present = lb < nd && dict[static_cast<size_t>(lb)] == c;
      switch (bp->op) {
        case plan::CompareOp::kEq:
          bp->code_lo = lb;
          bp->code_hi = present ? lb + 1 : lb;  // absent: empty range
          bp->path = Path::kDictCodeRange;
          return;
        case plan::CompareOp::kNe:
          // Absent constant: every non-NULL code differs (-1 is the NULL
          // code, which CompactNotNull already filters out).
          bp->code_ne = present ? lb : -1;
          bp->path = Path::kDictNotEq;
          return;
        case plan::CompareOp::kLt:
          bp->code_lo = 0;
          bp->code_hi = lb;
          break;
        case plan::CompareOp::kLe:
          bp->code_lo = 0;
          bp->code_hi = upper(c);
          break;
        case plan::CompareOp::kGt:
          bp->code_lo = upper(c);
          bp->code_hi = nd;
          break;
        case plan::CompareOp::kGe:
          bp->code_lo = lb;
          bp->code_hi = nd;
          break;
      }
      bp->path = Path::kDictCodeRange;
      return;
    }
    case Path::kStringBetween:
      // v >= lo && v <= hi  ⇔  lower(lo) <= code < upper(hi).
      bp->code_lo = lower(*bp->str_c);
      bp->code_hi = upper(*bp->str_c2);
      bp->path = Path::kDictCodeRange;
      return;
    case Path::kStringIn: {
      bp->dict_match.assign(static_cast<size_t>(nd), 0);
      for (const std::string* cand : bp->str_list) {
        const int32_t lb = lower(*cand);
        if (lb < nd && dict[static_cast<size_t>(lb)] == *cand) {
          bp->dict_match[static_cast<size_t>(lb)] = 1;
        }
      }
      bp->path = Path::kDictMatch;
      return;
    }
    case Path::kLike:
    case Path::kNotLike: {
      const bool negate = bp->path == Path::kNotLike;
      bp->dict_match.assign(static_cast<size_t>(nd), 0);
      for (int32_t i = 0; i < nd; ++i) {
        const bool m = LikeShapeMatch(*bp, dict[static_cast<size_t>(i)]);
        bp->dict_match[static_cast<size_t>(i)] = (m != negate) ? 1 : 0;
      }
      bp->path = Path::kDictMatch;
      return;
    }
    default:
      return;  // numeric / null-test / generic paths are encoding-agnostic
  }
}

BoundPredicate BindPredicate(const plan::ScanPredicate& pred,
                             const storage::Table& table) {
  BoundPredicate bp = BindPredicateTyped(pred, table);
  BindDictionaryPaths(&bp);
  return bp;
}

/// Applies one bound predicate to the selection vector; returns the
/// surviving count.
int ApplyPredicate(const BoundPredicate& bp, RowIdx* rows, int n) {
  using Path = BoundPredicate::Path;
  const uint8_t* valid = bp.view.valid;
  switch (bp.path) {
    case Path::kIntCompare: {
      const int64_t* data = bp.view.ints;
      return CompareKernel(
          bp.op, valid, rows, n,
          [data](RowIdx r) { return data[static_cast<size_t>(r)]; },
          bp.int_c);
    }
    case Path::kDoubleCompare: {
      if (bp.view.type == common::DataType::kInt64) {
        const int64_t* data = bp.view.ints;
        return CompareKernel(
            bp.op, valid, rows, n,
            [data](RowIdx r) {
              return static_cast<double>(data[static_cast<size_t>(r)]);
            },
            bp.dbl_c);
      }
      const double* data = bp.view.doubles;
      return CompareKernel(
          bp.op, valid, rows, n,
          [data](RowIdx r) { return data[static_cast<size_t>(r)]; },
          bp.dbl_c);
    }
    case Path::kStringCompare: {
      const std::string* data = bp.view.strings;
      const std::string& c = *bp.str_c;
      // Strings are totally ordered, so ==/!= are exactly Compare()==0 /
      // !=0 and early-out on length, unlike the two three-way comparisons
      // CompareKernel's NaN-safe </> phrasing would do.
      if (bp.op == plan::CompareOp::kEq) {
        return CompactNotNull(valid, rows, n, [&](RowIdx r) {
          return data[static_cast<size_t>(r)] == c;
        });
      }
      if (bp.op == plan::CompareOp::kNe) {
        return CompactNotNull(valid, rows, n, [&](RowIdx r) {
          return data[static_cast<size_t>(r)] != c;
        });
      }
      return CompareKernel(
          bp.op, valid, rows, n,
          [data](RowIdx r) -> const std::string& {
            return data[static_cast<size_t>(r)];
          },
          c);
    }
    case Path::kIntBetween: {
      const int64_t* data = bp.view.ints;
      int64_t lo = bp.int_c, hi = bp.int_c2;
      return CompactNotNull(valid, rows, n, [=](RowIdx r) {
        int64_t v = data[static_cast<size_t>(r)];
        return v >= lo && v <= hi;
      });
    }
    case Path::kDoubleBetween: {
      // Phrased via </> like Value::Compare so NaN behaves identically to
      // the scalar path (Compare treats NaN as equal to everything).
      double lo = bp.dbl_c, hi = bp.dbl_c2;
      if (bp.view.type == common::DataType::kInt64) {
        const int64_t* data = bp.view.ints;
        return CompactNotNull(valid, rows, n, [=](RowIdx r) {
          double v = static_cast<double>(data[static_cast<size_t>(r)]);
          return !(v < lo) && !(v > hi);
        });
      }
      const double* data = bp.view.doubles;
      return CompactNotNull(valid, rows, n, [=](RowIdx r) {
        double v = data[static_cast<size_t>(r)];
        return !(v < lo) && !(v > hi);
      });
    }
    case Path::kStringBetween: {
      const std::string* data = bp.view.strings;
      const std::string& lo = *bp.str_c;
      const std::string& hi = *bp.str_c2;
      return CompactNotNull(valid, rows, n, [&](RowIdx r) {
        const std::string& v = data[static_cast<size_t>(r)];
        return v >= lo && v <= hi;
      });
    }
    case Path::kIntIn: {
      const int64_t* data = bp.view.ints;
      const int64_t* list = bp.int_list.data();
      const size_t len = bp.int_list.size();
      return CompactNotNull(valid, rows, n, [=](RowIdx r) {
        int64_t v = data[static_cast<size_t>(r)];
        for (size_t i = 0; i < len; ++i) {
          if (v == list[i]) return true;
        }
        return false;
      });
    }
    case Path::kStringIn: {
      const std::string* data = bp.view.strings;
      return CompactNotNull(valid, rows, n, [&](RowIdx r) {
        const std::string& v = data[static_cast<size_t>(r)];
        for (const std::string* cand : bp.str_list) {
          if (v == *cand) return true;
        }
        return false;
      });
    }
    case Path::kLike: {
      const std::string* data = bp.view.strings;
      return CompactNotNull(valid, rows, n, [&](RowIdx r) {
        return LikeShapeMatch(bp, data[static_cast<size_t>(r)]);
      });
    }
    case Path::kNotLike: {
      const std::string* data = bp.view.strings;
      return CompactNotNull(valid, rows, n, [&](RowIdx r) {
        return !LikeShapeMatch(bp, data[static_cast<size_t>(r)]);
      });
    }
    case Path::kDictCodeRange: {
      const int32_t* codes = bp.view.codes;
      const int32_t lo = bp.code_lo, hi = bp.code_hi;
      return CompactNotNull(valid, rows, n, [=](RowIdx r) {
        const int32_t c = codes[static_cast<size_t>(r)];
        return c >= lo && c < hi;
      });
    }
    case Path::kDictNotEq: {
      const int32_t* codes = bp.view.codes;
      const int32_t ne = bp.code_ne;
      return CompactNotNull(valid, rows, n, [=](RowIdx r) {
        return codes[static_cast<size_t>(r)] != ne;
      });
    }
    case Path::kDictMatch: {
      // Non-NULL rows always carry a code in [0, dict_size); NULL rows
      // (code -1) never reach the lambda thanks to CompactNotNull.
      const int32_t* codes = bp.view.codes;
      const uint8_t* match = bp.dict_match.data();
      return CompactNotNull(valid, rows, n, [=](RowIdx r) {
        return match[static_cast<size_t>(codes[static_cast<size_t>(r)])] != 0;
      });
    }
    case Path::kIsNull:
      if (valid == nullptr) return 0;  // all valid: nothing is NULL
      return CompactPlain(rows, n, [=](RowIdx r) {
        return valid[static_cast<size_t>(r)] == 0;
      });
    case Path::kIsNotNull:
      if (valid == nullptr) return n;
      return CompactPlain(rows, n, [=](RowIdx r) {
        return valid[static_cast<size_t>(r)] != 0;
      });
    case Path::kGeneric: {
      const plan::ScanPredicate& pred = *bp.pred;
      const storage::Table& table = *bp.table;
      return CompactPlain(rows, n, [&](RowIdx r) {
        return EvalPredicate(pred, table, r);
      });
    }
  }
  REOPT_UNREACHABLE("bad predicate path");
}

/// First-predicate fast path: the caller guarantees the batch's selection
/// is the identity [base, base + n), so the gather through `rows` can be
/// skipped entirely. For dictionary-code paths the predicate becomes a
/// straight-line pass over the contiguous int32 codes into a byte mask
/// (fixed-width data the compiler can auto-vectorize — the payoff
/// variable-width strings structurally cannot offer), followed by one
/// branchless compaction. Every other path materializes the identity and
/// delegates to ApplyPredicate, bit-for-bit as before.
int ApplyPredicateDense(const BoundPredicate& bp, RowIdx* rows, int64_t base,
                        int n) {
  using Path = BoundPredicate::Path;
  // NULL rows never need the valid bitmap here: a dictionary column stores
  // NULL as code -1, while every bindable constant maps to codes >= 0, so
  // nullness is decided by the same int32 compares as the predicate. That
  // keeps the mask pass same-width int32 end to end — the shape GCC/Clang
  // auto-vectorize even under -O2's conservative cost model.
  int32_t mask[kKernelBatchSize];
  switch (bp.path) {
    case Path::kDictCodeRange: {
      const int32_t* codes = bp.view.codes + base;
      // code_lo is always >= 0, so clamping is a no-op that lets the
      // compiler drop the NULL sentinel (-1) without a valid[] load.
      const int32_t lo = bp.code_lo > 0 ? bp.code_lo : 0;
      const int32_t hi = bp.code_hi;
      for (int i = 0; i < n; ++i) {
        mask[i] = static_cast<int32_t>(codes[i] >= lo) &
                  static_cast<int32_t>(codes[i] < hi);
      }
      break;
    }
    case Path::kDictNotEq: {
      const int32_t* codes = bp.view.codes + base;
      const int32_t ne = bp.code_ne;
      // `c >= 0` fails NULLs (SQL: NULL != x is not true), `c != ne` is
      // the predicate itself.
      for (int i = 0; i < n; ++i) {
        mask[i] = static_cast<int32_t>(codes[i] != ne) &
                  static_cast<int32_t>(codes[i] >= 0);
      }
      break;
    }
    case Path::kDictMatch: {
      // An empty dictionary means every row is NULL (code -1): all fail.
      if (bp.dict_match.empty()) return 0;
      const int32_t* codes = bp.view.codes + base;
      const uint8_t* match = bp.dict_match.data();
      for (int i = 0; i < n; ++i) {
        // NULL rows carry code -1; the select keeps the lookup in range.
        const int32_t c = codes[i];
        mask[i] = c >= 0 ? static_cast<int32_t>(match[static_cast<size_t>(c)])
                         : 0;
      }
      break;
    }
    default: {
      for (int i = 0; i < n; ++i) rows[i] = static_cast<RowIdx>(base + i);
      return ApplyPredicate(bp, rows, n);
    }
  }
  int out = 0;
  for (int i = 0; i < n; ++i) {
    rows[out] = static_cast<RowIdx>(base + i);
    out += mask[i];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Zone-map partition skipping (kPartitioned columns)
// ---------------------------------------------------------------------------

/// True when no value in [mn, mx] can pass `op` against `c`, phrased via
/// </> alone so NaN constants behave exactly like the row kernels (where
/// Value::Compare semantics make NaN compare equal to everything).
template <typename K>
bool RangeRejects(plan::CompareOp op, K mn, K mx, K c) {
  switch (op) {
    case plan::CompareOp::kEq:
      return c < mn || c > mx;
    case plan::CompareOp::kNe:
      // Rejectable only when every row compares equal to c: min==max==c.
      return !(mn < mx) && !(mn > mx) && !(mn < c) && !(mn > c);
    case plan::CompareOp::kLt:
      return !(mn < c);
    case plan::CompareOp::kLe:
      return mn > c;
    case plan::CompareOp::kGt:
      return !(mx > c);
    case plan::CompareOp::kGe:
      return mx < c;
  }
  REOPT_UNREACHABLE("bad compare op");
}

/// True when `bp` provably fails every row of partition `part`, so the
/// whole batch can be skipped. Only the typed numeric compare/between
/// paths consult zone maps — those all fail NULL rows, which makes
/// all-NULL partitions unconditionally skippable for them.
bool ZoneMapRejects(const BoundPredicate& bp, int64_t part) {
  using Path = BoundPredicate::Path;
  if (bp.view.encoding != storage::ColumnEncoding::kPartitioned) return false;
  switch (bp.path) {
    case Path::kIntCompare:
    case Path::kDoubleCompare:
    case Path::kIntBetween:
    case Path::kDoubleBetween:
      break;
    default:
      return false;
  }
  if (part >= bp.view.num_zones) return false;
  const storage::ZoneMap& z = bp.view.zones[static_cast<size_t>(part)];
  if (!z.skippable) return false;   // e.g. NaN present in the partition
  if (!z.has_values) return true;   // all NULL: every comparison fails
  switch (bp.path) {
    case Path::kIntCompare:
      return RangeRejects(bp.op, z.min_int, z.max_int, bp.int_c);
    case Path::kDoubleCompare:
      // For INT64 columns min/max_double hold the monotone-cast bounds,
      // matching the per-row static_cast the kernel performs.
      return RangeRejects(bp.op, z.min_double, z.max_double, bp.dbl_c);
    case Path::kIntBetween:
      return z.max_int < bp.int_c || z.min_int > bp.int_c2;
    case Path::kDoubleBetween:
      return z.max_double < bp.dbl_c || z.min_double > bp.dbl_c2;
    default:
      return false;
  }
}

/// Conjunctive filters: one rejecting predicate rejects the whole batch.
bool ZoneMapSkipsBatch(const std::vector<BoundPredicate>& bound,
                       int64_t part) {
  for (const BoundPredicate& bp : bound) {
    if (ZoneMapRejects(bp, part)) return true;
  }
  return false;
}

/// Whether any bound predicate can consult zone maps at all (hoists the
/// per-batch check off scans of unpartitioned tables).
bool AnyZoneMaps(const std::vector<BoundPredicate>& bound) {
  for (const BoundPredicate& bp : bound) {
    if (bp.view.encoding == storage::ColumnEncoding::kPartitioned) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<common::RowIdx> FilterScan(
    const storage::Table& table,
    const std::vector<const plan::ScanPredicate*>& filters,
    const CancelToken* cancel) {
  const int64_t n = table.num_rows();
  std::vector<common::RowIdx> out;
  if (filters.empty()) {
    out.reserve(static_cast<size_t>(n));
    for (int64_t lo = 0; lo < n; lo += kKernelBatchSize) {
      if (ShouldStop(cancel)) break;  // truncated result; Executor re-checks
      const int64_t hi = std::min(n, lo + kKernelBatchSize);
      for (int64_t row = lo; row < hi; ++row) out.push_back(row);
    }
    return out;
  }

  std::vector<BoundPredicate> bound;
  bound.reserve(filters.size());
  for (const plan::ScanPredicate* pred : filters) {
    bound.push_back(BindPredicate(*pred, table));
  }

  const bool consult_zones = AnyZoneMaps(bound);
  RowIdx sel[kKernelBatchSize];
  for (int64_t lo = 0; lo < n; lo += kKernelBatchSize) {
    if (ShouldStop(cancel)) break;  // truncated result; Executor re-checks
    if (consult_zones && ZoneMapSkipsBatch(bound, lo / kKernelBatchSize)) {
      continue;  // partition provably empty under the conjunction
    }
    int count = static_cast<int>(std::min<int64_t>(kKernelBatchSize, n - lo));
    // The first predicate sees the identity selection [lo, lo + count) and
    // takes the dense path (no gather; dict codes auto-vectorize).
    count = ApplyPredicateDense(bound[0], sel, lo, count);
    for (size_t p = 1; p < bound.size() && count > 0; ++p) {
      count = ApplyPredicate(bound[p], sel, count);
    }
    out.insert(out.end(), sel, sel + count);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Morsel-parallel FilterScan
// ---------------------------------------------------------------------------
namespace {

/// Inputs below these sizes run serially even with a budget: morsel
/// dispatch would cost more than it buys.
constexpr int64_t kParallelMinRows = 4 * kKernelBatchSize;

/// Morsels per worker: enough over-decomposition that one slow morsel
/// (selective LIKE, hot chain) cannot leave siblings idle, small enough
/// that per-morsel buffers stay negligible.
constexpr int kMorselsPerWorker = 8;

}  // namespace

std::vector<common::RowIdx> FilterScanParallel(
    const storage::Table& table,
    const std::vector<const plan::ScanPredicate*>& filters,
    const MorselContext& ctx) {
  const int64_t n = table.num_rows();
  if (!ctx.enabled() || n < kParallelMinRows || filters.empty()) {
    return FilterScan(table, filters, ctx.cancel);
  }

  // Bound once, read-only across workers (ApplyPredicate never mutates).
  std::vector<BoundPredicate> bound;
  bound.reserve(filters.size());
  for (const plan::ScanPredicate* pred : filters) {
    bound.push_back(BindPredicate(*pred, table));
  }

  // 1024-row-aligned morsels: chunk boundaries coincide with the serial
  // scan's batch boundaries, so every batch is evaluated exactly as the
  // serial kernel would.
  const std::vector<common::MorselRange> morsels = common::MorselRanges(
      n, kKernelBatchSize, ctx.threads * kMorselsPerWorker);
  const bool consult_zones = AnyZoneMaps(bound);
  std::vector<std::vector<common::RowIdx>> parts(morsels.size());
  ctx.pool->ParallelRun(
      static_cast<int64_t>(morsels.size()), ctx.threads, [&](int64_t m, int) {
        if (ShouldStop(ctx.cancel)) return;  // skip morsel; Executor re-checks
        const common::MorselRange range = morsels[static_cast<size_t>(m)];
        std::vector<common::RowIdx>& part = parts[static_cast<size_t>(m)];
        RowIdx sel[kKernelBatchSize];  // per-worker selection vector
        for (int64_t lo = range.begin; lo < range.end;
             lo += kKernelBatchSize) {
          // Morsels are 1024-aligned, so lo / batch == the zone-map
          // partition index — skipping here is batch-for-batch identical
          // to the serial scan's skips.
          if (consult_zones &&
              ZoneMapSkipsBatch(bound, lo / kKernelBatchSize)) {
            continue;
          }
          int count = static_cast<int>(
              std::min<int64_t>(kKernelBatchSize, range.end - lo));
          // Identity selection: same dense first-predicate path as the
          // serial scan, so batches stay evaluated bit-for-bit alike.
          count = ApplyPredicateDense(bound[0], sel, lo, count);
          for (size_t p = 1; p < bound.size() && count > 0; ++p) {
            count = ApplyPredicate(bound[p], sel, count);
          }
          part.insert(part.end(), sel, sel + count);
        }
      });

  // Deterministic index-ordered merge: morsel outputs concatenated in
  // morsel order are exactly the serial (ascending row id) result.
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<common::RowIdx> out;
  out.reserve(total);
  for (const auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Two-phase hash join
// ---------------------------------------------------------------------------
namespace {

/// Per-edge key accessors for one side, resolved once per join: the side's
/// row-id column for the edge's relation (FindRel hoisted) and the raw view
/// of the base table's key column.
struct KeyColumn {
  const RowIdx* tuple_rows;  // side.columns[FindRel(rel)].data()
  storage::ColumnView col;
};

std::vector<KeyColumn> ResolveKeyColumns(
    const std::vector<const plan::JoinEdge*>& edges, const Intermediate& side,
    const BoundRelations& rels) {
  std::vector<KeyColumn> out;
  out.reserve(edges.size());
  REOPT_CHECK_MSG(edges.size() <= 4, "more than 4 join edges between sides");
  for (const plan::JoinEdge* e : edges) {
    const plan::ColumnRef* ref;
    int idx = side.FindRel(e->left.rel);
    if (idx >= 0) {
      ref = &e->left;
    } else {
      idx = side.FindRel(e->right.rel);
      REOPT_CHECK_MSG(idx >= 0, "edge endpoint not on either side");
      ref = &e->right;
    }
    KeyColumn kc;
    kc.tuple_rows = side.columns[static_cast<size_t>(idx)].data();
    kc.col = rels.table(ref->rel).column(ref->col).View();
    REOPT_CHECK_MSG(kc.col.type == common::DataType::kInt64,
                    "join columns must be INT64");
    out.push_back(kc);
  }
  return out;
}

/// Computes the flattened composite keys for every tuple of one side:
/// keys[t * ne + i] is edge i's value; has_key[t] is 0 when any part is
/// NULL (NULL never matches in an equi-join). One pass per edge over the
/// raw spans.
void ComputeKeys(const std::vector<KeyColumn>& key_cols, int64_t num_tuples,
                 std::vector<int64_t>* keys, std::vector<uint8_t>* has_key) {
  const size_t ne = key_cols.size();
  keys->resize(static_cast<size_t>(num_tuples) * ne);
  has_key->assign(static_cast<size_t>(num_tuples), 1);
  int64_t* key_data = keys->data();
  uint8_t* hk = has_key->data();
  for (size_t i = 0; i < ne; ++i) {
    const RowIdx* tuple_rows = key_cols[i].tuple_rows;
    const int64_t* vals = key_cols[i].col.ints;
    const uint8_t* valid = key_cols[i].col.valid;
    if (valid == nullptr) {
      for (int64_t t = 0; t < num_tuples; ++t) {
        key_data[static_cast<size_t>(t) * ne + i] =
            vals[static_cast<size_t>(tuple_rows[t])];
      }
    } else {
      for (int64_t t = 0; t < num_tuples; ++t) {
        RowIdx row = tuple_rows[t];
        if (valid[static_cast<size_t>(row)] == 0) {
          hk[t] = 0;
        } else {
          key_data[static_cast<size_t>(t) * ne + i] =
              vals[static_cast<size_t>(row)];
        }
      }
    }
  }
}

/// 64-bit mixer (splitmix64 finalizer) over the composite key parts.
inline uint64_t HashKey(const int64_t* parts, size_t ne) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < ne; ++i) {
    uint64_t x = static_cast<uint64_t>(parts[i]) + h;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    h = x ^ (x >> 31);
  }
  return h;
}

inline bool KeysEqual(const int64_t* a, const int64_t* b, size_t ne) {
  for (size_t i = 0; i < ne; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Key accessors for the single-edge fast path: scalar int64 keys.
struct SingleKeyOps {
  const int64_t* build_keys;
  const int64_t* probe_keys;

  uint64_t BuildHash(int64_t t) const { return HashKey(&build_keys[t], 1); }
  uint64_t ProbeHash(int64_t t) const { return HashKey(&probe_keys[t], 1); }
  bool BuildMatchesBuild(int64_t a, int64_t b) const {
    return build_keys[a] == build_keys[b];
  }
  bool BuildMatchesProbe(int64_t b, int64_t p) const {
    return build_keys[b] == probe_keys[p];
  }
};

/// Key accessors for multi-edge joins: flattened composite keys.
struct CompositeKeyOps {
  const int64_t* build_keys;
  const int64_t* probe_keys;
  size_t ne;

  uint64_t BuildHash(int64_t t) const {
    return HashKey(&build_keys[static_cast<size_t>(t) * ne], ne);
  }
  uint64_t ProbeHash(int64_t t) const {
    return HashKey(&probe_keys[static_cast<size_t>(t) * ne], ne);
  }
  bool BuildMatchesBuild(int64_t a, int64_t b) const {
    return KeysEqual(&build_keys[static_cast<size_t>(a) * ne],
                     &build_keys[static_cast<size_t>(b) * ne], ne);
  }
  bool BuildMatchesProbe(int64_t b, int64_t p) const {
    return KeysEqual(&build_keys[static_cast<size_t>(b) * ne],
                     &probe_keys[static_cast<size_t>(p) * ne], ne);
  }
};

/// One copy of the build-insert and probe loops, templated on the key
/// accessors so the single-edge instantiation inlines to scalar compares.
/// Insertion runs in reverse so prepending yields ascending duplicate
/// chains — the reference kernel's bucket order.
template <typename KeyOps>
void BuildAndProbe(const KeyOps& ops, int64_t build_n, int64_t probe_n,
                   const std::vector<uint8_t>& build_has_key,
                   const std::vector<uint8_t>& probe_has_key, uint64_t mask,
                   std::vector<int64_t>* slot_head, std::vector<int64_t>* next,
                   std::vector<int64_t>* match_build,
                   std::vector<int64_t>* match_probe,
                   const CancelToken* cancel) {
  for (int64_t t = build_n - 1; t >= 0; --t) {
    if ((t % kKernelBatchSize) == 0 && ShouldStop(cancel)) return;
    if (!build_has_key[static_cast<size_t>(t)]) continue;
    uint64_t s = ops.BuildHash(t) & mask;
    while (true) {
      int64_t head = (*slot_head)[s];
      if (head < 0) {
        (*slot_head)[s] = t;
        break;
      }
      if (ops.BuildMatchesBuild(head, t)) {
        (*next)[static_cast<size_t>(t)] = head;
        (*slot_head)[s] = t;
        break;
      }
      s = (s + 1) & mask;
    }
  }
  for (int64_t t = 0; t < probe_n; ++t) {
    if ((t % kKernelBatchSize) == 0 && ShouldStop(cancel)) return;
    if (!probe_has_key[static_cast<size_t>(t)]) continue;
    uint64_t s = ops.ProbeHash(t) & mask;
    while (true) {
      int64_t head = (*slot_head)[s];
      if (head < 0) break;  // miss
      if (ops.BuildMatchesProbe(head, t)) {
        for (int64_t b = head; b >= 0; b = (*next)[static_cast<size_t>(b)]) {
          match_build->push_back(b);
          match_probe->push_back(t);
        }
        break;
      }
      s = (s + 1) & mask;
    }
  }
}

}  // namespace

Intermediate HashJoinIntermediates(
    const Intermediate& left, const Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const BoundRelations& rels, const CancelToken* cancel) {
  REOPT_CHECK_MSG(!edges.empty(), "equi-join requires at least one edge");
  const Intermediate& build = left.size() <= right.size() ? left : right;
  const Intermediate& probe = left.size() <= right.size() ? right : left;
  const size_t ne = edges.size();
  const int64_t build_n = build.size();
  const int64_t probe_n = probe.size();

  Intermediate out;
  out.rels = build.rels;
  out.rels.insert(out.rels.end(), probe.rels.begin(), probe.rels.end());
  out.columns.resize(out.rels.size());
  if (build_n == 0 || probe_n == 0) return out;

  // Phase 1: batch key computation for the build side, then one sized
  // open-addressing table. Slots hold the head tuple of a distinct-key
  // chain; chains are threaded through `next` in ascending tuple order
  // (insertion runs in reverse so prepending yields ascending chains),
  // matching the reference kernel's bucket order exactly.
  std::vector<int64_t> build_keys;
  std::vector<uint8_t> build_has_key;
  ComputeKeys(ResolveKeyColumns(edges, build, rels), build_n, &build_keys,
              &build_has_key);

  uint64_t capacity = 16;
  while (capacity < static_cast<uint64_t>(build_n) * 2) capacity <<= 1;
  const uint64_t mask = capacity - 1;
  std::vector<int64_t> slot_head(capacity, -1);
  std::vector<int64_t> next(static_cast<size_t>(build_n), -1);
  std::vector<int64_t> match_build;
  std::vector<int64_t> match_probe;
  match_build.reserve(static_cast<size_t>(probe_n));
  match_probe.reserve(static_cast<size_t>(probe_n));

  std::vector<int64_t> probe_keys;
  std::vector<uint8_t> probe_has_key;
  ComputeKeys(ResolveKeyColumns(edges, probe, rels), probe_n, &probe_keys,
              &probe_has_key);

  if (ne == 1) {
    // Single-edge specialization (the dominant JOB case): scalar int64
    // keys, no composite-key indirection in the loops.
    BuildAndProbe(SingleKeyOps{build_keys.data(), probe_keys.data()},
                  build_n, probe_n, build_has_key, probe_has_key, mask,
                  &slot_head, &next, &match_build, &match_probe, cancel);
  } else {
    BuildAndProbe(CompositeKeyOps{build_keys.data(), probe_keys.data(), ne},
                  build_n, probe_n, build_has_key, probe_has_key, mask,
                  &slot_head, &next, &match_build, &match_probe, cancel);
  }
  if (ShouldStop(cancel)) return out;  // skip gather; Executor re-checks

  // Phase 3: column-wise gather materialization.
  const size_t m = match_build.size();
  size_t c = 0;
  for (; c < build.columns.size(); ++c) {
    const RowIdx* src = build.columns[c].data();
    std::vector<RowIdx>& dst = out.columns[c];
    dst.resize(m);
    for (size_t i = 0; i < m; ++i) {
      dst[i] = src[static_cast<size_t>(match_build[i])];
    }
  }
  for (size_t p = 0; p < probe.columns.size(); ++p, ++c) {
    const RowIdx* src = probe.columns[p].data();
    std::vector<RowIdx>& dst = out.columns[c];
    dst.resize(m);
    for (size_t i = 0; i < m; ++i) {
      dst[i] = src[static_cast<size_t>(match_probe[i])];
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Morsel-parallel hash join
// ---------------------------------------------------------------------------
namespace {

/// Flattened composite keys, key-validity, and (build side only) splitmix
/// hashes for one join side. The stored build hash doubles as the radix-
/// partition selector (high bits) and the open-addressing slot (low bits),
/// and is read once per partition pass; the probe side recomputes its hash
/// inline from the keys it must read anyway, saving a full store+reload.
struct HashedSide {
  std::vector<int64_t> keys;     // keys[t * ne + i]
  std::vector<uint8_t> has_key;  // 0 when any key part is NULL
  std::vector<uint64_t> hashes;  // build side only; valid iff has_key[t]
};

/// ComputeKeys for the tuple range [begin, end): same per-edge inner loops
/// as the serial ComputeKeys, then one optional hashing pass. Writes only
/// to this range's slots, so concurrent ranges never touch the same bytes.
void ComputeHashedRange(const std::vector<KeyColumn>& key_cols,
                        int64_t begin, int64_t end, HashedSide* side) {
  const size_t ne = key_cols.size();
  int64_t* key_data = side->keys.data();
  uint8_t* hk = side->has_key.data();
  for (int64_t t = begin; t < end; ++t) hk[t] = 1;
  for (size_t i = 0; i < ne; ++i) {
    const RowIdx* tuple_rows = key_cols[i].tuple_rows;
    const int64_t* vals = key_cols[i].col.ints;
    const uint8_t* valid = key_cols[i].col.valid;
    if (valid == nullptr) {
      for (int64_t t = begin; t < end; ++t) {
        key_data[static_cast<size_t>(t) * ne + i] =
            vals[static_cast<size_t>(tuple_rows[t])];
      }
    } else {
      for (int64_t t = begin; t < end; ++t) {
        RowIdx row = tuple_rows[t];
        if (valid[static_cast<size_t>(row)] == 0) {
          hk[t] = 0;
        } else {
          key_data[static_cast<size_t>(t) * ne + i] =
              vals[static_cast<size_t>(row)];
        }
      }
    }
  }
  if (!side->hashes.empty()) {
    uint64_t* hashes = side->hashes.data();
    for (int64_t t = begin; t < end; ++t) {
      if (hk[t]) {
        hashes[t] = HashKey(&key_data[static_cast<size_t>(t) * ne], ne);
      }
    }
  }
}

HashedSide ComputeHashedSide(const std::vector<KeyColumn>& key_cols,
                             int64_t num_tuples, bool with_hashes,
                             const MorselContext& ctx) {
  const size_t ne = key_cols.size();
  HashedSide side;
  side.keys.resize(static_cast<size_t>(num_tuples) * ne);
  side.has_key.resize(static_cast<size_t>(num_tuples));
  if (with_hashes) side.hashes.resize(static_cast<size_t>(num_tuples));
  const std::vector<common::MorselRange> morsels = common::MorselRanges(
      num_tuples, kKernelBatchSize, ctx.threads * kMorselsPerWorker);
  ctx.pool->ParallelRun(
      static_cast<int64_t>(morsels.size()), ctx.threads, [&](int64_t m, int) {
        const common::MorselRange r = morsels[static_cast<size_t>(m)];
        ComputeHashedRange(key_cols, r.begin, r.end, &side);
      });
  return side;
}

/// One radix partition of the build-side hash table: a power-of-two slot
/// range within the shared slot_head array. Partition p owns the build
/// tuples whose hash's high bits equal p, so partitions can be built
/// concurrently without synchronization.
struct TablePartition {
  int64_t base = 0;     // first slot in slot_head
  uint64_t mask = 0;    // capacity - 1
};

/// Inserts partition `p`'s build tuples in reverse tuple order (prepending
/// yields ascending duplicate chains — the serial build's chain order).
/// With num_partitions == 1 every keyed tuple belongs to the partition.
template <typename KeyOps>
void BuildPartition(const KeyOps& ops, const HashedSide& build, int64_t p,
                    int num_partition_bits, const TablePartition& part,
                    std::vector<int64_t>* slot_head,
                    std::vector<int64_t>* next) {
  const int64_t build_n = static_cast<int64_t>(build.has_key.size());
  const uint8_t* hk = build.has_key.data();
  const uint64_t* hashes = build.hashes.data();
  const uint64_t want = static_cast<uint64_t>(p);
  for (int64_t t = build_n - 1; t >= 0; --t) {
    if (!hk[t]) continue;
    const uint64_t h = hashes[t];
    if (num_partition_bits > 0 && (h >> (64 - num_partition_bits)) != want) {
      continue;
    }
    uint64_t s = h & part.mask;
    while (true) {
      int64_t head = (*slot_head)[static_cast<size_t>(part.base) + s];
      if (head < 0) {
        (*slot_head)[static_cast<size_t>(part.base) + s] = t;
        break;
      }
      if (ops.BuildMatchesBuild(head, t)) {
        (*next)[static_cast<size_t>(t)] = head;
        (*slot_head)[static_cast<size_t>(part.base) + s] = t;
        break;
      }
      s = (s + 1) & part.mask;
    }
  }
}

/// Probes tuples [begin, end) against the partitioned table, appending
/// matches (chain-ascending per probe tuple) to the chunk-local buffers.
template <typename KeyOps>
void ProbeRange(const KeyOps& ops, const HashedSide& probe, int64_t begin,
                int64_t end, int num_partition_bits,
                const std::vector<TablePartition>& parts,
                const std::vector<int64_t>& slot_head,
                const std::vector<int64_t>& next,
                std::vector<int64_t>* match_build,
                std::vector<int64_t>* match_probe) {
  const uint8_t* hk = probe.has_key.data();
  for (int64_t t = begin; t < end; ++t) {
    if (!hk[t]) continue;
    const uint64_t h = ops.ProbeHash(t);
    const TablePartition& part =
        parts[num_partition_bits > 0
                  ? static_cast<size_t>(h >> (64 - num_partition_bits))
                  : 0];
    uint64_t s = h & part.mask;
    while (true) {
      int64_t head = slot_head[static_cast<size_t>(part.base) + s];
      if (head < 0) break;  // miss
      if (ops.BuildMatchesProbe(head, t)) {
        for (int64_t b = head; b >= 0; b = next[static_cast<size_t>(b)]) {
          match_build->push_back(b);
          match_probe->push_back(t);
        }
        break;
      }
      s = (s + 1) & part.mask;
    }
  }
}

inline uint64_t RoundUpPow2(uint64_t v, uint64_t floor) {
  uint64_t c = floor;
  while (c < v) c <<= 1;
  return c;
}

template <typename KeyOps>
Intermediate HashJoinParallelImpl(const Intermediate& build,
                                  const Intermediate& probe,
                                  const KeyOps& ops,
                                  const HashedSide& build_side,
                                  const HashedSide& probe_side,
                                  const MorselContext& ctx,
                                  Intermediate out) {
  const int64_t build_n = build.size();
  const int64_t probe_n = probe.size();

  // Partition count: the largest power of two <= the thread budget (only
  // when the build side is big enough to amortize), because the build pass
  // costs one filtered scan of the build hash/has_key streams (~9 bytes
  // per tuple) *per partition* — with P <= threads that is at most one
  // full scan per core, and build <= probe keeps it cheap relative to the
  // probe. Small builds use one partition (serial insert).
  int num_partition_bits = 0;
  if (build_n >= kParallelMinRows) {
    while ((2 << num_partition_bits) <= ctx.threads) ++num_partition_bits;
    if (num_partition_bits > 6) num_partition_bits = 6;  // cap at 64
  }
  const int64_t num_partitions = int64_t{1} << num_partition_bits;

  // Per-partition tuple counts (morsel-parallel histogram) size each
  // partition's slot range for its own worst case, so key skew can never
  // overflow a partition.
  std::vector<int64_t> part_count(static_cast<size_t>(num_partitions), 0);
  if (num_partition_bits == 0) {
    part_count[0] = build_n;
  } else {
    const std::vector<common::MorselRange> morsels = common::MorselRanges(
        build_n, kKernelBatchSize, ctx.threads * kMorselsPerWorker);
    std::vector<std::vector<int64_t>> local(
        morsels.size(),
        std::vector<int64_t>(static_cast<size_t>(num_partitions), 0));
    ctx.pool->ParallelRun(
        static_cast<int64_t>(morsels.size()), ctx.threads,
        [&](int64_t m, int) {
          const common::MorselRange r = morsels[static_cast<size_t>(m)];
          std::vector<int64_t>& counts = local[static_cast<size_t>(m)];
          for (int64_t t = r.begin; t < r.end; ++t) {
            if (build_side.has_key[static_cast<size_t>(t)]) {
              ++counts[static_cast<size_t>(
                  build_side.hashes[static_cast<size_t>(t)] >>
                  (64 - num_partition_bits))];
            }
          }
        });
    for (const std::vector<int64_t>& counts : local) {
      for (int64_t p = 0; p < num_partitions; ++p) {
        part_count[static_cast<size_t>(p)] += counts[static_cast<size_t>(p)];
      }
    }
  }

  std::vector<TablePartition> parts(static_cast<size_t>(num_partitions));
  int64_t total_slots = 0;
  for (int64_t p = 0; p < num_partitions; ++p) {
    uint64_t cap = RoundUpPow2(
        static_cast<uint64_t>(part_count[static_cast<size_t>(p)]) * 2, 16);
    parts[static_cast<size_t>(p)].base = total_slots;
    parts[static_cast<size_t>(p)].mask = cap - 1;
    total_slots += static_cast<int64_t>(cap);
  }
  std::vector<int64_t> slot_head(static_cast<size_t>(total_slots), -1);
  std::vector<int64_t> next(static_cast<size_t>(build_n), -1);

  ctx.pool->ParallelRun(num_partitions, ctx.threads, [&](int64_t p, int) {
    BuildPartition(ops, build_side, p, num_partition_bits,
                   parts[static_cast<size_t>(p)], &slot_head, &next);
  });
  if (ShouldStop(ctx.cancel)) return out;  // empty; Executor re-checks

  // Probe over morsels into chunk-local match buffers.
  const std::vector<common::MorselRange> probe_morsels =
      common::MorselRanges(probe_n, kKernelBatchSize,
                           ctx.threads * kMorselsPerWorker);
  struct MatchChunk {
    std::vector<int64_t> build;
    std::vector<int64_t> probe;
  };
  std::vector<MatchChunk> chunks(probe_morsels.size());
  ctx.pool->ParallelRun(
      static_cast<int64_t>(probe_morsels.size()), ctx.threads,
      [&](int64_t m, int) {
        if (ShouldStop(ctx.cancel)) return;  // skip morsel
        const common::MorselRange r = probe_morsels[static_cast<size_t>(m)];
        MatchChunk& chunk = chunks[static_cast<size_t>(m)];
        // Same heuristic as the serial join's probe_n reservation: about
        // one match per probe tuple.
        chunk.build.reserve(static_cast<size_t>(r.end - r.begin));
        chunk.probe.reserve(static_cast<size_t>(r.end - r.begin));
        ProbeRange(ops, probe_side, r.begin, r.end, num_partition_bits,
                   parts, slot_head, next, &chunk.build, &chunk.probe);
      });

  // Deterministic merge: chunk offsets in morsel order reproduce the
  // serial probe-order-major match sequence; the gather then writes
  // disjoint output ranges in parallel.
  std::vector<size_t> offsets(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    offsets[c + 1] = offsets[c] + chunks[c].build.size();
  }
  const size_t m_total = offsets.empty() ? 0 : offsets.back();
  for (std::vector<RowIdx>& col : out.columns) col.resize(m_total);

  const size_t num_build_cols = build.columns.size();
  ctx.pool->ParallelRun(
      static_cast<int64_t>(chunks.size()), ctx.threads,
      [&](int64_t ci, int) {
        const MatchChunk& chunk = chunks[static_cast<size_t>(ci)];
        const size_t off = offsets[static_cast<size_t>(ci)];
        const size_t len = chunk.build.size();
        for (size_t c = 0; c < num_build_cols; ++c) {
          const RowIdx* src = build.columns[c].data();
          RowIdx* dst = out.columns[c].data() + off;
          for (size_t i = 0; i < len; ++i) {
            dst[i] = src[static_cast<size_t>(chunk.build[i])];
          }
        }
        for (size_t p = 0; p < probe.columns.size(); ++p) {
          const RowIdx* src = probe.columns[p].data();
          RowIdx* dst = out.columns[num_build_cols + p].data() + off;
          for (size_t i = 0; i < len; ++i) {
            dst[i] = src[static_cast<size_t>(chunk.probe[i])];
          }
        }
      });
  return out;
}

}  // namespace

Intermediate HashJoinIntermediatesParallel(
    const Intermediate& left, const Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const BoundRelations& rels, const MorselContext& ctx) {
  REOPT_CHECK_MSG(!edges.empty(), "equi-join requires at least one edge");
  const Intermediate& build = left.size() <= right.size() ? left : right;
  const Intermediate& probe = left.size() <= right.size() ? right : left;
  // The probe side dominates; below the threshold the serial join wins.
  if (!ctx.enabled() || probe.size() < kParallelMinRows) {
    return HashJoinIntermediates(left, right, edges, rels, ctx.cancel);
  }

  Intermediate out;
  out.rels = build.rels;
  out.rels.insert(out.rels.end(), probe.rels.begin(), probe.rels.end());
  out.columns.resize(out.rels.size());
  if (build.size() == 0 || probe.size() == 0) return out;

  const size_t ne = edges.size();
  HashedSide build_side =
      ComputeHashedSide(ResolveKeyColumns(edges, build, rels), build.size(),
                        /*with_hashes=*/true, ctx);
  HashedSide probe_side =
      ComputeHashedSide(ResolveKeyColumns(edges, probe, rels), probe.size(),
                        /*with_hashes=*/false, ctx);
  if (ShouldStop(ctx.cancel)) return out;  // empty; Executor re-checks

  if (ne == 1) {
    return HashJoinParallelImpl(
        build, probe,
        SingleKeyOps{build_side.keys.data(), probe_side.keys.data()},
        build_side, probe_side, ctx, std::move(out));
  }
  return HashJoinParallelImpl(
      build, probe,
      CompositeKeyOps{build_side.keys.data(), probe_side.keys.data(), ne},
      build_side, probe_side, ctx, std::move(out));
}

namespace {

// Joins the connected `set` in a greedy connectivity-preserving order.
Intermediate JoinConnectedSet(const plan::QuerySpec& query, plan::RelSet set,
                              const BoundRelations& rels) {
  // Start from the smallest filtered relation; repeatedly attach the
  // connected relation whose filtered base is smallest.
  std::vector<std::vector<common::RowIdx>> filtered(
      static_cast<size_t>(query.num_relations()));
  int start = -1;
  int64_t start_size = INT64_MAX;
  for (int r : set.Members()) {
    filtered[static_cast<size_t>(r)] =
        FilterScan(rels.table(r), query.FiltersFor(r));
    int64_t sz = static_cast<int64_t>(filtered[static_cast<size_t>(r)].size());
    if (sz < start_size) {
      start_size = sz;
      start = r;
    }
  }

  plan::JoinGraph graph(query);
  Intermediate current = Intermediate::FromRows(
      start, std::move(filtered[static_cast<size_t>(start)]));
  plan::RelSet done = plan::RelSet::Single(start);

  while (done != set) {
    // Next: smallest filtered relation adjacent to `done` within `set`.
    int next = -1;
    int64_t best = INT64_MAX;
    plan::RelSet frontier = graph.NeighborsOf(done).Intersect(set);
    REOPT_CHECK_MSG(!frontier.empty(),
                    "JoinConnectedSet requires a connected set");
    for (int r : frontier.Members()) {
      int64_t sz = static_cast<int64_t>(filtered[static_cast<size_t>(r)].size());
      if (sz < best) {
        best = sz;
        next = r;
      }
    }
    Intermediate rhs = Intermediate::FromRows(
        next, std::move(filtered[static_cast<size_t>(next)]));
    std::vector<const plan::JoinEdge*> edges =
        query.JoinsBetween(done, plan::RelSet::Single(next));
    current = HashJoinIntermediates(current, rhs, edges, rels);
    done = done.With(next);
  }
  return current;
}

}  // namespace

Intermediate ExactJoin(const plan::QuerySpec& query, plan::RelSet set,
                       const BoundRelations& rels) {
  REOPT_CHECK(!set.empty());
  if (set.count() == 1) {
    int r = set.Lowest();
    return Intermediate::FromRows(
        r, FilterScan(rels.table(r), query.FiltersFor(r)));
  }
  return JoinConnectedSet(query, set, rels);
}

double ExactJoinCount(const plan::QuerySpec& query, plan::RelSet set,
                      const BoundRelations& rels) {
  REOPT_CHECK(!set.empty());
  plan::JoinGraph graph(query);
  double product = 1.0;
  plan::RelSet remaining = set;
  while (!remaining.empty()) {
    // Peel one connected component.
    plan::RelSet component = plan::RelSet::Single(remaining.Lowest());
    while (true) {
      plan::RelSet grow =
          graph.NeighborsOf(component).Intersect(remaining);
      if (grow.empty()) break;
      component = component.Union(grow);
    }
    Intermediate joined = ExactJoin(query, component, rels);
    product *= static_cast<double>(joined.size());
    remaining = remaining.Minus(component);
    if (product == 0.0) return 0.0;
  }
  return product;
}

}  // namespace reopt::exec
