// The query executor. Every operator genuinely executes (exact results,
// exact intermediate cardinalities); time is *charged* through the shared
// cost formulas evaluated at the actual row counts, making execution time
// deterministic and plan-quality-faithful (see docs/ARCHITECTURE.md: simulated time).
#ifndef REOPT_EXEC_EXECUTOR_H_
#define REOPT_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/cancel.h"
#include "exec/intermediate.h"
#include "exec/kernel.h"
#include "optimizer/cost_params.h"
#include "plan/physical_plan.h"
#include "plan/query_spec.h"
#include "stats/stats_catalog.h"
#include "storage/catalog.h"

namespace reopt::exec {

/// Result of executing one plan.
struct QueryResult {
  /// One value per QuerySpec output (MIN aggregates); empty when the root
  /// is a TempWrite.
  std::vector<common::Value> aggregates;
  /// Join-result tuples entering the aggregate (or written to the temp
  /// table).
  int64_t raw_rows = 0;
  /// Total charged execution cost of the plan, in cost units.
  double cost_units = 0.0;
};

/// Executes physical plans against a catalog. One instance can run many
/// plans; temp tables created by kTempWrite nodes are registered in the
/// catalog and analyzed into the stats catalog (so a re-planned query sees
/// exact statistics for them, as in the paper's simulation).
class Executor {
 public:
  Executor(storage::Catalog* catalog, stats::StatsCatalog* stats_catalog,
           const optimizer::CostParams& params)
      : catalog_(catalog), stats_catalog_(stats_catalog), params_(params) {}

  /// Routes scans and joins through the vectorized kernel (default, set
  /// from the process-wide DefaultKernelMode at construction) or the
  /// retained scalar reference kernel (differential testing only). Results
  /// are identical either way; only the evaluation strategy differs.
  void set_kernel_mode(KernelMode mode) { kernel_mode_ = mode; }
  KernelMode kernel_mode() const { return kernel_mode_; }

  /// Intra-query morsel parallelism: FilterScan and hash joins fan over up
  /// to `threads` of `pool`'s workers (see exec::MorselContext). Results
  /// are byte-identical to the serial executor at any setting; threads <= 1
  /// or a null pool keeps the serial kernels. The reference kernel mode is
  /// always serial (it is the correctness oracle).
  void set_intra_query_parallelism(int threads, common::ThreadPool* pool) {
    intra_.threads = threads < 1 ? 1 : threads;
    intra_.pool = pool;
  }
  int intra_query_threads() const { return intra_.threads; }

  /// Attaches a cooperative cancellation/deadline token, polled at kernel
  /// batch/morsel boundaries and surfaced from Execute as Cancelled /
  /// DeadlineExceeded. The token must outlive every Execute call; nullptr
  /// detaches. Kernels stop early with truncated intermediates when the
  /// token trips, and Execute re-checks it before returning, so partial
  /// results never escape as success.
  void set_cancel_token(const CancelToken* cancel) {
    cancel_ = cancel;
    intra_.cancel = cancel;
  }

  /// Executes `plan` for `query`. Fills actual_rows / charged_cost on every
  /// node of the plan.
  common::Result<QueryResult> Execute(const plan::QuerySpec& query,
                                      plan::PlanNode* plan_root);

 private:
  Intermediate ExecuteNode(const plan::QuerySpec& query,
                           const BoundRelations& rels, plan::PlanNode* node);
  Intermediate ExecuteScan(const plan::QuerySpec& query,
                           const BoundRelations& rels, plan::PlanNode* node);
  Intermediate ExecuteHashJoin(const plan::QuerySpec& query,
                               const BoundRelations& rels,
                               plan::PlanNode* node);
  Intermediate ExecuteNestedLoop(const plan::QuerySpec& query,
                                 const BoundRelations& rels,
                                 plan::PlanNode* node);
  Intermediate ExecuteIndexNestedLoop(const plan::QuerySpec& query,
                                      const BoundRelations& rels,
                                      plan::PlanNode* node);
  /// Fails with AlreadyExists on a temp-table name collision (user DDL can
  /// race on names; the error must stay a Status, not a crash).
  common::Status ExecuteTempWrite(const plan::QuerySpec& query,
                                  const BoundRelations& rels,
                                  plan::PlanNode* node,
                                  const Intermediate& input);

  /// FilterScan / HashJoinIntermediates through the selected kernel.
  std::vector<common::RowIdx> RunFilterScan(
      const storage::Table& table,
      const std::vector<const plan::ScanPredicate*>& filters) const;
  Intermediate RunHashJoin(const Intermediate& left,
                           const Intermediate& right,
                           const std::vector<const plan::JoinEdge*>& edges,
                           const BoundRelations& rels) const;

  storage::Catalog* catalog_;
  stats::StatsCatalog* stats_catalog_;
  optimizer::CostParams params_;
  KernelMode kernel_mode_ = DefaultKernelMode();
  MorselContext intra_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace reopt::exec

#endif  // REOPT_EXEC_EXECUTOR_H_
