// The retained scalar (row-at-a-time) evaluation kernel. This is the
// pre-vectorization implementation, kept verbatim as the correctness oracle
// for the differential-testing harness (tests/kernel_differential_test.cc,
// tests/kernel_fuzz_test.cc) and as the baseline side of the scalar-vs-
// vectorized micro-benchmarks. It is NOT on any hot path: production
// execution goes through the batch kernels in kernel.h.
//
// Contract: for every input, each function here returns results identical
// to its vectorized counterpart in kernel.h — same rows, same tuple order.
#ifndef REOPT_EXEC_KERNEL_REFERENCE_H_
#define REOPT_EXEC_KERNEL_REFERENCE_H_

#include <vector>

#include "exec/intermediate.h"
#include "exec/kernel.h"
#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace reopt::exec::reference {

/// Row ids of `rel` passing all of `filters` (full scan, one
/// EvalPredicate dispatch per (row, predicate)). `cancel` is polled every
/// kKernelBatchSize rows — the same boundaries as the vectorized kernel —
/// and stops with a truncated result the Executor discards.
std::vector<common::RowIdx> FilterScan(
    const storage::Table& table,
    const std::vector<const plan::ScanPredicate*>& filters,
    const CancelToken* cancel = nullptr);

/// Tuple-at-a-time hash join (build on the smaller input, std::unordered_map
/// bucket chains, per-tuple FindRel/column lookups).
Intermediate HashJoinIntermediates(
    const Intermediate& left, const Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const BoundRelations& rels, const CancelToken* cancel = nullptr);

/// As exec::ExactJoin / exec::ExactJoinCount but composed from the scalar
/// kernels above (same greedy connectivity-preserving join order).
Intermediate ExactJoin(const plan::QuerySpec& query, plan::RelSet set,
                       const BoundRelations& rels);
double ExactJoinCount(const plan::QuerySpec& query, plan::RelSet set,
                      const BoundRelations& rels);

}  // namespace reopt::exec::reference

#endif  // REOPT_EXEC_KERNEL_REFERENCE_H_
