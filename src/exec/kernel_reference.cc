#include "exec/kernel_reference.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "plan/join_graph.h"

namespace reopt::exec::reference {

std::vector<common::RowIdx> FilterScan(
    const storage::Table& table,
    const std::vector<const plan::ScanPredicate*>& filters,
    const CancelToken* cancel) {
  std::vector<common::RowIdx> out;
  int64_t n = table.num_rows();
  for (common::RowIdx row = 0; row < n; ++row) {
    if ((row % kKernelBatchSize) == 0 && ShouldStop(cancel)) break;
    bool pass = true;
    for (const plan::ScanPredicate* pred : filters) {
      if (!EvalPredicate(*pred, table, row)) {
        pass = false;
        break;
      }
    }
    if (pass) out.push_back(row);
  }
  return out;
}

namespace {

// Composite join key: FNV-1a over the int64 key parts. Collisions are
// resolved by comparing the parts.
struct JoinKey {
  // Up to 4 edges between two sides in JOB-like queries; small inline array.
  int64_t parts[4];
  int count;

  bool operator==(const JoinKey& other) const {
    if (count != other.count) return false;
    for (int i = 0; i < count; ++i) {
      if (parts[i] != other.parts[i]) return false;
    }
    return true;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < k.count; ++i) {
      h ^= static_cast<uint64_t>(k.parts[i]);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Extracts the side-specific key columns of the edges: for each edge, which
// (relation, column) belongs to this side.
struct SideKeys {
  std::vector<int> rel;                 // relation position per edge
  std::vector<common::ColumnIdx> col;   // column per edge
};

SideKeys KeysForSide(const std::vector<const plan::JoinEdge*>& edges,
                     const Intermediate& side) {
  SideKeys out;
  for (const plan::JoinEdge* e : edges) {
    if (side.FindRel(e->left.rel) >= 0) {
      out.rel.push_back(e->left.rel);
      out.col.push_back(e->left.col);
    } else {
      REOPT_CHECK_MSG(side.FindRel(e->right.rel) >= 0,
                      "edge endpoint not on either side");
      out.rel.push_back(e->right.rel);
      out.col.push_back(e->right.col);
    }
  }
  return out;
}

// Builds the key for tuple `t` of `side`; returns false if any key part is
// NULL (NULL never matches in an equi-join).
bool MakeKey(const Intermediate& side, const SideKeys& keys,
             const BoundRelations& rels, int64_t t, JoinKey* out) {
  out->count = static_cast<int>(keys.rel.size());
  REOPT_CHECK_MSG(out->count <= 4, "more than 4 join edges between sides");
  for (size_t i = 0; i < keys.rel.size(); ++i) {
    const storage::Table& table = rels.table(keys.rel[i]);
    const storage::Column& col = table.column(keys.col[i]);
    common::RowIdx row = side.RowOf(keys.rel[i], t);
    if (col.IsNull(row)) return false;
    REOPT_CHECK_MSG(col.type() == common::DataType::kInt64,
                    "join columns must be INT64");
    out->parts[i] = col.GetInt(row);
  }
  return true;
}

}  // namespace

Intermediate HashJoinIntermediates(
    const Intermediate& left, const Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const BoundRelations& rels, const CancelToken* cancel) {
  REOPT_CHECK_MSG(!edges.empty(), "equi-join requires at least one edge");
  const Intermediate& build = left.size() <= right.size() ? left : right;
  const Intermediate& probe = left.size() <= right.size() ? right : left;

  SideKeys build_keys = KeysForSide(edges, build);
  SideKeys probe_keys = KeysForSide(edges, probe);

  std::unordered_map<JoinKey, std::vector<int64_t>, JoinKeyHash> table;
  table.reserve(static_cast<size_t>(build.size()));
  JoinKey key;
  for (int64_t t = 0; t < build.size(); ++t) {
    if ((t % kKernelBatchSize) == 0 && ShouldStop(cancel)) break;
    if (MakeKey(build, build_keys, rels, t, &key)) {
      table[key].push_back(t);
    }
  }

  Intermediate out;
  out.rels = build.rels;
  out.rels.insert(out.rels.end(), probe.rels.begin(), probe.rels.end());
  out.columns.resize(out.rels.size());

  for (int64_t t = 0; t < probe.size(); ++t) {
    if ((t % kKernelBatchSize) == 0 && ShouldStop(cancel)) break;
    if (!MakeKey(probe, probe_keys, rels, t, &key)) continue;
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (int64_t b : it->second) {
      size_t c = 0;
      for (; c < build.columns.size(); ++c) {
        out.columns[c].push_back(build.columns[c][static_cast<size_t>(b)]);
      }
      for (size_t p = 0; p < probe.columns.size(); ++p, ++c) {
        out.columns[c].push_back(probe.columns[p][static_cast<size_t>(t)]);
      }
    }
  }
  return out;
}

namespace {

// Joins the connected `set` in a greedy connectivity-preserving order.
Intermediate JoinConnectedSet(const plan::QuerySpec& query, plan::RelSet set,
                              const BoundRelations& rels) {
  // Start from the smallest filtered relation; repeatedly attach the
  // connected relation whose filtered base is smallest.
  std::vector<std::vector<common::RowIdx>> filtered(
      static_cast<size_t>(query.num_relations()));
  int start = -1;
  int64_t start_size = INT64_MAX;
  for (int r : set.Members()) {
    filtered[static_cast<size_t>(r)] =
        FilterScan(rels.table(r), query.FiltersFor(r));
    int64_t sz = static_cast<int64_t>(filtered[static_cast<size_t>(r)].size());
    if (sz < start_size) {
      start_size = sz;
      start = r;
    }
  }

  plan::JoinGraph graph(query);
  Intermediate current = Intermediate::FromRows(
      start, std::move(filtered[static_cast<size_t>(start)]));
  plan::RelSet done = plan::RelSet::Single(start);

  while (done != set) {
    // Next: smallest filtered relation adjacent to `done` within `set`.
    int next = -1;
    int64_t best = INT64_MAX;
    plan::RelSet frontier = graph.NeighborsOf(done).Intersect(set);
    REOPT_CHECK_MSG(!frontier.empty(),
                    "JoinConnectedSet requires a connected set");
    for (int r : frontier.Members()) {
      int64_t sz = static_cast<int64_t>(filtered[static_cast<size_t>(r)].size());
      if (sz < best) {
        best = sz;
        next = r;
      }
    }
    Intermediate rhs = Intermediate::FromRows(
        next, std::move(filtered[static_cast<size_t>(next)]));
    std::vector<const plan::JoinEdge*> edges =
        query.JoinsBetween(done, plan::RelSet::Single(next));
    current = reference::HashJoinIntermediates(current, rhs, edges, rels);
    done = done.With(next);
  }
  return current;
}

}  // namespace

Intermediate ExactJoin(const plan::QuerySpec& query, plan::RelSet set,
                       const BoundRelations& rels) {
  REOPT_CHECK(!set.empty());
  if (set.count() == 1) {
    int r = set.Lowest();
    return Intermediate::FromRows(
        r, FilterScan(rels.table(r), query.FiltersFor(r)));
  }
  return JoinConnectedSet(query, set, rels);
}

double ExactJoinCount(const plan::QuerySpec& query, plan::RelSet set,
                      const BoundRelations& rels) {
  REOPT_CHECK(!set.empty());
  plan::JoinGraph graph(query);
  double product = 1.0;
  plan::RelSet remaining = set;
  while (!remaining.empty()) {
    // Peel one connected component.
    plan::RelSet component = plan::RelSet::Single(remaining.Lowest());
    while (true) {
      plan::RelSet grow =
          graph.NeighborsOf(component).Intersect(remaining);
      if (grow.empty()) break;
      component = component.Union(grow);
    }
    Intermediate joined = reference::ExactJoin(query, component, rels);
    product *= static_cast<double>(joined.size());
    remaining = remaining.Minus(component);
    if (product == 0.0) return 0.0;
  }
  return product;
}

}  // namespace reopt::exec::reference
