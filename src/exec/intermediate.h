// Intermediate results flowing between physical operators: a columnar set
// of row-id tuples. Each covered relation contributes one column of base-
// table row indexes; payload values are fetched from base tables on demand.
#ifndef REOPT_EXEC_INTERMEDIATE_H_
#define REOPT_EXEC_INTERMEDIATE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "plan/rel_set.h"

namespace reopt::exec {

/// A bag of tuples over a set of relations. `rels[i]` is the relation
/// position whose row ids live in `columns[i]`. All columns have equal
/// length (the tuple count).
struct Intermediate {
  std::vector<int> rels;
  std::vector<std::vector<common::RowIdx>> columns;

  int64_t size() const {
    return columns.empty() ? 0
                           : static_cast<int64_t>(columns.front().size());
  }

  /// Index of `rel` within `rels`; -1 if absent.
  int FindRel(int rel) const {
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i] == rel) return static_cast<int>(i);
    }
    return -1;
  }

  /// Row id of `rel` in tuple `t`.
  common::RowIdx RowOf(int rel, int64_t t) const {
    int idx = FindRel(rel);
    REOPT_CHECK_MSG(idx >= 0, "relation not in intermediate");
    return columns[static_cast<size_t>(idx)][static_cast<size_t>(t)];
  }

  plan::RelSet RelationSet() const {
    plan::RelSet out;
    for (int r : rels) out = out.With(r);
    return out;
  }

  /// A single-relation intermediate from a vector of row ids.
  static Intermediate FromRows(int rel, std::vector<common::RowIdx> rows) {
    Intermediate out;
    out.rels.push_back(rel);
    out.columns.push_back(std::move(rows));
    return out;
  }
};

}  // namespace reopt::exec

#endif  // REOPT_EXEC_INTERMEDIATE_H_
