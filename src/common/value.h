// A dynamically-typed scalar value, used at API boundaries (predicates,
// statistics, query results). Hot execution paths operate on typed column
// vectors instead.
#ifndef REOPT_COMMON_VALUE_H_
#define REOPT_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/check.h"
#include "common/types.h"

namespace reopt::common {

/// A null, int64, double or string scalar. Ordered and hashable; comparisons
/// across numeric types coerce to double, null compares less than everything.
class Value {
 public:
  Value() : payload_(Null{}) {}
  static Value Null_() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }

  bool is_null() const { return std::holds_alternative<Null>(payload_); }
  bool is_int() const { return std::holds_alternative<int64_t>(payload_); }
  bool is_double() const { return std::holds_alternative<double>(payload_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(payload_);
  }

  int64_t AsInt() const {
    REOPT_CHECK_MSG(is_int(), "Value is not int64");
    return std::get<int64_t>(payload_);
  }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(payload_));
    REOPT_CHECK_MSG(is_double(), "Value is not numeric");
    return std::get<double>(payload_);
  }
  const std::string& AsString() const {
    REOPT_CHECK_MSG(is_string(), "Value is not string");
    return std::get<std::string>(payload_);
  }

  /// The DataType of a non-null value; CHECK-fails on null.
  DataType type() const;

  /// Three-way comparison: negative/zero/positive like strcmp. Null sorts
  /// first; numeric types compare by value; strings lexicographically.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// SQL-literal style rendering: NULL, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Stable hash (FNV-1a over the canonical representation).
  uint64_t Hash() const;

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };
  using Payload = std::variant<Null, int64_t, double, std::string>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

}  // namespace reopt::common

#endif  // REOPT_COMMON_VALUE_H_
