#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace reopt::common {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  REOPT_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

ZipfSampler::ZipfSampler(int64_t n, double theta) : n_(n), theta_(theta) {
  REOPT_CHECK(n >= 1);
  REOPT_CHECK(theta >= 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), theta);
    cdf_[static_cast<size_t>(k - 1)] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_;
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace reopt::common
