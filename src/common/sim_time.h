// Deterministic simulated time. Plan and execution costs are charged in
// abstract "cost units" by the runtime cost model; this module converts
// them to simulated seconds for reporting. See docs/ARCHITECTURE.md ("simulated time").
#ifndef REOPT_COMMON_SIM_TIME_H_
#define REOPT_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace reopt::common {

/// Abstract work accumulated by the executor / planner. One unit roughly
/// corresponds to one PostgreSQL cost unit (cpu_tuple_cost = 0.01 units).
using CostUnits = double;

/// Calibration constant: cost units per simulated second. Chosen so that
/// the full 113-query workload at the default bench scale lands in the
/// paper's few-hundred-seconds range (Figs. 1/2/7) — i.e. the simulated
/// machine is as slow as the paper's single-threaded PostgreSQL VM.
inline constexpr double kCostUnitsPerSecond = 2500.0;

/// Converts charged cost units to simulated seconds.
inline double CostUnitsToSeconds(CostUnits units) {
  return units / kCostUnitsPerSecond;
}

/// Converts charged cost units to simulated milliseconds.
inline double CostUnitsToMillis(CostUnits units) {
  return 1000.0 * units / kCostUnitsPerSecond;
}

/// "123.4 ms" / "12.34 s" style rendering of a simulated duration.
std::string FormatSimSeconds(double seconds);

}  // namespace reopt::common

#endif  // REOPT_COMMON_SIM_TIME_H_
