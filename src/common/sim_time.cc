#include "common/sim_time.h"

#include "common/string_util.h"

namespace reopt::common {

std::string FormatSimSeconds(double seconds) {
  if (seconds < 0.001) {
    return StrPrintf("%.1f us", seconds * 1e6);
  }
  if (seconds < 1.0) {
    return StrPrintf("%.1f ms", seconds * 1e3);
  }
  return StrPrintf("%.2f s", seconds);
}

}  // namespace reopt::common
