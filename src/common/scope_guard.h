// ScopeGuard: runs a callable when the enclosing scope exits, whatever the
// exit path — normal return, early Status return, or stack unwinding from a
// CHECK-adjacent throw. Used by the re-optimization loop to guarantee temp
// tables and their statistics never outlive the query that created them.
#ifndef REOPT_COMMON_SCOPE_GUARD_H_
#define REOPT_COMMON_SCOPE_GUARD_H_

#include <utility>

namespace reopt::common {

/// [[nodiscard]]: a guard that is not bound to a local dies immediately,
/// firing its cleanup at the end of the full expression instead of the end
/// of the scope — always a bug, so dropping one fails the build.
template <typename F>
class [[nodiscard]] ScopeGuard {
 public:
  explicit ScopeGuard(F fn) : fn_(std::move(fn)) {}
  ~ScopeGuard() {
    if (armed_) fn_();
  }

  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;
  ScopeGuard(ScopeGuard&& other) noexcept
      : fn_(std::move(other.fn_)), armed_(other.armed_) {
    other.armed_ = false;
  }
  ScopeGuard& operator=(ScopeGuard&&) = delete;

  /// Cancels the guard; the callable will not run.
  void Dismiss() { armed_ = false; }

 private:
  F fn_;
  bool armed_ = true;
};

template <typename F>
[[nodiscard]] ScopeGuard<F> MakeScopeGuard(F fn) {
  return ScopeGuard<F>(std::move(fn));
}

}  // namespace reopt::common

#endif  // REOPT_COMMON_SCOPE_GUARD_H_
