// Deterministic fault injection: a process-wide registry of named fail
// points planted on the engine's state-changing paths (temp-table
// materialization, ANALYZE, plan/re-plan, knowledge-base commit, queue
// push, worker execution). A disarmed point costs one relaxed atomic load
// — the registry mutex is only touched while at least one point is armed —
// so production code keeps its points compiled in.
//
// Trigger specs (all deterministic given the spec):
//   "off"           disarm (same as Disarm(name))
//   "always"        trigger on every evaluation
//   "once"          trigger on the first evaluation, then pass
//   "nth:N"         trigger on the Nth evaluation only (N >= 1)
//   "prob:P:SEED"   trigger each evaluation with probability P in [0,1],
//                   drawn from a common::Rng seeded with SEED — the
//                   trigger sequence is a pure function of the spec and
//                   the evaluation order
//
// Arming: programmatically via Arm()/ArmFromSpecList(), or from the
// environment — REOPT_FAILPOINTS="reopt.materialize=nth:2,kb.commit=once"
// is parsed once at process start.
//
// Call sites use REOPT_INJECT_FAULT("name") in functions returning Status
// or Result<T>, or failpoint::Triggered("name") where a bool fits better.
// tools/lint.py (rule fail-points) requires every name planted under src/
// to be exercised by at least one chaos test.
#ifndef REOPT_COMMON_FAIL_POINT_H_
#define REOPT_COMMON_FAIL_POINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace reopt::common::failpoint {

/// Arms (or re-arms, resetting counters) the named point with a trigger
/// spec. InvalidArgument on a malformed spec; the point's previous state
/// is untouched on error.
Status Arm(const std::string& name, const std::string& spec);

/// Arms a comma-separated "name=spec,name=spec" list (the REOPT_FAILPOINTS
/// environment format). Stops at the first malformed entry.
Status ArmFromSpecList(const std::string& list);

void Disarm(const std::string& name);
void DisarmAll();

/// Evaluation / trigger counters for the named point since it was last
/// armed (0 when not armed).
int64_t Hits(const std::string& name);
int64_t Triggers(const std::string& name);

/// Names currently armed, sorted.
std::vector<std::string> ArmedNames();

namespace internal {
extern std::atomic<int> g_armed_count;
/// Slow path: counts a hit against the named point and reports whether it
/// fires. Unarmed names never fire.
bool Evaluate(const char* name);
}  // namespace internal

/// Number of armed points. The disarmed fast path of every check.
inline int ActiveCount() {
  return internal::g_armed_count.load(std::memory_order_relaxed);
}

/// True when the named point is armed and its spec fires on this hit.
inline bool Triggered(const char* name) {
  return ActiveCount() > 0 && internal::Evaluate(name);
}

}  // namespace reopt::common::failpoint

/// Plants a fail point: when armed and triggered, returns
/// Status::Unavailable (a transient code — retries are expected to
/// succeed) from the enclosing function. Usable in functions returning
/// Status or Result<T>.
#define REOPT_INJECT_FAULT(name)                               \
  do {                                                         \
    if (::reopt::common::failpoint::Triggered(name)) {         \
      return ::reopt::common::Status::Unavailable(             \
          std::string("injected fault at fail point ") + (name)); \
    }                                                          \
  } while (0)

#endif  // REOPT_COMMON_FAIL_POINT_H_
