// Error handling for fallible operations. The library does not use
// exceptions; functions that can fail return Status or Result<T>.
#ifndef REOPT_COMMON_STATUS_H_
#define REOPT_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace reopt::common {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  kUnavailable,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Whether a failure with this code is transient: the operation did not
/// corrupt any state and an identical retry may succeed (e.g. an injected
/// fault or a momentarily unavailable resource). Deadline/cancellation
/// failures are deliberate outcomes, not transient — retrying them would
/// defeat the caller's intent — and every other code is deterministic.
inline bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// A success-or-error value. Cheap to copy in the success case.
/// [[nodiscard]]: silently dropping a Status loses the only error signal a
/// no-exceptions codebase has, so ignoring one fails the build (spell an
/// intentional drop as `(void)expr;` with a comment).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Inspect with ok() before
/// dereferencing. [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    REOPT_CHECK_MSG(!std::get<Status>(payload_).ok(),
                    "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  T& value() {
    REOPT_CHECK_MSG(ok(), "value() on error Result");
    return std::get<T>(payload_);
  }
  const T& value() const {
    REOPT_CHECK_MSG(ok(), "value() on error Result");
    return std::get<T>(payload_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace reopt::common

/// Propagates a non-OK Status from an expression evaluating to Status.
#define REOPT_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::reopt::common::Status s_ = (expr);             \
    if (!s_.ok()) return s_;                         \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// binds the value to `lhs`. The double-expansion through
/// REOPT_ASSIGN_OR_RETURN_IMPL_ is what makes __LINE__ produce a distinct
/// temporary per use, so the macro can appear several times in one scope.
#define REOPT_ASSIGN_OR_RETURN(lhs, expr) \
  REOPT_ASSIGN_OR_RETURN_IMPL_(lhs, expr, __LINE__)
#define REOPT_ASSIGN_OR_RETURN_IMPL_(lhs, expr, line) \
  REOPT_ASSIGN_OR_RETURN_IMPL2_(lhs, expr, line)
#define REOPT_ASSIGN_OR_RETURN_IMPL2_(lhs, expr, line) \
  auto result_##line = (expr);                         \
  if (!result_##line.ok()) {                           \
    return result_##line.status();                     \
  }                                                    \
  lhs = std::move(result_##line.value())

#endif  // REOPT_COMMON_STATUS_H_
