#include "common/fail_point.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace reopt::common::failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct Point {
  enum class Mode { kAlways, kOnce, kNth, kProb };
  Mode mode = Mode::kAlways;
  int64_t n = 0;       // kNth: the 1-based hit that fires.
  double p = 0.0;      // kProb: per-hit trigger probability.
  Rng rng{0};          // kProb: deterministic draw sequence.
  int64_t hits = 0;
  int64_t triggers = 0;
  bool spent = false;  // kOnce/kNth: already fired.
};

struct Registry {
  Mutex mu;
  std::map<std::string, Point> points GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

Status ParseSpec(const std::string& spec, Point* out) {
  if (spec == "always") {
    out->mode = Point::Mode::kAlways;
    return Status::OK();
  }
  if (spec == "once") {
    out->mode = Point::Mode::kOnce;
    return Status::OK();
  }
  if (spec.rfind("nth:", 0) == 0) {
    int64_t n = 0;
    try {
      n = std::stoll(spec.substr(4));
    } catch (...) {
      n = 0;
    }
    if (n < 1) {
      return Status::InvalidArgument("fail point spec '" + spec +
                                     "': nth:N needs an integer N >= 1");
    }
    out->mode = Point::Mode::kNth;
    out->n = n;
    return Status::OK();
  }
  if (spec.rfind("prob:", 0) == 0) {
    const std::string rest = spec.substr(5);
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("fail point spec '" + spec +
                                     "': prob needs 'prob:P:SEED'");
    }
    double p = -1.0;
    uint64_t seed = 0;
    try {
      p = std::stod(rest.substr(0, colon));
      seed = std::stoull(rest.substr(colon + 1));
    } catch (...) {
      p = -1.0;
    }
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("fail point spec '" + spec +
                                     "': probability must be in [0, 1]");
    }
    out->mode = Point::Mode::kProb;
    out->p = p;
    out->rng = Rng(seed);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown fail point spec '" + spec +
      "' (expected off | always | once | nth:N | prob:P:SEED)");
}

// Parses REOPT_FAILPOINTS once at static-init time so env-armed points are
// live before main() runs any engine code. A bad spec is reported and
// skipped — fault injection must never take the process down by itself.
const bool g_env_armed = [] {
  const char* env = std::getenv("REOPT_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    const Status s = ArmFromSpecList(env);
    if (!s.ok()) {
      std::fprintf(stderr, "REOPT_FAILPOINTS: %s\n", s.ToString().c_str());
    }
  }
  return true;
}();

}  // namespace

Status Arm(const std::string& name, const std::string& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("fail point name must be non-empty");
  }
  if (spec == "off") {
    Disarm(name);
    return Status::OK();
  }
  Point point;
  REOPT_RETURN_IF_ERROR(ParseSpec(spec, &point));
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  const bool inserted = r.points.insert_or_assign(name, point).second;
  if (inserted) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ArmFromSpecList(const std::string& list) {
  for (const std::string& entry : Split(list, ',')) {
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fail point entry '" + entry +
                                     "' is not of the form name=spec");
    }
    REOPT_RETURN_IF_ERROR(Arm(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

void Disarm(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  if (r.points.erase(name) > 0) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  internal::g_armed_count.fetch_sub(static_cast<int>(r.points.size()),
                                    std::memory_order_relaxed);
  r.points.clear();
}

int64_t Hits(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

int64_t Triggers(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.triggers;
}

std::vector<std::string> ArmedNames() {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  std::vector<std::string> names;
  names.reserve(r.points.size());
  for (const auto& [name, point] : r.points) names.push_back(name);
  return names;
}

namespace internal {

bool Evaluate(const char* name) {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  const auto it = r.points.find(name);
  if (it == r.points.end()) return false;
  Point& point = it->second;
  ++point.hits;
  bool fire = false;
  switch (point.mode) {
    case Point::Mode::kAlways:
      fire = true;
      break;
    case Point::Mode::kOnce:
      fire = !point.spent;
      point.spent = true;
      break;
    case Point::Mode::kNth:
      fire = !point.spent && point.hits == point.n;
      if (fire) point.spent = true;
      break;
    case Point::Mode::kProb:
      fire = point.rng.Bernoulli(point.p);
      break;
  }
  if (fire) ++point.triggers;
  return fire;
}

}  // namespace internal

}  // namespace reopt::common::failpoint
