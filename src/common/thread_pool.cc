#include "common/thread_pool.h"

#include <atomic>
#include <utility>

namespace reopt::common {

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Let queued work drain before shutting down: Submit-after-Wait and
    // destruction mid-batch both behave predictably.
    all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void(int)> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop(int worker) {
  while (true) {
    std::function<void(int)> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t index, int worker)>& fn) {
  if (count <= 0) return;
  int workers = num_threads;
  if (workers > count) workers = static_cast<int>(count);
  if (workers <= 1) {
    for (int64_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  ThreadPool pool(workers);
  std::atomic<int64_t> next{0};
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&](int worker) {
      while (true) {
        int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i, worker);
      }
    });
  }
  pool.Wait();
}

int DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace reopt::common
