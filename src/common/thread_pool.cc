#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace reopt::common {

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    // Let queued work drain before shutting down: Submit-after-Wait and
    // destruction mid-batch both behave predictably. A pending task
    // exception is dropped here — destructors cannot rethrow.
    while (!queue_.empty() || active_ != 0) all_idle_.Wait(&mu_);
    stopping_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void(int)> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    MutexLock lock(&mu_);
    while (!queue_.empty() || active_ != 0) all_idle_.Wait(&mu_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) {
    failed_.store(false, std::memory_order_relaxed);
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop(int worker) {
  while (true) {
    std::function<void(int)> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) work_ready_.Wait(&mu_);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task(worker);
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(&mu_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;  // first failure wins; later ones are dropped
        failed_.store(true, std::memory_order_relaxed);
      }
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelRun(
    int64_t count, const std::function<void(int64_t, int)>& fn) {
  ParallelRun(count, num_threads(), fn);
}

void ThreadPool::ParallelRun(
    int64_t count, int max_workers,
    const std::function<void(int64_t, int)>& fn) {
  if (count <= 0) return;
  int workers = num_threads() < max_workers ? num_threads() : max_workers;
  if (workers > count) workers = static_cast<int>(count);
  if (workers <= 1 || count == 1) {
    // Inline: exceptions propagate naturally and the pool stays untouched.
    for (int64_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  std::atomic<int64_t> next{0};
  for (int w = 0; w < workers; ++w) {
    Submit([this, &next, &fn, count](int worker) {
      while (!has_error()) {
        int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i, worker);
      }
    });
  }
  Wait();  // rethrows the first task exception, if any
}

void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t index, int worker)>& fn) {
  if (count <= 0) return;
  int workers = num_threads;
  if (workers > count) workers = static_cast<int>(count);
  if (workers <= 1) {
    for (int64_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  ThreadPool pool(workers);
  pool.ParallelRun(count, fn);
}

std::vector<MorselRange> MorselRanges(int64_t total, int64_t align,
                                      int target_chunks) {
  std::vector<MorselRange> out;
  if (total <= 0) return out;
  if (align < 1) align = 1;
  int64_t chunks = target_chunks < 1 ? 1 : target_chunks;
  // Chunk size: ceil(total / chunks) rounded up to the alignment, so every
  // boundary lands on a multiple of `align`.
  int64_t per = (total + chunks - 1) / chunks;
  per = (per + align - 1) / align * align;
  out.reserve(static_cast<size_t>((total + per - 1) / per));
  for (int64_t begin = 0; begin < total; begin += per) {
    out.push_back(MorselRange{begin, std::min(begin + per, total)});
  }
  return out;
}

int DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace reopt::common
