// Deterministic random number generation for data/workload synthesis.
// Everything in the repository derives randomness from Rng seeded with a
// fixed value so that all benchmarks and tests are reproducible.
#ifndef REOPT_COMMON_RNG_H_
#define REOPT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace reopt::common {

/// xoshiro256** PRNG. Deterministic across platforms, unlike
/// std::default_random_engine / std::uniform_int_distribution.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Samples ranks 1..n with P(k) proportional to 1/k^theta — the classic
/// Zipfian distribution used to generate skewed foreign keys (the "40 stocks
/// account for 50% of volume" pattern from the paper's Section I).
class ZipfSampler {
 public:
  /// n: number of distinct ranks; theta: skew (0 = uniform, ~1 = heavy skew).
  ZipfSampler(int64_t n, double theta);

  /// Returns a rank in [1, n].
  int64_t Sample(Rng* rng) const;

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cumulative probabilities over ranks.
};

}  // namespace reopt::common

#endif  // REOPT_COMMON_RNG_H_
