// Core scalar type system shared by storage, statistics, planning and
// execution.
#ifndef REOPT_COMMON_TYPES_H_
#define REOPT_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace reopt::common {

/// Scalar column types supported by the engine. JOB-style workloads only
/// need integers (ids/years), strings (names/keywords) and doubles.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Human-readable name ("INT64", "DOUBLE", "STRING").
inline const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

/// Stable integral id for a table within a Catalog.
using TableId = int32_t;
/// Index of a column within a table schema.
using ColumnIdx = int32_t;
/// Index of a row within a table.
using RowIdx = int64_t;

inline constexpr TableId kInvalidTableId = -1;
inline constexpr ColumnIdx kInvalidColumnIdx = -1;

}  // namespace reopt::common

#endif  // REOPT_COMMON_TYPES_H_
