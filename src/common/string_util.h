// Small string helpers used across the engine, including the SQL LIKE
// matcher shared by predicate evaluation and selectivity estimation.
#ifndef REOPT_COMMON_STRING_UTIL_H_
#define REOPT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace reopt::common {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Splits on a single character; empty tokens preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// SQL LIKE matching with '%' (any run) and '_' (any single char)
/// wildcards. Case-sensitive, no escape support (JOB does not use escapes).
bool LikeMatch(std::string_view text, std::string_view pattern);

/// True if `s` starts with / ends with / contains the given piece.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view piece);

/// Formats like printf into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace reopt::common

#endif  // REOPT_COMMON_STRING_UTIL_H_
