// Clang thread-safety-analysis attribute macros (the Capability analysis,
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang these
// expand to the `capability` attribute family so `-Wthread-safety` (wired as
// `-Werror=thread-safety` by the clang-thread-safety CI job and the
// REOPTDB_THREAD_SAFETY CMake option) proves the lock discipline at compile
// time: every member annotated GUARDED_BY must only be touched while its
// mutex is held, every function annotated REQUIRES must only be called with
// the lock already held, and so on. Under every other compiler (GCC builds,
// MSVC) the macros expand to nothing, so annotations cost nothing and the
// annotated code stays portable.
//
// Project rule (enforced by tools/lint.py): concurrent state lives behind
// common::Mutex (common/mutex.h), never a naked std::mutex, so the analysis
// can see every acquisition. Annotate:
//   - data members:      int x_ GUARDED_BY(mu_);
//   - lock-held helpers: void RemoveLocked() REQUIRES(mu_);
//   - public entry points that must NOT hold the lock: EXCLUDES(mu_)
//     (prevents self-deadlock on non-recursive mutexes).
// Quiescent-phase accessors that intentionally bypass the lock document why
// and carry NO_THREAD_SAFETY_ANALYSIS.
#ifndef REOPT_COMMON_ANNOTATIONS_H_
#define REOPT_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define REOPT_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef REOPT_THREAD_ANNOTATION_
#define REOPT_THREAD_ANNOTATION_(x)  // not Clang: annotations compile out
#endif

/// Declares a class to be a capability ("mutex"); its instances can appear
/// as arguments to the other annotations.
#define CAPABILITY(x) REOPT_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY REOPT_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define GUARDED_BY(x) REOPT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself may
/// be read freely).
#define PT_GUARDED_BY(x) REOPT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function callable only while the listed capabilities are held (and still
/// held on return). The annotation for `FooLocked()`-style helpers.
#define REQUIRES(...) \
  REOPT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Like REQUIRES but for shared (reader) access.
#define REQUIRES_SHARED(...) \
  REOPT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function that must be entered with the listed capabilities NOT held
/// (it acquires them itself; guards against self-deadlock).
#define EXCLUDES(...) REOPT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  REOPT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  REOPT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, released on return).
#define RELEASE(...) \
  REOPT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  REOPT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; holds it iff the returned
/// value equals `b` (first argument).
#define TRY_ACQUIRE(...) \
  REOPT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the given capability (lock accessors).
#define RETURN_CAPABILITY(x) REOPT_THREAD_ANNOTATION_(lock_returned(x))

/// Documents lock-ordering: this mutex must be acquired after the listed
/// ones.
#define ACQUIRED_AFTER(...) \
  REOPT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) \
  REOPT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Runtime assertion that the capability is held (satisfies the analysis
/// without acquiring).
#define ASSERT_CAPABILITY(x) \
  REOPT_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch for functions that intentionally read guarded state without
/// the lock (quiescent/setup-phase accessors). Always pair with a comment
/// explaining why the unlocked access is safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  REOPT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // REOPT_COMMON_ANNOTATIONS_H_
