// A bounded MPMC FIFO queue — the admission-control primitive of the SQL
// service layer (service/sql_server.h). Producers either block until space
// frees up (Push — backpressure) or fail fast when the queue is full
// (TryPush — load shedding); consumers block until an item arrives or the
// queue is closed and drained. Close() is one-way: further pushes fail,
// already-queued items are still handed out, and every blocked thread
// wakes, so shutdown cannot deadlock.
//
// All state is guarded by one common::Mutex and machine-checked by the
// Clang thread-safety analysis (common/annotations.h). Push/TryPush/Pop
// return values are [[nodiscard]]: a dropped admission result is a lost
// statement, so ignoring one fails the build.
#ifndef REOPT_COMMON_BOUNDED_QUEUE_H_
#define REOPT_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/annotations.h"
#include "common/mutex.h"

namespace reopt::common {

template <typename T>
class BoundedQueue {
 public:
  /// Capacity is clamped to >= 1 (a zero-capacity queue could never pass an
  /// item between threads that use blocking Push).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) only
  /// if the queue was closed before space became available.
  [[nodiscard]] bool Push(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Push with a deadline: blocks at most `timeout` for space. Returns
  /// false (dropping `item`) when the queue is closed or the timeout
  /// expires while still full — bounded backpressure for callers that must
  /// not block forever on an overloaded server.
  [[nodiscard]] bool PushFor(T item,
                             std::chrono::nanoseconds timeout) EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.size() >= capacity_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return false;
        (void)not_full_.WaitFor(&mu_, deadline - now);
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking admission: returns false when the queue is full or
  /// closed, leaving `item` unqueued.
  [[nodiscard]] bool TryPush(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available (returning it) or the queue is
  /// closed *and* drained (returning nullopt). Items queued before Close()
  /// are always delivered.
  [[nodiscard]] std::optional<T> Pop() EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(&mu_);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// Pop with a deadline: blocks at most `timeout` for an item. Returns
  /// nullopt on timeout or when the queue is closed and drained.
  [[nodiscard]] std::optional<T> PopFor(
      std::chrono::nanoseconds timeout) EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::optional<T> item;
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return std::nullopt;
        (void)not_empty_.WaitFor(&mu_, deadline - now);
      }
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// Closes the queue: subsequent pushes fail, blocked producers and
  /// consumers wake. Idempotent.
  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  std::size_t size() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace reopt::common

#endif  // REOPT_COMMON_BOUNDED_QUEUE_H_
