// A bounded MPMC FIFO queue — the admission-control primitive of the SQL
// service layer (service/sql_server.h). Producers either block until space
// frees up (Push — backpressure) or fail fast when the queue is full
// (TryPush — load shedding); consumers block until an item arrives or the
// queue is closed and drained. Close() is one-way: further pushes fail,
// already-queued items are still handed out, and every blocked thread
// wakes, so shutdown cannot deadlock.
#ifndef REOPT_COMMON_BOUNDED_QUEUE_H_
#define REOPT_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace reopt::common {

template <typename T>
class BoundedQueue {
 public:
  /// Capacity is clamped to >= 1 (a zero-capacity queue could never pass an
  /// item between threads that use blocking Push).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) only
  /// if the queue was closed before space became available.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking admission: returns false when the queue is full or
  /// closed, leaving `item` unqueued.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returning it) or the queue is
  /// closed *and* drained (returning nullopt). Items queued before Close()
  /// are always delivered.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: subsequent pushes fail, blocked producers and
  /// consumers wake. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace reopt::common

#endif  // REOPT_COMMON_BOUNDED_QUEUE_H_
