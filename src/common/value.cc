#include "common/value.h"

#include <cinttypes>
#include <cstdio>

namespace reopt::common {
namespace {

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

}  // namespace

DataType Value::type() const {
  REOPT_CHECK_MSG(!is_null(), "type() on NULL value");
  if (is_int()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_string() || other.is_string()) {
    REOPT_CHECK_MSG(is_string() && other.is_string(),
                    "cannot compare string with numeric");
    return AsString().compare(other.AsString());
  }
  // Numeric comparison: exact on int-int, coerced otherwise.
  if (is_int() && other.is_int()) {
    int64_t a = AsInt();
    int64_t b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsDouble();
  double b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, AsInt());
    return buf;
  }
  if (is_double()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(payload_));
    return buf;
  }
  return "'" + AsString() + "'";
}

uint64_t Value::Hash() const {
  if (is_null()) return kFnvOffset;
  if (is_int()) {
    int64_t v = AsInt();
    return Fnv1a(&v, sizeof(v), kFnvOffset ^ 1);
  }
  if (is_double()) {
    double v = std::get<double>(payload_);
    return Fnv1a(&v, sizeof(v), kFnvOffset ^ 2);
  }
  const std::string& s = AsString();
  return Fnv1a(s.data(), s.size(), kFnvOffset ^ 3);
}

}  // namespace reopt::common
