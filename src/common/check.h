// Invariant-checking macros. Library code does not throw exceptions
// (fallible paths return Status/Result); these macros guard programmer
// errors and abort with a diagnostic when violated.
#ifndef REOPT_COMMON_CHECK_H_
#define REOPT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define REOPT_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                               \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define REOPT_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", #cond, msg,  \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define REOPT_UNREACHABLE(msg)                                              \
  do {                                                                      \
    std::fprintf(stderr, "UNREACHABLE: %s at %s:%d\n", msg, __FILE__,       \
                 __LINE__);                                                 \
    std::abort();                                                           \
  } while (0)

#endif  // REOPT_COMMON_CHECK_H_
