#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace reopt::common {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer match with backtracking to the last '%'. The
  // wildcard test must come before the literal-character test: a '%' in
  // the pattern is always a wildcard, even when the text happens to hold a
  // literal '%' at that position (the old order consumed it as a
  // single-character match, so e.g. "a%b" failed to match LIKE 'a%').
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (p < pattern.size() &&
               (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view piece) {
  return s.find(piece) != std::string_view::npos;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace reopt::common
