// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable carrying the Clang thread-safety capability
// attributes (common/annotations.h), so a Clang build with -Wthread-safety
// proves at compile time that every GUARDED_BY member is only touched under
// its lock. Under non-Clang compilers the attributes vanish and these are
// zero-overhead aliases for the std primitives.
//
// Project rule (tools/lint.py): all concurrent state outside src/common/
// uses common::Mutex + common::MutexLock (+ common::CondVar for waiting),
// never naked std::mutex — a naked mutex is invisible to the analysis.
//
// Idioms:
//   common::Mutex mu_;
//   int count_ GUARDED_BY(mu_);
//
//   void Bump() {
//     common::MutexLock lock(&mu_);
//     ++count_;                     // OK: lock held
//   }
//
// Condition waits are written as explicit predicate loops in the waiting
// function — `while (!pred) cv_.Wait(&mu_);` — rather than lambda-predicate
// overloads: Clang analyzes a lambda body as a separate function that holds
// no locks, so guarded reads inside a wait-predicate lambda would defeat
// the analysis the wrapper exists to enable.
#ifndef REOPT_COMMON_MUTEX_H_
#define REOPT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace reopt::common {

/// A non-recursive mutual-exclusion capability. Prefer MutexLock over
/// manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section: locks on construction, unlocks on destruction.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(*mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to a common::Mutex at each wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks until notified (or spuriously
  /// woken); re-acquires *mu before returning. Callers loop on their
  /// predicate.
  void Wait(Mutex* mu) REQUIRES(*mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking, so the capability
    // state (held on entry, held on exit) matches the annotation.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed Wait: additionally returns once `timeout` has elapsed. Returns
  /// false on timeout, true when notified (or spuriously woken) — either
  /// way *mu is re-held, so callers keep looping on their predicate and
  /// use the false return only to give up.
  [[nodiscard]] bool WaitFor(Mutex* mu,
                             std::chrono::nanoseconds timeout) REQUIRES(*mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(native, timeout);
    native.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace reopt::common

#endif  // REOPT_COMMON_MUTEX_H_
