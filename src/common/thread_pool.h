// A small fixed-size thread pool plus ParallelFor / morsel-scheduling
// helpers: the concurrency substrate for the parallel workload-sweep engine
// (workload/runner.h) and for intra-query morsel parallelism (exec/kernel.h).
// Tasks receive the executing worker's 0-based index so callers can address
// per-worker state (scratch buffers, namespaced temp tables) without any
// further synchronization.
//
// Exception safety: a throwing task does NOT terminate the process. The
// pool captures the first exception a task throws (std::exception_ptr) and
// rethrows it on the thread that joins the batch — Wait(), ParallelRun(),
// or ParallelFor()'s caller. Later exceptions from the same batch are
// dropped, and pending work is drained without being skipped (tasks are
// cheap and bounded here; skipping would make "which tasks ran" depend on
// scheduling).
#ifndef REOPT_COMMON_THREAD_POOL_H_
#define REOPT_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace reopt::common {

/// A fixed set of worker threads draining one shared task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  /// Waits for all queued work, then joins the workers. An exception still
  /// pending from a task that threw after the last Wait() is dropped
  /// (destructors cannot throw).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; it runs on some worker and is passed that worker's
  /// index in [0, num_threads()). Tasks may throw — the first exception is
  /// captured and rethrown by the next Wait() — and may Submit further
  /// tasks.
  void Submit(std::function<void(int worker)> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any task threw since the previous Wait()
  /// (clearing it — the pool stays reusable afterwards).
  void Wait() EXCLUDES(mu_);

  /// True while an uncollected task exception is pending. Cheap (relaxed
  /// atomic); long-running tasks poll it to stop early once a sibling has
  /// failed.
  bool has_error() const { return failed_.load(std::memory_order_relaxed); }

  /// Runs fn(index, worker) for every index in [0, count), distributing
  /// indices over this pool's workers through an atomic cursor, and blocks
  /// until every index has been processed (rethrowing the first task
  /// exception; once a task throws, remaining indices are skipped). Must
  /// not run concurrently with other work on the same pool — Wait()
  /// semantics are pool-wide. With count <= 1 the call runs inline on the
  /// calling thread as worker 0. `max_workers` caps how many pool workers
  /// the batch may occupy (a budget below the pool size; the two-argument
  /// form uses them all); the worker index passed to fn is always the
  /// pool-wide worker id.
  void ParallelRun(int64_t count,
                   const std::function<void(int64_t index, int worker)>& fn);
  void ParallelRun(int64_t count, int max_workers,
                   const std::function<void(int64_t index, int worker)>& fn);

 private:
  void WorkerLoop(int worker);

  Mutex mu_;
  CondVar work_ready_;
  CondVar all_idle_;
  std::deque<std::function<void(int)>> queue_ GUARDED_BY(mu_);
  int active_ GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stopping_ GUARDED_BY(mu_) = false;
  /// First uncollected task exception.
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
  std::vector<std::thread> workers_;
};

/// Runs fn(index, worker) for every index in [0, count), distributing
/// indices over up to `num_threads` workers through an atomic cursor.
/// `worker` is in [0, min(num_threads, count)). With num_threads <= 1 (or
/// count <= 1) everything runs inline on worker 0 and no threads are
/// spawned, so serial callers pay nothing. Returns once every index has
/// been processed; if fn throws, the first exception is rethrown on the
/// calling thread after the remaining workers stop.
void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t index, int worker)>& fn);

/// One contiguous morsel of a larger index range: [begin, end).
struct MorselRange {
  int64_t begin = 0;
  int64_t end = 0;
};

/// Splits [0, total) into at most `target_chunks` contiguous morsels whose
/// boundaries are multiples of `align` (the final morsel absorbs the
/// remainder). The partition depends only on (total, align, target_chunks)
/// — never on scheduling — so per-morsel results merged in index order are
/// deterministic. Returns an empty vector for total <= 0.
std::vector<MorselRange> MorselRanges(int64_t total, int64_t align,
                                      int target_chunks);

/// std::thread::hardware_concurrency with a floor of 1 (the standard allows
/// it to report 0).
int DefaultThreadCount();

}  // namespace reopt::common

#endif  // REOPT_COMMON_THREAD_POOL_H_
