// A small fixed-size thread pool plus a ParallelFor helper, the concurrency
// substrate for the parallel workload-sweep engine (workload/runner.h).
// Tasks receive the executing worker's 0-based index so callers can address
// per-worker state (scratch buffers, namespaced temp tables) without any
// further synchronization.
#ifndef REOPT_COMMON_THREAD_POOL_H_
#define REOPT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reopt::common {

/// A fixed set of worker threads draining one shared task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  /// Waits for all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; it runs on some worker and is passed that worker's
  /// index in [0, num_threads()). Tasks must not throw (the library is
  /// exception-free); they may Submit further tasks.
  void Submit(std::function<void(int worker)> task);

  /// Blocks until the queue is empty and every worker is idle. The pool is
  /// reusable afterwards.
  void Wait();

 private:
  void WorkerLoop(int worker);

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void(int)>> queue_;
  int active_ = 0;        // tasks currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(index, worker) for every index in [0, count), distributing
/// indices over up to `num_threads` workers through an atomic cursor.
/// `worker` is in [0, min(num_threads, count)). With num_threads <= 1 (or
/// count <= 1) everything runs inline on worker 0 and no threads are
/// spawned, so serial callers pay nothing. Returns once every index has
/// been processed.
void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t index, int worker)>& fn);

/// std::thread::hardware_concurrency with a floor of 1 (the standard allows
/// it to report 0).
int DefaultThreadCount();

}  // namespace reopt::common

#endif  // REOPT_COMMON_THREAD_POOL_H_
