#include "sql/engine.h"

#include <cinttypes>
#include <cstdio>

#include "exec/executor.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "optimizer/query_context.h"
#include "plan/physical_plan.h"

namespace reopt::sql {

common::Result<StatementOutcome> Engine::Execute(
    const std::string& sql, const std::string& query_name) {
  REOPT_ASSIGN_OR_RETURN(ParsedStatement parsed,
                         ParseStatement(sql, *catalog_, query_name));
  return ExecuteParsed(parsed);
}

common::Result<StatementOutcome> Engine::ExecuteParsed(
    const ParsedStatement& parsed) {
  const bool creates_table = !parsed.create_table_name.empty();
  // Fail CREATE TEMP TABLE name collisions before planning: the executor's
  // CreateTable would also reject them, but a pre-check reports the error
  // without charging any planning work. (The executor check still holds for
  // two sessions racing on the same name — first writer wins, the loser
  // gets a clean AlreadyExists.)
  if (creates_table &&
      catalog_->FindTable(parsed.create_table_name) != nullptr) {
    return common::Status::AlreadyExists("table already exists: " +
                                         parsed.create_table_name);
  }

  REOPT_ASSIGN_OR_RETURN(
      std::unique_ptr<optimizer::QueryContext> ctx,
      optimizer::QueryContext::Bind(parsed.query.get(), catalog_,
                                    stats_catalog_));
  optimizer::EstimatorModel model(ctx.get());
  optimizer::PlannerOptions popts;
  popts.add_aggregate = !creates_table;
  optimizer::Planner planner(ctx.get(), &model, params_, popts);
  REOPT_ASSIGN_OR_RETURN(optimizer::PlannerResult planned, planner.Plan());

  plan::PlanNodePtr root = std::move(planned.root);
  if (creates_table) {
    // Wrap the join tree in a TempWrite materializing the select list.
    auto write = std::make_unique<plan::PlanNode>();
    write->op = plan::PlanOp::kTempWrite;
    write->rels = root->rels;
    write->est_rows = root->est_rows;
    write->est_cost = root->est_cost;
    write->temp_table_name = parsed.create_table_name;
    for (const plan::OutputExpr& out : parsed.query->outputs) {
      write->temp_columns.push_back(out.column);
    }
    write->left = std::move(root);
    root = std::move(write);
  }

  if (intra_query_threads_ > 1 &&
      (intra_pool_ == nullptr ||
       intra_pool_->num_threads() < intra_query_threads_)) {
    intra_pool_ = std::make_unique<common::ThreadPool>(intra_query_threads_);
  }
  exec::Executor executor(catalog_, stats_catalog_, params_);
  executor.set_cancel_token(cancel_);
  executor.set_intra_query_parallelism(
      intra_query_threads_,
      intra_query_threads_ > 1 ? intra_pool_.get() : nullptr);
  REOPT_ASSIGN_OR_RETURN(exec::QueryResult executed,
                         executor.Execute(*parsed.query, root.get()));

  StatementOutcome out;
  out.aggregates = std::move(executed.aggregates);
  out.raw_rows = executed.raw_rows;
  out.plan_cost_units = planned.planning_cost_units;
  out.exec_cost_units = executed.cost_units;
  if (creates_table) out.created_table = parsed.create_table_name;
  return out;
}

// ---- SQL rendering ---------------------------------------------------------

namespace {

std::string RenderLiteral(const common::Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_int()) return v.ToString();
  if (v.is_double()) {
    // %.17g round-trips every double through the parser's atof exactly;
    // Value::ToString's %g does not, and a drifted literal would change
    // results between the programmatic spec and its SQL rendering.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    return buf;
  }
  std::string out = "'";
  for (char c : v.AsString()) {
    out += c;
    if (c == '\'') out += '\'';  // SQL '' escaping
  }
  out += "'";
  return out;
}

std::string RenderColumn(const plan::QuerySpec& spec,
                         const plan::ColumnRef& ref) {
  // lint: allow-check(spec is bound, not raw user input: the parser/binder
  // always produce named columns, so an unnamed ref here is a programmer
  // error in a hand-built spec, unreachable from client SQL)
  REOPT_CHECK_MSG(!ref.name.empty(), "RenderSql needs column names");
  return spec.relations[static_cast<size_t>(ref.rel)].alias + "." + ref.name;
}

std::string RenderPredicate(const plan::QuerySpec& spec,
                            const plan::ScanPredicate& p) {
  std::string col = RenderColumn(spec, p.column);
  switch (p.kind) {
    case plan::ScanPredicate::Kind::kCompare:
      return col + " " + plan::CompareOpName(p.op) + " " +
             RenderLiteral(p.value);
    case plan::ScanPredicate::Kind::kIn: {
      std::string out = col + " IN (";
      for (size_t i = 0; i < p.in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += RenderLiteral(p.in_list[i]);
      }
      return out + ")";
    }
    case plan::ScanPredicate::Kind::kLike:
      return col + " LIKE " + RenderLiteral(p.value);
    case plan::ScanPredicate::Kind::kNotLike:
      return col + " NOT LIKE " + RenderLiteral(p.value);
    case plan::ScanPredicate::Kind::kBetween:
      return col + " BETWEEN " + RenderLiteral(p.value) + " AND " +
             RenderLiteral(p.value2);
    case plan::ScanPredicate::Kind::kIsNull:
      return col + " IS NULL";
    case plan::ScanPredicate::Kind::kIsNotNull:
      return col + " IS NOT NULL";
  }
  REOPT_UNREACHABLE("unknown predicate kind");
}

}  // namespace

std::string RenderSql(const plan::QuerySpec& spec) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < spec.outputs.size(); ++i) {
    if (i > 0) out += ", ";
    const plan::OutputExpr& e = spec.outputs[i];
    std::string col = RenderColumn(spec, e.column);
    out += e.min_agg ? ("MIN(" + col + ")") : col;
    if (!e.label.empty()) out += " AS " + e.label;
  }
  out += " FROM ";
  for (size_t i = 0; i < spec.relations.size(); ++i) {
    if (i > 0) out += ", ";
    out += spec.relations[i].table_name + " AS " + spec.relations[i].alias;
  }
  bool first = true;
  for (const plan::ScanPredicate& p : spec.filters) {
    out += first ? " WHERE " : " AND ";
    out += RenderPredicate(spec, p);
    first = false;
  }
  for (const plan::JoinEdge& e : spec.joins) {
    out += first ? " WHERE " : " AND ";
    out += RenderColumn(spec, e.left) + " = " + RenderColumn(spec, e.right);
    first = false;
  }
  out += ";";
  return out;
}

}  // namespace reopt::sql
