// The reusable SQL entry point: one call takes a statement through
// parse -> bind -> plan -> execute against a catalog/stats pair. Factored
// out of examples/sql_session.cpp so the interactive example, the unit
// tests and the multi-session service layer (service/sql_server.h) all run
// statements through the same pipeline instead of each re-implementing it.
//
// The engine handles both statement forms of the JOB dialect:
//   SELECT MIN(...) ...             -> plans with a terminal aggregate
//   CREATE TEMP TABLE t AS SELECT   -> wraps the join tree in a TempWrite
// Errors at any stage come back as a clean Status — a malformed statement,
// an unknown table, or a temp-table name collision must never crash the
// process (the service layer keeps serving other sessions).
#ifndef REOPT_SQL_ENGINE_H_
#define REOPT_SQL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "exec/cancel.h"
#include "optimizer/cost_params.h"
#include "sql/parser.h"
#include "stats/stats_catalog.h"
#include "storage/catalog.h"

namespace reopt::sql {

/// Outcome of one executed statement.
struct StatementOutcome {
  /// MIN() values, one per output (empty for CREATE TEMP TABLE).
  std::vector<common::Value> aggregates;
  /// Join-result tuples entering the aggregate / written to the temp table.
  int64_t raw_rows = 0;
  double plan_cost_units = 0.0;
  double exec_cost_units = 0.0;
  /// Temp tables materialized by re-optimization (always 0 for the plain
  /// engine pipeline; the service layer fills it when it runs statements
  /// through the re-optimizing QueryRunner).
  int num_materializations = 0;
  /// True when a re-optimization materialization budget degraded the run
  /// (see reoptimizer::RunResult::degraded; always false for the plain
  /// engine pipeline). Results stay exact.
  bool degraded = false;
  /// Non-empty when the statement created a temp table.
  std::string created_table;
};

/// Plans and executes SQL statements against one database. Stateless
/// between calls except for the lazily-created intra-query morsel pool, so
/// one engine per thread is the intended usage (the catalog/stats it points
/// at are themselves thread-safe).
class Engine {
 public:
  Engine(storage::Catalog* catalog, stats::StatsCatalog* stats_catalog,
         const optimizer::CostParams& params = {})
      : catalog_(catalog), stats_catalog_(stats_catalog), params_(params) {}

  /// Morsel workers per executing statement (clamped to >= 1, default 1 =
  /// serial). The engine lazily owns one pool of that size, reused across
  /// statements; results are byte-identical at any setting.
  void set_intra_query_threads(int n) {
    intra_query_threads_ = n < 1 ? 1 : n;
  }
  int intra_query_threads() const { return intra_query_threads_; }

  /// Cooperative cancellation/deadline token applied to subsequent
  /// Execute/ExecuteParsed calls (must outlive them; nullptr detaches).
  /// A tripped token surfaces as Cancelled / DeadlineExceeded, and a
  /// half-written CREATE TEMP TABLE is dropped, never left behind.
  void set_cancel_token(const exec::CancelToken* cancel) { cancel_ = cancel; }

  /// Full pipeline for one statement.
  common::Result<StatementOutcome> Execute(const std::string& sql,
                                           const std::string& query_name =
                                               "sql");

  /// Plan + execute an already-parsed statement (the service layer parses
  /// once and caches). `parsed` must outlive the call.
  common::Result<StatementOutcome> ExecuteParsed(
      const ParsedStatement& parsed);

 private:
  storage::Catalog* catalog_;
  stats::StatsCatalog* stats_catalog_;
  optimizer::CostParams params_;
  int intra_query_threads_ = 1;
  const exec::CancelToken* cancel_ = nullptr;
  std::unique_ptr<common::ThreadPool> intra_pool_;
};

/// Renders a QuerySpec as SQL text that ParseStatement accepts and binds
/// back into an equivalent spec (same relations, filters, joins and outputs
/// in the same order — proven by the round-trip suite in sql_test). String
/// literals are quoted with '' escaping; doubles print with enough digits
/// to round-trip exactly. This is how the replay driver turns the
/// programmatic 113-query workload into the SQL text real clients would
/// submit.
std::string RenderSql(const plan::QuerySpec& spec);

}  // namespace reopt::sql

#endif  // REOPT_SQL_ENGINE_H_
