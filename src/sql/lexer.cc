#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace reopt::sql {
namespace {

const char* kKeywords[] = {
    "SELECT", "FROM",  "WHERE",   "AND",  "AS",    "MIN",   "IN",
    "LIKE",   "NOT",   "BETWEEN", "IS",   "NULL",  "CREATE", "TEMP",
    "TEMPORARY", "TABLE", "ON"};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

bool IsKeyword(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

common::Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = static_cast<int>(i);
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = common::ToLower(word);
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') is_float = true;
        ++i;
      }
      token.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      token.text = input.substr(start, i - start);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // '' escape
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return common::Status::InvalidArgument(common::StrPrintf(
            "unterminated string literal at offset %d", token.position));
      }
      token.type = TokenType::kString;
      token.text = std::move(value);
    } else if (c == '<' && i + 1 < n &&
               (input[i + 1] == '=' || input[i + 1] == '>')) {
      token.type = TokenType::kSymbol;
      token.text = input.substr(i, 2);
      i += 2;
    } else if (c == '>' && i + 1 < n && input[i + 1] == '=') {
      token.type = TokenType::kSymbol;
      token.text = ">=";
      i += 2;
    } else if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      token.type = TokenType::kSymbol;
      token.text = "<>";
      i += 2;
    } else if (std::string("(),;.*=<>").find(c) != std::string::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
    } else {
      return common::Status::InvalidArgument(common::StrPrintf(
          "unexpected character '%c' at offset %d", c, token.position));
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace reopt::sql
