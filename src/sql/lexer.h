// SQL lexer for the SPJ dialect the Join Order Benchmark uses.
#ifndef REOPT_SQL_LEXER_H_
#define REOPT_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace reopt::sql {

enum class TokenType {
  kIdentifier,  // table / column / alias names (case-insensitive keywords)
  kKeyword,     // SELECT, FROM, WHERE, AND, MIN, AS, IN, LIKE, NOT,
                // BETWEEN, IS, NULL, CREATE, TEMP, TABLE, ...
  kString,      // 'text' (with '' escaping)
  kInteger,     // 123
  kFloat,       // 1.5
  kSymbol,      // ( ) , ; . = <> < <= > >= *
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keywords upper-cased, identifiers lower-cased
  int position = 0;  // byte offset, for error messages
};

/// Tokenizes `input`. Fails on unterminated strings or unexpected bytes.
common::Result<std::vector<Token>> Lex(const std::string& input);

/// True if `word` (upper-case) is a reserved keyword.
bool IsKeyword(const std::string& upper);

}  // namespace reopt::sql

#endif  // REOPT_SQL_LEXER_H_
