#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace reopt::sql {
namespace {

using common::Status;
using common::StrPrintf;
using common::Value;

class Parser {
 public:
  Parser(std::vector<Token> tokens, const storage::Catalog* catalog,
         std::string query_name)
      : tokens_(std::move(tokens)),
        catalog_(catalog),
        query_name_(std::move(query_name)) {}

  common::Result<ParsedStatement> ParseStatement() {
    ParsedStatement out;
    if (PeekKeyword("CREATE")) {
      Advance();
      if (!(PeekKeyword("TEMP") || PeekKeyword("TEMPORARY"))) {
        return Error("expected TEMP or TEMPORARY after CREATE");
      }
      Advance();
      if (!PeekKeyword("TABLE")) return Error("expected TABLE");
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected temp table name");
      }
      out.create_table_name = Peek().text;
      out.temporary = true;
      Advance();
      if (!PeekKeyword("AS")) return Error("expected AS before SELECT");
      Advance();
    }
    auto query = ParseSelect();
    if (!query.ok()) return query.status();
    out.query = std::move(query.value());
    if (PeekSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after statement");
    }
    return out;
  }

 private:
  // ---- token helpers ---------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    size_t idx = pos_ + static_cast<size_t>(ahead);
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  void Advance() { ++pos_; }
  bool PeekKeyword(const char* kw, int ahead = 0) const {
    return Peek(ahead).type == TokenType::kKeyword && Peek(ahead).text == kw;
  }
  bool PeekSymbol(const char* sym, int ahead = 0) const {
    return Peek(ahead).type == TokenType::kSymbol && Peek(ahead).text == sym;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(StrPrintf(
        "SQL parse error at offset %d near '%s': %s", Peek().position,
        Peek().text.c_str(), message.c_str()));
  }

  // ---- binding ------------------------------------------------------------
  int FindAlias(const std::string& alias) const {
    for (size_t i = 0; i < spec_->relations.size(); ++i) {
      if (spec_->relations[i].alias == alias) return static_cast<int>(i);
    }
    return -1;
  }

  common::Result<plan::ColumnRef> ResolveColumn(const std::string& alias,
                                                const std::string& column) {
    int rel = FindAlias(alias);
    if (rel < 0) {
      return Status::InvalidArgument("unknown alias: " + alias);
    }
    const storage::Table* table =
        catalog_->FindTable(spec_->relations[static_cast<size_t>(rel)]
                                .table_name);
    common::ColumnIdx col = table->schema().FindColumn(column);
    if (col == common::kInvalidColumnIdx) {
      return Status::InvalidArgument(StrPrintf(
          "no column %s in %s", column.c_str(), table->name().c_str()));
    }
    return plan::ColumnRef{rel, col, column};
  }

  /// alias '.' column (JOB always qualifies columns).
  common::Result<plan::ColumnRef> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected alias.column");
    }
    std::string alias = Peek().text;
    Advance();
    if (!PeekSymbol(".")) return Error("expected '.' after alias");
    Advance();
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected column name after '.'");
    }
    std::string column = Peek().text;
    Advance();
    return ResolveColumn(alias, column);
  }

  bool PeekColumnRef() const {
    return Peek().type == TokenType::kIdentifier && PeekSymbol(".", 1) &&
           Peek(2).type == TokenType::kIdentifier;
  }

  common::Result<Value> ParseLiteral() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kString: {
        Value v = Value::Str(token.text);
        Advance();
        return v;
      }
      case TokenType::kInteger: {
        Value v = Value::Int(std::atoll(token.text.c_str()));
        Advance();
        return v;
      }
      case TokenType::kFloat: {
        Value v = Value::Real(std::atof(token.text.c_str()));
        Advance();
        return v;
      }
      case TokenType::kKeyword:
        if (token.text == "NULL") {
          Advance();
          return Value::Null_();
        }
        break;
      default:
        break;
    }
    return Error("expected literal");
  }

  // ---- grammar -----------------------------------------------------------
  common::Result<std::unique_ptr<plan::QuerySpec>> ParseSelect() {
    spec_ = std::make_unique<plan::QuerySpec>();
    spec_->name = query_name_;
    if (!PeekKeyword("SELECT")) return Error("expected SELECT");
    Advance();

    // Outputs reference aliases declared in FROM, so parse the select list
    // as raw (agg, alias, column, label) first and bind after FROM.
    struct RawOutput {
      bool min_agg;
      std::string alias;
      std::string column;
      std::string label;
    };
    std::vector<RawOutput> raw_outputs;
    while (true) {
      RawOutput out;
      if (PeekKeyword("MIN")) {
        out.min_agg = true;
        Advance();
        if (!PeekSymbol("(")) return Error("expected '(' after MIN");
        Advance();
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias.column in MIN()");
        }
        out.alias = Peek().text;
        Advance();
        if (!PeekSymbol(".")) return Error("expected '.'");
        Advance();
        out.column = Peek().text;
        Advance();
        if (!PeekSymbol(")")) return Error("expected ')'");
        Advance();
      } else if (Peek().type == TokenType::kIdentifier) {
        out.min_agg = false;
        out.alias = Peek().text;
        Advance();
        if (!PeekSymbol(".")) return Error("expected qualified column");
        Advance();
        out.column = Peek().text;
        Advance();
      } else {
        return Error("expected MIN(alias.column) or alias.column");
      }
      if (PeekKeyword("AS")) {
        Advance();
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected label after AS");
        }
        out.label = Peek().text;
        Advance();
      }
      raw_outputs.push_back(std::move(out));
      if (!PeekSymbol(",")) break;
      Advance();
    }

    // FROM list.
    if (!PeekKeyword("FROM")) return Error("expected FROM");
    Advance();
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected table name");
      }
      std::string table = Peek().text;
      Advance();
      std::string alias = table;
      if (PeekKeyword("AS")) {
        Advance();
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        alias = Peek().text;
        Advance();
      } else if (Peek().type == TokenType::kIdentifier) {
        alias = Peek().text;
        Advance();
      }
      if (catalog_->FindTable(table) == nullptr) {
        return Status::NotFound("no such table: " + table);
      }
      if (FindAlias(alias) >= 0) {
        return Status::InvalidArgument("duplicate alias: " + alias);
      }
      spec_->relations.push_back(plan::RelationRef{table, alias});
      if (!PeekSymbol(",")) break;
      Advance();
    }

    // Bind outputs now that aliases exist.
    for (const RawOutput& raw : raw_outputs) {
      auto ref = ResolveColumn(raw.alias, raw.column);
      if (!ref.ok()) return ref.status();
      plan::OutputExpr out;
      out.column = ref.value();
      out.min_agg = raw.min_agg;
      out.label = raw.label;
      spec_->outputs.push_back(std::move(out));
    }

    // WHERE conjunction.
    if (PeekKeyword("WHERE")) {
      Advance();
      while (true) {
        REOPT_RETURN_IF_ERROR(ParseCondition());
        if (!PeekKeyword("AND")) break;
        Advance();
      }
    }
    return std::move(spec_);
  }

  Status ParseCondition() {
    auto left = ParseColumnRef();
    if (!left.ok()) return left.status();
    plan::ColumnRef column = left.value();

    bool negated = false;
    if (PeekKeyword("NOT")) {
      negated = true;
      Advance();
    }

    if (PeekKeyword("IN")) {
      if (negated) {
        return Error("NOT IN is not supported (JOB does not use it)");
      }
      Advance();
      if (!PeekSymbol("(")) return Error("expected '(' after IN");
      Advance();
      plan::ScanPredicate pred;
      pred.column = column;
      pred.kind = plan::ScanPredicate::Kind::kIn;
      while (true) {
        auto v = ParseLiteral();
        if (!v.ok()) return v.status();
        pred.in_list.push_back(std::move(v.value()));
        if (!PeekSymbol(",")) break;
        Advance();
      }
      if (!PeekSymbol(")")) return Error("expected ')' after IN list");
      Advance();
      spec_->filters.push_back(std::move(pred));
      return Status::OK();
    }

    if (PeekKeyword("LIKE")) {
      Advance();
      if (Peek().type != TokenType::kString) {
        return Error("expected string pattern after LIKE");
      }
      plan::ScanPredicate pred;
      pred.column = column;
      pred.kind = negated ? plan::ScanPredicate::Kind::kNotLike
                          : plan::ScanPredicate::Kind::kLike;
      pred.value = Value::Str(Peek().text);
      Advance();
      spec_->filters.push_back(std::move(pred));
      return Status::OK();
    }

    if (PeekKeyword("BETWEEN")) {
      if (negated) return Error("NOT BETWEEN is not supported");
      Advance();
      plan::ScanPredicate pred;
      pred.column = column;
      pred.kind = plan::ScanPredicate::Kind::kBetween;
      auto lo = ParseLiteral();
      if (!lo.ok()) return lo.status();
      pred.value = std::move(lo.value());
      if (!PeekKeyword("AND")) return Error("expected AND in BETWEEN");
      Advance();
      auto hi = ParseLiteral();
      if (!hi.ok()) return hi.status();
      pred.value2 = std::move(hi.value());
      spec_->filters.push_back(std::move(pred));
      return Status::OK();
    }

    if (PeekKeyword("IS")) {
      Advance();
      bool not_null = false;
      if (PeekKeyword("NOT")) {
        not_null = true;
        Advance();
      }
      if (!PeekKeyword("NULL")) return Error("expected NULL after IS");
      Advance();
      plan::ScanPredicate pred;
      pred.column = column;
      pred.kind = not_null ? plan::ScanPredicate::Kind::kIsNotNull
                           : plan::ScanPredicate::Kind::kIsNull;
      spec_->filters.push_back(std::move(pred));
      return Status::OK();
    }

    if (negated) return Error("expected IN or LIKE after NOT");

    // Comparison: = <> < <= > >= against a column ref (join) or literal.
    if (Peek().type != TokenType::kSymbol) {
      return Error("expected comparison operator");
    }
    std::string op_text = Peek().text;
    plan::CompareOp op;
    if (op_text == "=") {
      op = plan::CompareOp::kEq;
    } else if (op_text == "<>") {
      op = plan::CompareOp::kNe;
    } else if (op_text == "<") {
      op = plan::CompareOp::kLt;
    } else if (op_text == "<=") {
      op = plan::CompareOp::kLe;
    } else if (op_text == ">") {
      op = plan::CompareOp::kGt;
    } else if (op_text == ">=") {
      op = plan::CompareOp::kGe;
    } else {
      return Error("unknown operator: " + op_text);
    }
    Advance();

    if (PeekColumnRef()) {
      if (op != plan::CompareOp::kEq) {
        return Error("only equi-joins between columns are supported");
      }
      auto right = ParseColumnRef();
      if (!right.ok()) return right.status();
      plan::JoinEdge edge;
      edge.left = column;
      edge.right = right.value();
      if (edge.left.rel == edge.right.rel) {
        return Error("self-comparison within one relation is not a join");
      }
      spec_->joins.push_back(edge);
      return Status::OK();
    }

    auto v = ParseLiteral();
    if (!v.ok()) return v.status();
    plan::ScanPredicate pred;
    pred.column = column;
    pred.kind = plan::ScanPredicate::Kind::kCompare;
    pred.op = op;
    pred.value = std::move(v.value());
    spec_->filters.push_back(std::move(pred));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  const storage::Catalog* catalog_;
  std::string query_name_;
  size_t pos_ = 0;
  std::unique_ptr<plan::QuerySpec> spec_;
};

}  // namespace

common::Result<ParsedStatement> ParseStatement(
    const std::string& sql, const storage::Catalog& catalog,
    const std::string& query_name) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()), &catalog, query_name);
  return parser.ParseStatement();
}

}  // namespace reopt::sql
