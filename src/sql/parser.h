// Recursive-descent parser + binder for the JOB SQL dialect:
//
//   SELECT MIN(x.col) AS label, ... FROM table AS alias, ...
//   WHERE <filter|join> AND ... ;
//   CREATE TEMP TABLE name AS SELECT ... ;
//
// Filters: =, <>, <, <=, >, >=, [NOT] IN (...), [NOT] LIKE, BETWEEN,
// IS [NOT] NULL. Join conditions are alias.col = alias.col equalities.
// Binding resolves tables/columns against a Catalog and produces the same
// plan::QuerySpec the programmatic QueryBuilder emits.
#ifndef REOPT_SQL_PARSER_H_
#define REOPT_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace reopt::sql {

struct ParsedStatement {
  std::unique_ptr<plan::QuerySpec> query;
  /// Non-empty for CREATE TEMP TABLE <name> AS SELECT ...
  std::string create_table_name;
  bool temporary = false;
};

/// Parses one statement and binds it against `catalog`.
common::Result<ParsedStatement> ParseStatement(
    const std::string& sql, const storage::Catalog& catalog,
    const std::string& query_name = "sql");

}  // namespace reopt::sql

#endif  // REOPT_SQL_PARSER_H_
