#include "stats/stats_catalog.h"

namespace reopt::stats {

void StatsCatalog::AnalyzeTable(const storage::Table& table,
                                const AnalyzeOptions& options) {
  stats_[table.name()] = Analyze(table, options);
}

void StatsCatalog::AnalyzeAll(const storage::Catalog& catalog,
                              const AnalyzeOptions& options) {
  for (const std::string& name : catalog.TableNames()) {
    AnalyzeTable(*catalog.FindTable(name), options);
  }
}

const TableStats* StatsCatalog::Find(const std::string& table_name) const {
  auto it = stats_.find(table_name);
  return it == stats_.end() ? nullptr : &it->second;
}

void StatsCatalog::Set(const std::string& table_name, TableStats stats) {
  stats_[table_name] = std::move(stats);
}

void StatsCatalog::Remove(const std::string& table_name) {
  stats_.erase(table_name);
}

void StatsCatalog::BuildColumnGroupsAll(const storage::Catalog& catalog,
                                        const ColumnGroupOptions& options) {
  for (auto& [name, stats] : stats_) {
    const storage::Table* table = catalog.FindTable(name);
    if (table == nullptr) continue;
    stats.groups = BuildColumnGroups(*table, options);
  }
}

void StatsCatalog::ClearColumnGroups() {
  for (auto& [name, stats] : stats_) {
    stats.groups.clear();
  }
}

}  // namespace reopt::stats
