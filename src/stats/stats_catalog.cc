#include "stats/stats_catalog.h"

#include <utility>

namespace reopt::stats {

void StatsCatalog::AnalyzeTable(const storage::Table& table,
                                const AnalyzeOptions& options) {
  // ANALYZE scans the whole table — keep it outside the lock.
  TableStats stats = Analyze(table, options);
  common::MutexLock lock(&mu_);
  stats_[table.name()] = std::move(stats);
}

void StatsCatalog::AnalyzeAll(const storage::Catalog& catalog,
                              const AnalyzeOptions& options) {
  for (const std::string& name : catalog.TableNames()) {
    AnalyzeTable(*catalog.FindTable(name), options);
  }
}

const TableStats* StatsCatalog::Find(const std::string& table_name) const {
  common::MutexLock lock(&mu_);
  auto it = stats_.find(table_name);
  return it == stats_.end() ? nullptr : &it->second;
}

void StatsCatalog::Set(const std::string& table_name, TableStats stats) {
  common::MutexLock lock(&mu_);
  stats_[table_name] = std::move(stats);
}

void StatsCatalog::Remove(const std::string& table_name) {
  common::MutexLock lock(&mu_);
  stats_.erase(table_name);
}

std::vector<std::string> StatsCatalog::Names() const {
  common::MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, stats] : stats_) names.push_back(name);
  return names;
}

void StatsCatalog::BuildColumnGroupsAll(const storage::Catalog& catalog,
                                        const ColumnGroupOptions& options) {
  common::MutexLock lock(&mu_);
  for (auto& [name, stats] : stats_) {
    const storage::Table* table = catalog.FindTable(name);
    if (table == nullptr) continue;
    stats.groups = BuildColumnGroups(*table, options);
  }
}

void StatsCatalog::ClearColumnGroups() {
  common::MutexLock lock(&mu_);
  for (auto& [name, stats] : stats_) {
    stats.groups.clear();
  }
}

}  // namespace reopt::stats
