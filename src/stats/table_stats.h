// Table-level statistics: row count plus per-column ColumnStats.
#ifndef REOPT_STATS_TABLE_STATS_H_
#define REOPT_STATS_TABLE_STATS_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "stats/column_groups.h"
#include "stats/column_stats.h"

namespace reopt::stats {

/// Statistics for one table, indexed by column position.
struct TableStats {
  double row_count = 0.0;
  std::vector<ColumnStats> columns;
  /// CORDS-style column-group statistics; empty unless explicitly built
  /// (StatsCatalog::BuildColumnGroupsAll).
  std::vector<ColumnGroupStats> groups;

  const ColumnStats& column(common::ColumnIdx idx) const {
    return columns[static_cast<size_t>(idx)];
  }

  std::string ToString() const;
};

}  // namespace reopt::stats

#endif  // REOPT_STATS_TABLE_STATS_H_
