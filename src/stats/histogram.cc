#include "stats/histogram.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace reopt::stats {

std::vector<size_t> EquiDepthHistogram::BoundPositions(size_t n,
                                                       int num_buckets) {
  std::vector<size_t> positions;
  if (n == 0 || num_buckets < 1) return positions;
  size_t buckets = std::min<size_t>(static_cast<size_t>(num_buckets), n);
  positions.reserve(buckets);
  for (size_t b = 1; b <= buckets; ++b) {
    // Boundary after the b-th equal-depth slice.
    positions.push_back((n * b) / buckets - 1);
  }
  return positions;
}

EquiDepthHistogram EquiDepthHistogram::FromBounds(
    std::vector<common::Value> bounds) {
  EquiDepthHistogram hist;
  hist.bounds_ = std::move(bounds);
  return hist;
}

EquiDepthHistogram EquiDepthHistogram::Build(
    std::vector<common::Value> values, int num_buckets) {
  EquiDepthHistogram hist;
  if (values.empty() || num_buckets < 1) return hist;
  std::sort(values.begin(), values.end());
  hist.bounds_.reserve(
      std::min<size_t>(static_cast<size_t>(num_buckets), values.size()) + 1);
  hist.bounds_.push_back(values.front());
  for (size_t idx : BoundPositions(values.size(), num_buckets)) {
    hist.bounds_.push_back(values[idx]);
  }
  return hist;
}

namespace {

// Position of v within [lo, hi] for interpolation; 0.5 when not numeric or
// when the bucket is a single point.
double Interpolate(const common::Value& v, const common::Value& lo,
                   const common::Value& hi) {
  if (v.is_string() || lo.is_string() || hi.is_string()) return 0.5;
  double a = lo.AsDouble();
  double b = hi.AsDouble();
  double x = v.AsDouble();
  if (b <= a) return 0.5;
  double t = (x - a) / (b - a);
  return std::clamp(t, 0.0, 1.0);
}

}  // namespace

double EquiDepthHistogram::FractionBelow(const common::Value& v,
                                         bool inclusive) const {
  if (empty()) return 0.5;
  int k = num_buckets();
  if (inclusive ? (v < bounds_.front()) : (v <= bounds_.front())) {
    return 0.0;
  }
  if (inclusive ? (v >= bounds_.back()) : (v > bounds_.back())) {
    return 1.0;
  }
  // Find the bucket containing v.
  for (int i = 0; i < k; ++i) {
    const common::Value& lo = bounds_[static_cast<size_t>(i)];
    const common::Value& hi = bounds_[static_cast<size_t>(i) + 1];
    if (v <= hi) {
      double within = Interpolate(v, lo, hi);
      return (static_cast<double>(i) + within) / static_cast<double>(k);
    }
  }
  return 1.0;
}

double EquiDepthHistogram::FractionBetween(const common::Value& lo,
                                           bool lo_inclusive,
                                           const common::Value& hi,
                                           bool hi_inclusive) const {
  if (empty()) return 0.25;
  double above = FractionBelow(hi, hi_inclusive);
  double below = FractionBelow(lo, !lo_inclusive);
  return std::max(0.0, above - below);
}

std::string EquiDepthHistogram::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (i > 0) out += ", ";
    out += bounds_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace reopt::stats
