// Per-column statistics mirroring pg_stats: null fraction, distinct count,
// most-common values with frequencies, equi-depth histogram, min/max.
#ifndef REOPT_STATS_COLUMN_STATS_H_
#define REOPT_STATS_COLUMN_STATS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "stats/histogram.h"

namespace reopt::stats {

/// A most-common-values list: values paired with their frequency as a
/// fraction of all (non-null) rows.
struct McvList {
  std::vector<common::Value> values;
  std::vector<double> freqs;

  bool empty() const { return values.empty(); }
  int size() const { return static_cast<int>(values.size()); }

  /// Frequency of `v` if present.
  std::optional<double> Find(const common::Value& v) const;

  /// Sum of all MCV frequencies.
  double TotalFreq() const;
};

/// Statistics for one column.
struct ColumnStats {
  /// Fraction of rows that are NULL.
  double null_frac = 0.0;
  /// Number of distinct non-null values.
  double num_distinct = 0.0;
  /// Most common values (frequency above the ANALYZE threshold).
  McvList mcv;
  /// Equi-depth histogram over non-MCV, non-null values.
  EquiDepthHistogram histogram;
  /// Fraction of (non-null) rows not covered by the MCV list.
  double non_mcv_frac = 1.0;
  /// Number of distinct values outside the MCV list.
  double non_mcv_distinct = 0.0;
  common::Value min;
  common::Value max;

  std::string ToString() const;
};

}  // namespace reopt::stats

#endif  // REOPT_STATS_COLUMN_STATS_H_
