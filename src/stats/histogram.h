// Equi-depth histograms, the workhorse of PostgreSQL-style selectivity
// estimation. Built by ANALYZE over non-null, non-MCV values.
#ifndef REOPT_STATS_HISTOGRAM_H_
#define REOPT_STATS_HISTOGRAM_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace reopt::stats {

/// An equi-depth (equal-height) histogram: `bounds_` holds bucket
/// boundaries b0 <= b1 <= ... <= bk; bucket i covers (b_i, b_{i+1}] and
/// holds ~1/k of the summarized values. Mirrors pg_stats.histogram_bounds.
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds from a (not necessarily sorted) sample of values. `num_buckets`
  /// is a maximum; fewer are used if there are few distinct values.
  static EquiDepthHistogram Build(std::vector<common::Value> values,
                                  int num_buckets);

  /// The equal-depth boundary positions Build samples from a *sorted* array
  /// of `n` values: position (n*b)/buckets - 1 for b in 1..buckets, with
  /// buckets = min(num_buckets, n). Shared with the typed ANALYZE path so it
  /// can select bit-identical bounds without boxing the whole sorted array.
  static std::vector<size_t> BoundPositions(size_t n, int num_buckets);

  /// Wraps precomputed bounds (the sorted array's front value followed by
  /// its BoundPositions picks, in order) as a histogram. The caller is
  /// responsible for the Build invariants; used by the typed ANALYZE path.
  static EquiDepthHistogram FromBounds(std::vector<common::Value> bounds);

  bool empty() const { return bounds_.size() < 2; }
  int num_buckets() const {
    return empty() ? 0 : static_cast<int>(bounds_.size()) - 1;
  }
  const std::vector<common::Value>& bounds() const { return bounds_; }

  /// Estimated fraction of summarized values < v (or <= v).
  /// Linear interpolation within a bucket for numeric types; bucket
  /// midpoint for strings.
  double FractionBelow(const common::Value& v, bool inclusive) const;

  /// Estimated fraction in [lo, hi] with per-bound inclusivity.
  double FractionBetween(const common::Value& lo, bool lo_inclusive,
                         const common::Value& hi, bool hi_inclusive) const;

  std::string ToString() const;

 private:
  std::vector<common::Value> bounds_;
};

}  // namespace reopt::stats

#endif  // REOPT_STATS_HISTOGRAM_H_
