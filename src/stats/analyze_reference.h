// The pre-vectorization ANALYZE, retained verbatim as a correctness oracle
// and benchmark baseline for the typed single-pass implementation in
// analyze.cc (same pattern as exec::reference for the execution kernels).
// Collects every sampled value as a boxed common::Value and computes the
// statistics with Value comparisons throughout. The optimized path must
// produce bit-identical ColumnStats; stats_test and bench/perf_smoke hold
// it to that.
#ifndef REOPT_STATS_ANALYZE_REFERENCE_H_
#define REOPT_STATS_ANALYZE_REFERENCE_H_

#include "stats/analyze.h"

namespace reopt::stats::reference {

/// Scans `table` and produces statistics for every column (boxed path).
TableStats Analyze(const storage::Table& table,
                   const AnalyzeOptions& options = {});

/// Analyzes a single column (boxed path).
ColumnStats AnalyzeColumn(const storage::Column& column,
                          const AnalyzeOptions& options = {});

}  // namespace reopt::stats::reference

#endif  // REOPT_STATS_ANALYZE_REFERENCE_H_
