// ANALYZE: builds TableStats from table contents. With the default options
// (sample_size = 0) every row is scanned, matching the paper's setup of
// default_statistics_target at its maximum "to give PostgreSQL the best
// chance at good cardinality estimates". Estimation errors in this system
// therefore come from the *model* (independence/uniformity), not from stale
// or sampled statistics — exactly the regime the paper studies.
#ifndef REOPT_STATS_ANALYZE_H_
#define REOPT_STATS_ANALYZE_H_

#include <cstdint>

#include "common/rng.h"
#include "storage/table.h"
#include "stats/table_stats.h"

namespace reopt::stats {

struct AnalyzeOptions {
  /// Maximum number of histogram buckets and MCV entries, like
  /// default_statistics_target.
  int statistics_target = 100;
  /// If > 0, statistics are computed from a uniform sample of this many
  /// rows instead of the full table.
  int64_t sample_size = 0;
  /// Seed for the sampling RNG.
  uint64_t seed = 0x5eed;
};

/// Scans `table` and produces statistics for every column.
TableStats Analyze(const storage::Table& table,
                   const AnalyzeOptions& options = {});

/// Analyzes a single column (exposed for tests).
ColumnStats AnalyzeColumn(const storage::Column& column,
                          const AnalyzeOptions& options = {});

}  // namespace reopt::stats

#endif  // REOPT_STATS_ANALYZE_H_
