// ANALYZE: builds TableStats from table contents. With the default options
// (sample_size = 0) every row is scanned, matching the paper's setup of
// default_statistics_target at its maximum "to give PostgreSQL the best
// chance at good cardinality estimates". Estimation errors in this system
// therefore come from the *model* (independence/uniformity), not from stale
// or sampled statistics — exactly the regime the paper studies.
//
// Implementation: a typed single pass. The column is scanned once through
// its raw storage::ColumnView span, dispatching on the column type so
// null-frac/min/max/NDV/MCV/histogram all come out of tight typed loops;
// values are boxed into common::Value only at the statistics boundary
// (min/max, the <= statistics_target MCVs, the histogram bounds). The
// pre-vectorization boxed implementation is retained verbatim in
// analyze_reference.h as the correctness oracle — both paths consume the
// same sample row sequence and seed, and stats_test pins the outputs
// bit-identical.
#ifndef REOPT_STATS_ANALYZE_H_
#define REOPT_STATS_ANALYZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/table.h"
#include "stats/table_stats.h"

namespace reopt::stats {

struct AnalyzeOptions {
  /// Maximum number of histogram buckets and MCV entries, like
  /// default_statistics_target.
  int statistics_target = 100;
  /// If > 0, statistics are computed from a uniform sample of this many
  /// rows instead of the full table.
  int64_t sample_size = 0;
  /// Seed for the sampling RNG.
  uint64_t seed = 0x5eed;
};

/// Scans `table` and produces statistics for every column.
TableStats Analyze(const storage::Table& table,
                   const AnalyzeOptions& options = {});

/// Analyzes a single column (exposed for tests).
ColumnStats AnalyzeColumn(const storage::Column& column,
                          const AnalyzeOptions& options = {});

// ---- Typed cores ----------------------------------------------------------
// Full ColumnStats from the non-null values one scan already collected
// (`sample_rows` counts every examined row including nulls). These are the
// fused-ANALYZE entry points: the temp-table materialization path in the
// executor feeds the values it is writing straight into them, so a
// materialized column is scanned once, not written and then re-read by a
// separate ANALYZE pass. Results are identical to AnalyzeColumn over the
// same rows.
ColumnStats ComputeColumnStats(std::vector<int64_t> values,
                               int64_t sample_rows, int64_t null_rows,
                               const AnalyzeOptions& options = {});
ColumnStats ComputeColumnStats(std::vector<double> values,
                               int64_t sample_rows, int64_t null_rows,
                               const AnalyzeOptions& options = {});
ColumnStats ComputeColumnStats(std::vector<std::string> values,
                               int64_t sample_rows, int64_t null_rows,
                               const AnalyzeOptions& options = {});

}  // namespace reopt::stats

#endif  // REOPT_STATS_ANALYZE_H_
