// CORDS-style column-group statistics (paper Sec. IV-B): joint
// most-common-value statistics over pairs of columns in one table, used to
// correct the independence assumption for correlated same-table
// predicates. The paper's argument — which bench/ablation_cords reproduces
// empirically — is that this machinery, while sound, "seems unlikely to
// improve execution time in JOB, because correlations exist between
// columns that are several edges away in the join graph".
#ifndef REOPT_STATS_COLUMN_GROUPS_H_
#define REOPT_STATS_COLUMN_GROUPS_H_

#include <optional>
#include <vector>

#include "common/types.h"
#include "common/value.h"
#include "storage/table.h"

namespace reopt::stats {

/// Joint statistics for one ordered column pair (col_a < col_b).
struct ColumnGroupStats {
  common::ColumnIdx col_a = common::kInvalidColumnIdx;
  common::ColumnIdx col_b = common::kInvalidColumnIdx;
  /// Joint most-common pairs and their frequency over all rows.
  std::vector<std::pair<common::Value, common::Value>> pairs;
  std::vector<double> freqs;
  /// Number of distinct (a, b) combinations observed.
  double num_distinct_pairs = 0.0;
  /// Correlation strength in [0, 1]: 1 - ndv(a,b)/min(ndv(a)*ndv(b), rows).
  /// CORDS flags a pair as correlated when this is high.
  double correlation = 0.0;

  /// Joint frequency of (a, b) if it is a tracked common pair.
  std::optional<double> Find(const common::Value& a,
                             const common::Value& b) const;
};

struct ColumnGroupOptions {
  /// Keep at most this many most-common pairs per group.
  int max_pairs = 100;
  /// Only record groups whose correlation strength is at least this.
  double min_correlation = 0.2;
  /// Skip columns with more distinct values than this (CORDS samples;
  /// we bound work by cardinality).
  double max_column_ndv = 10000.0;
};

/// Builds group statistics for every qualifying column pair of `table`.
std::vector<ColumnGroupStats> BuildColumnGroups(
    const storage::Table& table, const ColumnGroupOptions& options = {});

/// Finds the group for (a, b) in any order; nullptr if absent.
const ColumnGroupStats* FindGroup(
    const std::vector<ColumnGroupStats>& groups, common::ColumnIdx a,
    common::ColumnIdx b);

}  // namespace reopt::stats

#endif  // REOPT_STATS_COLUMN_GROUPS_H_
