#include "stats/table_stats.h"

#include "common/string_util.h"

namespace reopt::stats {

std::string TableStats::ToString() const {
  std::string out =
      common::StrPrintf("rows=%.0f, %d columns:\n", row_count,
                        static_cast<int>(columns.size()));
  for (size_t i = 0; i < columns.size(); ++i) {
    out += common::StrPrintf("  [%d] %s\n", static_cast<int>(i),
                             columns[i].ToString().c_str());
  }
  return out;
}

}  // namespace reopt::stats
