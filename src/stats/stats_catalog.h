// Maps table names to their TableStats, the statistics side of the catalog.
// The re-optimizer registers exact statistics for materialized temp tables
// here before re-planning.
//
// Thread safety: map-touching members are mutex-guarded so parallel
// workload runners can ANALYZE/Remove their temp-table statistics
// concurrently. Find returns a pointer into the node-based map, valid until
// *that entry* is removed — safe under the runners' discipline of only ever
// removing their own namespaced temp entries. The bulk builders
// (AnalyzeAll, BuildColumnGroupsAll, ClearColumnGroups) mutate entries in
// place and belong to the single-threaded setup phase.
#ifndef REOPT_STATS_STATS_CATALOG_H_
#define REOPT_STATS_STATS_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "storage/catalog.h"
#include "stats/analyze.h"
#include "stats/column_groups.h"
#include "stats/table_stats.h"

namespace reopt::stats {

/// Statistics for all tables in a database instance.
class StatsCatalog {
 public:
  StatsCatalog() = default;

  /// Runs ANALYZE on one table and stores the result.
  void AnalyzeTable(const storage::Table& table,
                    const AnalyzeOptions& options = {});

  /// Runs ANALYZE on every table in the catalog.
  void AnalyzeAll(const storage::Catalog& catalog,
                  const AnalyzeOptions& options = {});

  /// Stats for `table_name`, or nullptr if never analyzed.
  const TableStats* Find(const std::string& table_name) const;

  void Set(const std::string& table_name, TableStats stats);
  void Remove(const std::string& table_name);

  /// Names of all tables with stored statistics, sorted. Lets the chaos /
  /// lifecycle suites assert that an aborted query left no stats behind.
  std::vector<std::string> Names() const;

  /// Builds CORDS-style column-group statistics for every analyzed table
  /// (paper Sec. IV-B; see bench/ablation_cords). Setup-phase only.
  void BuildColumnGroupsAll(const storage::Catalog& catalog,
                            const ColumnGroupOptions& options = {});
  /// Drops all group statistics. Setup-phase only.
  void ClearColumnGroups();

 private:
  mutable common::Mutex mu_;
  std::map<std::string, TableStats> stats_ GUARDED_BY(mu_);
};

}  // namespace reopt::stats

#endif  // REOPT_STATS_STATS_CATALOG_H_
