#include "stats/column_stats.h"

#include "common/string_util.h"

namespace reopt::stats {

std::optional<double> McvList::Find(const common::Value& v) const {
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] == v) return freqs[i];
  }
  return std::nullopt;
}

double McvList::TotalFreq() const {
  double sum = 0.0;
  for (double f : freqs) sum += f;
  return sum;
}

std::string ColumnStats::ToString() const {
  return common::StrPrintf(
      "ndv=%.0f null_frac=%.3f mcvs=%d mcv_freq=%.3f min=%s max=%s",
      num_distinct, null_frac, mcv.size(), mcv.TotalFreq(),
      min.ToString().c_str(), max.ToString().c_str());
}

}  // namespace reopt::stats
