#include "stats/analyze_reference.h"

#include <algorithm>
#include <map>
#include <vector>

namespace reopt::stats::reference {
namespace {

// Collects the (possibly sampled) non-null values of a column.
struct ColumnSample {
  std::vector<common::Value> values;  // non-null values in sample
  int64_t sample_rows = 0;            // rows examined (incl. nulls)
  int64_t null_rows = 0;
};

ColumnSample CollectSample(const storage::Column& column,
                           const AnalyzeOptions& options) {
  ColumnSample sample;
  int64_t n = column.size();
  std::vector<common::RowIdx> rows;
  if (options.sample_size > 0 && options.sample_size < n) {
    common::Rng rng(options.seed);
    rows.reserve(static_cast<size_t>(options.sample_size));
    for (int64_t i = 0; i < options.sample_size; ++i) {
      rows.push_back(rng.UniformInt(0, n - 1));
    }
  } else {
    rows.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) rows.push_back(i);
  }
  sample.sample_rows = static_cast<int64_t>(rows.size());
  sample.values.reserve(rows.size());
  for (common::RowIdx row : rows) {
    if (column.IsNull(row)) {
      ++sample.null_rows;
    } else {
      sample.values.push_back(column.GetValue(row));
    }
  }
  return sample;
}

}  // namespace

ColumnStats AnalyzeColumn(const storage::Column& column,
                          const AnalyzeOptions& options) {
  ColumnStats stats;
  ColumnSample sample = CollectSample(column, options);
  if (sample.sample_rows == 0) return stats;
  stats.null_frac = static_cast<double>(sample.null_rows) /
                    static_cast<double>(sample.sample_rows);
  if (sample.values.empty()) return stats;

  // Count distinct values.
  std::sort(sample.values.begin(), sample.values.end());
  stats.min = sample.values.front();
  stats.max = sample.values.back();

  struct Group {
    const common::Value* value;
    int64_t count;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < sample.values.size();) {
    size_t j = i;
    while (j < sample.values.size() && sample.values[j] == sample.values[i]) {
      ++j;
    }
    groups.push_back(Group{&sample.values[i], static_cast<int64_t>(j - i)});
    i = j;
  }
  stats.num_distinct = static_cast<double>(groups.size());

  // MCV selection, PostgreSQL-style: keep up to statistics_target values
  // whose frequency is clearly above average (1.25x the mean count), most
  // frequent first.
  double total = static_cast<double>(sample.values.size());
  double avg_count = total / static_cast<double>(groups.size());
  std::vector<const Group*> candidates;
  for (const Group& g : groups) {
    if (static_cast<double>(g.count) > 1.25 * avg_count && g.count > 1) {
      candidates.push_back(&g);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Group* a, const Group* b) { return a->count > b->count; });
  if (static_cast<int>(candidates.size()) > options.statistics_target) {
    candidates.resize(static_cast<size_t>(options.statistics_target));
  }
  for (const Group* g : candidates) {
    stats.mcv.values.push_back(*g->value);
    stats.mcv.freqs.push_back(static_cast<double>(g->count) / total);
  }

  // Histogram over the values not covered by the MCV list.
  std::vector<common::Value> rest;
  rest.reserve(sample.values.size());
  int64_t rest_distinct = 0;
  for (const Group& g : groups) {
    if (!stats.mcv.Find(*g.value).has_value()) {
      ++rest_distinct;
      for (int64_t c = 0; c < g.count; ++c) rest.push_back(*g.value);
    }
  }
  stats.non_mcv_frac = rest.empty() ? 0.0 : static_cast<double>(rest.size()) / total;
  stats.non_mcv_distinct = static_cast<double>(rest_distinct);
  stats.histogram =
      EquiDepthHistogram::Build(std::move(rest), options.statistics_target);
  return stats;
}

TableStats Analyze(const storage::Table& table,
                   const AnalyzeOptions& options) {
  TableStats stats;
  stats.row_count = static_cast<double>(table.num_rows());
  stats.columns.reserve(static_cast<size_t>(table.num_columns()));
  for (common::ColumnIdx c = 0; c < table.num_columns(); ++c) {
    stats.columns.push_back(reference::AnalyzeColumn(table.column(c), options));
  }
  return stats;
}

}  // namespace reopt::stats::reference
