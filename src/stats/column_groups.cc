#include "stats/column_groups.h"

#include <algorithm>
#include <map>

namespace reopt::stats {

std::optional<double> ColumnGroupStats::Find(const common::Value& a,
                                             const common::Value& b) const {
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].first == a && pairs[i].second == b) return freqs[i];
  }
  return std::nullopt;
}

const ColumnGroupStats* FindGroup(
    const std::vector<ColumnGroupStats>& groups, common::ColumnIdx a,
    common::ColumnIdx b) {
  if (a > b) std::swap(a, b);
  for (const ColumnGroupStats& g : groups) {
    if (g.col_a == a && g.col_b == b) return &g;
  }
  return nullptr;
}

namespace {

double DistinctCount(const storage::Column& col) {
  std::map<common::Value, int64_t> counts;
  for (common::RowIdx r = 0; r < col.size(); ++r) {
    if (col.IsNull(r)) continue;
    ++counts[col.GetValue(r)];
    if (counts.size() > 100000) return 1e18;  // give up, too wide
  }
  return static_cast<double>(counts.size());
}

}  // namespace

std::vector<ColumnGroupStats> BuildColumnGroups(
    const storage::Table& table, const ColumnGroupOptions& options) {
  std::vector<ColumnGroupStats> groups;
  int cols = table.num_columns();
  if (table.num_rows() == 0) return groups;

  // Pre-compute per-column distinct counts, skipping wide columns.
  std::vector<double> ndv(static_cast<size_t>(cols), 1e18);
  for (common::ColumnIdx c = 0; c < cols; ++c) {
    // Skip id-like unique columns early: they cannot be correlated in a
    // way MCV pairs could capture.
    ndv[static_cast<size_t>(c)] = DistinctCount(table.column(c));
  }

  for (common::ColumnIdx a = 0; a < cols; ++a) {
    if (ndv[static_cast<size_t>(a)] > options.max_column_ndv) continue;
    for (common::ColumnIdx b = a + 1; b < cols; ++b) {
      if (ndv[static_cast<size_t>(b)] > options.max_column_ndv) continue;
      const storage::Column& col_a = table.column(a);
      const storage::Column& col_b = table.column(b);
      std::map<std::pair<common::Value, common::Value>, int64_t> joint;
      int64_t non_null = 0;
      for (common::RowIdx r = 0; r < table.num_rows(); ++r) {
        if (col_a.IsNull(r) || col_b.IsNull(r)) continue;
        ++non_null;
        ++joint[{col_a.GetValue(r), col_b.GetValue(r)}];
      }
      if (non_null == 0) continue;
      double independent_pairs =
          std::min(ndv[static_cast<size_t>(a)] * ndv[static_cast<size_t>(b)],
                   static_cast<double>(non_null));
      double correlation =
          1.0 - static_cast<double>(joint.size()) /
                    std::max(1.0, independent_pairs);
      if (correlation < options.min_correlation) continue;

      ColumnGroupStats group;
      group.col_a = a;
      group.col_b = b;
      group.num_distinct_pairs = static_cast<double>(joint.size());
      group.correlation = correlation;
      // Most common pairs, by descending count.
      std::vector<std::pair<int64_t, const std::pair<common::Value,
                                                     common::Value>*>>
          ranked;
      ranked.reserve(joint.size());
      for (const auto& [pair, count] : joint) {
        ranked.emplace_back(count, &pair);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      int keep = std::min<int>(options.max_pairs,
                               static_cast<int>(ranked.size()));
      double total_rows = static_cast<double>(table.num_rows());
      for (int i = 0; i < keep; ++i) {
        group.pairs.push_back(*ranked[static_cast<size_t>(i)].second);
        group.freqs.push_back(
            static_cast<double>(ranked[static_cast<size_t>(i)].first) /
            total_rows);
      }
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

}  // namespace reopt::stats
