#include "stats/analyze.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace reopt::stats {
namespace {

common::Value Box(int64_t v) { return common::Value::Int(v); }
common::Value Box(double v) { return common::Value::Real(v); }
common::Value Box(const std::string& v) { return common::Value::Str(v); }

// Statistics core over one column's sampled non-null values, already
// gathered as a typed vector. Mirrors the boxed reference implementation
// (analyze_reference.cc) step for step — same grouping, the same MCV
// threshold and tie-breaking sort, the same histogram boundary positions —
// so the emitted ColumnStats are bit-identical; only the representation
// (typed tight loops vs. per-row common::Value) differs.
//
// `box` converts a gathered value to the boxed statistic representation at
// the output boundary only. For plain columns it is the identity Box()
// overload; for dictionary-encoded strings the gathered values are int32
// codes and `box` decodes through the (sorted) dictionary — sorting codes
// is the same permutation as sorting the strings, so every downstream step
// sees identical groups and the emitted stats stay bit-identical.
template <typename T, typename BoxFn>
ColumnStats TypedStatsImpl(std::vector<T> values, int64_t sample_rows,
                           int64_t null_rows, const AnalyzeOptions& options,
                           BoxFn box) {
  ColumnStats stats;
  if (sample_rows == 0) return stats;
  stats.null_frac = static_cast<double>(null_rows) /
                    static_cast<double>(sample_rows);
  if (values.empty()) return stats;

  std::sort(values.begin(), values.end());
  stats.min = box(values.front());
  stats.max = box(values.back());

  // Group equal runs of the sorted sample: (start offset, count).
  struct Group {
    size_t first;
    int64_t count;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < values.size();) {
    size_t j = i;
    while (j < values.size() && values[j] == values[i]) {
      ++j;
    }
    groups.push_back(Group{i, static_cast<int64_t>(j - i)});
    i = j;
  }
  stats.num_distinct = static_cast<double>(groups.size());

  // MCV selection, PostgreSQL-style: keep up to statistics_target values
  // whose frequency is clearly above average (1.25x the mean count), most
  // frequent first.
  double total = static_cast<double>(values.size());
  double avg_count = total / static_cast<double>(groups.size());
  std::vector<size_t> candidates;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (static_cast<double>(groups[g].count) > 1.25 * avg_count &&
        groups[g].count > 1) {
      candidates.push_back(g);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&groups](size_t a, size_t b) {
              return groups[a].count > groups[b].count;
            });
  if (static_cast<int>(candidates.size()) > options.statistics_target) {
    candidates.resize(static_cast<size_t>(options.statistics_target));
  }
  std::vector<uint8_t> is_mcv(groups.size(), 0);
  for (size_t g : candidates) {
    stats.mcv.values.push_back(box(values[groups[g].first]));
    stats.mcv.freqs.push_back(static_cast<double>(groups[g].count) / total);
    is_mcv[g] = 1;
  }

  // Histogram over the values not covered by the MCV list. The non-MCV
  // values form a sorted virtual array (the non-MCV groups in ascending
  // order, each repeated `count` times); only its boundary picks are boxed,
  // located by walking the groups alongside the ascending positions.
  int64_t rest_count = 0;
  int64_t rest_distinct = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!is_mcv[g]) {
      rest_count += groups[g].count;
      ++rest_distinct;
    }
  }
  stats.non_mcv_frac =
      rest_count == 0 ? 0.0 : static_cast<double>(rest_count) / total;
  stats.non_mcv_distinct = static_cast<double>(rest_distinct);
  if (rest_count > 0 && options.statistics_target >= 1) {
    std::vector<size_t> positions = EquiDepthHistogram::BoundPositions(
        static_cast<size_t>(rest_count), options.statistics_target);
    std::vector<common::Value> bounds;
    bounds.reserve(positions.size() + 1);
    size_t g = 0;
    while (is_mcv[g]) ++g;
    bounds.push_back(box(values[groups[g].first]));  // front of the rest
    int64_t covered = 0;  // rest values in groups before `g`
    for (size_t pos : positions) {
      // Advance to the non-MCV group containing rest-position `pos`; the
      // loop always stops on a non-MCV group because `covered <= pos`.
      while (covered + (is_mcv[g] ? 0 : groups[g].count) <=
             static_cast<int64_t>(pos)) {
        if (!is_mcv[g]) covered += groups[g].count;
        ++g;
      }
      bounds.push_back(box(values[groups[g].first]));
    }
    stats.histogram = EquiDepthHistogram::FromBounds(std::move(bounds));
  }
  return stats;
}

// One typed gather pass over the column view: the sampled rows' non-null
// values (in sample order) plus the row accounting TypedStats needs.
//
// Sampling semantics: rows are drawn uniformly WITH replacement, so a row
// picked twice contributes twice — both to `sample_rows` and to the value
// distribution (its value is double-counted in NDV grouping, MCV
// frequencies and the histogram). This is deliberate and pinned by
// regression tests: the fixed seed makes the duplication deterministic,
// and a column with fewer than `sample_size` rows never samples at all
// (the full-scan branch), so small tables always get exact statistics.
template <typename T, typename GetFn>
void GatherSample(const storage::ColumnView& view,
                  const AnalyzeOptions& options, GetFn get,
                  std::vector<T>* values, int64_t* sample_rows,
                  int64_t* null_rows) {
  int64_t n = view.size;
  if (options.sample_size > 0 && options.sample_size < n) {
    common::Rng rng(options.seed);
    *sample_rows = options.sample_size;
    values->reserve(static_cast<size_t>(options.sample_size));
    for (int64_t i = 0; i < options.sample_size; ++i) {
      common::RowIdx row = rng.UniformInt(0, n - 1);
      if (view.IsNull(row)) {
        ++*null_rows;
      } else {
        values->push_back(get(row));
      }
    }
  } else {
    *sample_rows = n;
    values->reserve(static_cast<size_t>(n));
    if (view.AllValid()) {
      for (int64_t row = 0; row < n; ++row) values->push_back(get(row));
    } else {
      for (int64_t row = 0; row < n; ++row) {
        if (view.valid[static_cast<size_t>(row)] == 0) {
          ++*null_rows;
        } else {
          values->push_back(get(row));
        }
      }
    }
  }
}

// Identity boxing for plain typed values.
template <typename T>
ColumnStats TypedStats(std::vector<T> values, int64_t sample_rows,
                       int64_t null_rows, const AnalyzeOptions& options) {
  return TypedStatsImpl(std::move(values), sample_rows, null_rows, options,
                        [](const T& v) { return Box(v); });
}

}  // namespace

ColumnStats ComputeColumnStats(std::vector<int64_t> values,
                               int64_t sample_rows, int64_t null_rows,
                               const AnalyzeOptions& options) {
  return TypedStats(std::move(values), sample_rows, null_rows, options);
}

ColumnStats ComputeColumnStats(std::vector<double> values,
                               int64_t sample_rows, int64_t null_rows,
                               const AnalyzeOptions& options) {
  return TypedStats(std::move(values), sample_rows, null_rows, options);
}

ColumnStats ComputeColumnStats(std::vector<std::string> values,
                               int64_t sample_rows, int64_t null_rows,
                               const AnalyzeOptions& options) {
  return TypedStats(std::move(values), sample_rows, null_rows, options);
}

ColumnStats AnalyzeColumn(const storage::Column& column,
                          const AnalyzeOptions& options) {
  const storage::ColumnView view = column.View();
  int64_t sample_rows = 0;
  int64_t null_rows = 0;
  switch (view.type) {
    case common::DataType::kInt64: {
      std::vector<int64_t> values;
      GatherSample(
          view, options,
          [&](common::RowIdx row) { return view.ints[static_cast<size_t>(row)]; },
          &values, &sample_rows, &null_rows);
      return TypedStats(std::move(values), sample_rows, null_rows, options);
    }
    case common::DataType::kDouble: {
      std::vector<double> values;
      GatherSample(
          view, options,
          [&](common::RowIdx row) {
            return view.doubles[static_cast<size_t>(row)];
          },
          &values, &sample_rows, &null_rows);
      return TypedStats(std::move(values), sample_rows, null_rows, options);
    }
    case common::DataType::kString: {
      if (view.encoding == storage::ColumnEncoding::kDictionary) {
        // Gather int32 codes instead of strings: sorting/grouping codes is
        // order-isomorphic to sorting/grouping the strings (the dictionary
        // is sorted), so running the core over codes and decoding only at
        // the boxing boundary yields bit-identical stats at a fraction of
        // the comparison cost.
        std::vector<int32_t> codes;
        GatherSample(
            view, options,
            [&](common::RowIdx row) {
              return view.codes[static_cast<size_t>(row)];
            },
            &codes, &sample_rows, &null_rows);
        const std::string* dict = view.dict;
        return TypedStatsImpl(
            std::move(codes), sample_rows, null_rows, options,
            [dict](int32_t c) {
              return common::Value::Str(dict[static_cast<size_t>(c)]);
            });
      }
      std::vector<std::string> values;
      GatherSample(
          view, options,
          [&](common::RowIdx row) {
            return view.strings[static_cast<size_t>(row)];
          },
          &values, &sample_rows, &null_rows);
      return TypedStats(std::move(values), sample_rows, null_rows, options);
    }
  }
  return ColumnStats{};
}

TableStats Analyze(const storage::Table& table,
                   const AnalyzeOptions& options) {
  TableStats stats;
  stats.row_count = static_cast<double>(table.num_rows());
  stats.columns.reserve(static_cast<size_t>(table.num_columns()));
  for (common::ColumnIdx c = 0; c < table.num_columns(); ++c) {
    stats.columns.push_back(AnalyzeColumn(table.column(c), options));
  }
  return stats;
}

}  // namespace reopt::stats
