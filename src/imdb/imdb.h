// Synthetic IMDB-shaped database generator. Stands in for the real IMDB
// dump the paper uses (see docs/ARCHITECTURE.md): a 21-table schema
// matching the Join Order Benchmark's, populated with the two phenomena the
// paper blames for catastrophic estimates —
//   * skew: Zipfian popularity of movies, people, companies and keywords
//     (the "40 stocks carry 50% of the volume" pattern), and
//   * join-crossing correlation: a per-title latent "franchise class"
//     drives production year, keyword choice, cast size, producer notes
//     and budget/votes rows simultaneously, so predicates several join
//     edges apart are strongly correlated (Sec. IV-B).
// Every id and foreign-key column gets a hash index, mirroring the paper's
// "we add foreign key indexes making access path selection more
// challenging".
#ifndef REOPT_IMDB_IMDB_H_
#define REOPT_IMDB_IMDB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stats/stats_catalog.h"
#include "storage/catalog.h"

namespace reopt::imdb {

struct ImdbOptions {
  /// Linear row-count scale. 1.0 ≈ 1M total rows (benchmarks); tests use
  /// 0.05–0.2.
  double scale = 1.0;
  uint64_t seed = 42;
  /// ANALYZE statistics target (histogram buckets / MCV entries). The
  /// paper maxes this out; 100 is the PostgreSQL default.
  int statistics_target = 100;
  /// Number of "star" persons / "hot" keywords driving skew.
  int num_stars = 400;
  int num_hot_keywords = 24;
  /// Physical column encodings applied after generation (before ANALYZE —
  /// though stats are bit-identical either way, the per-encoding
  /// differential suites pin that). kAuto dictionary-encodes
  /// low-cardinality strings (cast_info.note, country codes, genres) and
  /// zone-maps large numeric columns; the forced modes exist for the
  /// differential tests.
  storage::EncodingPolicy encoding_policy = storage::EncodingPolicy::kAuto;
};

/// A generated database: storage plus statistics (ANALYZE already run).
struct ImdbDatabase {
  storage::Catalog catalog;
  stats::StatsCatalog stats;
  ImdbOptions options;

  /// Franchise class per title (0 = ordinary, 1 = popular, 2 =
  /// blockbuster). Exposed for tests that validate the generated
  /// correlations.
  std::vector<int> title_class;
};

/// Builds and analyzes the full database. Deterministic in `options.seed`.
std::unique_ptr<ImdbDatabase> BuildImdbDatabase(const ImdbOptions& options);

/// The hot keyword strings (queries filter on subsets of these; they are
/// frequent in movie_keyword, defeating the uniformity assumption exactly
/// like paper query 6d).
const std::vector<std::string>& HotKeywords();

/// Name tokens embedded in person names ("%Tim%"-style LIKE targets).
const std::vector<std::string>& StarNameTokens();

// ---- Nasdaq example (paper Tables IV/V) ---------------------------------

struct NasdaqOptions {
  int64_t num_companies = 4000;
  int64_t num_trades = 400000;
  /// Zipf skew of trades over companies (~1.0 reproduces "40 of 4000
  /// stocks carry half the volume").
  double zipf_theta = 1.05;
  uint64_t seed = 7;
  int statistics_target = 100;
};

struct NasdaqDatabase {
  storage::Catalog catalog;
  stats::StatsCatalog stats;
};

/// Builds `company(id, symbol, company)` and
/// `trades(id, company_id, shares)` with Zipf-skewed trade volume.
std::unique_ptr<NasdaqDatabase> BuildNasdaqDatabase(
    const NasdaqOptions& options);

}  // namespace reopt::imdb

#endif  // REOPT_IMDB_IMDB_H_
