#include "imdb/imdb.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/value.h"

namespace reopt::imdb {
namespace {

using common::Rng;
using common::StrPrintf;
using common::Value;
using common::ZipfSampler;
using storage::Catalog;
using storage::ColumnDef;
using storage::Schema;
using storage::Table;

constexpr common::DataType kInt = common::DataType::kInt64;
constexpr common::DataType kStr = common::DataType::kString;

int64_t Scaled(double scale, int64_t base) {
  int64_t n = static_cast<int64_t>(std::llround(scale * static_cast<double>(base)));
  return std::max<int64_t>(1, n);
}

Table* MakeTable(Catalog* catalog, const std::string& name,
                 std::vector<ColumnDef> cols) {
  auto result = catalog->CreateTable(name, Schema(std::move(cols)));
  REOPT_CHECK_MSG(result.ok(), "duplicate table in generator");
  return result.value();
}

// Indexes every INT64 column whose name is "id" or ends in "_id" (the
// paper's foreign-key indexes).
void IndexIdColumns(Table* table) {
  for (common::ColumnIdx c = 0; c < table->num_columns(); ++c) {
    const ColumnDef& def = table->schema().column(c);
    if (def.type != kInt) continue;
    if (def.name == "id" || common::EndsWith(def.name, "_id")) {
      REOPT_CHECK(table->CreateIndex(c).ok());
    }
  }
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "Maria",  "John",   "Anna",   "Peter",   "Laura",    "James",
      "Linda",  "Mark",   "Karen",  "Steven",  "Donna",    "Brian",
      "Sofia",  "Paul",   "Nina",   "George",  "Emma",     "Frank",
      "Alice",  "Henry",  "Clara",  "Oscar",   "Julia",    "Victor",
      "Diana",  "Walter", "Irene",  "Gordon",  "Helen",    "Arthur",
      "Bianca", "Cedric", "Dora",   "Edmund",  "Fiona",    "Gustav",
      "Hilda",  "Ivan",   "Judith", "Klaus"};
  return *kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "Smith",  "Jones",  "Miller", "Davis",  "Garcia", "Wilson",
      "Moore",  "Taylor", "White",  "Harris", "Martin", "Clark",
      "Lewis",  "Young",  "Walker", "Hall",   "Allen",  "King",
      "Wright", "Scott",  "Green",  "Baker",  "Adams",  "Nelson"};
  return *kNames;
}

const std::vector<std::string>& Genres() {
  static const std::vector<std::string>* kGenres =
      new std::vector<std::string>{"Action",  "Adventure", "Drama",
                                   "Comedy",  "Thriller",  "Romance",
                                   "Horror",  "Sci-Fi",    "Documentary",
                                   "Fantasy", "Crime",     "Animation"};
  return *kGenres;
}

}  // namespace

const std::vector<std::string>& HotKeywords() {
  static const std::vector<std::string>* kHot = new std::vector<std::string>{
      "superhero",        "sequel",
      "second-part",      "marvel-comics",
      "based-on-comic",   "tv-special",
      "fight",            "violence",
      "character-name-in-title", "blood",
      "murder",           "revenge",
      "based-on-novel",   "female-nudity",
      "independent-film", "love",
      "friendship",       "death",
      "police",           "new-york-city",
      "explosion",        "gore",
      "martial-arts",     "dystopia"};
  return *kHot;
}

const std::vector<std::string>& StarNameTokens() {
  static const std::vector<std::string>* kTokens =
      new std::vector<std::string>{"Tim", "Robert", "Downey",
                                   "Chris", "Scarlett", "Sam"};
  return *kTokens;
}

std::unique_ptr<ImdbDatabase> BuildImdbDatabase(const ImdbOptions& options) {
  auto db = std::make_unique<ImdbDatabase>();
  db->options = options;
  Catalog* cat = &db->catalog;
  Rng rng(options.seed);
  const double scale = options.scale;

  // ---- Tiny dimensions --------------------------------------------------
  auto fill_dim = [&](const std::string& table, const std::string& col,
                      const std::vector<std::string>& values) {
    Table* t = MakeTable(cat, table, {{"id", kInt}, {col, kStr}});
    for (size_t i = 0; i < values.size(); ++i) {
      t->AppendRow({Value::Int(static_cast<int64_t>(i) + 1),
                    Value::Str(values[i])});
    }
    IndexIdColumns(t);
    return t;
  };

  fill_dim("kind_type", "kind",
           {"movie", "tv series", "tv movie", "video movie",
            "tv mini series", "video game", "episode"});
  fill_dim("company_type", "kind",
           {"production companies", "distributors",
            "special effects companies", "miscellaneous companies"});
  fill_dim("comp_cast_type", "kind",
           {"cast", "crew", "complete", "complete+verified"});
  fill_dim("role_type", "role",
           {"actor", "actress", "producer", "writer", "director",
            "cinematographer", "composer", "costume designer", "editor",
            "miscellaneous crew", "production designer", "guest"});
  {
    std::vector<std::string> links = {"sequel",       "prequel",
                                      "remake of",    "remade as",
                                      "references",   "referenced in",
                                      "spoofs",       "spoofed in",
                                      "features",     "featured in",
                                      "spin off from", "spin off",
                                      "version of",   "similar to",
                                      "edited into",  "edited from",
                                      "alternate language version of",
                                      "unknown link"};
    fill_dim("link_type", "link", links);
  }
  {
    std::vector<std::string> infos = {
        "budget",       "votes",     "rating",        "genres",
        "countries",    "languages", "release dates", "runtimes",
        "color info",   "taglines",  "sound mix",     "certificates",
        "gross",        "opening weekend", "production dates",
        "filming dates", "top 250 rank", "bottom 10 rank"};
    while (infos.size() < 113) {
      infos.push_back(StrPrintf("info_%03d", static_cast<int>(infos.size())));
    }
    fill_dim("info_type", "info", infos);
  }

  // ---- keyword ------------------------------------------------------------
  const int64_t num_keywords = Scaled(scale, 15000);
  const int num_hot = std::min<int>(options.num_hot_keywords,
                                    static_cast<int>(HotKeywords().size()));
  {
    Table* t = MakeTable(cat, "keyword", {{"id", kInt}, {"keyword", kStr}});
    // Bulk load: buffer whole columns, then one append per column (values
    // are produced in exactly the same order as the old per-row loop, so
    // the generated data — and every downstream golden — is unchanged).
    std::vector<int64_t> ids;
    std::vector<std::string> kws;
    ids.reserve(static_cast<size_t>(num_keywords));
    kws.reserve(static_cast<size_t>(num_keywords));
    for (int64_t i = 1; i <= num_keywords; ++i) {
      ids.push_back(i);
      kws.push_back(i <= num_hot
                        ? HotKeywords()[static_cast<size_t>(i - 1)]
                        : StrPrintf("kw_%06d", static_cast<int>(i)));
    }
    t->mutable_column(0).AppendInts(ids.data(), num_keywords);
    t->mutable_column(1).AppendStrings(std::move(kws));
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  // ---- company_name ---------------------------------------------------
  const int64_t num_companies = Scaled(scale, 8000);
  {
    Table* t = MakeTable(
        cat, "company_name",
        {{"id", kInt}, {"name", kStr}, {"country_code", kStr}});
    t->Reserve(num_companies);
    const std::vector<std::pair<const char*, double>> codes = {
        {"[us]", 0.35}, {"[gb]", 0.12}, {"[de]", 0.08}, {"[fr]", 0.07},
        {"[jp]", 0.05}, {"[it]", 0.04}, {"[ca]", 0.04}, {"[in]", 0.04}};
    std::vector<int64_t> ids;
    std::vector<std::string> names;
    std::vector<std::string> ccodes;
    ids.reserve(static_cast<size_t>(num_companies));
    names.reserve(static_cast<size_t>(num_companies));
    ccodes.reserve(static_cast<size_t>(num_companies));
    for (int64_t i = 1; i <= num_companies; ++i) {
      double u = rng.UniformDouble();
      std::string code;
      for (const auto& [c, p] : codes) {
        if (u < p) {
          code = c;
          break;
        }
        u -= p;
      }
      if (code.empty()) {
        code = StrPrintf("[x%02d]", static_cast<int>(rng.UniformInt(0, 29)));
      }
      ids.push_back(i);
      names.push_back(StrPrintf("Company %05d Pictures", static_cast<int>(i)));
      ccodes.push_back(std::move(code));
    }
    t->mutable_column(0).AppendInts(ids.data(), num_companies);
    t->mutable_column(1).AppendStrings(std::move(names));
    t->mutable_column(2).AppendStrings(std::move(ccodes));
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  // ---- char_name --------------------------------------------------------
  const int64_t num_chars = Scaled(scale, 30000);
  {
    Table* t = MakeTable(cat, "char_name", {{"id", kInt}, {"name", kStr}});
    std::vector<int64_t> ids;
    std::vector<std::string> names;
    ids.reserve(static_cast<size_t>(num_chars));
    names.reserve(static_cast<size_t>(num_chars));
    for (int64_t i = 1; i <= num_chars; ++i) {
      ids.push_back(i);
      names.push_back(StrPrintf("Character %05d", static_cast<int>(i)));
    }
    t->mutable_column(0).AppendInts(ids.data(), num_chars);
    t->mutable_column(1).AppendStrings(std::move(names));
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  // ---- name (persons) -----------------------------------------------------
  const int64_t num_persons = Scaled(scale, 50000);
  // Stars scale with the database so the star fraction (and thus the
  // LIKE-token / cast-skew interplay) is consistent across scales.
  const int64_t num_stars = std::min<int64_t>(
      std::max<int64_t>(30, Scaled(scale, options.num_stars)), num_persons);
  // First-name popularity is Zipfian, so LIKE '%Tim%' style predicates have
  // a truth far from the estimator's fixed default.
  ZipfSampler first_name_zipf(
      static_cast<int64_t>(FirstNames().size()), 0.9);
  {
    Table* t = MakeTable(
        cat, "name", {{"id", kInt}, {"name", kStr}, {"gender", kStr}});
    t->Reserve(num_persons);
    // id/name bulk-buffered; gender stays per-row (nullable column, the
    // bulk path is all-valid by contract).
    std::vector<int64_t> ids;
    std::vector<std::string> names;
    ids.reserve(static_cast<size_t>(num_persons));
    names.reserve(static_cast<size_t>(num_persons));
    storage::Column& gender_col = t->mutable_column(2);
    for (int64_t i = 1; i <= num_persons; ++i) {
      bool star = i <= num_stars;
      std::string first;
      if (star) {
        first = StarNameTokens()[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(StarNameTokens().size()) -
                                  1))];
      } else {
        first = FirstNames()[static_cast<size_t>(
            first_name_zipf.Sample(&rng) - 1)];
      }
      const std::string& last = LastNames()[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(LastNames().size()) - 1))];
      ids.push_back(i);
      names.push_back(StrPrintf("%s, %s %05d", last.c_str(), first.c_str(),
                                static_cast<int>(i)));
      double g = rng.UniformDouble();
      double male_p = star ? 0.75 : 0.5;
      if (g < 0.02) {
        gender_col.AppendNull();
      } else if (g < 0.02 + male_p) {
        gender_col.AppendString("m");
      } else {
        gender_col.AppendString("f");
      }
    }
    t->mutable_column(0).AppendInts(ids.data(), num_persons);
    t->mutable_column(1).AppendStrings(std::move(names));
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  // ---- title -------------------------------------------------------------
  const int64_t num_titles = Scaled(scale, 40000);
  db->title_class.assign(static_cast<size_t>(num_titles) + 1, 0);
  {
    Table* t = MakeTable(cat, "title",
                         {{"id", kInt},
                          {"title", kStr},
                          {"kind_id", kInt},
                          {"production_year", kInt}});
    t->Reserve(num_titles);
    ZipfSampler kind_zipf(7, 1.2);
    // Bulk-buffered; every Rng call stays at the exact point of the old
    // per-row loop (the braced AppendRow list evaluated left-to-right, so
    // kind_zipf sampled after the year/title draws).
    std::vector<int64_t> ids;
    std::vector<std::string> titles;
    std::vector<int64_t> kinds;
    std::vector<int64_t> years;
    ids.reserve(static_cast<size_t>(num_titles));
    titles.reserve(static_cast<size_t>(num_titles));
    kinds.reserve(static_cast<size_t>(num_titles));
    years.reserve(static_cast<size_t>(num_titles));
    for (int64_t i = 1; i <= num_titles; ++i) {
      double u = rng.UniformDouble();
      int klass = u < 0.05 ? 2 : (u < 0.15 ? 1 : 0);
      db->title_class[static_cast<size_t>(i)] = klass;
      int64_t year;
      std::string title;
      if (klass == 2) {
        // Blockbusters cluster after 2000 — the join-crossing correlation
        // behind the paper's query 6d (keyword x production_year).
        year = 2000 + rng.UniformInt(0, 19);
        title = StrPrintf("Saga %04d Part %d",
                          static_cast<int>(i % 997),
                          static_cast<int>(rng.UniformInt(1, 4)));
      } else if (klass == 1) {
        year = 1985 + rng.UniformInt(0, 34);
        title = StrPrintf("The Picture %05d", static_cast<int>(i));
      } else {
        // Older long tail.
        int64_t a = rng.UniformInt(0, 89);
        int64_t b = rng.UniformInt(0, 89);
        year = 1930 + std::max(a, b);
        title = StrPrintf("Movie %06d", static_cast<int>(i));
      }
      ids.push_back(i);
      titles.push_back(std::move(title));
      kinds.push_back(kind_zipf.Sample(&rng));
      years.push_back(year);
    }
    t->mutable_column(0).AppendInts(ids.data(), num_titles);
    t->mutable_column(1).AppendStrings(std::move(titles));
    t->mutable_column(2).AppendInts(kinds.data(), num_titles);
    t->mutable_column(3).AppendInts(years.data(), num_titles);
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  auto class_of = [&](int64_t title_id) {
    return db->title_class[static_cast<size_t>(title_id)];
  };

  // ---- cast_info -----------------------------------------------------------
  {
    Table* t = MakeTable(cat, "cast_info",
                         {{"id", kInt},
                          {"person_id", kInt},
                          {"movie_id", kInt},
                          {"person_role_id", kInt},
                          {"role_id", kInt},
                          {"note", kStr}});
    ZipfSampler star_zipf(num_stars, 1.0);
    ZipfSampler role_zipf(12, 1.1);
    // Bulk-buffered except person_role_id, which is nullable and stays on
    // the per-row append path. Rng call order matches the old loop exactly
    // (role_zipf sampled fifth, per the braced list's evaluation order).
    std::vector<int64_t> ids;
    std::vector<int64_t> persons;
    std::vector<int64_t> movies;
    std::vector<int64_t> roles;
    std::vector<std::string> notes;
    storage::Column& role_char_col = t->mutable_column(3);
    int64_t next_id = 1;
    for (int64_t m = 1; m <= num_titles; ++m) {
      int klass = class_of(m);
      int64_t count = 1 + rng.UniformInt(0, 7);
      if (klass == 1) count *= 2;
      if (klass == 2) count *= 6;
      count = std::min<int64_t>(count, 80);
      double star_p = klass == 2 ? 0.5 : (klass == 1 ? 0.3 : 0.12);
      double producer_p = klass == 2 ? 0.15 : (klass == 1 ? 0.05 : 0.02);
      for (int64_t c = 0; c < count; ++c) {
        int64_t person = rng.Bernoulli(star_p)
                             ? star_zipf.Sample(&rng)
                             : rng.UniformInt(1, num_persons);
        if (rng.Bernoulli(0.4)) {
          role_char_col.AppendInt(rng.UniformInt(1, num_chars));
        } else {
          role_char_col.AppendNull();
        }
        std::string note;
        double u = rng.UniformDouble();
        if (u < producer_p) {
          note = "(producer)";
        } else if (u < producer_p * 1.5) {
          note = "(executive producer)";
        } else if (u < producer_p * 1.5 + 0.05) {
          note = "(uncredited)";
        } else if (u < producer_p * 1.5 + 0.08) {
          note = "(voice)";
        }
        ids.push_back(next_id++);
        persons.push_back(person);
        movies.push_back(m);
        roles.push_back(role_zipf.Sample(&rng));
        notes.push_back(std::move(note));
      }
    }
    const int64_t n = static_cast<int64_t>(ids.size());
    t->mutable_column(0).AppendInts(ids.data(), n);
    t->mutable_column(1).AppendInts(persons.data(), n);
    t->mutable_column(2).AppendInts(movies.data(), n);
    t->mutable_column(4).AppendInts(roles.data(), n);
    t->mutable_column(5).AppendStrings(std::move(notes));
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  // ---- movie_keyword -------------------------------------------------------
  {
    Table* t = MakeTable(
        cat, "movie_keyword",
        {{"id", kInt}, {"movie_id", kInt}, {"keyword_id", kInt}});
    ZipfSampler hot_zipf(num_hot, 0.9);
    std::vector<int64_t> ids;
    std::vector<int64_t> movies;
    std::vector<int64_t> kws;
    int64_t next_id = 1;
    for (int64_t m = 1; m <= num_titles; ++m) {
      int klass = class_of(m);
      int64_t count = 1 + rng.UniformInt(0, 4);
      if (klass == 1) count += 5;
      if (klass == 2) count += 15;
      double hot_p = klass == 2 ? 0.38 : (klass == 1 ? 0.13 : 0.02);
      for (int64_t c = 0; c < count; ++c) {
        int64_t kw = rng.Bernoulli(hot_p)
                         ? hot_zipf.Sample(&rng)
                         : rng.UniformInt(num_hot + 1, num_keywords);
        ids.push_back(next_id++);
        movies.push_back(m);
        kws.push_back(kw);
      }
    }
    const int64_t n = static_cast<int64_t>(ids.size());
    t->mutable_column(0).AppendInts(ids.data(), n);
    t->mutable_column(1).AppendInts(movies.data(), n);
    t->mutable_column(2).AppendInts(kws.data(), n);
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  // ---- movie_companies ------------------------------------------------------
  {
    Table* t = MakeTable(cat, "movie_companies",
                         {{"id", kInt},
                          {"movie_id", kInt},
                          {"company_id", kInt},
                          {"company_type_id", kInt},
                          {"note", kStr}});
    ZipfSampler company_zipf(num_companies, 0.9);
    // Bulk-buffered; company_zipf sampled third, after the ctype/note
    // draws, exactly as the old braced list evaluated.
    std::vector<int64_t> ids;
    std::vector<int64_t> movies;
    std::vector<int64_t> companies;
    std::vector<int64_t> ctypes;
    std::vector<std::string> notes;
    int64_t next_id = 1;
    for (int64_t m = 1; m <= num_titles; ++m) {
      int64_t count = 1 + rng.UniformInt(0, 3);
      for (int64_t c = 0; c < count; ++c) {
        int64_t ctype = rng.Bernoulli(0.55) ? 1 : (rng.Bernoulli(0.6) ? 2 : rng.UniformInt(3, 4));
        std::string note =
            rng.Bernoulli(0.25)
                ? StrPrintf("(co-production) (%d)",
                            static_cast<int>(rng.UniformInt(1980, 2019)))
                : "";
        ids.push_back(next_id++);
        movies.push_back(m);
        companies.push_back(company_zipf.Sample(&rng));
        ctypes.push_back(ctype);
        notes.push_back(std::move(note));
      }
    }
    const int64_t n = static_cast<int64_t>(ids.size());
    t->mutable_column(0).AppendInts(ids.data(), n);
    t->mutable_column(1).AppendInts(movies.data(), n);
    t->mutable_column(2).AppendInts(companies.data(), n);
    t->mutable_column(3).AppendInts(ctypes.data(), n);
    t->mutable_column(4).AppendStrings(std::move(notes));
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  // ---- movie_info ------------------------------------------------------------
  // info_type ids: genres=4, countries=5, languages=6 (see dimension fill).
  {
    Table* t = MakeTable(cat, "movie_info",
                         {{"id", kInt},
                          {"movie_id", kInt},
                          {"info_type_id", kInt},
                          {"info", kStr}});
    // Bulk-buffered; every Rng call sits at the same point as the old
    // interleaved AppendRow loop (braced lists evaluated left-to-right).
    std::vector<int64_t> ids;
    std::vector<int64_t> movies;
    std::vector<int64_t> itypes;
    std::vector<std::string> infos;
    auto push = [&](int64_t id, int64_t movie, int64_t itype,
                    std::string info) {
      ids.push_back(id);
      movies.push_back(movie);
      itypes.push_back(itype);
      infos.push_back(std::move(info));
    };
    int64_t next_id = 1;
    for (int64_t m = 1; m <= num_titles; ++m) {
      int klass = class_of(m);
      // genres: correlated with class.
      std::string genre;
      if (klass == 2) {
        genre = rng.Bernoulli(0.7) ? "Action" : "Adventure";
      } else {
        genre = Genres()[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(Genres().size()) - 1))];
      }
      push(next_id++, m, 4, genre);
      std::string country = rng.Bernoulli(klass == 2 ? 0.8 : 0.4)
                                ? "USA"
                                : StrPrintf("Country%02d",
                                            static_cast<int>(rng.UniformInt(1, 40)));
      push(next_id++, m, 5, country);
      push(next_id++, m, 6,
           rng.Bernoulli(0.6) ? "English"
                              : StrPrintf("Lang%02d",
                                          static_cast<int>(rng.UniformInt(1, 30))));
      int64_t extra = rng.UniformInt(0, 3);
      for (int64_t e = 0; e < extra; ++e) {
        int64_t id = next_id++;
        int64_t itype = rng.UniformInt(7, 113);
        push(id, m, itype,
             StrPrintf("v%04d", static_cast<int>(rng.UniformInt(0, 9999))));
      }
    }
    const int64_t n = static_cast<int64_t>(ids.size());
    t->mutable_column(0).AppendInts(ids.data(), n);
    t->mutable_column(1).AppendInts(movies.data(), n);
    t->mutable_column(2).AppendInts(itypes.data(), n);
    t->mutable_column(3).AppendStrings(std::move(infos));
    t->SyncRowCountFromColumns();
    IndexIdColumns(t);
  }

  // ---- movie_info_idx ---------------------------------------------------------
  // info_type ids: budget=1, votes=2, rating=3. Presence and magnitude are
  // class-correlated — the independence-assumption trap behind paper query
  // 18a (it2.info = 'votes' x mi_idx join).
  {
    Table* t = MakeTable(cat, "movie_info_idx",
                         {{"id", kInt},
                          {"movie_id", kInt},
                          {"info_type_id", kInt},
                          {"info", kStr}});
    int64_t next_id = 1;
    for (int64_t m = 1; m <= num_titles; ++m) {
      int klass = class_of(m);
      if (rng.Bernoulli(0.9)) {  // rating
        double lo = klass == 2 ? 6.5 : 1.0;
        double hi = klass == 2 ? 9.5 : 9.0;
        double rating = lo + rng.UniformDouble() * (hi - lo);
        t->AppendRow({Value::Int(next_id++), Value::Int(m), Value::Int(3),
                      Value::Str(StrPrintf("%.1f", rating))});
      }
      double votes_p = klass == 2 ? 1.0 : (klass == 1 ? 0.9 : 0.55);
      if (rng.Bernoulli(votes_p)) {
        int64_t votes = klass == 2 ? rng.UniformInt(100000, 2000000)
                                   : rng.UniformInt(5, 20000);
        t->AppendRow({Value::Int(next_id++), Value::Int(m), Value::Int(2),
                      Value::Str(StrPrintf("%08d", static_cast<int>(votes)))});
      }
      double budget_p = klass == 2 ? 0.9 : (klass == 1 ? 0.4 : 0.08);
      if (rng.Bernoulli(budget_p)) {
        int64_t budget = klass == 2 ? rng.UniformInt(50, 400) * 1000000LL
                                    : rng.UniformInt(1, 80) * 100000LL;
        t->AppendRow({Value::Int(next_id++), Value::Int(m), Value::Int(1),
                      Value::Str(StrPrintf("%010lld",
                                           static_cast<long long>(budget)))});
      }
    }
    IndexIdColumns(t);
  }

  // ---- person_info -------------------------------------------------------------
  {
    Table* t = MakeTable(cat, "person_info",
                         {{"id", kInt},
                          {"person_id", kInt},
                          {"info_type_id", kInt},
                          {"info", kStr}});
    int64_t next_id = 1;
    for (int64_t p = 1; p <= num_persons; ++p) {
      int64_t count = rng.UniformInt(0, 2) + (p <= num_stars ? 2 : 0);
      for (int64_t c = 0; c < count; ++c) {
        t->AppendRow({Value::Int(next_id++), Value::Int(p),
                      Value::Int(rng.UniformInt(7, 113)),
                      Value::Str(StrPrintf("bio %05d",
                                           static_cast<int>(rng.UniformInt(0, 99999))))});
      }
    }
    IndexIdColumns(t);
  }

  // ---- aka_name ---------------------------------------------------------------
  {
    Table* t = MakeTable(cat, "aka_name",
                         {{"id", kInt}, {"person_id", kInt}, {"name", kStr}});
    int64_t next_id = 1;
    for (int64_t p = 1; p <= num_persons; ++p) {
      double prob = p <= num_stars ? 0.6 : 0.15;
      if (rng.Bernoulli(prob)) {
        t->AppendRow({Value::Int(next_id++), Value::Int(p),
                      Value::Str(StrPrintf("a.k.a. Person %05d",
                                           static_cast<int>(p)))});
      }
    }
    IndexIdColumns(t);
  }

  // ---- aka_title ---------------------------------------------------------------
  {
    Table* t = MakeTable(cat, "aka_title",
                         {{"id", kInt}, {"movie_id", kInt}, {"title", kStr}});
    int64_t next_id = 1;
    for (int64_t m = 1; m <= num_titles; ++m) {
      int klass = class_of(m);
      double prob = klass == 2 ? 0.5 : (klass == 1 ? 0.25 : 0.1);
      if (rng.Bernoulli(prob)) {
        t->AppendRow({Value::Int(next_id++), Value::Int(m),
                      Value::Str(StrPrintf("Alt Title %06d",
                                           static_cast<int>(m)))});
      }
    }
    IndexIdColumns(t);
  }

  // ---- movie_link --------------------------------------------------------------
  {
    Table* t = MakeTable(cat, "movie_link",
                         {{"id", kInt},
                          {"movie_id", kInt},
                          {"linked_movie_id", kInt},
                          {"link_type_id", kInt}});
    int64_t next_id = 1;
    for (int64_t m = 1; m <= num_titles; ++m) {
      int klass = class_of(m);
      double prob = klass == 2 ? 0.7 : 0.08;
      if (rng.Bernoulli(prob)) {
        // Sequels link forward; link types skew to sequel/prequel.
        int64_t other = rng.UniformInt(1, num_titles);
        int64_t lt = rng.Bernoulli(0.5) ? 1 : rng.UniformInt(2, 18);
        t->AppendRow({Value::Int(next_id++), Value::Int(m),
                      Value::Int(other), Value::Int(lt)});
      }
    }
    IndexIdColumns(t);
  }

  // ---- complete_cast ---------------------------------------------------------
  {
    Table* t = MakeTable(cat, "complete_cast",
                         {{"id", kInt},
                          {"movie_id", kInt},
                          {"subject_id", kInt},
                          {"status_id", kInt}});
    int64_t next_id = 1;
    for (int64_t m = 1; m <= num_titles; ++m) {
      if (rng.Bernoulli(0.3)) {
        t->AppendRow({Value::Int(next_id++), Value::Int(m),
                      Value::Int(rng.UniformInt(1, 2)),
                      Value::Int(rng.UniformInt(3, 4))});
      }
    }
    IndexIdColumns(t);
  }

  // ---- Physical encodings ----------------------------------------------------
  // Load/serve boundary: pick per-column encodings now that every table is
  // fully loaded. Statistics are bit-identical across encodings (pinned by
  // the per-encoding differential suites), so this may run before ANALYZE.
  for (const std::string& name : cat->TableNames()) {
    cat->FindTable(name)->ApplyEncoding(options.encoding_policy);
  }

  // ---- ANALYZE everything ----------------------------------------------------
  stats::AnalyzeOptions aopts;
  aopts.statistics_target = options.statistics_target;
  db->stats.AnalyzeAll(db->catalog, aopts);
  return db;
}

std::unique_ptr<NasdaqDatabase> BuildNasdaqDatabase(
    const NasdaqOptions& options) {
  auto db = std::make_unique<NasdaqDatabase>();
  Rng rng(options.seed);

  Table* company = MakeTable(&db->catalog, "company",
                             {{"id", kInt}, {"symbol", kStr},
                              {"company", kStr}});
  company->Reserve(options.num_companies);
  for (int64_t i = 1; i <= options.num_companies; ++i) {
    // Symbols: base-26 rendering, so the hot ones read like tickers.
    std::string symbol;
    int64_t v = i - 1;
    for (int k = 0; k < 4; ++k) {
      symbol.push_back(static_cast<char>('A' + v % 26));
      v /= 26;
    }
    std::reverse(symbol.begin(), symbol.end());
    company->AppendRow({Value::Int(i), Value::Str(symbol),
                        Value::Str(StrPrintf("Company %lld Inc.",
                                             static_cast<long long>(i)))});
  }
  IndexIdColumns(company);

  Table* trades = MakeTable(
      &db->catalog, "trades",
      {{"id", kInt}, {"company_id", kInt}, {"shares", kInt}});
  trades->Reserve(options.num_trades);
  ZipfSampler zipf(options.num_companies, options.zipf_theta);
  for (int64_t i = 1; i <= options.num_trades; ++i) {
    trades->AppendRow({Value::Int(i), Value::Int(zipf.Sample(&rng)),
                       Value::Int(rng.UniformInt(1, 10000))});
  }
  IndexIdColumns(trades);

  stats::AnalyzeOptions aopts;
  aopts.statistics_target = options.statistics_target;
  db->stats.AnalyzeAll(db->catalog, aopts);
  return db;
}

}  // namespace reopt::imdb
