// The Fig. 6 query transformation: replace a materialized sub-join's
// relations with the temp table in the remainder of the query.
#ifndef REOPT_REOPT_REWRITE_H_
#define REOPT_REOPT_REWRITE_H_

#include <memory>
#include <string>
#include <vector>

#include "optimizer/planner.h"
#include "plan/query_spec.h"
#include "plan/rel_set.h"

namespace reopt::reoptimizer {

/// How RewriteWithTemp renumbered the relations: survivors keep their
/// relative order (compacted), the temp relation is appended last.
struct RewriteInfo {
  /// Old relation -> new relation; -1 for materialized relations.
  std::vector<int> rel_remap;
  /// Index of the temp relation in the rewritten spec.
  int temp_rel = -1;
};

/// Columns of `subset`'s relations that the remainder of the query still
/// needs: endpoints of join edges crossing out of `subset`, plus output
/// columns. Deduplicated, in deterministic order.
std::vector<plan::ColumnRef> ColumnsToMaterialize(
    const plan::QuerySpec& spec, plan::RelSet subset);

/// Rewrites `spec`, replacing the relations of `subset` by one temp
/// relation named `temp_table` whose columns are `temp_columns` (in order).
/// Filters on `subset` relations are dropped (already applied); join edges
/// inside `subset` are dropped; crossing edges and outputs are remapped to
/// the temp relation, which is appended as the last relation.
std::unique_ptr<plan::QuerySpec> RewriteWithTemp(
    const plan::QuerySpec& spec, plan::RelSet subset,
    const std::string& temp_table,
    const std::vector<plan::ColumnRef>& temp_columns, int round,
    RewriteInfo* info = nullptr);

/// Builds the planner's memo translation for a rewrite: the relation remap
/// plus pointer maps from every surviving filter/edge of `old_spec` to its
/// copy in `new_spec`. `new_spec` must be (or start with) the output of
/// RewriteWithTemp(old_spec, subset, ...); the result comes back with
/// valid=false when the correspondence does not hold, which makes
/// Planner::PlanIncremental fall back to from-scratch DP.
optimizer::MemoTranslation MemoTranslationFor(const plan::QuerySpec& old_spec,
                                              const plan::QuerySpec& new_spec,
                                              plan::RelSet subset,
                                              const RewriteInfo& info);

}  // namespace reopt::reoptimizer

#endif  // REOPT_REOPT_REWRITE_H_
