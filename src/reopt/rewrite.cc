#include "reopt/rewrite.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace reopt::reoptimizer {

std::vector<plan::ColumnRef> ColumnsToMaterialize(
    const plan::QuerySpec& spec, plan::RelSet subset) {
  std::vector<plan::ColumnRef> out;
  auto add = [&out](const plan::ColumnRef& ref) {
    for (const plan::ColumnRef& existing : out) {
      if (existing == ref) return;
    }
    out.push_back(ref);
  };
  for (const plan::JoinEdge& e : spec.joins) {
    bool left_in = subset.Contains(e.left.rel);
    bool right_in = subset.Contains(e.right.rel);
    if (left_in && !right_in) add(e.left);
    if (right_in && !left_in) add(e.right);
  }
  for (const plan::OutputExpr& o : spec.outputs) {
    if (subset.Contains(o.column.rel)) add(o.column);
  }
  return out;
}

std::unique_ptr<plan::QuerySpec> RewriteWithTemp(
    const plan::QuerySpec& spec, plan::RelSet subset,
    const std::string& temp_table,
    const std::vector<plan::ColumnRef>& temp_columns, int round,
    RewriteInfo* info) {
  auto out = std::make_unique<plan::QuerySpec>();
  out->name = common::StrPrintf("%s+r%d", spec.name.c_str(), round);

  // Relation remap: survivors keep order, temp relation appended last.
  std::vector<int> remap(static_cast<size_t>(spec.num_relations()), -1);
  for (int r = 0; r < spec.num_relations(); ++r) {
    if (!subset.Contains(r)) {
      remap[static_cast<size_t>(r)] = static_cast<int>(out->relations.size());
      out->relations.push_back(spec.relations[static_cast<size_t>(r)]);
    }
  }
  int temp_rel = static_cast<int>(out->relations.size());
  out->relations.push_back(plan::RelationRef{
      temp_table, common::StrPrintf("tmp%d", round)});
  if (info != nullptr) {
    info->rel_remap = remap;
    info->temp_rel = temp_rel;
  }

  auto map_ref = [&](const plan::ColumnRef& ref) -> plan::ColumnRef {
    if (!subset.Contains(ref.rel)) {
      return plan::ColumnRef{remap[static_cast<size_t>(ref.rel)], ref.col,
                             ref.name};
    }
    for (size_t i = 0; i < temp_columns.size(); ++i) {
      if (temp_columns[i] == ref) {
        std::string name =
            ref.name.empty()
                ? ""
                : spec.relations[static_cast<size_t>(ref.rel)].alias + "_" +
                      ref.name;
        return plan::ColumnRef{temp_rel, static_cast<common::ColumnIdx>(i),
                               std::move(name)};
      }
    }
    REOPT_UNREACHABLE("materialized column missing from temp schema");
  };

  for (const plan::ScanPredicate& p : spec.filters) {
    if (subset.Contains(p.column.rel)) continue;  // already applied
    plan::ScanPredicate np = p;
    np.column = map_ref(p.column);
    out->filters.push_back(std::move(np));
  }
  for (const plan::JoinEdge& e : spec.joins) {
    if (subset.ContainsAll(e.Relations())) continue;  // already applied
    plan::JoinEdge ne;
    ne.left = map_ref(e.left);
    ne.right = map_ref(e.right);
    out->joins.push_back(ne);
  }
  for (const plan::OutputExpr& o : spec.outputs) {
    plan::OutputExpr no = o;
    no.column = map_ref(o.column);
    out->outputs.push_back(std::move(no));
  }
  return out;
}

optimizer::MemoTranslation MemoTranslationFor(const plan::QuerySpec& old_spec,
                                              const plan::QuerySpec& new_spec,
                                              plan::RelSet subset,
                                              const RewriteInfo& info) {
  optimizer::MemoTranslation t;
  t.old_materialized = subset;
  t.temp_rel = info.temp_rel;
  t.rel_remap = info.rel_remap;
  // Mirror RewriteWithTemp's skip rules: kept filters/edges appear in the
  // new spec in the same relative order, so old and new walk in tandem.
  // The correspondence must be exact — an extra filter or edge in the new
  // spec changes surviving-subset cardinalities *without* changing
  // connectivity, which the planner's shape check cannot see — so any
  // leftover new entry invalidates the translation (and PlanIncremental
  // then re-plans from scratch).
  size_t nf = 0;
  for (const plan::ScanPredicate& p : old_spec.filters) {
    if (subset.Contains(p.column.rel)) continue;  // dropped by the rewrite
    if (nf >= new_spec.filters.size()) return t;  // valid stays false
    t.preds[&p] = &new_spec.filters[nf++];
  }
  size_t nj = 0;
  for (const plan::JoinEdge& e : old_spec.joins) {
    if (subset.ContainsAll(e.Relations())) continue;  // dropped
    if (nj >= new_spec.joins.size()) return t;
    t.edges[&e] = &new_spec.joins[nj++];
  }
  if (nf != new_spec.filters.size() || nj != new_spec.joins.size()) {
    return t;  // trailing entries the rewrite cannot have produced
  }
  t.valid = true;
  return t;
}

}  // namespace reopt::reoptimizer
