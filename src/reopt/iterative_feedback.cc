#include "reopt/iterative_feedback.h"

#include <algorithm>

#include "common/sim_time.h"
#include "exec/executor.h"
#include "optimizer/planner.h"

namespace reopt::reoptimizer {

common::Result<IterativeFeedbackResult> RunIterativeFeedback(
    QuerySession* session, storage::Catalog* catalog,
    stats::StatsCatalog* stats_catalog, const optimizer::CostParams& params,
    const IterativeFeedbackOptions& options) {
  IterativeFeedbackResult result;
  exec::Executor executor(catalog, stats_catalog, params);
  optimizer::QueryContext* ctx = session->ctx();
  optimizer::TrueCardinalityOracle* oracle = session->oracle();

  // Reference: execution time with a full oracle.
  {
    optimizer::PerfectNModel perfect(ctx, oracle,
                                     session->spec().num_relations());
    optimizer::Planner planner(ctx, &perfect, params);
    auto planned = planner.Plan();
    if (!planned.ok()) return planned.status();
    auto executed = executor.Execute(session->spec(), planned->root.get());
    if (!executed.ok()) return executed.status();
    result.perfect_exec_seconds =
        common::CostUnitsToSeconds(executed->cost_units);
  }

  // The injected corrections persist across iterations (LEO remembers what
  // it learned from earlier executions of the same query).
  optimizer::InjectedModel model(ctx);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    optimizer::Planner planner(ctx, &model, params);
    auto planned = planner.Plan();
    if (!planned.ok()) return planned.status();
    auto executed = executor.Execute(session->spec(), planned->root.get());
    if (!executed.ok()) return executed.status();

    IterationRecord record;
    record.exec_seconds = common::CostUnitsToSeconds(executed->cost_units);
    record.plan_seconds =
        common::CostUnitsToSeconds(planned->planning_cost_units);

    // Lowest operator (scan or join) whose estimate is off by more than
    // the relative threshold and not already corrected.
    plan::PlanNode* offender = nullptr;
    double offender_q = 0.0;
    planned->root->PostOrder([&](plan::PlanNode* node) {
      if (!node->is_join() && !node->is_scan()) return;
      if (model.HasInjection(node->rels)) return;
      double est = std::max(1.0, node->est_rows);
      double truth = std::max(1.0, oracle->True(node->rels));
      double q = std::max(truth / est, est / truth);
      if (q <= options.relative_threshold) return;
      if (offender == nullptr ||
          node->rels.count() < offender->rels.count() ||
          (node->rels.count() == offender->rels.count() &&
           node->rels.bits() < offender->rels.bits())) {
        offender = node;
        offender_q = q;
      }
    });

    if (offender == nullptr) {
      record.injected_after = model.num_injected();
      result.iterations.push_back(record);
      result.converged = true;
      break;
    }

    // Correct the offending subtree and everything below it.
    offender->PostOrder([&](plan::PlanNode* node) {
      if (!node->is_join() && !node->is_scan()) return;
      model.Inject(node->rels, oracle->True(node->rels));
    });
    record.corrected_qerror = offender_q;
    record.injected_after = model.num_injected();
    result.iterations.push_back(record);
  }
  return result;
}

}  // namespace reopt::reoptimizer
