// LEO-style selective improvement of cardinality estimates (paper
// Sec. IV-E, Fig. 5): repeatedly execute the query, find the lowest
// operator in the plan whose estimate is off by more than a relative
// threshold, fix that subtree's estimates to their true values, and
// re-optimize. Demonstrates that *partial* corrections can select plans
// several times slower than the original — the motivation for full
// re-optimization instead.
#ifndef REOPT_REOPT_ITERATIVE_FEEDBACK_H_
#define REOPT_REOPT_ITERATIVE_FEEDBACK_H_

#include <vector>

#include "common/status.h"
#include "optimizer/cost_params.h"
#include "reopt/query_runner.h"

namespace reopt::reoptimizer {

struct IterationRecord {
  /// Simulated execution seconds of this iteration's full query.
  double exec_seconds = 0.0;
  double plan_seconds = 0.0;
  /// Total injected (corrected) subsets after this iteration.
  int64_t injected_after = 0;
  /// Q-error of the subtree corrected after this execution (0 if none).
  double corrected_qerror = 0.0;
};

struct IterativeFeedbackResult {
  std::vector<IterationRecord> iterations;
  /// True if no operator exceeded the threshold at the end.
  bool converged = false;
  /// Simulated execution seconds with perfect estimates (the dotted
  /// reference line in Fig. 5).
  double perfect_exec_seconds = 0.0;
};

struct IterativeFeedbackOptions {
  double relative_threshold = 32.0;  // the paper's setting
  int max_iterations = 64;
};

/// Runs the iterative-correction experiment on one query.
common::Result<IterativeFeedbackResult> RunIterativeFeedback(
    QuerySession* session, storage::Catalog* catalog,
    stats::StatsCatalog* stats_catalog, const optimizer::CostParams& params,
    const IterativeFeedbackOptions& options = {});

}  // namespace reopt::reoptimizer

#endif  // REOPT_REOPT_ITERATIVE_FEEDBACK_H_
