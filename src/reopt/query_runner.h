// The re-optimizing query runner — the paper's core contribution (Sec. V).
//
// Without re-optimization: plan once, execute.
// With re-optimization: plan; find the *lowest* join operator whose true
// cardinality differs from the estimate by more than the Q-error threshold
// (default 32, the paper's best setting, Fig. 7); materialize that subtree
// into a temp table (charging full materialization, the paper's stated
// upper bound on re-optimization cost); ANALYZE the temp table; rewrite the
// remaining query to reference it (the Fig. 6 transformation); re-plan;
// repeat until no join operator exceeds the threshold; execute the final
// plan. Planning time accumulates across rounds; execution time is the sum
// of the materialization subplans plus the final plan.
#ifndef REOPT_REOPT_QUERY_RUNNER_H_
#define REOPT_REOPT_QUERY_RUNNER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/cost_params.h"
#include "optimizer/planner.h"
#include "optimizer/query_context.h"
#include "optimizer/true_cardinality.h"
#include "plan/query_spec.h"
#include "stats/stats_catalog.h"
#include "storage/catalog.h"

namespace reopt::exec {
class CancelToken;
}  // namespace reopt::exec

namespace reopt::reoptimizer {

/// Which cardinality model the planner uses each round.
struct ModelSpec {
  enum class Kind { kEstimator, kPerfectN, kLearned };
  Kind kind = Kind::kEstimator;
  /// For kPerfectN: the oracle horizon (perfect-(n)). perfect-(0) is the
  /// plain estimator by construction.
  int perfect_n = 0;
  /// Use CORDS-style column-group statistics where available (paper
  /// Sec. IV-B; bench/ablation_cords).
  bool use_column_groups = false;

  static ModelSpec Estimator() { return ModelSpec{}; }
  static ModelSpec PerfectN(int n) {
    return ModelSpec{Kind::kPerfectN, n};
  }
  static ModelSpec Cords() { return ModelSpec{Kind::kEstimator, 0, true}; }
  /// AQO-style learned estimates from the runner's knowledge base
  /// (QueryRunner::set_knowledge_base); estimator fallback without one.
  static ModelSpec Learned() { return ModelSpec{Kind::kLearned}; }
};

struct ReoptOptions {
  bool enabled = false;
  /// Q-error trigger: re-optimize when max(true/est, est/true) exceeds it.
  double qerror_threshold = 32.0;
  /// Safety valve; the loop also terminates naturally because every round
  /// removes at least one relation.
  int max_rounds = 32;
  /// Sec. V-D mitigation: only consider re-optimization when the current
  /// plan's estimated cost exceeds this many cost units ("this can be
  /// avoided by re-optimizing only long-running queries"). 0 = always.
  double min_plan_cost_units = 0.0;
  /// Which offending join to materialize. The paper materializes the
  /// lowest one; kMaxQError is an ablation (bench/ablation_reopt_policy).
  enum class Pick { kLowestJoin, kMaxQError };
  Pick pick = Pick::kLowestJoin;
  /// Per-query materialization budgets (0 = unlimited). Once the rows /
  /// approximate bytes (8 bytes per materialized value) written to temp
  /// tables reach a budget, the query stops considering further
  /// re-optimization and finishes under its current plan — graceful
  /// degradation (RunResult::degraded), never an error: re-optimization is
  /// an optimization, not a correctness requirement.
  int64_t max_materialized_rows = 0;
  int64_t max_materialized_bytes = 0;
};

/// One re-optimization round (or the final execution).
struct RoundRecord {
  bool materialized = false;    // false = final execution
  plan::RelSet subset;          // relations materialized (round-local ids)
  double qerror = 0.0;          // trigger value (materialization rounds)
  double est_rows = 0.0;
  double true_rows = 0.0;
  double plan_cost_units = 0.0;
  double exec_cost_units = 0.0;
};

/// End-to-end result of running one query.
struct RunResult {
  std::vector<common::Value> aggregates;
  int64_t raw_rows = 0;
  double plan_cost_units = 0.0;
  double exec_cost_units = 0.0;
  /// Number of temp tables materialized (0 without re-optimization).
  int num_materializations = 0;
  /// Rows / approximate bytes (8 per value) written to temp tables.
  int64_t materialized_rows = 0;
  int64_t materialized_bytes = 0;
  /// True when a materialization budget (ReoptOptions) suppressed at least
  /// one re-optimization round: results are still exact, but under a plan
  /// the re-optimizer would otherwise have revisited.
  bool degraded = false;
  std::vector<RoundRecord> rounds;

  double plan_seconds() const;
  double exec_seconds() const;
  double total_seconds() const { return plan_seconds() + exec_seconds(); }
};

/// Per-query reusable state: bound context plus the true-cardinality
/// oracle whose cache amortizes across repeated runs (sweeps), plus the
/// session plan-memo cache — the round-0 DP table per (model, operator
/// options) key, so a threshold sweep re-planning the same query under the
/// same model replays the memo instead of re-running the DP. Thread-safe:
/// sessions are shared across sweep workers, memos are immutable once
/// published and handed out behind shared_ptr.
class QuerySession {
 public:
  static common::Result<std::unique_ptr<QuerySession>> Create(
      const plan::QuerySpec* spec, const storage::Catalog* catalog,
      const stats::StatsCatalog* stats_catalog);

  const plan::QuerySpec& spec() const { return *spec_; }
  optimizer::QueryContext* ctx() { return ctx_.get(); }
  optimizer::TrueCardinalityOracle* oracle() { return oracle_.get(); }

  /// The cached round-0 plan memo for `key`, or nullptr.
  std::shared_ptr<const optimizer::PlanMemo> FindPlanMemo(uint64_t key) const
      EXCLUDES(memo_mu_);
  /// Publishes a round-0 memo for `key`. First writer wins (all writers
  /// compute identical memos for a given key, so the race is benign).
  void StorePlanMemo(uint64_t key, optimizer::PlanMemo memo)
      EXCLUDES(memo_mu_);

 private:
  QuerySession() = default;
  const plan::QuerySpec* spec_ = nullptr;
  std::unique_ptr<optimizer::QueryContext> ctx_;
  std::unique_ptr<optimizer::TrueCardinalityOracle> oracle_;
  mutable common::Mutex memo_mu_;
  std::map<uint64_t, std::shared_ptr<const optimizer::PlanMemo>> plan_memos_
      GUARDED_BY(memo_mu_);
};

/// Runs queries against one database, with or without re-optimization.
class QueryRunner {
 public:
  QueryRunner(storage::Catalog* catalog, stats::StatsCatalog* stats_catalog,
              const optimizer::CostParams& params)
      : catalog_(catalog), stats_catalog_(stats_catalog), params_(params) {}

  /// Overrides planner behaviour (operator ablations). Defaults to all
  /// operators enabled.
  void set_planner_options(const optimizer::PlannerOptions& options) {
    planner_options_ = options;
  }
  const optimizer::PlannerOptions& planner_options() const {
    return planner_options_;
  }

  /// Namespace woven into generated temp-table names
  /// ("reopt_temp_<ns>_<n>"). Parallel sweep workers each set a distinct
  /// namespace so concurrent re-optimization rounds can never collide in
  /// the catalog. Empty (the default) keeps the serial "reopt_temp_<n>".
  void set_temp_namespace(std::string ns) { temp_namespace_ = std::move(ns); }
  const std::string& temp_namespace() const { return temp_namespace_; }

  /// Intra-query thread budget (clamped to >= 1, default 1 = serial): each
  /// query this runner executes fans its scans and hash joins over this
  /// many morsel workers (exec::MorselContext). The runner lazily owns one
  /// pool of that size, reused across runs; results are byte-identical at
  /// any setting. Composes with inter-query parallelism: a sweep with W
  /// workers x M intra-query threads occupies W*M live threads.
  void set_intra_query_threads(int n) {
    intra_query_threads_ = n < 1 ? 1 : n;
  }
  int intra_query_threads() const { return intra_query_threads_; }

  /// Incremental re-planning (default on): rounds >= 1 carry the previous
  /// round's DP memo and re-cost only subsets touching the temp relation;
  /// round 0 replays the session's cached memo when one exists. Off forces
  /// from-scratch DP every round — the correctness oracle the planner
  /// differential suite compares against. Simulated results are identical
  /// either way; only wall-clock differs.
  void set_incremental_replanning(bool on) { incremental_replanning_ = on; }
  bool incremental_replanning() const { return incremental_replanning_; }

  /// Attaches the shared learned-cardinality knowledge base (may be null,
  /// the default: learned mode off, nothing observed). With a base
  /// attached, every run — under *any* model kind — buffers the true join
  /// cardinalities the re-opt trigger already computes and commits them to
  /// the base when the run succeeds, so the base warms even while the
  /// plain estimator is driving plans. ModelSpec::Learned() additionally
  /// consults the base for estimates; those runs bypass the session
  /// plan-memo cache because their estimates legitimately drift as the
  /// base warms. The base outlives the runner and may be shared across
  /// sweep workers and service sessions (it is internally synchronized).
  void set_knowledge_base(optimizer::CardinalityKnowledgeBase* kb) {
    knowledge_base_ = kb;
  }
  optimizer::CardinalityKnowledgeBase* knowledge_base() const {
    return knowledge_base_;
  }

  /// Test/debug hook: observes each round's chosen plan (after planning,
  /// before execution) with the spec it refers to. Not called on error
  /// paths; keep it cheap and re-entrant — parallel sweeps may invoke it
  /// from several workers at once.
  using PlanObserver = std::function<void(
      int round, const plan::PlanNode& root, const plan::QuerySpec& spec)>;
  void set_plan_observer(PlanObserver observer) {
    plan_observer_ = std::move(observer);
  }
  const PlanObserver& plan_observer() const { return plan_observer_; }

  /// Runs the session's query. Temp tables created by re-optimization are
  /// dropped before returning — on success and on every error path.
  /// `cancel` (optional; must outlive the call) is polled at re-opt round
  /// boundaries and at kernel batch/morsel boundaries inside execution;
  /// tripping it surfaces as Cancelled / DeadlineExceeded with the same
  /// cleanup guarantees.
  common::Result<RunResult> Run(QuerySession* session,
                                const ModelSpec& model_spec,
                                const ReoptOptions& reopt,
                                const exec::CancelToken* cancel = nullptr);

 private:
  std::unique_ptr<optimizer::CardinalityModel> MakeModel(
      const ModelSpec& spec, optimizer::QueryContext* ctx,
      optimizer::TrueCardinalityOracle* oracle) const;

  /// Cache key for the session plan-memo: every knob that changes the
  /// round-0 DP outcome for a given spec.
  uint64_t MemoKey(const ModelSpec& spec) const;

  storage::Catalog* catalog_;
  stats::StatsCatalog* stats_catalog_;
  optimizer::CostParams params_;
  optimizer::PlannerOptions planner_options_;
  std::string temp_namespace_;
  optimizer::CardinalityKnowledgeBase* knowledge_base_ = nullptr;
  bool incremental_replanning_ = true;
  int intra_query_threads_ = 1;
  /// Created on the first Run with intra_query_threads_ > 1; sized to the
  /// budget at creation time and reused across runs.
  std::unique_ptr<common::ThreadPool> intra_pool_;
  PlanObserver plan_observer_;
};

}  // namespace reopt::reoptimizer

#endif  // REOPT_REOPT_QUERY_RUNNER_H_
