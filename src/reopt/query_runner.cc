#include "reopt/query_runner.h"

#include <algorithm>
#include <cstring>

#include "common/fail_point.h"
#include "common/scope_guard.h"
#include "common/sim_time.h"
#include "exec/cancel.h"
#include "exec/executor.h"
#include "optimizer/knowledge_base.h"
#include "reopt/rewrite.h"

namespace reopt::reoptimizer {

double RunResult::plan_seconds() const {
  return common::CostUnitsToSeconds(plan_cost_units);
}
double RunResult::exec_seconds() const {
  return common::CostUnitsToSeconds(exec_cost_units);
}

common::Result<std::unique_ptr<QuerySession>> QuerySession::Create(
    const plan::QuerySpec* spec, const storage::Catalog* catalog,
    const stats::StatsCatalog* stats_catalog) {
  auto session = std::unique_ptr<QuerySession>(new QuerySession());
  session->spec_ = spec;
  REOPT_ASSIGN_OR_RETURN(
      session->ctx_,
      optimizer::QueryContext::Bind(spec, catalog, stats_catalog));
  session->oracle_ =
      std::make_unique<optimizer::TrueCardinalityOracle>(session->ctx_.get());
  return session;
}

std::shared_ptr<const optimizer::PlanMemo> QuerySession::FindPlanMemo(
    uint64_t key) const {
  common::MutexLock lock(&memo_mu_);
  auto it = plan_memos_.find(key);
  return it == plan_memos_.end() ? nullptr : it->second;
}

void QuerySession::StorePlanMemo(uint64_t key, optimizer::PlanMemo memo) {
  auto shared = std::make_shared<const optimizer::PlanMemo>(std::move(memo));
  common::MutexLock lock(&memo_mu_);
  plan_memos_.emplace(key, std::move(shared));  // first writer wins
}

uint64_t QueryRunner::MemoKey(const ModelSpec& spec) const {
  uint64_t key = 0;
  key |= static_cast<uint64_t>(spec.kind == ModelSpec::Kind::kPerfectN) << 0;
  key |= static_cast<uint64_t>(spec.use_column_groups) << 1;
  key |= static_cast<uint64_t>(planner_options_.enable_hash_join) << 2;
  key |= static_cast<uint64_t>(planner_options_.enable_nested_loop) << 3;
  key |= static_cast<uint64_t>(planner_options_.enable_index_nested_loop) << 4;
  key |= static_cast<uint64_t>(planner_options_.enable_index_scan) << 5;
  key |= static_cast<uint64_t>(spec.kind == ModelSpec::Kind::kLearned) << 6;
  key |= static_cast<uint64_t>(static_cast<uint32_t>(spec.perfect_n)) << 8;
  // Cost parameters pick the plans, so two runners sharing a session but
  // costing differently must not collide: fold the parameter bits into the
  // key (FNV-1a over the double representations).
  uint64_t params_hash = 1469598103934665603ull;
  auto mix = [&params_hash](double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      params_hash ^= (bits >> (i * 8)) & 0xff;
      params_hash *= 1099511628211ull;
    }
  };
  mix(params_.seq_page_cost);
  mix(params_.random_page_cost);
  mix(params_.cpu_tuple_cost);
  mix(params_.cpu_index_tuple_cost);
  mix(params_.cpu_operator_cost);
  mix(params_.rows_per_page);
  mix(params_.hash_build_factor);
  mix(params_.hash_probe_factor);
  mix(params_.temp_write_cost);
  mix(params_.plan_cost_per_estimate);
  mix(params_.plan_cost_per_path);
  return params_hash ^ (key * 0x9e3779b97f4a7c15ull);
}

std::unique_ptr<optimizer::CardinalityModel> QueryRunner::MakeModel(
    const ModelSpec& spec, optimizer::QueryContext* ctx,
    optimizer::TrueCardinalityOracle* oracle) const {
  std::unique_ptr<optimizer::CardinalityModel> model;
  switch (spec.kind) {
    case ModelSpec::Kind::kEstimator:
      model = std::make_unique<optimizer::EstimatorModel>(ctx);
      break;
    case ModelSpec::Kind::kPerfectN:
      model = std::make_unique<optimizer::PerfectNModel>(ctx, oracle,
                                                         spec.perfect_n);
      break;
    case ModelSpec::Kind::kLearned:
      model = std::make_unique<optimizer::LearnedModel>(ctx, knowledge_base_);
      break;
  }
  REOPT_CHECK(model != nullptr);
  model->set_use_column_groups(spec.use_column_groups);
  return model;
}

common::Result<RunResult> QueryRunner::Run(QuerySession* session,
                                           const ModelSpec& model_spec,
                                           const ReoptOptions& reopt,
                                           const exec::CancelToken* cancel) {
  RunResult result;
  exec::Executor executor(catalog_, stats_catalog_, params_);
  executor.set_cancel_token(cancel);
  if (intra_query_threads_ > 1 &&
      (intra_pool_ == nullptr ||
       intra_pool_->num_threads() < intra_query_threads_)) {
    intra_pool_ = std::make_unique<common::ThreadPool>(intra_query_threads_);
  }
  executor.set_intra_query_parallelism(
      intra_query_threads_,
      intra_query_threads_ > 1 ? intra_pool_.get() : nullptr);

  // Round-local ownership: rewritten specs and their contexts/oracles live
  // until the run finishes (plans hold pointers into the specs).
  std::vector<std::unique_ptr<plan::QuerySpec>> owned_specs;
  std::vector<std::unique_ptr<optimizer::QueryContext>> owned_ctxs;
  std::vector<std::unique_ptr<optimizer::TrueCardinalityOracle>>
      owned_oracles;
  std::vector<std::string> temp_tables;

  const plan::QuerySpec* spec = &session->spec();
  optimizer::QueryContext* ctx = session->ctx();
  optimizer::TrueCardinalityOracle* oracle = session->oracle();

  // Scope guard, not a manually-invoked lambda: temp tables and their
  // statistics must not survive this query on *any* exit path — early
  // Status returns below, or unwinding from CHECK-adjacent code.
  common::ScopeGuard drop_temps([&]() {
    for (const std::string& name : temp_tables) {
      (void)catalog_->DropTable(name);
      stats_catalog_->Remove(name);
    }
  });

  // Hoisted out of the round loop: one cardinality model per run, rebound
  // (not rebuilt) after each rewrite. Estimate counts are identical to a
  // per-round model because planner results report per-round deltas and
  // Rebind clears the memo.
  std::unique_ptr<optimizer::CardinalityModel> model =
      MakeModel(model_spec, ctx, oracle);

  // Planning fast path (see docs/ARCHITECTURE.md): round 0 replays the
  // session-cached memo when this (model, options) key planned the query
  // before (threshold sweeps re-plan the same query many times); rounds
  // >= 1 carry the previous round's memo across the rewrite and re-cost
  // only the subsets that touch the new temp relation. Learned-model runs
  // skip the session cache entirely: their estimates drift as the
  // knowledge base warms, so a replayed memo would resurrect stale plans.
  const bool learned = model_spec.kind == ModelSpec::Kind::kLearned;
  const uint64_t memo_key = MemoKey(model_spec);
  std::shared_ptr<const optimizer::PlanMemo> cached =
      incremental_replanning_ && !learned ? session->FindPlanMemo(memo_key)
                                          : nullptr;

  // Learned-cardinality feedback: the trigger check below already pays for
  // the true cardinality of every join in the plan, so harvest those
  // (subset features, truth) pairs as a free by-product. They are buffered
  // here and committed only on successful return — the base must stay
  // frozen *during* a run so incremental re-planning, memo carries and the
  // from-scratch oracle all see identical estimates.
  std::vector<std::pair<optimizer::SubsetFeatures, double>> pending_feedback;
  optimizer::PlanMemo prev_memo;          // previous round's DP table
  optimizer::MemoTranslation translation; // old -> new ids, last rewrite

  for (int round = 0;; ++round) {
    // Round boundaries are the re-optimizer's natural abort checkpoints:
    // between rounds no temp table is half-written, so stopping here costs
    // only the drop_temps sweep.
    if (cancel != nullptr) REOPT_RETURN_IF_ERROR(cancel->Check());
    if (round == 0) {
      REOPT_INJECT_FAULT("reopt.plan");
    } else {
      REOPT_INJECT_FAULT("reopt.replan");
    }
    optimizer::Planner planner(ctx, model.get(), params_, planner_options_);
    auto planned =
        round == 0 ? (cached != nullptr ? planner.PlanFromMemo(*cached)
                                        : planner.Plan())
                   : (incremental_replanning_
                          ? planner.PlanIncremental(prev_memo, translation)
                          : planner.Plan());
    if (!planned.ok()) {
      return planned.status();
    }
    prev_memo = planner.TakeMemo();
    if (round == 0 && incremental_replanning_ && !learned &&
        cached == nullptr) {
      session->StorePlanMemo(memo_key, prev_memo);
    }
    result.plan_cost_units += planned->planning_cost_units;
    if (plan_observer_) plan_observer_(round, *planned->root, *spec);

    // Re-optimization trigger: the lowest join operator whose true
    // cardinality is more than `threshold` times off the estimate.
    plan::PlanNode* offender = nullptr;
    double offender_q = 0.0;
    bool consider = reopt.enabled && round < reopt.max_rounds &&
                    planned->root->est_cost >= reopt.min_plan_cost_units;
    // Materialization budget: once the rows/bytes already written to temp
    // tables reach a limit, stop *considering* re-optimization and let the
    // query finish under its current plan. Degradation, not failure —
    // results stay exact either way.
    const bool budget_exhausted =
        (reopt.max_materialized_rows > 0 &&
         result.materialized_rows >= reopt.max_materialized_rows) ||
        (reopt.max_materialized_bytes > 0 &&
         result.materialized_bytes >= reopt.max_materialized_bytes);
    if (consider && budget_exhausted) {
      consider = false;
      result.degraded = true;
    }
    if (consider) {
      planned->root->PostOrder([&](plan::PlanNode* node) {
        if (!node->is_join()) return;
        // Both sides clamp to >= 1 row: a zero-row truth (empty-result
        // query) must not yield an infinite Q-error that forces
        // materializing an empty subtree, and sub-row estimates must not
        // inflate the ratio from the other side.
        double est = std::max(1.0, node->est_rows);
        double truth = std::max(1.0, oracle->True(node->rels));
        if (knowledge_base_ != nullptr) {
          optimizer::SubsetFeatures features;
          if (optimizer::CardinalityKnowledgeBase::FeaturesOf(
                  *ctx, node->rels, &features)) {
            pending_feedback.emplace_back(std::move(features), truth);
          }
        }
        double q = std::max(truth / est, est / truth);
        if (q <= reopt.qerror_threshold) return;
        bool better;
        if (reopt.pick == ReoptOptions::Pick::kMaxQError) {
          better = offender == nullptr || q > offender_q;
        } else {
          better = offender == nullptr ||
                   node->rels.count() < offender->rels.count() ||
                   (node->rels.count() == offender->rels.count() &&
                    node->rels.bits() < offender->rels.bits());
        }
        if (better) {
          offender = node;
          offender_q = q;
        }
      });
    }

    if (offender == nullptr) {
      // No (more) mis-estimates: execute the final plan.
      auto executed = executor.Execute(*spec, planned->root.get());
      if (!executed.ok()) {
        return executed.status();
      }
      result.aggregates = std::move(executed->aggregates);
      result.raw_rows = executed->raw_rows;
      result.exec_cost_units += executed->cost_units;
      RoundRecord record;
      record.materialized = false;
      record.subset = planned->root->rels;
      record.plan_cost_units = planned->planning_cost_units;
      record.exec_cost_units = executed->cost_units;
      result.rounds.push_back(record);
      break;
    }

    // Materialize the offending subtree into a temp table (CREATE TEMP
    // TABLE ... AS SELECT in the paper's simulation), then rewrite.
    plan::RelSet subset = offender->rels;
    std::vector<plan::ColumnRef> temp_cols =
        ColumnsToMaterialize(*spec, subset);
    std::string temp_name = catalog_->NextTempName(temp_namespace_);

    auto write = std::make_unique<plan::PlanNode>();
    write->op = plan::PlanOp::kTempWrite;
    write->rels = subset;
    write->est_rows = offender->est_rows;
    write->temp_table_name = temp_name;
    write->temp_columns = temp_cols;
    write->left = plan::ClonePlan(*offender);
    write->est_cost = write->left->est_cost;

    REOPT_INJECT_FAULT("reopt.materialize");
    // Registered for cleanup *before* execution: if the write fails midway
    // the executor's own guard already dropped the half-written table, and
    // dropping an absent name is a harmless NotFound.
    temp_tables.push_back(temp_name);
    auto executed = executor.Execute(*spec, write.get());
    if (!executed.ok()) {
      return executed.status();
    }
    result.exec_cost_units += executed->cost_units;
    ++result.num_materializations;
    result.materialized_rows += executed->raw_rows;
    result.materialized_bytes +=
        executed->raw_rows * static_cast<int64_t>(temp_cols.size()) * 8;

    RoundRecord record;
    record.materialized = true;
    record.subset = subset;
    record.qerror = offender_q;
    record.est_rows = offender->est_rows;
    record.true_rows = static_cast<double>(executed->raw_rows);
    record.plan_cost_units = planned->planning_cost_units;
    record.exec_cost_units = executed->cost_units;
    result.rounds.push_back(record);

    RewriteInfo rewrite_info;
    owned_specs.push_back(RewriteWithTemp(*spec, subset, temp_name,
                                          temp_cols, round, &rewrite_info));
    const plan::QuerySpec* old_spec = spec;
    spec = owned_specs.back().get();
    auto bound =
        optimizer::QueryContext::Bind(spec, catalog_, stats_catalog_);
    if (!bound.ok()) {
      return bound.status();
    }
    owned_ctxs.push_back(std::move(bound.value()));
    ctx = owned_ctxs.back().get();
    owned_oracles.push_back(
        std::make_unique<optimizer::TrueCardinalityOracle>(ctx));
    oracle = owned_oracles.back().get();
    translation = MemoTranslationFor(*old_spec, *spec, subset, rewrite_info);
    model->Rebind(ctx, oracle);
  }

  if (knowledge_base_ != nullptr && !pending_feedback.empty()) {
    REOPT_INJECT_FAULT("kb.commit");
    knowledge_base_->ObserveBatch(pending_feedback);
  }
  return result;
}

}  // namespace reopt::reoptimizer
