// Ablation: CORDS-style column-group statistics (paper Sec. IV-B). The
// paper argues that discovering pairwise same-table correlations "seems
// unlikely to improve execution time in JOB, because correlations exist
// between columns that are several edges away in the join graph". We
// build joint MCV statistics for every correlated column pair of every
// table, enable them in the estimator, and re-run the workload: the
// improvement should be marginal compared to what re-optimization buys.
#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  std::fprintf(stderr, "[bench] building column-group statistics...\n");
  env->db->stats.BuildColumnGroupsAll(env->db->catalog);

  std::vector<workload::SweepConfig> configs = {
      {"independence", reoptimizer::ModelSpec::Estimator(), {}},
      {"column groups", reoptimizer::ModelSpec::Cords(), {}},
      {"re-opt", reoptimizer::ModelSpec::Estimator(), bench::ReoptOn(32.0)},
      {"perfect", reoptimizer::ModelSpec::PerfectN(17), {}},
  };
  auto results =
      env->runner->RunSweep(*env->workload, configs, env->threads,
                            bench::SweepProgress());
  if (!results.ok()) return 1;
  const workload::WorkloadRunResult* plain = &results.value()[0];
  const workload::WorkloadRunResult* cords = &results.value()[1];
  const workload::WorkloadRunResult* reopt = &results.value()[2];
  const workload::WorkloadRunResult* perfect = &results.value()[3];

  bench::PrintCaption(
      "Ablation: CORDS column-group statistics vs re-optimization");
  std::printf("%-26s %10s %10s\n", "configuration", "plan (s)", "exec (s)");
  std::printf("%-26s %10.2f %10.2f\n", "independence (default)",
              plain->TotalPlanSeconds(), plain->TotalExecSeconds());
  std::printf("%-26s %10.2f %10.2f\n", "with column groups",
              cords->TotalPlanSeconds(), cords->TotalExecSeconds());
  std::printf("%-26s %10.2f %10.2f\n", "re-optimization (32)",
              reopt->TotalPlanSeconds(), reopt->TotalExecSeconds());
  std::printf("%-26s %10.2f %10.2f\n", "perfect estimates",
              perfect->TotalPlanSeconds(), perfect->TotalExecSeconds());

  double cords_benefit =
      plain->TotalExecSeconds() - cords->TotalExecSeconds();
  double reopt_benefit =
      plain->TotalExecSeconds() - reopt->TotalExecSeconds();
  std::printf(
      "\ncolumn groups recovered %.0f%% of the execution-time benefit "
      "re-optimization does\n",
      100.0 * cords_benefit / std::max(1e-9, reopt_benefit));
  std::printf("(the paper, Sec. IV-B: pairwise correlation statistics "
              "cannot reach join-crossing correlations)\n");
  env->db->stats.ClearColumnGroups();
  return 0;
}
