// Figure 9: per-query execution time under default estimation,
// re-optimization and perfect estimates, ordered by default execution
// time. Paper shape: re-optimization tracks perfect on the long tail; a
// few short queries regress (one catastrophically in relative terms but
// negligibly in absolute terms, Sec. V-D).
#include <algorithm>

#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  std::vector<workload::SweepConfig> configs = {
      {"PostgreSQL", reoptimizer::ModelSpec::Estimator(), {}},
      {"Re-opt", reoptimizer::ModelSpec::Estimator(), bench::ReoptOn(32.0)},
      {"Perfect", reoptimizer::ModelSpec::PerfectN(17), {}},
  };
  auto results =
      env->runner->RunSweep(*env->workload, configs, env->threads,
                            bench::SweepProgress());
  if (!results.ok()) return 1;
  const workload::WorkloadRunResult* pg = &results.value()[0];
  const workload::WorkloadRunResult* re = &results.value()[1];
  const workload::WorkloadRunResult* perfect = &results.value()[2];

  std::vector<size_t> order(pg->records.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pg->records[a].exec_seconds < pg->records[b].exec_seconds;
  });

  bench::PrintCaption(
      "Figure 9: per-query execution time (s), ordered by default time");
  std::printf("%-10s %12s %12s %12s %8s\n", "query", "PostgreSQL",
              "Re-opt", "Perfect", "# temps");
  double worst_regression = 0.0;
  std::string worst_query;
  for (size_t i : order) {
    const auto& p = pg->records[i];
    const auto& r = re->records[i];
    const auto& f = perfect->records[i];
    std::printf("%-10s %12.4f %12.4f %12.4f %8d\n", p.name.c_str(),
                p.exec_seconds, r.exec_seconds, f.exec_seconds,
                r.materializations);
    double regression = r.exec_seconds / std::max(1e-9, p.exec_seconds);
    if (regression > worst_regression) {
      worst_regression = regression;
      worst_query = p.name;
    }
  }
  std::printf(
      "\ntotals: PG %.2f s | re-opt %.2f s (%.0f%% better) | perfect %.2f "
      "s\n",
      pg->TotalExecSeconds(), re->TotalExecSeconds(),
      100.0 * (1.0 - re->TotalExecSeconds() /
                         std::max(1e-9, pg->TotalExecSeconds())),
      perfect->TotalExecSeconds());
  std::printf("worst per-query regression: %s at %.1fx (Sec. V-D risk)\n",
              worst_query.c_str(), worst_regression);
  return 0;
}
