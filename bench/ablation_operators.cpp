// Ablation: which physical operators turn cardinality mistakes into
// catastrophes? Runs the workload under the default estimator with
// operator classes disabled:
//   * all operators (baseline),
//   * no plain nested loop (the quadratic trap),
//   * no index nested loop,
//   * hash joins only.
// The paper's Sec. IV-D (query 18a) blames a nested loop chosen under an
// underestimate; with NLJ disabled the worst plans collapse toward the
// hash-join baseline — evidence that re-optimization mostly repairs
// operator *choice*, not join order alone.
#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  struct Config {
    const char* label;
    bool nlj;
    bool index_nlj;
  };
  Config configs[] = {
      {"all operators", true, true},
      {"no nested loop", false, true},
      {"no index-NLJ", true, false},
      {"hash joins only", false, false},
  };
  bench::PrintCaption(
      "Ablation: operator availability under default estimation");
  std::printf("%-18s %10s %10s\n", "operators", "plan (s)", "exec (s)");
  for (const Config& config : configs) {
    optimizer::PlannerOptions options;
    options.enable_nested_loop = config.nlj;
    options.enable_index_nested_loop = config.index_nlj;
    // Planner options are runner-level state, so each ablation is its own
    // RunAll; the queries within it still fan across the workers.
    env->runner->query_runner()->set_planner_options(options);
    auto run = env->runner->RunAll(*env->workload,
                                   reoptimizer::ModelSpec::Estimator(), {},
                                   env->threads);
    if (!run.ok()) return 1;
    std::printf("%-18s %10.2f %10.2f\n", config.label,
                run->TotalPlanSeconds(), run->TotalExecSeconds());
    std::fflush(stdout);
  }
  env->runner->query_runner()->set_planner_options({});
  return 0;
}
