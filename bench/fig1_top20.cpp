// Figure 1: total planning and execution time for the 20 longest-running
// queries (by default-estimator execution time), under PostgreSQL-style
// estimation, perfect-(3), perfect-(4), re-optimization, and perfect.
// Paper shape: perfect-(3) no help; perfect-(4) and re-opt ~25% better
// end-to-end; perfect best.
#include <algorithm>

#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  auto pg = env->runner->RunAll(*env->workload,
                                reoptimizer::ModelSpec::Estimator(), {},
                                env->threads);
  if (!pg.ok()) return 1;

  // Top 20 by default execution time.
  std::vector<const workload::QueryRecord*> order;
  for (const auto& r : pg->records) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const workload::QueryRecord* a,
               const workload::QueryRecord* b) {
              return a->exec_seconds > b->exec_seconds;
            });
  std::vector<const plan::QuerySpec*> top20;
  std::printf("top 20 longest queries (default estimation):");
  for (int i = 0; i < 20 && i < static_cast<int>(order.size()); ++i) {
    top20.push_back(env->workload->Find(order[static_cast<size_t>(i)]->name));
    std::printf(" %s", order[static_cast<size_t>(i)]->name.c_str());
  }
  std::printf("\n");

  struct Config {
    const char* label;
    reoptimizer::ModelSpec model;
    reoptimizer::ReoptOptions reopt;
  };
  Config configs[] = {
      {"PostgreSQL", reoptimizer::ModelSpec::Estimator(), {}},
      {"Perfect-(3)", reoptimizer::ModelSpec::PerfectN(3), {}},
      {"Perfect-(4)", reoptimizer::ModelSpec::PerfectN(4), {}},
      {"Re-optimized", reoptimizer::ModelSpec::Estimator(),
       bench::ReoptOn(32.0)},
      {"Perfect", reoptimizer::ModelSpec::PerfectN(17), {}},
  };

  bench::PrintCaption(
      "Figure 1: plan+execute totals for the top 20 longest queries");
  std::printf("%-14s %10s %10s %10s\n", "config", "plan (s)", "exec (s)",
              "total (s)");
  for (const Config& config : configs) {
    double plan = 0.0;
    double exec = 0.0;
    for (const plan::QuerySpec* q : top20) {
      auto run = env->runner->RunOne(q, config.model, config.reopt);
      if (!run.ok()) return 1;
      plan += run->plan_seconds();
      exec += run->exec_seconds();
    }
    std::printf("%-14s %10.2f %10.2f %10.2f\n", config.label, plan, exec,
                plan + exec);
    std::fflush(stdout);
  }
  return 0;
}
