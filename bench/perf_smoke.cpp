// Scalar-vs-vectorized kernel perf smoke: times the retained scalar
// reference kernel against the vectorized kernel on the workloads the
// sweeps are dominated by (filter scans over title/cast_info, the
// title x movie_keyword hash join) and prints rows/sec plus the speedup.
//
// Self-timed (std::chrono, best-of-N) so it builds without Google
// Benchmark; CI runs it in the Release job. Exits non-zero only if the two
// kernels *disagree* — the speedup itself is reported, never gated on
// (bench boxes are noisy; the timing gate lives in the job log for
// eyeballs, the correctness gate in the differential tests and this exit
// code).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "exec/kernel.h"
#include "exec/kernel_reference.h"
#include "imdb/imdb.h"
#include "plan/query_spec.h"
#include "workload/job_like.h"

namespace {

using namespace reopt;  // NOLINT: benchmark driver

double BestSeconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

struct Comparison {
  const char* name;
  int64_t rows_processed;
  double scalar_s;
  double vectorized_s;
};

void Report(const Comparison& c) {
  double scalar_rps = static_cast<double>(c.rows_processed) / c.scalar_s;
  double vec_rps = static_cast<double>(c.rows_processed) / c.vectorized_s;
  std::printf("%-28s scalar %10.2e rows/s   vectorized %10.2e rows/s   "
              "speedup %.2fx\n",
              c.name, scalar_rps, vec_rps, c.scalar_s / c.vectorized_s);
}

}  // namespace

int main() {
  imdb::ImdbOptions options;
  options.scale = 0.1;
  auto db = imdb::BuildImdbDatabase(options);
  constexpr int kReps = 9;
  bool ok = true;

  // ---- Filter scan: range + LIKE over title -------------------------------
  {
    const storage::Table* title = db->catalog.FindTable("title");
    plan::ScanPredicate year;
    year.column = plan::ColumnRef{
        0, title->schema().FindColumn("production_year"), ""};
    year.kind = plan::ScanPredicate::Kind::kBetween;
    year.value = common::Value::Int(1990);
    year.value2 = common::Value::Int(2010);
    plan::ScanPredicate like;
    like.column = plan::ColumnRef{0, title->schema().FindColumn("title"), ""};
    like.kind = plan::ScanPredicate::Kind::kLike;
    like.value = common::Value::Str("Saga%");
    std::vector<const plan::ScanPredicate*> filters = {&year, &like};

    std::vector<common::RowIdx> scalar_rows, vec_rows;
    Comparison c{"filter-scan title", title->num_rows(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] { scalar_rows = exec::reference::FilterScan(*title, filters); },
        kReps);
    c.vectorized_s = BestSeconds(
        [&] { vec_rows = exec::FilterScan(*title, filters); }, kReps);
    Report(c);
    if (scalar_rows != vec_rows) {
      std::fprintf(stderr, "FAIL: filter-scan results differ\n");
      ok = false;
    }
  }

  // ---- Filter scan: integer conjunction over cast_info --------------------
  {
    const storage::Table* ci = db->catalog.FindTable("cast_info");
    plan::ScanPredicate role;
    role.column = plan::ColumnRef{0, ci->schema().FindColumn("role_id"), ""};
    role.kind = plan::ScanPredicate::Kind::kIn;
    role.in_list = {common::Value::Int(1), common::Value::Int(2)};
    plan::ScanPredicate person;
    person.column =
        plan::ColumnRef{0, ci->schema().FindColumn("person_id"), ""};
    person.kind = plan::ScanPredicate::Kind::kCompare;
    person.op = plan::CompareOp::kGt;
    person.value = common::Value::Int(100);
    std::vector<const plan::ScanPredicate*> filters = {&role, &person};

    std::vector<common::RowIdx> scalar_rows, vec_rows;
    Comparison c{"filter-scan cast_info ints", ci->num_rows(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] { scalar_rows = exec::reference::FilterScan(*ci, filters); },
        kReps);
    c.vectorized_s = BestSeconds(
        [&] { vec_rows = exec::FilterScan(*ci, filters); }, kReps);
    Report(c);
    if (scalar_rows != vec_rows) {
      std::fprintf(stderr, "FAIL: cast_info filter results differ\n");
      ok = false;
    }
  }

  // ---- Filter scan: unanchored string contains (informational) ------------
  // Bounded by per-string access either way; reported for visibility, not
  // part of the >=3x filter/join kernel comparison.
  {
    const storage::Table* ci = db->catalog.FindTable("cast_info");
    plan::ScanPredicate note;
    note.column = plan::ColumnRef{0, ci->schema().FindColumn("note"), ""};
    note.kind = plan::ScanPredicate::Kind::kNotLike;
    note.value = common::Value::Str("%(producer)%");
    std::vector<const plan::ScanPredicate*> filters = {&note};

    std::vector<common::RowIdx> scalar_rows, vec_rows;
    Comparison c{"filter-scan notes %contains%", ci->num_rows(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] { scalar_rows = exec::reference::FilterScan(*ci, filters); },
        kReps);
    c.vectorized_s = BestSeconds(
        [&] { vec_rows = exec::FilterScan(*ci, filters); }, kReps);
    Report(c);
    if (scalar_rows != vec_rows) {
      std::fprintf(stderr, "FAIL: notes filter results differ\n");
      ok = false;
    }
  }

  // ---- Hash join: title x movie_keyword -----------------------------------
  {
    auto query = workload::MakeQuery6d(db->catalog);
    exec::BoundRelations rels = exec::BindRelations(*query, db->catalog);
    // t = rel 4, mk = rel 2 in 6d (unfiltered scans of both).
    exec::Intermediate t =
        exec::ExactJoin(*query, plan::RelSet::Single(4), rels);
    exec::Intermediate mk =
        exec::ExactJoin(*query, plan::RelSet::Single(2), rels);
    auto edges = query->JoinsBetween(plan::RelSet::Single(4),
                                     plan::RelSet::Single(2));

    exec::Intermediate scalar_out, vec_out;
    Comparison c{"hash-join title x mk", t.size() + mk.size(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] {
          scalar_out =
              exec::reference::HashJoinIntermediates(t, mk, edges, rels);
        },
        kReps);
    c.vectorized_s = BestSeconds(
        [&] { vec_out = exec::HashJoinIntermediates(t, mk, edges, rels); },
        kReps);
    Report(c);
    if (scalar_out.columns != vec_out.columns) {
      std::fprintf(stderr, "FAIL: hash-join results differ\n");
      ok = false;
    }
  }

  if (!ok) return 1;
  std::printf("perf smoke OK (speedups are informational, not gated)\n");
  return 0;
}
