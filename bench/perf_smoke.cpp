// Perf smoke for the retained-reference fast paths: times each optimized
// implementation against the verbatim reference it replaced, on the
// workloads the sweeps are dominated by —
//   * vectorized kernels vs the scalar kernel (filter scans over
//     title/cast_info, the title x movie_keyword hash join),
//   * intra-query morsel parallelism at 4 threads vs the serial vectorized
//     kernel on the same large-scan and hash-join paths (speedups are
//     hardware-dependent: expect >= 2x on a 4-core box, ~1x on 1 core),
//   * the incremental re-planner (round >= 1 memo carry) and the round-0
//     session-memo replay vs from-scratch DP,
//   * the typed single-pass ANALYZE vs the boxed reference on a 1M-row
//     int column (and a string column, informational),
//   * the encoding-aware storage layer: dictionary-code string predicates
//     and zone-map partition skipping vs a byte-identical forced-plain
//     database (same vectorized kernel, two physical layouts).
//
// --scale=a[,b,...] sweeps the kernel comparisons across database scales
// (JSON rows tagged name@s<scale>); the default run stays at scale 0.1
// with unsuffixed names — the shape bench/history/ snapshots pin.
//
// Self-timed (std::chrono, best-of-N) so it builds without Google
// Benchmark; CI runs it in Release. Exits non-zero only if an optimized
// path *disagrees* with its reference — the speedups are reported, never
// gated on (bench boxes are noisy; the timing gate lives in the job log
// for eyeballs, the correctness gate in the differential tests and this
// exit code). Every comparison is also written as machine-readable ns/op
// to BENCH_perf_smoke.json (path overridable as argv[1]); the Release CI
// job uploads it, seeding the benchmark trajectory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "exec/kernel.h"
#include "exec/kernel_reference.h"
#include "imdb/imdb.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "optimizer/planner_reference.h"
#include "plan/physical_plan.h"
#include "plan/query_spec.h"
#include "reopt/rewrite.h"
#include "stats/analyze.h"
#include "stats/analyze_reference.h"
#include "workload/job_like.h"

namespace {

using namespace reopt;  // NOLINT: benchmark driver

double BestSeconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

// One reference-vs-optimized comparison, accumulated for the JSON report.
struct JsonEntry {
  std::string name;
  double reference_ns_per_op;
  double optimized_ns_per_op;
  double speedup;
};
std::vector<JsonEntry>& JsonEntries() {
  static std::vector<JsonEntry> entries;
  return entries;
}

void Record(const std::string& name, double ref_s, double opt_s,
            double ops_per_call = 1.0) {
  JsonEntries().push_back(JsonEntry{name, ref_s * 1e9 / ops_per_call,
                                    opt_s * 1e9 / ops_per_call,
                                    ref_s / opt_s});
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARN: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < JsonEntries().size(); ++i) {
    const JsonEntry& e = JsonEntries()[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"reference_ns_per_op\": %.1f, "
                 "\"optimized_ns_per_op\": %.1f, \"speedup\": %.3f}%s\n",
                 e.name.c_str(), e.reference_ns_per_op, e.optimized_ns_per_op,
                 e.speedup, i + 1 < JsonEntries().size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu benchmarks)\n", path.c_str(),
              JsonEntries().size());
}

struct Comparison {
  const char* name;
  int64_t rows_processed;
  double scalar_s;
  double vectorized_s;
};

void Report(const Comparison& c, const std::string& suffix = "") {
  double scalar_rps = static_cast<double>(c.rows_processed) / c.scalar_s;
  double vec_rps = static_cast<double>(c.rows_processed) / c.vectorized_s;
  std::printf("%-28s scalar %10.2e rows/s   vectorized %10.2e rows/s   "
              "speedup %.2fx\n",
              c.name, scalar_rps, vec_rps, c.scalar_s / c.vectorized_s);
  Record(std::string(c.name) + suffix, c.scalar_s, c.vectorized_s,
         static_cast<double>(c.rows_processed));
}

// ---- Intra-query parallelism ------------------------------------------------

// Morsel-parallel kernels at 4 threads vs the serial vectorized kernel on
// the single-query hot paths (one large filter scan, one large hash join).
// Byte-identical results are gated; the speedup is informational and
// hardware-dependent (hardware_concurrency is printed for context).
// Runs on its own scale-0.5 database — the figure sweeps' scale — so the
// per-morsel work dominates dispatch the way it does in real runs.
bool BenchIntraQuery() {
  bool ok = true;
  constexpr int kReps = 9;
  constexpr int kThreads = 4;
  imdb::ImdbOptions options;
  options.scale = 0.5;
  auto db_owned = imdb::BuildImdbDatabase(options);
  imdb::ImdbDatabase* db = db_owned.get();
  common::ThreadPool pool(kThreads);
  exec::MorselContext ctx{kThreads, &pool};
  std::printf("intra-query parallelism: %d morsel threads "
              "(%d hardware threads available)\n",
              kThreads, common::DefaultThreadCount());

  // Large scan: the cast_info integer conjunction (the biggest base table).
  {
    const storage::Table* ci = db->catalog.FindTable("cast_info");
    plan::ScanPredicate role;
    role.column = plan::ColumnRef{0, ci->schema().FindColumn("role_id"), ""};
    role.kind = plan::ScanPredicate::Kind::kIn;
    role.in_list = {common::Value::Int(1), common::Value::Int(2)};
    plan::ScanPredicate person;
    person.column =
        plan::ColumnRef{0, ci->schema().FindColumn("person_id"), ""};
    person.kind = plan::ScanPredicate::Kind::kCompare;
    person.op = plan::CompareOp::kGt;
    person.value = common::Value::Int(100);
    std::vector<const plan::ScanPredicate*> filters = {&role, &person};

    std::vector<common::RowIdx> serial_rows, par_rows;
    double serial_s = BestSeconds(
        [&] { serial_rows = exec::FilterScan(*ci, filters); }, kReps);
    double par_s = BestSeconds(
        [&] { par_rows = exec::FilterScanParallel(*ci, filters, ctx); },
        kReps);
    if (serial_rows != par_rows) {
      std::fprintf(stderr, "FAIL: parallel filter-scan results differ\n");
      ok = false;
    }
    std::printf("%-28s serial  %10.1f ms       4-thread %10.1f ms       "
                "speedup %.2fx\n",
                "intra filter-scan cast_info", serial_s * 1e3, par_s * 1e3,
                serial_s / par_s);
    Record("intra_filter_scan_cast_info_4t", serial_s, par_s,
           static_cast<double>(ci->num_rows()));
  }

  // Large hash join: title x movie_keyword (both sides unfiltered).
  {
    auto query = workload::MakeQuery6d(db->catalog);
    exec::BoundRelations rels = exec::BindRelations(*query, db->catalog);
    exec::Intermediate t =
        exec::ExactJoin(*query, plan::RelSet::Single(4), rels);
    exec::Intermediate mk =
        exec::ExactJoin(*query, plan::RelSet::Single(2), rels);
    auto edges = query->JoinsBetween(plan::RelSet::Single(4),
                                     plan::RelSet::Single(2));

    exec::Intermediate serial_out, par_out;
    double serial_s = BestSeconds(
        [&] { serial_out = exec::HashJoinIntermediates(t, mk, edges, rels); },
        kReps);
    double par_s = BestSeconds(
        [&] {
          par_out =
              exec::HashJoinIntermediatesParallel(t, mk, edges, rels, ctx);
        },
        kReps);
    if (serial_out.columns != par_out.columns) {
      std::fprintf(stderr, "FAIL: parallel hash-join results differ\n");
      ok = false;
    }
    std::printf("%-28s serial  %10.1f ms       4-thread %10.1f ms       "
                "speedup %.2fx\n",
                "intra hash-join title x mk", serial_s * 1e3, par_s * 1e3,
                serial_s / par_s);
    Record("intra_hash_join_title_mk_4t", serial_s, par_s,
           static_cast<double>(t.size() + mk.size()));
  }
  return ok;
}

// ---- Re-plan path -----------------------------------------------------------

// Builds the paper's round-1 state for one query: plan, materialize the
// lowest join into a real temp table, rewrite, bind — then times
// from-scratch DP vs the incremental carry on the rewritten query, and
// round-0 memo replay vs DP on the original.
bool BenchReplanPathFor(imdb::ImdbDatabase* db, const plan::QuerySpec* query,
                        const char* tag) {
  bool ok = true;
  auto spec = std::make_unique<plan::QuerySpec>(*query);
  auto bound = optimizer::QueryContext::Bind(spec.get(), &db->catalog,
                                             &db->stats);
  if (!bound.ok()) {
    std::fprintf(stderr, "FAIL: bind: %s\n", bound.status().ToString().c_str());
    return false;
  }
  std::unique_ptr<optimizer::QueryContext> ctx = std::move(bound.value());
  optimizer::CostParams params;
  constexpr int kReps = 15;
  constexpr int kInner = 20;  // Plan calls per timed rep

  optimizer::EstimatorModel model(ctx.get());
  optimizer::Planner planner(ctx.get(), &model, params);
  auto planned = planner.Plan();
  if (!planned.ok()) {
    std::fprintf(stderr, "FAIL: plan\n");
    return false;
  }
  optimizer::PlanMemo memo = planner.TakeMemo();

  // Round-0 replay: PlanFromMemo vs from-scratch on the same context.
  {
    double scratch_s = BestSeconds(
        [&] {
          for (int i = 0; i < kInner; ++i) {
            optimizer::EstimatorModel m(ctx.get());
            optimizer::reference::Planner p(ctx.get(), &m, params);
            auto r = p.Plan();
            if (!r.ok()) std::abort();
          }
        },
        kReps) / kInner;
    std::string want, got;
    double replay_s = BestSeconds(
        [&] {
          for (int i = 0; i < kInner; ++i) {
            optimizer::EstimatorModel m(ctx.get());
            optimizer::Planner p(ctx.get(), &m, params);
            auto r = p.PlanFromMemo(memo);
            if (!r.ok()) std::abort();
          }
        },
        kReps) / kInner;
    {
      optimizer::EstimatorModel m(ctx.get());
      optimizer::Planner p(ctx.get(), &m, params);
      auto r = p.PlanFromMemo(memo);
      got = plan::ExplainPlan(*r.value().root, *spec);
      want = plan::ExplainPlan(*planned->root, *spec);
      optimizer::EstimatorModel mr(ctx.get());
      optimizer::reference::Planner pr(ctx.get(), &mr, params);
      auto ref = pr.Plan();
      if (want != got ||
          r.value().planning_cost_units != planned->planning_cost_units ||
          want != plan::ExplainPlan(*ref.value().root, *spec) ||
          ref.value().planning_cost_units != planned->planning_cost_units) {
        std::fprintf(stderr,
                     "FAIL: planner paths disagree (reference / memo replay)\n");
        ok = false;
      }
    }
    std::printf("plan %-8s round-0 memo   scratch %8.1f us  replay %11.1f us  "
                "speedup %.2fx\n",
                tag, scratch_s * 1e6, replay_s * 1e6, scratch_s / replay_s);
    Record(std::string("replan_round0_memo_replay_") + tag, scratch_s,
           replay_s);
  }

  // Materialize the lowest join of the chosen plan, rewrite, re-bind.
  plan::PlanNode* offender = nullptr;
  planned->root->PostOrder([&](plan::PlanNode* node) {
    if (!node->is_join()) return;
    if (offender == nullptr || node->rels.count() < offender->rels.count()) {
      offender = node;
    }
  });
  plan::RelSet subset = offender->rels;
  std::vector<plan::ColumnRef> temp_cols =
      reoptimizer::ColumnsToMaterialize(*spec, subset);
  std::string temp_name = db->catalog.NextTempName("perfsmoke");
  auto write = std::make_unique<plan::PlanNode>();
  write->op = plan::PlanOp::kTempWrite;
  write->rels = subset;
  write->est_rows = offender->est_rows;
  write->temp_table_name = temp_name;
  write->temp_columns = temp_cols;
  write->left = plan::ClonePlan(*offender);
  write->est_cost = write->left->est_cost;
  exec::Executor executor(&db->catalog, &db->stats, params);
  auto executed = executor.Execute(*spec, write.get());
  if (!executed.ok()) {
    std::fprintf(stderr, "FAIL: materialize\n");
    return false;
  }

  reoptimizer::RewriteInfo info;
  auto rewritten = reoptimizer::RewriteWithTemp(*spec, subset, temp_name,
                                                temp_cols, 0, &info);
  auto rebound = optimizer::QueryContext::Bind(rewritten.get(), &db->catalog,
                                               &db->stats);
  if (!rebound.ok()) {
    std::fprintf(stderr, "FAIL: rebind\n");
    return false;
  }
  std::unique_ptr<optimizer::QueryContext> new_ctx =
      std::move(rebound.value());
  optimizer::MemoTranslation translation = reoptimizer::MemoTranslationFor(
      *spec, *rewritten, subset, info);

  // Round >= 1: from-scratch DP vs incremental carry on the rewritten
  // query. Each incremental call pays the full cost it would in the loop:
  // fresh model state (Rebind semantics) plus seeding.
  {
    double scratch_s = BestSeconds(
        [&] {
          for (int i = 0; i < kInner; ++i) {
            optimizer::EstimatorModel m(new_ctx.get());
            optimizer::reference::Planner p(new_ctx.get(), &m, params);
            auto r = p.Plan();
            if (!r.ok()) std::abort();
          }
        },
        kReps) / kInner;
    double incremental_s = BestSeconds(
        [&] {
          for (int i = 0; i < kInner; ++i) {
            optimizer::EstimatorModel m(new_ctx.get());
            optimizer::Planner p(new_ctx.get(), &m, params);
            auto r = p.PlanIncremental(memo, translation);
            if (!r.ok()) std::abort();
          }
        },
        kReps) / kInner;
    optimizer::EstimatorModel m1(new_ctx.get());
    optimizer::reference::Planner p1(new_ctx.get(), &m1, params);
    auto scratch = p1.Plan();
    optimizer::EstimatorModel m2(new_ctx.get());
    optimizer::Planner p2(new_ctx.get(), &m2, params);
    auto incremental = p2.PlanIncremental(memo, translation);
    if (!incremental.value().used_incremental ||
        plan::ExplainPlan(*scratch.value().root, *rewritten) !=
            plan::ExplainPlan(*incremental.value().root, *rewritten) ||
        scratch.value().planning_cost_units !=
            incremental.value().planning_cost_units ||
        scratch.value().num_estimates != incremental.value().num_estimates) {
      std::fprintf(stderr,
                   "FAIL: incremental re-plan disagrees with from-scratch\n");
      ok = false;
    }
    std::printf("replan %-8s round-1      scratch %8.1f us  incremental %6.1f us  "
                "speedup %.2fx\n",
                tag, scratch_s * 1e6, incremental_s * 1e6,
                scratch_s / incremental_s);
    Record(std::string("replan_round1_incremental_") + tag, scratch_s,
           incremental_s);
  }

  (void)db->catalog.DropTable(temp_name);
  db->stats.Remove(temp_name);
  return ok;
}

// ---- ANALYZE ----------------------------------------------------------------

bool BenchAnalyze() {
  bool ok = true;
  common::Rng rng(0xA11A);

  // 1M-row int column: skewed domain plus 2% nulls — the shape of a
  // materialized temp join key.
  {
    storage::Column col(common::DataType::kInt64);
    col.Reserve(1000000);
    for (int64_t i = 0; i < 1000000; ++i) {
      if (rng.Bernoulli(0.02)) {
        col.AppendNull();
      } else if (rng.Bernoulli(0.3)) {
        col.AppendInt(rng.UniformInt(0, 99));  // hot head
      } else {
        col.AppendInt(rng.UniformInt(0, 199999));
      }
    }
    stats::ColumnStats ref_stats, typed_stats;
    double ref_s = BestSeconds(
        [&] { ref_stats = stats::reference::AnalyzeColumn(col); }, 3);
    double typed_s =
        BestSeconds([&] { typed_stats = stats::AnalyzeColumn(col); }, 3);
    if (ref_stats.ToString() != typed_stats.ToString()) {
      std::fprintf(stderr, "FAIL: typed ANALYZE (int) disagrees\n");
      ok = false;
    }
    std::printf("%-28s boxed   %10.1f ms       typed    %10.1f ms       "
                "speedup %.2fx\n",
                "analyze int 1M", ref_s * 1e3, typed_s * 1e3,
                ref_s / typed_s);
    Record("analyze_int_1m", ref_s, typed_s);
  }

  // 100k-row string column (informational: dominated by string copies
  // either way).
  {
    storage::Column col(common::DataType::kString);
    col.Reserve(100000);
    for (int64_t i = 0; i < 100000; ++i) {
      if (rng.Bernoulli(0.05)) {
        col.AppendNull();
      } else {
        col.AppendString("note-" + std::to_string(rng.UniformInt(0, 4999)));
      }
    }
    stats::ColumnStats ref_stats, typed_stats;
    double ref_s = BestSeconds(
        [&] { ref_stats = stats::reference::AnalyzeColumn(col); }, 3);
    double typed_s =
        BestSeconds([&] { typed_stats = stats::AnalyzeColumn(col); }, 3);
    if (ref_stats.ToString() != typed_stats.ToString()) {
      std::fprintf(stderr, "FAIL: typed ANALYZE (string) disagrees\n");
      ok = false;
    }
    std::printf("%-28s boxed   %10.1f ms       typed    %10.1f ms       "
                "speedup %.2fx\n",
                "analyze string 100k", ref_s * 1e3, typed_s * 1e3,
                ref_s / typed_s);
    Record("analyze_string_100k", ref_s, typed_s);
  }
  return ok;
}

// ---- Per-scale kernel benches ----------------------------------------------

// The reference-vs-vectorized kernel comparisons plus the encoding-aware
// comparisons (dictionary codes vs plain strings, zone-map partition
// skipping vs plain), run once per requested scale. `db` is the kAuto
// database (dictionary + partitioned encodings applied); `plain_db` is the
// byte-identical kForcePlain twin, so the encoding rows time the *same*
// vectorized kernel over two physical layouts of the same data.
bool BenchKernels(imdb::ImdbDatabase* db, imdb::ImdbDatabase* plain_db,
                  const std::string& suffix) {
  constexpr int kReps = 9;
  bool ok = true;

  // ---- Filter scan: range + LIKE over title -------------------------------
  {
    const storage::Table* title = db->catalog.FindTable("title");
    plan::ScanPredicate year;
    year.column = plan::ColumnRef{
        0, title->schema().FindColumn("production_year"), ""};
    year.kind = plan::ScanPredicate::Kind::kBetween;
    year.value = common::Value::Int(1990);
    year.value2 = common::Value::Int(2010);
    plan::ScanPredicate like;
    like.column = plan::ColumnRef{0, title->schema().FindColumn("title"), ""};
    like.kind = plan::ScanPredicate::Kind::kLike;
    like.value = common::Value::Str("Saga%");
    std::vector<const plan::ScanPredicate*> filters = {&year, &like};

    std::vector<common::RowIdx> scalar_rows, vec_rows;
    Comparison c{"filter-scan title", title->num_rows(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] { scalar_rows = exec::reference::FilterScan(*title, filters); },
        kReps);
    c.vectorized_s = BestSeconds(
        [&] { vec_rows = exec::FilterScan(*title, filters); }, kReps);
    Report(c, suffix);
    if (scalar_rows != vec_rows) {
      std::fprintf(stderr, "FAIL: filter-scan results differ\n");
      ok = false;
    }
  }

  // ---- Filter scan: integer conjunction over cast_info --------------------
  {
    const storage::Table* ci = db->catalog.FindTable("cast_info");
    plan::ScanPredicate role;
    role.column = plan::ColumnRef{0, ci->schema().FindColumn("role_id"), ""};
    role.kind = plan::ScanPredicate::Kind::kIn;
    role.in_list = {common::Value::Int(1), common::Value::Int(2)};
    plan::ScanPredicate person;
    person.column =
        plan::ColumnRef{0, ci->schema().FindColumn("person_id"), ""};
    person.kind = plan::ScanPredicate::Kind::kCompare;
    person.op = plan::CompareOp::kGt;
    person.value = common::Value::Int(100);
    std::vector<const plan::ScanPredicate*> filters = {&role, &person};

    std::vector<common::RowIdx> scalar_rows, vec_rows;
    Comparison c{"filter-scan cast_info ints", ci->num_rows(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] { scalar_rows = exec::reference::FilterScan(*ci, filters); },
        kReps);
    c.vectorized_s = BestSeconds(
        [&] { vec_rows = exec::FilterScan(*ci, filters); }, kReps);
    Report(c, suffix);
    if (scalar_rows != vec_rows) {
      std::fprintf(stderr, "FAIL: cast_info filter results differ\n");
      ok = false;
    }
  }

  // ---- Filter scan: unanchored string contains (informational) ------------
  // Bounded by per-string access either way; reported for visibility, not
  // part of the >=3x filter/join kernel comparison.
  {
    const storage::Table* ci = db->catalog.FindTable("cast_info");
    plan::ScanPredicate note;
    note.column = plan::ColumnRef{0, ci->schema().FindColumn("note"), ""};
    note.kind = plan::ScanPredicate::Kind::kNotLike;
    note.value = common::Value::Str("%(producer)%");
    std::vector<const plan::ScanPredicate*> filters = {&note};

    std::vector<common::RowIdx> scalar_rows, vec_rows;
    Comparison c{"filter-scan notes %contains%", ci->num_rows(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] { scalar_rows = exec::reference::FilterScan(*ci, filters); },
        kReps);
    c.vectorized_s = BestSeconds(
        [&] { vec_rows = exec::FilterScan(*ci, filters); }, kReps);
    Report(c, suffix);
    if (scalar_rows != vec_rows) {
      std::fprintf(stderr, "FAIL: notes filter results differ\n");
      ok = false;
    }
  }

  // ---- Hash join: title x movie_keyword -----------------------------------
  {
    auto query = workload::MakeQuery6d(db->catalog);
    exec::BoundRelations rels = exec::BindRelations(*query, db->catalog);
    // t = rel 4, mk = rel 2 in 6d (unfiltered scans of both).
    exec::Intermediate t =
        exec::ExactJoin(*query, plan::RelSet::Single(4), rels);
    exec::Intermediate mk =
        exec::ExactJoin(*query, plan::RelSet::Single(2), rels);
    auto edges = query->JoinsBetween(plan::RelSet::Single(4),
                                     plan::RelSet::Single(2));

    exec::Intermediate scalar_out, vec_out;
    Comparison c{"hash-join title x mk", t.size() + mk.size(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] {
          scalar_out =
              exec::reference::HashJoinIntermediates(t, mk, edges, rels);
        },
        kReps);
    c.vectorized_s = BestSeconds(
        [&] { vec_out = exec::HashJoinIntermediates(t, mk, edges, rels); },
        kReps);
    Report(c, suffix);
    if (scalar_out.columns != vec_out.columns) {
      std::fprintf(stderr, "FAIL: hash-join results differ\n");
      ok = false;
    }
  }

  // ---- Dictionary codes vs plain strings ----------------------------------
  // Same vectorized FilterScan, two physical layouts of the same rows:
  // cast_info.note is dictionary-encoded under kAuto (5 distinct values),
  // plain in the twin. Equality compiles to one int32 code compare per row,
  // LIKE to one bitmap probe (the pattern is matched once per dictionary
  // entry at bind time) — the >= 2x acceptance target for string-predicate
  // kernels on dictionary codes.
  {
    const storage::Table* ci = db->catalog.FindTable("cast_info");
    const storage::Table* ci_plain = plain_db->catalog.FindTable("cast_info");
    if (ci->column(ci->schema().FindColumn("note")).encoding() !=
        storage::ColumnEncoding::kDictionary) {
      std::fprintf(stderr,
                   "FAIL: cast_info.note not dictionary-encoded under kAuto\n");
      ok = false;
    }
    plan::ScanPredicate eq;
    eq.column = plan::ColumnRef{0, ci->schema().FindColumn("note"), ""};
    eq.kind = plan::ScanPredicate::Kind::kCompare;
    eq.op = plan::CompareOp::kEq;
    eq.value = common::Value::Str("(producer)");
    std::vector<const plan::ScanPredicate*> eq_filters = {&eq};

    std::vector<common::RowIdx> plain_rows, dict_rows;
    Comparison c{"dict-eq note = (producer)", ci->num_rows(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] { plain_rows = exec::FilterScan(*ci_plain, eq_filters); }, kReps);
    c.vectorized_s = BestSeconds(
        [&] { dict_rows = exec::FilterScan(*ci, eq_filters); }, kReps);
    Report(c, suffix);
    if (plain_rows != dict_rows) {
      std::fprintf(stderr, "FAIL: dict eq results differ from plain\n");
      ok = false;
    }

    plan::ScanPredicate like;
    like.column = plan::ColumnRef{0, ci->schema().FindColumn("note"), ""};
    like.kind = plan::ScanPredicate::Kind::kLike;
    like.value = common::Value::Str("%producer%");
    std::vector<const plan::ScanPredicate*> like_filters = {&like};

    Comparison cl{"dict-like note %producer%", ci->num_rows(), 0, 0};
    cl.scalar_s = BestSeconds(
        [&] { plain_rows = exec::FilterScan(*ci_plain, like_filters); },
        kReps);
    cl.vectorized_s = BestSeconds(
        [&] { dict_rows = exec::FilterScan(*ci, like_filters); }, kReps);
    Report(cl, suffix);
    if (plain_rows != dict_rows) {
      std::fprintf(stderr, "FAIL: dict like results differ from plain\n");
      ok = false;
    }
  }

  // ---- Zone maps vs plain -------------------------------------------------
  // cast_info.id is sequential, so per-partition min/max are tight and a
  // top-2% range predicate skips ~98% of the partitions before the kernel
  // ever touches them. The plain twin runs the identical compare kernel
  // over every batch.
  {
    const storage::Table* ci = db->catalog.FindTable("cast_info");
    const storage::Table* ci_plain = plain_db->catalog.FindTable("cast_info");
    if (ci->column(ci->schema().FindColumn("id")).encoding() !=
        storage::ColumnEncoding::kPartitioned) {
      std::fprintf(stderr,
                   "FAIL: cast_info.id not partitioned under kAuto\n");
      ok = false;
    }
    plan::ScanPredicate hi;
    hi.column = plan::ColumnRef{0, ci->schema().FindColumn("id"), ""};
    hi.kind = plan::ScanPredicate::Kind::kCompare;
    hi.op = plan::CompareOp::kGt;
    hi.value = common::Value::Int(ci->num_rows() * 98 / 100);
    std::vector<const plan::ScanPredicate*> filters = {&hi};

    std::vector<common::RowIdx> plain_rows, zone_rows;
    Comparison c{"zonemap id top-2% range", ci->num_rows(), 0, 0};
    c.scalar_s = BestSeconds(
        [&] { plain_rows = exec::FilterScan(*ci_plain, filters); }, kReps);
    c.vectorized_s = BestSeconds(
        [&] { zone_rows = exec::FilterScan(*ci, filters); }, kReps);
    Report(c, suffix);
    if (plain_rows != zone_rows) {
      std::fprintf(stderr, "FAIL: zone-map results differ from plain\n");
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool ok = true;

  // --scale=a[,b,...] sweeps the kernel benches across database scales,
  // tagging each JSON row name@s<scale>; without the flag a single run at
  // the historical default scale 0.1 keeps row names unsuffixed (the shape
  // bench/history/ snapshots are compared against).
  std::vector<double> sweep = bench::BenchScaleList(argc, argv);
  const bool swept = !sweep.empty();
  if (!swept) sweep.push_back(0.1);

  std::unique_ptr<imdb::ImdbDatabase> first_db;
  for (double scale : sweep) {
    const std::string suffix =
        swept ? common::StrPrintf("@s%g", scale) : std::string();
    imdb::ImdbOptions options;
    options.scale = scale;
    std::fprintf(stderr, "[bench] perf_smoke at scale %g (kAuto + plain twin)\n",
                 scale);
    auto db = imdb::BuildImdbDatabase(options);
    imdb::ImdbOptions plain_options = options;
    plain_options.encoding_policy = storage::EncodingPolicy::kForcePlain;
    auto plain_db = imdb::BuildImdbDatabase(plain_options);
    ok = BenchKernels(db.get(), plain_db.get(), suffix) && ok;
    if (first_db == nullptr) first_db = std::move(db);
  }

  // ---- Intra-query morsel parallelism -------------------------------------
  // Fixed own scale (0.5, the figure sweeps' scale) — run once, not per
  // sweep element.
  ok = BenchIntraQuery() && ok;

  // ---- Planner paths and ANALYZE ------------------------------------------
  // 18a (7-way) plus the workload's largest query: re-planning cost is
  // dominated by the big queries, exactly where the memo carry pays off.
  // Scale-insensitive (planning cost depends on query shape), so run once
  // on the first sweep database.
  {
    imdb::ImdbDatabase* db = first_db.get();
    auto workload = workload::BuildJobLikeWorkload(db->catalog);
    const plan::QuerySpec* largest = nullptr;
    for (const auto& q : workload->queries) {
      if (largest == nullptr || q->num_relations() > largest->num_relations()) {
        largest = q.get();
      }
    }
    auto q18a = workload::MakeQuery18a(db->catalog);
    ok = BenchReplanPathFor(db, q18a.get(), "18a") && ok;
    ok = BenchReplanPathFor(db, largest, largest->name.c_str()) && ok;
  }
  ok = BenchAnalyze() && ok;

  // Output path: first positional (non --flag) argument, for compatibility
  // with the CI invocation `perf_smoke <path>`.
  const char* out_path = "BENCH_perf_smoke.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      out_path = argv[i];
      break;
    }
  }
  WriteJson(out_path);

  if (!ok) return 1;
  std::printf("perf smoke OK (speedups are informational, not gated)\n");
  return 0;
}
