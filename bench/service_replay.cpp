// Load-replay harness for the multi-session SQL service: replays the
// 113-query JOB-like workload from hundreds of simulated clients against
// one embedded SqlServer and proves the determinism invariant under load —
// every client's per-query reply must be byte-identical (aggregates,
// raw_rows, plan/exec cost units, materialization count) to a serial
// single-session run of the same statement.
//
// Workload shape: the first 113 statements cover every query exactly once
// (so the differential check always exercises the full workload); the rest
// draw query popularity from a Zipf distribution (seeded common::Rng), the
// skew real serving sees — a handful of hot statements dominate and the
// cross-session statement cache earns its keep. Statements are dealt
// round-robin to the clients; each client submits open-loop (optionally
// pacing submissions with exponential inter-arrival gaps, --arrival-us)
// and only waits for its tickets after its last submission, so the bounded
// queue's backpressure — not client think time — is what limits admission.
//
//   --sessions=N     simulated clients                (default 128)
//   --queries=K      total statements replayed        (default 339 = 3x113)
//   --zipf=theta     popularity skew, 0 = uniform     (default 0.8)
//   --arrival-us=U   mean inter-arrival gap per client (default 0 = none)
//   --queue=C        server submission-queue capacity (default 64)
//   --reopt=0|1      re-optimization on the SELECTs   (default 1)
//   --timeout-ms=T   per-statement deadline, 0 = none (default 0)
//   --retries=R      transient-failure retries        (default 0)
//   --fault=P:SPEC   arm fail point P with SPEC (common/fail_point.h), e.g.
//                    --fault=service.worker_exec:prob:0.25:7 — armed only
//                    for the replay, after the serial reference pass
//   --out=PATH       JSON report path   (default BENCH_service_replay.json)
//   --scale=S        database scale (precedence over REOPT_BENCH_SCALE;
//                    default 0.4), recorded in the JSON report
//   --threads=N / --intra-threads=M: total thread budget and its intra
//     split, exactly as every other bench (bench_util.h).
//
// Exit code: non-zero iff any reply diverges from the serial reference or
// fails unexpectedly. With a deadline or fault configured, lifecycle
// statuses (DeadlineExceeded, Cancelled, Unavailable, ResourceExhausted)
// are expected outcomes — counted and reported as timeout/shed/retry rates,
// not gate failures; every OK reply must still be byte-identical to the
// serial reference. Latency (wall-clock p50/p99/mean), throughput and
// serving counters go to stdout and the JSON report; CI uploads the JSON
// alongside BENCH_perf_smoke.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/fail_point.h"
#include "common/rng.h"
#include "service/sql_server.h"
#include "sql/engine.h"

namespace {

using namespace reopt;  // NOLINT: benchmark driver

// One statement's expected reply, from the serial single-session pass.
struct Expected {
  std::vector<common::Value> aggregates;
  int64_t raw_rows = 0;
  double plan_cost_units = 0.0;
  double exec_cost_units = 0.0;
  int num_materializations = 0;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

// Statuses the query-lifecycle machinery produces on purpose under a
// deadline or an injected fault; everything else is an unexpected failure.
bool IsLifecycleFailure(common::StatusCode code) {
  return code == common::StatusCode::kDeadlineExceeded ||
         code == common::StatusCode::kCancelled ||
         code == common::StatusCode::kUnavailable ||
         code == common::StatusCode::kResourceExhausted;
}

bool ReplyMatches(const service::QueryReply& reply, const Expected& want,
                  const std::string& query_name) {
  if (!reply.status.ok()) {
    std::fprintf(stderr, "FAIL: %s errored: %s\n", query_name.c_str(),
                 reply.status.ToString().c_str());
    return false;
  }
  const sql::StatementOutcome& got = reply.outcome;
  if (got.aggregates != want.aggregates || got.raw_rows != want.raw_rows ||
      got.plan_cost_units != want.plan_cost_units ||
      got.exec_cost_units != want.exec_cost_units ||
      got.num_materializations != want.num_materializations) {
    std::fprintf(stderr,
                 "FAIL: %s diverged from serial reference "
                 "(rows %lld vs %lld, plan %.3f vs %.3f, exec %.3f vs %.3f, "
                 "mats %d vs %d)\n",
                 query_name.c_str(), static_cast<long long>(got.raw_rows),
                 static_cast<long long>(want.raw_rows), got.plan_cost_units,
                 want.plan_cost_units, got.exec_cost_units,
                 want.exec_cost_units, got.num_materializations,
                 want.num_materializations);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  // All numeric flags are strictly validated (bench_util.h): garbage,
  // negative or out-of-range values error to stderr and use the default —
  // the atof/atol helpers this replaces silently read garbage as 0.
  const int sessions = static_cast<int>(
      bench::BenchFlagInt(argc, argv, "--sessions", 1, 100000, 128));
  const int num_queries = static_cast<int>(bench::BenchFlagInt(
      argc, argv, "--queries", 1, 100000000,
      3 * static_cast<long>(env->workload->queries.size())));
  const double zipf_theta =
      bench::BenchFlagDouble(argc, argv, "--zipf", 0.0, 10.0, 0.8);
  const double arrival_us =
      bench::BenchFlagDouble(argc, argv, "--arrival-us", 0.0, 1e9, 0.0);
  const int queue_capacity = static_cast<int>(
      bench::BenchFlagInt(argc, argv, "--queue", 1, 1 << 20, 64));
  const bool reopt_on =
      bench::BenchFlagInt(argc, argv, "--reopt", 0, 1, 1) != 0;
  const double timeout_ms =
      bench::BenchFlagDouble(argc, argv, "--timeout-ms", 0.0, 1e9, 0.0);
  const int max_retries = static_cast<int>(
      bench::BenchFlagInt(argc, argv, "--retries", 0, 1000, 0));
  const std::string fault = bench::BenchFlagString(argc, argv, "--fault", "");
  const std::string out_path = bench::BenchFlagString(
      argc, argv, "--out", "BENCH_service_replay.json");
  // Validate the fault spec up front (armed only after the reference pass).
  std::string fault_point, fault_spec;
  if (!fault.empty()) {
    const size_t colon = fault.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= fault.size()) {
      std::fprintf(stderr,
                   "FAIL: --fault expects <point>:<spec>, got \"%s\"\n",
                   fault.c_str());
      return 2;
    }
    fault_point = fault.substr(0, colon);
    fault_spec = fault.substr(colon + 1);
  }
  const bool faults_expected = timeout_ms > 0.0 || !fault.empty();

  const size_t num_distinct = env->workload->queries.size();
  bench::PrintCaption("service load replay");
  std::printf(
      "%d clients x %d statements over %zu distinct queries "
      "(zipf theta %.2f), %d worker%s x %d intra thread%s, queue %d, "
      "reopt %s\n",
      sessions, num_queries, num_distinct, zipf_theta, env->threads,
      env->threads == 1 ? "" : "s", env->intra_threads,
      env->intra_threads == 1 ? "" : "s", queue_capacity,
      reopt_on ? "on" : "off");
  if (faults_expected) {
    std::printf("lifecycle: timeout %.1f ms, retries %d, fault %s\n",
                timeout_ms, max_retries, fault.empty() ? "-" : fault.c_str());
  }

  // Render every workload query as the SQL text real clients would submit.
  std::vector<std::string> sql_texts;
  sql_texts.reserve(num_distinct);
  for (const auto& q : env->workload->queries) {
    sql_texts.push_back(sql::RenderSql(*q));
  }

  const reoptimizer::ModelSpec model = reoptimizer::ModelSpec::Estimator();
  const reoptimizer::ReoptOptions reopt =
      reopt_on ? bench::ReoptOn() : reoptimizer::ReoptOptions{};

  // Serial single-session reference: each distinct statement parsed from
  // the same SQL text and run once through the same re-optimizing pipeline,
  // one statement at a time on one thread.
  std::fprintf(stderr, "[bench] computing serial reference (%zu queries)...\n",
               num_distinct);
  std::vector<Expected> expected(num_distinct);
  {
    reoptimizer::QueryRunner runner(&env->db->catalog, &env->db->stats,
                                    optimizer::CostParams{});
    runner.set_temp_namespace("replay_ref");
    for (size_t qi = 0; qi < num_distinct; ++qi) {
      auto parsed =
          sql::ParseStatement(sql_texts[qi], env->db->catalog, "ref");
      if (!parsed.ok()) {
        std::fprintf(stderr, "FAIL: reference parse of %s: %s\n",
                     env->workload->queries[qi]->name.c_str(),
                     parsed.status().ToString().c_str());
        return 1;
      }
      auto session = reoptimizer::QuerySession::Create(
          parsed->query.get(), &env->db->catalog, &env->db->stats);
      if (!session.ok()) {
        std::fprintf(stderr, "FAIL: reference bind: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      auto run = runner.Run(session->get(), model, reopt);
      if (!run.ok()) {
        std::fprintf(stderr, "FAIL: reference run of %s: %s\n",
                     env->workload->queries[qi]->name.c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      expected[qi] = Expected{std::move(run->aggregates), run->raw_rows,
                              run->plan_cost_units, run->exec_cost_units,
                              run->num_materializations};
    }
  }

  // The replayed statement stream: full coverage first, zipf tail after,
  // dealt round-robin to the clients.
  common::Rng rng(0x5EA11CE);
  common::ZipfSampler zipf(static_cast<int64_t>(num_distinct), zipf_theta);
  std::vector<size_t> stream;
  stream.reserve(static_cast<size_t>(num_queries));
  for (size_t qi = 0; qi < num_distinct &&
                      stream.size() < static_cast<size_t>(num_queries);
       ++qi) {
    stream.push_back(qi);
  }
  while (stream.size() < static_cast<size_t>(num_queries)) {
    stream.push_back(static_cast<size_t>(zipf.Sample(&rng) - 1));
  }
  // Per-client inter-arrival gaps must come from per-client seeded streams
  // so the replay stays deterministic regardless of thread interleaving.
  std::vector<uint64_t> client_seeds(static_cast<size_t>(sessions));
  for (auto& seed : client_seeds) seed = rng.Next();

  // Arm the fault only now: the serial reference above must be fault-free.
  if (!fault.empty()) {
    common::Status armed = common::failpoint::Arm(fault_point, fault_spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "FAIL: --fault: %s\n", armed.ToString().c_str());
      return 2;
    }
  }

  service::ServerOptions options;
  options.session_workers = env->threads;
  options.intra_query_threads = env->intra_threads;
  options.queue_capacity = queue_capacity;
  options.model = model;
  options.reopt = reopt;
  options.default_timeout_seconds = timeout_ms / 1e3;
  options.max_retries = max_retries;
  service::SqlServer server(&env->db->catalog, &env->db->stats, options);

  struct ClientWork {
    service::SqlSession* session = nullptr;
    std::vector<size_t> statements;                // indices into stream
    std::vector<service::TicketPtr> tickets;       // parallel to statements
  };
  std::vector<ClientWork> clients(static_cast<size_t>(sessions));
  for (size_t c = 0; c < clients.size(); ++c) {
    clients[c].session = server.OpenSession("client" + std::to_string(c));
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    clients[i % clients.size()].statements.push_back(i);
  }

  std::fprintf(stderr, "[bench] replaying...\n");
  const auto replay_start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients.size());
  for (size_t c = 0; c < clients.size(); ++c) {
    client_threads.emplace_back([&, c] {
      ClientWork& work = clients[c];
      common::Rng arrivals(client_seeds[c]);
      for (size_t idx : work.statements) {
        if (arrival_us > 0.0) {
          // Exponential inter-arrival (open-loop Poisson process).
          double gap =
              -arrival_us * std::log(1.0 - arrivals.UniformDouble());
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::micro>(gap));
        }
        work.tickets.push_back(
            work.session->Submit(sql_texts[stream[idx]]));
      }
      for (const service::TicketPtr& ticket : work.tickets) ticket->Wait();
    });
  }
  for (std::thread& t : client_threads) t.join();
  const double replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    replay_start)
          .count();
  server.Shutdown();
  common::failpoint::DisarmAll();

  // Differential check: every reply against the serial reference. Under a
  // configured deadline or fault, lifecycle statuses are expected outcomes
  // (counted, not failed); every OK reply must still match byte-for-byte.
  bool ok = true;
  int64_t mismatches = 0;
  int64_t lifecycle_failures = 0;
  for (const ClientWork& work : clients) {
    for (size_t i = 0; i < work.statements.size(); ++i) {
      const size_t qi = stream[work.statements[i]];
      const service::QueryReply& reply = work.tickets[i]->Wait();
      if (faults_expected && !reply.status.ok() &&
          IsLifecycleFailure(reply.status.code())) {
        ++lifecycle_failures;
        continue;
      }
      if (!ReplyMatches(reply, expected[qi],
                        env->workload->queries[qi]->name)) {
        ok = false;
        if (++mismatches >= 10) {
          std::fprintf(stderr, "FAIL: ... further mismatches suppressed\n");
          break;
        }
      }
    }
    if (mismatches >= 10) break;
  }

  const service::ServerStats stats = server.Snapshot();
  const double p50 = Percentile(stats.wall_latency_seconds, 0.50);
  const double p99 = Percentile(stats.wall_latency_seconds, 0.99);
  double mean = 0.0;
  for (double s : stats.wall_latency_seconds) mean += s;
  if (!stats.wall_latency_seconds.empty()) {
    mean /= static_cast<double>(stats.wall_latency_seconds.size());
  }
  const double throughput =
      replay_seconds > 0.0
          ? static_cast<double>(stats.completed) / replay_seconds
          : 0.0;

  const double rate_denom =
      num_queries > 0 ? static_cast<double>(num_queries) : 1.0;
  const double timeout_rate =
      static_cast<double>(stats.timed_out) / rate_denom;
  const double shed_rate = static_cast<double>(stats.rejected) / rate_denom;
  const double retry_rate = static_cast<double>(stats.retried) / rate_denom;

  std::printf(
      "completed %lld  failed %lld  rejected %lld  cache hits %lld\n",
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.failed),
      static_cast<long long>(stats.rejected),
      static_cast<long long>(stats.cache_hits));
  if (faults_expected) {
    std::printf(
        "lifecycle: timed out %lld (%.1f%%)  cancelled %lld  shed %.1f%%  "
        "retries %lld (%.2f/stmt)  degraded %lld\n",
        static_cast<long long>(stats.timed_out), timeout_rate * 100.0,
        static_cast<long long>(stats.cancelled), shed_rate * 100.0,
        static_cast<long long>(stats.retried), retry_rate,
        static_cast<long long>(stats.degraded));
  }
  std::printf(
      "latency p50 %.2f ms  p99 %.2f ms  mean %.2f ms  "
      "throughput %.1f q/s  wall %.2f s\n",
      p50 * 1e3, p99 * 1e3, mean * 1e3, throughput, replay_seconds);
  std::printf("simulated: plan %.2f s  exec %.2f s\n", stats.sim_plan_seconds,
              stats.sim_exec_seconds);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARN: cannot write %s\n", out_path.c_str());
  } else {
    std::fprintf(
        f,
        "{\n"
        "  \"sessions\": %d,\n"
        "  \"session_workers\": %d,\n"
        "  \"intra_query_threads\": %d,\n"
        "  \"queue_capacity\": %d,\n"
        "  \"scale\": %.3f,\n"
        "  \"queries\": %d,\n"
        "  \"distinct_queries\": %zu,\n"
        "  \"zipf_theta\": %.3f,\n"
        "  \"reopt\": %s,\n"
        "  \"timeout_ms\": %.3f,\n"
        "  \"max_retries\": %d,\n"
        "  \"fault\": \"%s\",\n"
        "  \"completed\": %lld,\n"
        "  \"failed\": %lld,\n"
        "  \"rejected\": %lld,\n"
        "  \"cache_hits\": %lld,\n"
        "  \"timed_out\": %lld,\n"
        "  \"cancelled\": %lld,\n"
        "  \"retried\": %lld,\n"
        "  \"degraded\": %lld,\n"
        "  \"timeout_rate\": %.4f,\n"
        "  \"shed_rate\": %.4f,\n"
        "  \"retry_rate\": %.4f,\n"
        "  \"p50_ms\": %.3f,\n"
        "  \"p99_ms\": %.3f,\n"
        "  \"mean_ms\": %.3f,\n"
        "  \"throughput_qps\": %.2f,\n"
        "  \"wall_seconds\": %.3f,\n"
        "  \"sim_plan_seconds\": %.3f,\n"
        "  \"sim_exec_seconds\": %.3f,\n"
        "  \"deterministic\": %s\n"
        "}\n",
        sessions, env->threads, env->intra_threads, queue_capacity,
        env->scale, num_queries, num_distinct, zipf_theta,
        reopt_on ? "true" : "false",
        timeout_ms, max_retries, fault.c_str(),
        static_cast<long long>(stats.completed),
        static_cast<long long>(stats.failed),
        static_cast<long long>(stats.rejected),
        static_cast<long long>(stats.cache_hits),
        static_cast<long long>(stats.timed_out),
        static_cast<long long>(stats.cancelled),
        static_cast<long long>(stats.retried),
        static_cast<long long>(stats.degraded), timeout_rate, shed_rate,
        retry_rate, p50 * 1e3, p99 * 1e3,
        mean * 1e3, throughput, replay_seconds, stats.sim_plan_seconds,
        stats.sim_exec_seconds, ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  // Gate: divergent or unexpectedly-failed replies fail the run. Lifecycle
  // failures under a configured deadline/fault were skipped above and
  // stats.failed only gates the fault-free configuration.
  if (!ok || (!faults_expected && stats.failed > 0)) {
    std::fprintf(stderr,
                 "FAIL: replay diverged from the serial reference\n");
    return 1;
  }
  std::printf("service replay OK: %lld replies byte-identical to the serial "
              "single-session run",
              static_cast<long long>(stats.completed));
  if (faults_expected) {
    std::printf(" (%lld lifecycle failures tolerated)",
                static_cast<long long>(lifecycle_failures));
  }
  std::printf("\n");
  return 0;
}
