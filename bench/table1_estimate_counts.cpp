// Table I: number of cardinality estimates the optimizer makes on joins of
// N tables, summed over all 113 queries. The paper's point: the vast
// majority of the (tens of thousands of) estimates are on multi-way joins,
// which is where the compounding errors live.
#include "bench/bench_util.h"

#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  std::map<int, int64_t> totals;
  int64_t grand_total = 0;
  optimizer::CostParams params;
  for (const auto& query : env->workload->queries) {
    auto session = env->runner->GetSession(query.get());
    if (!session.ok()) {
      std::fprintf(stderr, "bind error on %s\n", query->name.c_str());
      return 1;
    }
    optimizer::EstimatorModel model(session.value()->ctx());
    optimizer::Planner planner(session.value()->ctx(), &model, params);
    auto planned = planner.Plan();
    if (!planned.ok()) return 1;
    for (const auto& [size, count] : model.estimates_by_size()) {
      totals[size] += count;
      grand_total += count;
    }
  }
  bench::PrintCaption(
      "Table I: number of cardinality estimates on joins of N tables");
  std::printf("%-18s %12s\n", "# tables in join", "# estimates");
  for (const auto& [size, count] : totals) {
    std::printf("%-18d %12lld\n", size, static_cast<long long>(count));
  }
  std::printf("%-18s %12lld\n", "total",
              static_cast<long long>(grand_total));
  return 0;
}
