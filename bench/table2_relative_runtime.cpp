// Table II: distribution of per-query execution time with default
// (PostgreSQL-style) estimation relative to perfect-(17). The paper's
// shape: most queries are near-optimal, but a long tail of ~14 queries is
// more than 5x slower.
#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  std::vector<workload::SweepConfig> configs = {
      {"default", reoptimizer::ModelSpec::Estimator(), {}},
      {"perfect", reoptimizer::ModelSpec::PerfectN(17), {}},
  };
  auto results =
      env->runner->RunSweep(*env->workload, configs, env->threads,
                            bench::SweepProgress());
  if (!results.ok()) return 1;
  const workload::WorkloadRunResult* pg = &results.value()[0];
  const workload::WorkloadRunResult* perfect = &results.value()[1];

  struct Bucket {
    const char* label;
    double lo;
    double hi;
    int count = 0;
  };
  Bucket buckets[] = {{"0.1 - 0.8", 0.0, 0.8, 0},
                      {"0.8 - 1.2", 0.8, 1.2, 0},
                      {"1.2 - 2.0", 1.2, 2.0, 0},
                      {"2.0 - 5.0", 2.0, 5.0, 0},
                      {"> 5.0", 5.0, 1e300, 0}};
  for (size_t i = 0; i < pg->records.size(); ++i) {
    double ratio = pg->records[i].exec_seconds /
                   std::max(1e-9, perfect->records[i].exec_seconds);
    for (Bucket& b : buckets) {
      if (ratio >= b.lo && ratio < b.hi) {
        ++b.count;
        break;
      }
    }
  }
  bench::PrintCaption(
      "Table II: execution time of JOB queries with default estimation "
      "relative to perfect-(17)");
  std::printf("%-14s %10s\n", "rel. runtime", "# queries");
  for (const Bucket& b : buckets) {
    std::printf("%-14s %10d\n", b.label, b.count);
  }
  std::printf("\ntotals: PG exec %.2f s, perfect exec %.2f s (%.2fx)\n",
              pg->TotalExecSeconds(), perfect->TotalExecSeconds(),
              pg->TotalExecSeconds() /
                  std::max(1e-9, perfect->TotalExecSeconds()));
  return 0;
}
