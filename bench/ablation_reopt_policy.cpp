// Ablation: re-optimization policy choices the paper discusses.
//   * trigger pick: materialize the LOWEST offending join (the paper's
//     choice) vs the join with the LARGEST Q-error,
//   * the Sec. V-D mitigation: gate re-optimization on the plan's
//     estimated cost ("re-optimize only long-running queries"), which
//     removes the short-query regressions at almost no cost.
#include <algorithm>

#include "bench/bench_util.h"

#include "common/sim_time.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  reoptimizer::ReoptOptions lowest = bench::ReoptOn(32.0);
  reoptimizer::ReoptOptions maxq = bench::ReoptOn(32.0);
  maxq.pick = reoptimizer::ReoptOptions::Pick::kMaxQError;
  reoptimizer::ReoptOptions gated = bench::ReoptOn(32.0);
  // "Long-running" = estimated cost above ~2 simulated seconds.
  gated.min_plan_cost_units = 2.0 * common::kCostUnitsPerSecond;

  std::vector<workload::SweepConfig> configs = {
      {"default estimation", reoptimizer::ModelSpec::Estimator(), {}},
      {"lowest join (paper)", reoptimizer::ModelSpec::Estimator(), lowest},
      {"max Q-error join", reoptimizer::ModelSpec::Estimator(), maxq},
      {"lowest + long-only", reoptimizer::ModelSpec::Estimator(), gated},
  };
  auto results =
      env->runner->RunSweep(*env->workload, configs, env->threads,
                            bench::SweepProgress());
  if (!results.ok()) return 1;
  const workload::WorkloadRunResult* pg = &results.value()[0];

  bench::PrintCaption(
      "Ablation: re-optimization trigger policy (threshold 32)");
  std::printf("%-22s %10s %10s %8s %16s\n", "policy", "plan (s)",
              "exec (s)", "# temps", "worst regression");
  for (size_t c = 1; c < configs.size(); ++c) {
    const workload::WorkloadRunResult& run = results.value()[c];
    int temps = 0;
    double worst = 0.0;
    std::string worst_name;
    for (size_t i = 0; i < run.records.size(); ++i) {
      temps += run.records[i].materializations;
      double regression = run.records[i].exec_seconds /
                          std::max(1e-9, pg->records[i].exec_seconds);
      if (regression > worst) {
        worst = regression;
        worst_name = run.records[i].name;
      }
    }
    std::printf("%-22s %10.2f %10.2f %8d %10.2fx (%s)\n",
                configs[c].label.c_str(), run.TotalPlanSeconds(),
                run.TotalExecSeconds(), temps, worst, worst_name.c_str());
  }
  std::printf("(baseline: default estimation exec %.2f s)\n",
              pg->TotalExecSeconds());
  return 0;
}
