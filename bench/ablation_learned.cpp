// Ablation: AQO-style learned cardinalities from re-optimization feedback
// (ROADMAP item 1). The re-opt loop pays for true join cardinalities every
// round; the CardinalityKnowledgeBase keeps them across queries and a kNN
// predictor serves them back to the planner (ModelSpec::Learned). This
// driver measures what that buys on the 113-query workload:
//
//   estimator      — the paper's baseline, re-optimization at threshold 32
//   perfect-n      — oracle estimates (the floor for re-opt rounds)
//   learned-cold   — empty base, learning on: queries only benefit from
//                    feedback harvested by *earlier* queries in the pass
//   learned-warm   — after two full warming passes, base frozen: the
//                    steady state a long-running service converges to
//   learned-warm (no re-opt) — the paper's central question inverted: how
//                    far do learned estimates alone get without the
//                    materialization safety net?
//
// The headline gate (exit code, CI): learned-warm must need fewer mean
// re-optimization rounds per query than the plain estimator. Results go to
// stdout and BENCH_learned.json (--out=PATH).
//
// Determinism: warming passes run serially (commit order is part of the
// learned state); measured passes with a frozen base fan out over
// --threads workers, which cannot change results (see workload/runner.h).
#include <cinttypes>

#include "bench/bench_util.h"
#include "optimizer/knowledge_base.h"

using namespace reopt;  // NOLINT: benchmark driver

namespace {

struct ConfigSummary {
  const char* key;
  const char* label;
  double mean_rounds = 0.0;
  int total_materializations = 0;
  double plan_seconds = 0.0;
  double exec_seconds = 0.0;
};

ConfigSummary Summarize(const char* key, const char* label,
                        const workload::WorkloadRunResult& result) {
  ConfigSummary s;
  s.key = key;
  s.label = label;
  for (const workload::QueryRecord& r : result.records) {
    s.total_materializations += r.materializations;
  }
  s.mean_rounds = result.records.empty()
                      ? 0.0
                      : static_cast<double>(s.total_materializations) /
                            static_cast<double>(result.records.size());
  s.plan_seconds = result.TotalPlanSeconds();
  s.exec_seconds = result.TotalExecSeconds();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  const std::string out_path =
      bench::BenchFlagString(argc, argv, "--out", "BENCH_learned.json");
  const reoptimizer::ReoptOptions reopt = bench::ReoptOn(32.0);
  const int perfect_n = 17;  // covers the largest workload query

  // Baselines run with no knowledge base attached: nothing observed.
  std::vector<workload::SweepConfig> baselines = {
      {"estimator", reoptimizer::ModelSpec::Estimator(), reopt},
      {"perfect-n", reoptimizer::ModelSpec::PerfectN(perfect_n), reopt},
  };
  auto baseline_results = env->runner->RunSweep(
      *env->workload, baselines, env->threads, bench::SweepProgress());
  if (!baseline_results.ok()) {
    std::fprintf(stderr, "FAIL: baseline sweep: %s\n",
                 baseline_results.status().ToString().c_str());
    return 1;
  }

  optimizer::CardinalityKnowledgeBase kb;
  env->runner->set_knowledge_base(&kb);

  // Cold: empty base, learning on, measured. Serial — observation commit
  // order is part of the learned state, so this pass must not depend on
  // worker scheduling.
  std::fprintf(stderr, "[bench] learned-cold pass (serial, learning)...\n");
  auto cold = env->runner->RunAll(*env->workload,
                                  reoptimizer::ModelSpec::Learned(), reopt,
                                  /*num_threads=*/1);
  if (!cold.ok()) {
    std::fprintf(stderr, "FAIL: learned-cold: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }

  // One more warming pass (unmeasured): predictions now reshape plans, so
  // a second pass observes the joins those plans actually contain.
  std::fprintf(stderr, "[bench] warming pass (serial, learning)...\n");
  auto warming = env->runner->RunAll(*env->workload,
                                     reoptimizer::ModelSpec::Learned(), reopt,
                                     /*num_threads=*/1);
  if (!warming.ok()) {
    std::fprintf(stderr, "FAIL: warming pass: %s\n",
                 warming.status().ToString().c_str());
    return 1;
  }

  // Warm: base frozen, measured — parallel-safe again.
  kb.set_learning_enabled(false);
  std::fprintf(stderr, "[bench] learned-warm passes (frozen base)...\n");
  std::vector<workload::SweepConfig> warm_configs = {
      {"learned-warm", reoptimizer::ModelSpec::Learned(), reopt},
      {"learned-warm-noreopt", reoptimizer::ModelSpec::Learned(), {}},
  };
  auto warm_results = env->runner->RunSweep(
      *env->workload, warm_configs, env->threads, bench::SweepProgress());
  if (!warm_results.ok()) {
    std::fprintf(stderr, "FAIL: warm sweep: %s\n",
                 warm_results.status().ToString().c_str());
    return 1;
  }
  env->runner->set_knowledge_base(nullptr);

  ConfigSummary summaries[] = {
      Summarize("estimator", "estimator + re-opt(32)",
                baseline_results.value()[0]),
      Summarize("learned_cold", "learned-cold + re-opt(32)", *cold),
      Summarize("learned_warm", "learned-warm + re-opt(32)",
                warm_results.value()[0]),
      Summarize("learned_warm_noreopt", "learned-warm, no re-opt",
                warm_results.value()[1]),
      Summarize("perfect_n", "perfect-n(17) + re-opt(32)",
                baseline_results.value()[1]),
  };

  bench::PrintCaption(
      "Ablation: learned cardinalities from re-opt feedback (AQO-style)");
  std::printf("%-28s %12s %8s %10s %10s\n", "configuration", "mean rounds",
              "mats", "plan (s)", "exec (s)");
  for (const ConfigSummary& s : summaries) {
    std::printf("%-28s %12.3f %8d %10.2f %10.2f\n", s.label, s.mean_rounds,
                s.total_materializations, s.plan_seconds, s.exec_seconds);
  }

  const optimizer::KnowledgeBaseStats kb_stats = kb.Stats();
  std::printf(
      "\nknowledge base: %" PRId64 " subspaces, %" PRId64
      " observations (%" PRId64 " inserts, %" PRId64 " updates, %" PRId64
      " evictions); %" PRId64 " predictions, %" PRId64 " hits (%" PRId64
      " exact)\n",
      kb_stats.spaces, kb_stats.observations, kb_stats.inserts,
      kb_stats.updates, kb_stats.evictions, kb_stats.predictions,
      kb_stats.hits, kb_stats.exact_hits);

  const ConfigSummary& estimator = summaries[0];
  const ConfigSummary& warm = summaries[2];
  const bool reduces = warm.mean_rounds < estimator.mean_rounds;
  std::printf(
      "learned-warm mean rounds %.3f vs estimator %.3f: %s\n",
      warm.mean_rounds, estimator.mean_rounds,
      reduces ? "feedback learning reduces re-optimization"
              : "NO REDUCTION — learned estimates are not helping");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARN: cannot write %s\n", out_path.c_str());
  } else {
    std::fprintf(f, "{\n  \"queries\": %zu,\n  \"qerror_threshold\": %.1f,\n",
                 env->workload->queries.size(), reopt.qerror_threshold);
    for (const ConfigSummary& s : summaries) {
      std::fprintf(f,
                   "  \"%s\": {\"mean_rounds\": %.4f, "
                   "\"materializations\": %d, \"plan_seconds\": %.3f, "
                   "\"exec_seconds\": %.3f},\n",
                   s.key, s.mean_rounds, s.total_materializations,
                   s.plan_seconds, s.exec_seconds);
    }
    std::fprintf(f,
                 "  \"kb\": {\"spaces\": %" PRId64 ", \"observations\": %" PRId64
                 ", \"predictions\": %" PRId64 ", \"hits\": %" PRId64
                 ", \"exact_hits\": %" PRId64 "},\n",
                 kb_stats.spaces, kb_stats.observations, kb_stats.predictions,
                 kb_stats.hits, kb_stats.exact_hits);
    std::fprintf(f, "  \"learned_warm_reduces_rounds\": %s\n}\n",
                 reduces ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!reduces) {
    std::fprintf(stderr,
                 "FAIL: learned-warm did not reduce mean re-optimization "
                 "rounds vs the estimator\n");
    return 1;
  }
  return 0;
}
