// Table VI: distribution of per-query execution time with re-optimization
// relative to perfect-(17). Compared to Table II, the 2.0-5.0 and >5.0
// buckets shrink and the 0.8-1.2 bucket grows — many more queries run
// close to optimal after re-optimization.
#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  std::vector<workload::SweepConfig> configs = {
      {"re-opt", reoptimizer::ModelSpec::Estimator(), bench::ReoptOn(32.0)},
      {"perfect", reoptimizer::ModelSpec::PerfectN(17), {}},
      {"default", reoptimizer::ModelSpec::Estimator(), {}},
  };
  auto results =
      env->runner->RunSweep(*env->workload, configs, env->threads,
                            bench::SweepProgress());
  if (!results.ok()) return 1;
  const workload::WorkloadRunResult* re = &results.value()[0];
  const workload::WorkloadRunResult* perfect = &results.value()[1];
  const workload::WorkloadRunResult* pg = &results.value()[2];

  struct Bucket {
    const char* label;
    double lo;
    double hi;
    int reopt = 0;
    int baseline = 0;
  };
  Bucket buckets[] = {{"0.1 - 0.8", 0.0, 0.8, 0, 0},
                      {"0.8 - 1.2", 0.8, 1.2, 0, 0},
                      {"1.2 - 2.0", 1.2, 2.0, 0, 0},
                      {"2.0 - 5.0", 2.0, 5.0, 0, 0},
                      {"> 5.0", 5.0, 1e300, 0, 0}};
  for (size_t i = 0; i < re->records.size(); ++i) {
    double denom = std::max(1e-9, perfect->records[i].exec_seconds);
    double r_reopt = re->records[i].exec_seconds / denom;
    double r_pg = pg->records[i].exec_seconds / denom;
    for (Bucket& b : buckets) {
      if (r_reopt >= b.lo && r_reopt < b.hi) ++b.reopt;
      if (r_pg >= b.lo && r_pg < b.hi) ++b.baseline;
    }
  }
  bench::PrintCaption(
      "Table VI: execution time with re-optimization relative to "
      "perfect-(17)");
  std::printf("%-14s %12s %16s\n", "rel. runtime", "re-optimized",
              "(default, Tab II)");
  for (const Bucket& b : buckets) {
    std::printf("%-14s %12d %16d\n", b.label, b.reopt, b.baseline);
  }
  std::printf("\nworkload exec: re-opt %.2f s vs default %.2f s (%.0f%% "
              "improvement)\n",
              re->TotalExecSeconds(), pg->TotalExecSeconds(),
              100.0 * (1.0 - re->TotalExecSeconds() /
                                 std::max(1e-9, pg->TotalExecSeconds())));
  return 0;
}
