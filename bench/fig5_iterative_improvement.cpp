// Figure 5: LEO-style iterative improvement of cardinality estimates on
// queries 16b, 25c and 30a: execution time per iteration as the lowest
// mis-estimated subtree is corrected each round. Paper shape: 16b takes
// many iterations to find a good plan; 25c/30a find one quickly but then
// *regress* as further partial corrections mislead the optimizer, before
// converging. The dotted reference is the perfect-estimates time.
#include "bench/bench_util.h"

#include "reopt/iterative_feedback.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  optimizer::CostParams params;
  bench::PrintCaption(
      "Figure 5: execution time under iterative estimate correction");
  for (const char* name : {"16b", "25c", "30a"}) {
    const plan::QuerySpec* query = env->workload->Find(name);
    auto session = env->runner->GetSession(query);
    if (!session.ok()) return 1;
    auto result = reoptimizer::RunIterativeFeedback(
        session.value(), &env->db->catalog, &env->db->stats, params);
    if (!result.ok()) {
      std::fprintf(stderr, "error on %s: %s\n", name,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nquery %s (perfect estimates: %.3f s, %s)\n", name,
                result->perfect_exec_seconds,
                result->converged ? "converged" : "max iterations");
    std::printf("%-10s %12s %14s %12s\n", "iteration", "exec (s)",
                "corrected q", "# injected");
    for (size_t i = 0; i < result->iterations.size(); ++i) {
      const reoptimizer::IterationRecord& it = result->iterations[i];
      std::printf("%-10d %12.3f %14.1f %12lld\n", static_cast<int>(i),
                  it.exec_seconds, it.corrected_qerror,
                  static_cast<long long>(it.injected_after));
    }
  }
  return 0;
}
