// Figure 2: total execution and planning time of all 113 queries with
// perfect-(n) cardinalities, n = 0..17. The paper's shape: flat until
// perfect-(3), a large drop at perfect-(4)/(5), perfect-(17) about half
// the default total.
#include <vector>

#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  std::vector<workload::SweepConfig> configs;
  for (int n = 0; n <= 17; ++n) {
    configs.push_back({std::to_string(n),
                       reoptimizer::ModelSpec::PerfectN(n),
                       {}});
  }
  auto results =
      env->runner->RunSweep(*env->workload, configs, env->threads,
                            bench::SweepProgress());
  if (!results.ok()) {
    std::fprintf(stderr, "error: %s\n", results.status().ToString().c_str());
    return 1;
  }
  bench::PrintCaption(
      "Figure 2: plan+execute totals vs perfect-(n), all 113 queries");
  std::printf("%-12s %12s %12s %12s\n", "perfect-(n)", "plan (s)",
              "exec (s)", "total (s)");
  for (size_t i = 0; i < configs.size(); ++i) {
    const workload::WorkloadRunResult& result = results.value()[i];
    double plan = result.TotalPlanSeconds();
    double exec = result.TotalExecSeconds();
    std::printf("%-12s %12.2f %12.2f %12.2f\n", configs[i].label.c_str(),
                plan, exec, plan + exec);
  }
  return 0;
}
