// Figure 2: total execution and planning time of all 113 queries with
// perfect-(n) cardinalities, n = 0..17. The paper's shape: flat until
// perfect-(3), a large drop at perfect-(4)/(5), perfect-(17) about half
// the default total.
#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main() {
  auto env = bench::MakeBenchEnv();
  bench::PrintCaption(
      "Figure 2: plan+execute totals vs perfect-(n), all 113 queries");
  std::printf("%-12s %12s %12s %12s\n", "perfect-(n)", "plan (s)",
              "exec (s)", "total (s)");
  for (int n = 0; n <= 17; ++n) {
    auto result = env->runner->RunAll(
        *env->workload, reoptimizer::ModelSpec::PerfectN(n), {});
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    double plan = result->TotalPlanSeconds();
    double exec = result->TotalExecSeconds();
    std::printf("%-12d %12.2f %12.2f %12.2f\n", n, plan, exec, plan + exec);
    std::fflush(stdout);
  }
  return 0;
}
