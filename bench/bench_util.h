// Shared benchmark environment: one synthetic IMDB database + the
// 113-query workload + a session-caching runner. Scale is configurable via
// REOPT_BENCH_SCALE (default 0.4) so the full suite stays laptop-friendly;
// shapes, not absolute numbers, are the reproduction target (docs/ARCHITECTURE.md).
#ifndef REOPT_BENCH_BENCH_UTIL_H_
#define REOPT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "imdb/imdb.h"
#include "reopt/query_runner.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt::bench {

struct BenchEnv {
  std::unique_ptr<imdb::ImdbDatabase> db;
  std::unique_ptr<workload::JobLikeWorkload> workload;
  std::unique_ptr<workload::WorkloadRunner> runner;
};

inline double BenchScale() {
  const char* env = std::getenv("REOPT_BENCH_SCALE");
  if (env != nullptr) {
    double scale = std::atof(env);
    if (scale > 0.0) return scale;
  }
  return 0.4;
}

inline std::unique_ptr<BenchEnv> MakeBenchEnv() {
  auto env = std::make_unique<BenchEnv>();
  imdb::ImdbOptions options;
  options.scale = BenchScale();
  std::fprintf(stderr, "[bench] generating IMDB database at scale %.2f...\n",
               options.scale);
  env->db = imdb::BuildImdbDatabase(options);
  env->workload = workload::BuildJobLikeWorkload(env->db->catalog);
  env->runner = std::make_unique<workload::WorkloadRunner>(env->db.get());
  return env;
}

inline reoptimizer::ReoptOptions ReoptOn(double threshold = 32.0) {
  reoptimizer::ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = threshold;
  return r;
}

/// Prints a horizontal rule + centered caption, paper-style.
inline void PrintCaption(const std::string& caption) {
  std::printf("\n==== %s ====\n", caption.c_str());
}

}  // namespace reopt::bench

#endif  // REOPT_BENCH_BENCH_UTIL_H_
