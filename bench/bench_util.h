// Shared benchmark environment: one synthetic IMDB database + the
// 113-query workload + a session-caching runner. Scale is configurable via
// --scale=N (precedence) or REOPT_BENCH_SCALE (default 0.4) so the full
// suite stays laptop-friendly; perf_smoke additionally accepts a
// comma-separated --scale sweep (rows tagged name@s<scale>);
// shapes, not absolute numbers, are the reproduction target (docs/ARCHITECTURE.md).
//
// Parallelism: every driver accepts --threads=N (or REOPT_BENCH_THREADS);
// N=0 means all hardware threads, and N is the *total* thread budget.
// --intra-threads=M (REOPT_BENCH_INTRA_THREADS) carves the budget into
// max(1, N/M) inter-query workers, each executing its query over M morsel
// workers, so the two levels never oversubscribe the budget. Simulated-time
// results are byte-identical at any setting — threads only shrink
// wall-clock (see docs/ARCHITECTURE.md, "Concurrency model") — so the
// default stays 1 for predictable machine load, not for reproducibility.
// Malformed or negative values are rejected with an error message and
// clamped to 1 (serial) rather than silently misread.
#ifndef REOPT_BENCH_BENCH_UTIL_H_
#define REOPT_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "imdb/imdb.h"
#include "reopt/query_runner.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt::bench {

struct BenchEnv {
  std::unique_ptr<imdb::ImdbDatabase> db;
  std::unique_ptr<workload::JobLikeWorkload> workload;
  std::unique_ptr<workload::WorkloadRunner> runner;
  /// Inter-query worker threads for RunAll/RunSweep: the --threads budget
  /// divided by intra_threads (floor, min 1).
  int threads = 1;
  /// Morsel workers per executing query (--intra-threads; default 1).
  /// Already applied to `runner` via set_intra_query_threads.
  int intra_threads = 1;
  /// Database scale the env was generated at (--scale / REOPT_BENCH_SCALE).
  double scale = 0.4;
};

/// Strictly parses one floating-point knob: full-string numeric, finite,
/// within [min_value, max_value]. Garbage (non-numeric, trailing junk,
/// empty), NaN/inf and out-of-range values produce a clear stderr error and
/// return `fallback` — a bench must never silently run with a misread
/// value (the atof it replaces returned 0.0 for garbage).
inline double ParseDoubleValue(const char* s, const char* what,
                               double min_value, double max_value,
                               double fallback) {
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    std::fprintf(stderr,
                 "[bench] ERROR: %s expects a number in [%g, %g], got "
                 "\"%s\"; using %g\n",
                 what, min_value, max_value, s, fallback);
    return fallback;
  }
  if (v < min_value || v > max_value) {
    std::fprintf(stderr,
                 "[bench] ERROR: %s = %g is outside [%g, %g]; using %g\n",
                 what, v, min_value, max_value, fallback);
    return fallback;
  }
  return v;
}

/// Strictly parses one integer knob, same contract as ParseDoubleValue.
inline long ParseIntValue(const char* s, const char* what, long min_value,
                          long max_value, long fallback) {
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "[bench] ERROR: %s expects an integer in [%ld, %ld], got "
                 "\"%s\"; using %ld\n",
                 what, min_value, max_value, s, fallback);
    return fallback;
  }
  if (v < min_value || v > max_value) {
    std::fprintf(stderr,
                 "[bench] ERROR: %s = %ld is outside [%ld, %ld]; using %ld\n",
                 what, v, min_value, max_value, fallback);
    return fallback;
  }
  return v;
}

/// The value of `--flag=value` in argv, or nullptr when absent.
inline const char* BenchFlagValue(int argc, char** argv, const char* flag) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      return argv[i] + flag_len + 1;
    }
  }
  return nullptr;
}

/// --flag=<double> with validation; absent flag -> fallback, silently.
inline double BenchFlagDouble(int argc, char** argv, const char* flag,
                              double min_value, double max_value,
                              double fallback) {
  const char* value = BenchFlagValue(argc, argv, flag);
  if (value == nullptr) return fallback;
  return ParseDoubleValue(value, flag, min_value, max_value, fallback);
}

/// --flag=<integer> with validation; absent flag -> fallback, silently.
inline long BenchFlagInt(int argc, char** argv, const char* flag,
                         long min_value, long max_value, long fallback) {
  const char* value = BenchFlagValue(argc, argv, flag);
  if (value == nullptr) return fallback;
  return ParseIntValue(value, flag, min_value, max_value, fallback);
}

/// --flag=<string>; absent flag -> fallback.
inline std::string BenchFlagString(int argc, char** argv, const char* flag,
                                   const std::string& fallback) {
  const char* value = BenchFlagValue(argc, argv, flag);
  return value == nullptr ? fallback : std::string(value);
}

/// Database scale from --scale=<v> (precedence) or REOPT_BENCH_SCALE
/// (default 0.4). Strictly validated: garbage, non-positive and implausibly
/// large values error to stderr and fall back to the default instead of
/// being silently coerced by atof.
inline double BenchScale(int argc = 0, char** argv = nullptr) {
  const char* flag =
      argv == nullptr ? nullptr : BenchFlagValue(argc, argv, "--scale");
  if (flag != nullptr) {
    return ParseDoubleValue(flag, "--scale", 1e-3, 100.0, 0.4);
  }
  const char* env = std::getenv("REOPT_BENCH_SCALE");
  if (env == nullptr || env[0] == '\0') return 0.4;
  return ParseDoubleValue(env, "REOPT_BENCH_SCALE", 1e-3, 100.0, 0.4);
}

/// Parses a comma-separated scale sweep ("1", "0.1,1,10"). Each element is
/// strictly validated like a single --scale; invalid elements are dropped
/// with a stderr error rather than silently misread, so "1,junk,10" sweeps
/// {1, 10}. An entirely invalid list comes back empty — callers fall back
/// to their single-scale default.
inline std::vector<double> ParseScaleList(const char* s) {
  std::vector<double> scales;
  const std::string str(s);
  size_t start = 0;
  while (start <= str.size()) {
    size_t comma = str.find(',', start);
    size_t len = comma == std::string::npos ? std::string::npos : comma - start;
    std::string item = str.substr(start, len);
    double v = ParseDoubleValue(item.c_str(), "--scale", 1e-3, 100.0, -1.0);
    if (v > 0.0) scales.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return scales;
}

/// The --scale sweep for drivers that support one (perf_smoke): the list
/// from --scale=a,b,c, or empty when the flag is absent / entirely invalid
/// (meaning "run the driver's single default scale, unsuffixed").
inline std::vector<double> BenchScaleList(int argc, char** argv) {
  const char* flag =
      argv == nullptr ? nullptr : BenchFlagValue(argc, argv, "--scale");
  if (flag == nullptr) return {};
  return ParseScaleList(flag);
}

/// Strictly parses one thread-count value: an integer >= 0, where 0 means
/// "all hardware threads". Garbage (non-numeric, trailing junk, empty) and
/// negative values produce a clear stderr error and clamp to 1 (serial) —
/// a bench must never silently run with a misread thread count.
inline int ParseThreadCount(const char* s, const char* what) {
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "[bench] ERROR: %s expects a non-negative integer "
                 "(0 = all hardware threads), got \"%s\"; running serial "
                 "(1 thread)\n",
                 what, s);
    return 1;
  }
  if (v < 0) {
    std::fprintf(stderr,
                 "[bench] ERROR: %s must be >= 0 "
                 "(0 = all hardware threads), got %ld; running serial "
                 "(1 thread)\n",
                 what, v);
    return 1;
  }
  if (v == 0) return common::DefaultThreadCount();
  if (v > 1024) {
    std::fprintf(stderr,
                 "[bench] ERROR: %s = %ld is not a plausible thread count; "
                 "clamping to 1024\n",
                 what, v);
    return 1024;
  }
  return static_cast<int>(v);
}

/// One thread-count knob resolved from --<flag>=N (precedence) or the
/// environment variable `env_var`; absent means 1 (serial).
inline int BenchThreadFlag(int argc, char** argv, const char* flag,
                           const char* env_var) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      return ParseThreadCount(argv[i] + flag_len + 1, flag);
    }
  }
  const char* env = std::getenv(env_var);
  if (env != nullptr && env[0] != '\0') return ParseThreadCount(env, env_var);
  return 1;
}

/// Total thread budget from --threads=N / REOPT_BENCH_THREADS.
inline int BenchThreads(int argc, char** argv) {
  return BenchThreadFlag(argc, argv, "--threads", "REOPT_BENCH_THREADS");
}

/// Morsel workers per query from --intra-threads=M /
/// REOPT_BENCH_INTRA_THREADS.
inline int BenchIntraThreads(int argc, char** argv) {
  return BenchThreadFlag(argc, argv, "--intra-threads",
                         "REOPT_BENCH_INTRA_THREADS");
}

inline std::unique_ptr<BenchEnv> MakeBenchEnv(int argc = 0,
                                              char** argv = nullptr) {
  auto env = std::make_unique<BenchEnv>();
  int budget = BenchThreads(argc, argv);
  env->intra_threads = BenchIntraThreads(argc, argv);
  // Split the budget: M morsel workers per query leaves max(1, N/M)
  // inter-query workers, so W*M never exceeds the budget. Asking for more
  // morsel threads than the budget implicitly raises the budget to M
  // (pure-intra runs like `--intra-threads=4` with the default
  // --threads=1) — said out loud so the machine load is never a surprise.
  if (env->intra_threads > budget) {
    std::fprintf(stderr,
                 "[bench] NOTE: --intra-threads=%d exceeds the --threads=%d "
                 "budget; raising the budget to %d (1 worker x %d morsel "
                 "threads)\n",
                 env->intra_threads, budget, env->intra_threads,
                 env->intra_threads);
    budget = env->intra_threads;
  }
  env->threads = budget / env->intra_threads;
  if (env->threads < 1) env->threads = 1;
  imdb::ImdbOptions options;
  options.scale = BenchScale(argc, argv);
  env->scale = options.scale;
  std::fprintf(stderr,
               "[bench] generating IMDB database at scale %.2f "
               "(%d worker%s x %d intra-query thread%s)...\n",
               options.scale, env->threads, env->threads == 1 ? "" : "s",
               env->intra_threads, env->intra_threads == 1 ? "" : "s");
  env->db = imdb::BuildImdbDatabase(options);
  env->workload = workload::BuildJobLikeWorkload(env->db->catalog);
  env->runner = std::make_unique<workload::WorkloadRunner>(env->db.get());
  env->runner->set_intra_query_threads(env->intra_threads);
  return env;
}

/// Stderr progress hook for RunSweep: one line per finished configuration,
/// so multi-minute sweeps show liveness (and partial results survive an
/// interrupted run) while stdout keeps the final, deterministically-ordered
/// table.
inline workload::SweepProgressFn SweepProgress() {
  return [](const workload::SweepConfig& config,
            const workload::WorkloadRunResult& result) {
    std::fprintf(stderr, "[bench] %-20s plan %8.2f s   exec %8.2f s\n",
                 config.label.c_str(), result.TotalPlanSeconds(),
                 result.TotalExecSeconds());
  };
}

inline reoptimizer::ReoptOptions ReoptOn(double threshold = 32.0) {
  reoptimizer::ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = threshold;
  return r;
}

/// Prints a horizontal rule + centered caption, paper-style.
inline void PrintCaption(const std::string& caption) {
  std::printf("\n==== %s ====\n", caption.c_str());
}

}  // namespace reopt::bench

#endif  // REOPT_BENCH_BENCH_UTIL_H_
