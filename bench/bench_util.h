// Shared benchmark environment: one synthetic IMDB database + the
// 113-query workload + a session-caching runner. Scale is configurable via
// REOPT_BENCH_SCALE (default 0.4) so the full suite stays laptop-friendly;
// shapes, not absolute numbers, are the reproduction target (docs/ARCHITECTURE.md).
//
// Parallelism: every driver accepts --threads=N (or REOPT_BENCH_THREADS);
// N=0 means all hardware threads. Simulated-time results are byte-identical
// at any thread count — threads only shrink wall-clock (see
// docs/ARCHITECTURE.md, "Concurrency model") — so the default stays 1 for
// predictable machine load, not for reproducibility.
#ifndef REOPT_BENCH_BENCH_UTIL_H_
#define REOPT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "imdb/imdb.h"
#include "reopt/query_runner.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt::bench {

struct BenchEnv {
  std::unique_ptr<imdb::ImdbDatabase> db;
  std::unique_ptr<workload::JobLikeWorkload> workload;
  std::unique_ptr<workload::WorkloadRunner> runner;
  /// Worker threads for RunAll/RunSweep (from --threads / env; default 1).
  int threads = 1;
};

inline double BenchScale() {
  const char* env = std::getenv("REOPT_BENCH_SCALE");
  if (env != nullptr) {
    double scale = std::atof(env);
    if (scale > 0.0) return scale;
  }
  return 0.4;
}

/// Thread count from --threads=N (precedence) or REOPT_BENCH_THREADS.
/// 0 means "all hardware threads"; absent/invalid means 1 (serial).
inline int BenchThreads(int argc, char** argv) {
  auto resolve = [](const char* s) {
    int n = std::atoi(s);
    if (n > 0) return n;
    if (s[0] == '0' && s[1] == '\0') return common::DefaultThreadCount();
    return 1;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return resolve(argv[i] + 10);
    }
  }
  const char* env = std::getenv("REOPT_BENCH_THREADS");
  if (env != nullptr && env[0] != '\0') return resolve(env);
  return 1;
}

inline std::unique_ptr<BenchEnv> MakeBenchEnv(int argc = 0,
                                              char** argv = nullptr) {
  auto env = std::make_unique<BenchEnv>();
  env->threads = BenchThreads(argc, argv);
  imdb::ImdbOptions options;
  options.scale = BenchScale();
  std::fprintf(stderr,
               "[bench] generating IMDB database at scale %.2f "
               "(%d worker thread%s)...\n",
               options.scale, env->threads, env->threads == 1 ? "" : "s");
  env->db = imdb::BuildImdbDatabase(options);
  env->workload = workload::BuildJobLikeWorkload(env->db->catalog);
  env->runner = std::make_unique<workload::WorkloadRunner>(env->db.get());
  return env;
}

/// Stderr progress hook for RunSweep: one line per finished configuration,
/// so multi-minute sweeps show liveness (and partial results survive an
/// interrupted run) while stdout keeps the final, deterministically-ordered
/// table.
inline workload::SweepProgressFn SweepProgress() {
  return [](const workload::SweepConfig& config,
            const workload::WorkloadRunResult& result) {
    std::fprintf(stderr, "[bench] %-20s plan %8.2f s   exec %8.2f s\n",
                 config.label.c_str(), result.TotalPlanSeconds(),
                 result.TotalExecSeconds());
  };
}

inline reoptimizer::ReoptOptions ReoptOn(double threshold = 32.0) {
  reoptimizer::ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = threshold;
  return r;
}

/// Prints a horizontal rule + centered caption, paper-style.
inline void PrintCaption(const std::string& caption) {
  std::printf("\n==== %s ====\n", caption.c_str());
}

}  // namespace reopt::bench

#endif  // REOPT_BENCH_BENCH_UTIL_H_
