// Table III: number of queries in the workload with a given number of
// tables — validates that the generated suite matches the paper exactly.
#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  std::map<int, int> counts;
  for (const auto& q : env->workload->queries) {
    ++counts[q->num_relations()];
  }
  bench::PrintCaption("Table III: number of queries with N tables");
  std::printf("%-10s %10s %10s\n", "# tables", "# queries", "paper");
  const auto& paper = workload::JobLikeWorkload::TableCountDistribution();
  bool match = true;
  for (const auto& [size, count] : counts) {
    auto it = paper.find(size);
    int expected = it == paper.end() ? 0 : it->second;
    std::printf("%-10d %10d %10d\n", size, count, expected);
    if (count != expected) match = false;
  }
  std::printf("distribution %s the paper's Table III\n",
              match ? "MATCHES" : "DIFFERS FROM");
  return match ? 0 : 1;
}
