// Figure 8: total execution time of the workload with perfect-(n)
// estimates, with and without re-optimization (threshold 32), n = 0..17.
// Paper shape: re-optimization helps until about perfect-(5); beyond that
// it is a small (~6%) overhead — the risk of re-optimizing good plans is
// bounded.
#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main() {
  auto env = bench::MakeBenchEnv();
  bench::PrintCaption(
      "Figure 8: execution time of perfect-(n) with and without "
      "re-optimization");
  std::printf("%-12s %14s %14s %10s\n", "perfect-(n)", "exec (s)",
              "exec+reopt (s)", "# temps");
  for (int n = 0; n <= 17; ++n) {
    auto plain = env->runner->RunAll(
        *env->workload, reoptimizer::ModelSpec::PerfectN(n), {});
    auto reopt = env->runner->RunAll(*env->workload,
                                     reoptimizer::ModelSpec::PerfectN(n),
                                     bench::ReoptOn(32.0));
    if (!plain.ok() || !reopt.ok()) return 1;
    int temps = 0;
    for (const auto& r : reopt->records) temps += r.materializations;
    std::printf("%-12d %14.2f %14.2f %10d\n", n,
                plain->TotalExecSeconds(), reopt->TotalExecSeconds(),
                temps);
    std::fflush(stdout);
  }
  return 0;
}
