// Figure 8: total execution time of the workload with perfect-(n)
// estimates, with and without re-optimization (threshold 32), n = 0..17.
// Paper shape: re-optimization helps until about perfect-(5); beyond that
// it is a small (~6%) overhead — the risk of re-optimizing good plans is
// bounded.
#include <vector>

#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  // Interleave (plain, reopt) per n: config 2n is perfect-(n) without and
  // config 2n+1 with re-optimization.
  std::vector<workload::SweepConfig> configs;
  for (int n = 0; n <= 17; ++n) {
    configs.push_back({std::to_string(n) + " plain",
                       reoptimizer::ModelSpec::PerfectN(n),
                       {}});
    configs.push_back({std::to_string(n) + " reopt",
                       reoptimizer::ModelSpec::PerfectN(n),
                       bench::ReoptOn(32.0)});
  }
  auto results =
      env->runner->RunSweep(*env->workload, configs, env->threads,
                            bench::SweepProgress());
  if (!results.ok()) {
    std::fprintf(stderr, "error: %s\n", results.status().ToString().c_str());
    return 1;
  }
  bench::PrintCaption(
      "Figure 8: execution time of perfect-(n) with and without "
      "re-optimization");
  std::printf("%-12s %14s %14s %10s\n", "perfect-(n)", "exec (s)",
              "exec+reopt (s)", "# temps");
  for (int n = 0; n <= 17; ++n) {
    const workload::WorkloadRunResult& plain =
        results.value()[static_cast<size_t>(2 * n)];
    const workload::WorkloadRunResult& reopt =
        results.value()[static_cast<size_t>(2 * n + 1)];
    int temps = 0;
    for (const auto& r : reopt.records) temps += r.materializations;
    std::printf("%-12d %14.2f %14.2f %10d\n", n, plain.TotalExecSeconds(),
                reopt.TotalExecSeconds(), temps);
  }
  return 0;
}
