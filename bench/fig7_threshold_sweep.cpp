// Figure 7: total plan+execute time of all 113 queries as the
// re-optimization Q-error threshold sweeps from 2 to 16384, compared with
// default PostgreSQL-style estimation and perfect-(17). Paper shape: best
// around 32; even threshold 2 only mildly over-plans and still beats no
// re-optimization; very high thresholds converge to the default.
#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main() {
  auto env = bench::MakeBenchEnv();
  bench::PrintCaption(
      "Figure 7: plan+execute totals vs re-optimization threshold");
  std::printf("%-12s %10s %10s %10s %8s\n", "threshold", "plan (s)",
              "exec (s)", "total (s)", "# temps");
  const double thresholds[] = {2,   4,    8,    16,   32,    64,   128,
                               256, 512,  1024, 2048, 4096,  8192, 16384};
  for (double threshold : thresholds) {
    auto result =
        env->runner->RunAll(*env->workload,
                            reoptimizer::ModelSpec::Estimator(),
                            bench::ReoptOn(threshold));
    if (!result.ok()) return 1;
    int temps = 0;
    for (const auto& r : result->records) temps += r.materializations;
    std::printf("%-12.0f %10.2f %10.2f %10.2f %8d\n", threshold,
                result->TotalPlanSeconds(), result->TotalExecSeconds(),
                result->TotalPlanSeconds() + result->TotalExecSeconds(),
                temps);
    std::fflush(stdout);
  }
  auto pg = env->runner->RunAll(*env->workload,
                                reoptimizer::ModelSpec::Estimator(), {});
  auto perfect = env->runner->RunAll(
      *env->workload, reoptimizer::ModelSpec::PerfectN(17), {});
  if (!pg.ok() || !perfect.ok()) return 1;
  std::printf("%-12s %10.2f %10.2f %10.2f %8d\n", "PG",
              pg->TotalPlanSeconds(), pg->TotalExecSeconds(),
              pg->TotalPlanSeconds() + pg->TotalExecSeconds(), 0);
  std::printf("%-12s %10.2f %10.2f %10.2f %8d\n", "Perfect",
              perfect->TotalPlanSeconds(), perfect->TotalExecSeconds(),
              perfect->TotalPlanSeconds() + perfect->TotalExecSeconds(), 0);
  return 0;
}
