// Figure 7: total plan+execute time of all 113 queries as the
// re-optimization Q-error threshold sweeps from 2 to 16384, compared with
// default PostgreSQL-style estimation and perfect-(17). Paper shape: best
// around 32; even threshold 2 only mildly over-plans and still beats no
// re-optimization; very high thresholds converge to the default.
#include <vector>

#include "bench/bench_util.h"

using namespace reopt;  // NOLINT: benchmark driver

int main(int argc, char** argv) {
  auto env = bench::MakeBenchEnv(argc, argv);
  const double thresholds[] = {2,   4,    8,    16,   32,    64,   128,
                               256, 512,  1024, 2048, 4096,  8192, 16384};
  std::vector<workload::SweepConfig> configs;
  for (double threshold : thresholds) {
    configs.push_back({std::to_string(static_cast<int>(threshold)),
                       reoptimizer::ModelSpec::Estimator(),
                       bench::ReoptOn(threshold)});
  }
  configs.push_back({"PG", reoptimizer::ModelSpec::Estimator(), {}});
  configs.push_back({"Perfect", reoptimizer::ModelSpec::PerfectN(17), {}});

  auto results =
      env->runner->RunSweep(*env->workload, configs, env->threads,
                            bench::SweepProgress());
  if (!results.ok()) {
    std::fprintf(stderr, "error: %s\n", results.status().ToString().c_str());
    return 1;
  }
  bench::PrintCaption(
      "Figure 7: plan+execute totals vs re-optimization threshold");
  std::printf("%-12s %10s %10s %10s %8s\n", "threshold", "plan (s)",
              "exec (s)", "total (s)", "# temps");
  for (size_t i = 0; i < configs.size(); ++i) {
    const workload::WorkloadRunResult& result = results.value()[i];
    int temps = 0;
    for (const auto& r : result.records) temps += r.materializations;
    std::printf("%-12s %10.2f %10.2f %10.2f %8d\n",
                configs[i].label.c_str(), result.TotalPlanSeconds(),
                result.TotalExecSeconds(),
                result.TotalPlanSeconds() + result.TotalExecSeconds(),
                temps);
  }
  return 0;
}
