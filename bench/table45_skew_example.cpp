// Tables IV/V: the Nasdaq skew example. A Zipf-skewed trades table defeats
// the uniformity assumption: the estimator predicts |trades|/|company|
// rows for "all trades of a hot symbol", the truth is orders of magnitude
// larger. Neither PostgreSQL nor a commercial system got this right in the
// paper; our estimator reproduces the same failure.
#include "bench/bench_util.h"

#include "optimizer/cardinality_model.h"
#include "optimizer/true_cardinality.h"
#include "workload/query_builder.h"

using namespace reopt;  // NOLINT: benchmark driver

int main() {
  imdb::NasdaqOptions options;
  auto db = imdb::BuildNasdaqDatabase(options);

  bench::PrintCaption("Tables IV/V: companies & trades (samples)");
  const storage::Table* company = db->catalog.FindTable("company");
  const storage::Table* trades = db->catalog.FindTable("trades");
  std::printf("company: %lld rows       trades: %lld rows\n",
              static_cast<long long>(company->num_rows()),
              static_cast<long long>(trades->num_rows()));
  std::printf("%-6s %-8s %-20s\n", "id", "symbol", "company");
  for (common::RowIdx r = 0; r < 4; ++r) {
    std::printf("%-6lld %-8s %-20s\n",
                static_cast<long long>(company->column(0).GetInt(r)),
                company->column(1).GetString(r).c_str(),
                company->column(2).GetString(r).c_str());
  }

  // Volume concentration ("40 stocks out of 4000 account for 50%").
  common::ColumnIdx cid = trades->schema().FindColumn("company_id");
  int64_t top40 = 0;
  for (common::RowIdx r = 0; r < trades->num_rows(); ++r) {
    if (trades->column(cid).GetInt(r) <= 40) ++top40;
  }
  std::printf("\ntop 40 of %lld companies carry %.1f%% of trade volume\n",
              static_cast<long long>(company->num_rows()),
              100.0 * static_cast<double>(top40) /
                  static_cast<double>(trades->num_rows()));

  // The paper's query: SELECT * FROM company, trades
  // WHERE company.symbol = '<hot>' AND company.id = trades.company_id.
  workload::QueryBuilder qb(&db->catalog, "nasdaq");
  int c = qb.AddRelation("company", "company");
  int t = qb.AddRelation("trades", "trades");
  std::string hot_symbol = company->column(1).GetString(0);  // rank 1
  qb.Join(c, "id", t, "company_id")
      .FilterEq(c, "symbol", common::Value::Str(hot_symbol))
      .OutputMin(t, "shares", "min_shares");
  auto query = qb.Build();

  auto ctx = optimizer::QueryContext::Bind(query.get(), &db->catalog,
                                           &db->stats);
  if (!ctx.ok()) return 1;
  optimizer::EstimatorModel model(ctx.value().get());
  optimizer::TrueCardinalityOracle oracle(ctx.value().get());
  plan::RelSet both = plan::RelSet::FirstN(2);
  double est = model.Cardinality(both);
  double truth = oracle.True(both);
  std::printf(
      "\nSELECT * FROM company, trades WHERE company.symbol = '%s'\n"
      "  AND company.id = trades.company_id;\n",
      hot_symbol.c_str());
  std::printf("estimated join cardinality: %10.0f rows\n", est);
  std::printf("actual join cardinality:    %10.0f rows\n", truth);
  std::printf("underestimate factor:       %10.1fx\n", truth / est);
  return truth / est > 10.0 ? 0 : 1;
}
