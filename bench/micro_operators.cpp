// Microbenchmarks (google-benchmark) for the engine's building blocks:
// predicate evaluation, hash join kernel, factorized true-cardinality
// counting, selectivity estimation, histogram construction and full query
// planning. These quantify the substrate the paper-level experiments run
// on (e.g. the cost of one oracle call vs one estimator call — why LEO /
// re-optimization feedback is cheap at plan time).
#include <benchmark/benchmark.h>

#include "exec/kernel.h"
#include "exec/kernel_reference.h"
#include "imdb/imdb.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "optimizer/true_cardinality.h"
#include "stats/analyze.h"
#include "workload/job_like.h"

namespace {

using namespace reopt;  // NOLINT: benchmark driver

imdb::ImdbDatabase* Db() {
  static imdb::ImdbDatabase* db = [] {
    imdb::ImdbOptions options;
    options.scale = 0.1;
    return imdb::BuildImdbDatabase(options).release();
  }();
  return db;
}

struct Bound6d {
  std::unique_ptr<plan::QuerySpec> query;
  std::unique_ptr<optimizer::QueryContext> ctx;
};

Bound6d* Query6d() {
  static Bound6d* bound = [] {
    auto* b = new Bound6d();
    b->query = workload::MakeQuery6d(Db()->catalog);
    b->ctx = std::move(
        optimizer::QueryContext::Bind(b->query.get(), &Db()->catalog,
                                      &Db()->stats)
            .value());
    return b;
  }();
  return bound;
}

// The shared year-range predicate of the filter-scan benchmarks.
plan::ScanPredicate TitleYearRange(const storage::Table* title) {
  plan::ScanPredicate pred;
  pred.column = plan::ColumnRef{0,
                                title->schema().FindColumn("production_year"), ""};
  pred.kind = plan::ScanPredicate::Kind::kBetween;
  pred.value = common::Value::Int(1990);
  pred.value2 = common::Value::Int(2010);
  return pred;
}

void BM_FilterScanTitleYearRange(benchmark::State& state) {
  const storage::Table* title = Db()->catalog.FindTable("title");
  plan::ScanPredicate pred = TitleYearRange(title);
  for (auto _ : state) {
    auto rows = exec::FilterScan(*title, {&pred});
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * title->num_rows());
}
BENCHMARK(BM_FilterScanTitleYearRange);

// Same scan through the retained scalar reference kernel: the scalar-vs-
// vectorized comparison (items/sec ratio) in one report.
void BM_FilterScanTitleYearRangeScalarRef(benchmark::State& state) {
  const storage::Table* title = Db()->catalog.FindTable("title");
  plan::ScanPredicate pred = TitleYearRange(title);
  for (auto _ : state) {
    auto rows = exec::reference::FilterScan(*title, {&pred});
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * title->num_rows());
}
BENCHMARK(BM_FilterScanTitleYearRangeScalarRef);

void BM_HashJoinTitleMovieKeyword(benchmark::State& state) {
  Bound6d* b = Query6d();
  const exec::BoundRelations& rels = b->ctx->bound();
  // t = rel 4, mk = rel 2 in 6d.
  exec::Intermediate t = exec::ExactJoin(*b->query, plan::RelSet::Single(4),
                                         rels);
  exec::Intermediate mk = exec::ExactJoin(*b->query, plan::RelSet::Single(2),
                                          rels);
  auto edges = b->query->JoinsBetween(plan::RelSet::Single(4),
                                      plan::RelSet::Single(2));
  for (auto _ : state) {
    auto out = exec::HashJoinIntermediates(t, mk, edges, rels);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * (t.size() + mk.size()));
}
BENCHMARK(BM_HashJoinTitleMovieKeyword);

void BM_HashJoinTitleMovieKeywordScalarRef(benchmark::State& state) {
  Bound6d* b = Query6d();
  const exec::BoundRelations& rels = b->ctx->bound();
  exec::Intermediate t = exec::ExactJoin(*b->query, plan::RelSet::Single(4),
                                         rels);
  exec::Intermediate mk = exec::ExactJoin(*b->query, plan::RelSet::Single(2),
                                          rels);
  auto edges = b->query->JoinsBetween(plan::RelSet::Single(4),
                                      plan::RelSet::Single(2));
  for (auto _ : state) {
    auto out = exec::reference::HashJoinIntermediates(t, mk, edges, rels);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * (t.size() + mk.size()));
}
BENCHMARK(BM_HashJoinTitleMovieKeywordScalarRef);

void BM_OracleFactorizedFullJoinCount(benchmark::State& state) {
  Bound6d* b = Query6d();
  for (auto _ : state) {
    // Fresh oracle each iteration: measures the uncached counting path.
    optimizer::TrueCardinalityOracle oracle(b->ctx.get());
    benchmark::DoNotOptimize(oracle.True(b->query->AllRelations()));
  }
}
BENCHMARK(BM_OracleFactorizedFullJoinCount);

void BM_EstimatorFullJoinCardinality(benchmark::State& state) {
  Bound6d* b = Query6d();
  for (auto _ : state) {
    optimizer::EstimatorModel model(b->ctx.get());
    benchmark::DoNotOptimize(model.Cardinality(b->query->AllRelations()));
  }
}
BENCHMARK(BM_EstimatorFullJoinCardinality);

void BM_AnalyzeCastInfo(benchmark::State& state) {
  const storage::Table* ci = Db()->catalog.FindTable("cast_info");
  for (auto _ : state) {
    auto stats = stats::Analyze(*ci);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * ci->num_rows());
}
BENCHMARK(BM_AnalyzeCastInfo);

void BM_PlanQuery6d(benchmark::State& state) {
  Bound6d* b = Query6d();
  optimizer::CostParams params;
  for (auto _ : state) {
    optimizer::EstimatorModel model(b->ctx.get());
    optimizer::Planner planner(b->ctx.get(), &model, params);
    auto planned = planner.Plan();
    benchmark::DoNotOptimize(planned);
  }
}
BENCHMARK(BM_PlanQuery6d);

void BM_ConnectedPairsEnumeration(benchmark::State& state) {
  auto query = workload::MakeQuery25c(Db()->catalog);
  for (auto _ : state) {
    plan::JoinGraph graph(*query);  // fresh graph: uncached enumeration
    benchmark::DoNotOptimize(graph.ConnectedPairs().size());
  }
}
BENCHMARK(BM_ConnectedPairsEnumeration);

}  // namespace

BENCHMARK_MAIN();
