// POSITIVE test input for the Clang thread-safety gate
// (tools/check_thread_safety.py): the same shapes as the negative file but
// with correct lock discipline, so it must compile cleanly under
// -Werror=thread-safety. Guards against the gate "passing" only because
// the macros stopped expanding (e.g. a broken __has_attribute probe): if
// annotations vanished, the negative file would wrongly compile too, and
// this file proves the toolchain + flags combination is the one we think
// it is. Covers MutexLock scopes, a REQUIRES helper called under the lock,
// manual Lock/Unlock, and a CondVar predicate-loop wait.

#include "common/annotations.h"
#include "common/mutex.h"

namespace {

using reopt::common::CondVar;
using reopt::common::Mutex;
using reopt::common::MutexLock;

class Counter {
 public:
  int ReadLocked() const REQUIRES(mu_) { return value_; }

  int Read() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return ReadLocked();
  }

  void Write(int v) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ = v;
  }

  void WriteManual(int v) EXCLUDES(mu_) {
    mu_.Lock();
    value_ = v;
    mu_.Unlock();
  }

  void WaitNonZero() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (value_ == 0) cv_.Wait(&mu_);
  }

  void Signal() EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      value_ = 1;
    }
    cv_.NotifyAll();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Write(1);
  c.WriteManual(2);
  c.Signal();
  c.WaitNonZero();
  return c.Read();
}
