// NEGATIVE test input for the Clang thread-safety gate — this file MUST
// NOT compile under -Werror=thread-safety. tools/check_thread_safety.py
// compiles it and asserts failure; if it ever compiles cleanly the
// annotation layer has stopped guarding anything and the gate is dead.
//
// It is deliberately NOT part of any CMake target: GCC builds never see
// it, and a Clang build only meets it through the checker script.
//
// Three canonical violations, each the exact bug class the annotations
// exist to make unwritable:
//   1. reading a GUARDED_BY member with no lock held,
//   2. writing a GUARDED_BY member with no lock held,
//   3. calling a REQUIRES(mu_) helper without holding mu_.

#include "common/annotations.h"
#include "common/mutex.h"

namespace {

class Counter {
 public:
  // Violation 3's callee: contract says mu_ must already be held.
  int ReadLocked() const REQUIRES(mu_) { return value_; }

  int RacyRead() const {
    return value_;  // violation 1: unguarded read of value_
  }

  void RacyWrite(int v) {
    value_ = v;  // violation 2: unguarded write of value_
  }

  int ForgotToLock() const {
    return ReadLocked();  // violation 3: REQUIRES(mu_) callee, mu_ not held
  }

 private:
  mutable reopt::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.RacyWrite(1);
  return c.RacyRead() + c.ForgotToLock();
}
