#!/usr/bin/env python3
"""Benchmark-trajectory gate over bench/history/ snapshots.

Compares the current run's BENCH_perf_smoke.json against the committed
snapshot in bench/history/ and fails on a speedup regression of more than
--tolerance (default 10%). The compared metric is the *speedup* (reference
time / optimized time), not absolute ns/op: both sides of every comparison
run on the same machine in the same process, so the ratio transfers across
hardware while raw nanoseconds do not.

Skipped rows:
  * names starting with "intra_" — morsel-parallel speedups scale with the
    machine's core count, so they are reported but never gated;
  * names containing "@s" — --scale sweep rows; the gated trajectory is the
    default-scale run only.

Rows present in history but missing from the current run fail the gate (a
renamed or deleted benchmark must update the snapshot deliberately, via
--update).

Exit codes: 0 pass, 1 regression/missing row, 2 usage or malformed input,
77 skipped (no current run to compare — e.g. perf_smoke has not run in
this build tree). CMake registers 77 as SKIP_RETURN_CODE.

Usage:
  check_bench.py [--current PATH] [--history PATH] [--tolerance F] [--update]
"""

import argparse
import json
import os
import shutil
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_HISTORY = os.path.join(REPO_ROOT, "bench", "history",
                               "BENCH_perf_smoke.json")


def load_rows(path):
    """name -> row dict from a BENCH_perf_smoke.json file."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    rows = {}
    for row in data.get("benchmarks", []):
        name = row.get("name")
        if not isinstance(name, str) or "speedup" not in row:
            raise ValueError(f"malformed benchmark row: {row!r}")
        rows[name] = row
    return rows


def gated(name):
    return not name.startswith("intra_") and "@s" not in name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default="BENCH_perf_smoke.json",
                        help="this run's perf_smoke JSON report")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="committed snapshot to compare against")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative speedup drop (default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="copy --current over --history instead of "
                             "comparing")
    args = parser.parse_args()

    if not (0.0 <= args.tolerance < 1.0):
        print(f"check_bench: --tolerance {args.tolerance} outside [0, 1)",
              file=sys.stderr)
        return 2

    if not os.path.exists(args.current):
        print(f"check_bench: SKIP - no current run at {args.current} "
              "(run perf_smoke first)")
        return 77

    try:
        current = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {args.current}: {e}",
              file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(os.path.dirname(args.history), exist_ok=True)
        shutil.copyfile(args.current, args.history)
        print(f"check_bench: updated {args.history} "
              f"({len(current)} benchmarks)")
        return 0

    if not os.path.exists(args.history):
        print(f"check_bench: SKIP - no history snapshot at {args.history} "
              "(seed one with --update)")
        return 77

    try:
        history = load_rows(args.history)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {args.history}: {e}",
              file=sys.stderr)
        return 2

    failures = []
    compared = 0
    for name, old in sorted(history.items()):
        if not gated(name):
            continue
        new = current.get(name)
        if new is None:
            failures.append(f"{name}: present in history, missing from the "
                            "current run (update the snapshot deliberately "
                            "with --update)")
            continue
        compared += 1
        old_speedup = float(old["speedup"])
        new_speedup = float(new["speedup"])
        floor = old_speedup * (1.0 - args.tolerance)
        status = "ok"
        if new_speedup < floor:
            status = "REGRESSION"
            failures.append(
                f"{name}: speedup {new_speedup:.3f}x < "
                f"{floor:.3f}x ({old_speedup:.3f}x - {args.tolerance:.0%})")
        print(f"  {name:<44} history {old_speedup:7.3f}x   "
              f"current {new_speedup:7.3f}x   {status}")

    for name in sorted(current):
        if gated(name) and name not in history:
            print(f"  {name:<44} (new - not in history; add it with "
                  "--update)")

    if failures:
        print(f"\ncheck_bench: FAIL - {len(failures)} regression(s) over "
              f"{compared} gated benchmarks:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"check_bench: OK - {compared} gated benchmarks within "
          f"{args.tolerance:.0%} of the committed snapshot")
    return 0


if __name__ == "__main__":
    sys.exit(main())
