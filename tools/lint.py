#!/usr/bin/env python3
"""Repo lint: project invariants no compiler flag can express.

Checks (each one a named rule; violations print as file:line: [rule] msg):

  naked-mutex        No naked std::mutex / std::lock_guard / std::unique_lock
                     / std::condition_variable / <mutex> include under src/
                     outside src/common/. Concurrent state must use
                     common::Mutex + common::MutexLock (common/mutex.h) so
                     the Clang thread-safety analysis sees every
                     acquisition. (Tests and benches may use std primitives;
                     the invariant protects the library.)

  check-on-input     No REOPT_CHECK / REOPT_CHECK_MSG in src/sql/ or
                     src/service/: those layers sit on user-input paths
                     (SQL text from clients), where a malformed input must
                     come back as a Status, never abort the server. Genuine
                     programmer-invariant checks are waived with a
                     // lint: allow-check(<why>)  marker on the same line
                     or in the comment block immediately above.

  kernel-reference   Every optimized kernel entry point declared in
                     src/exec/kernel.h has a scalar twin declared in
                     src/exec/kernel_reference.h (namespace
                     exec::reference) and appears in at least one of the
                     differential suites (tests/kernel_differential_test.cc
                     / kernel_edge_test.cc / kernel_fuzz_test.cc), so no
                     fast path can exist without a differential oracle.

  fail-points        Every fail point planted under src/ (via
                     REOPT_INJECT_FAULT("name") or
                     failpoint::Triggered("name")) is exercised by at least
                     one chaos test (tests/chaos_test.cc /
                     tests/lifecycle_test.cc), so no fault-injection site
                     can exist without a test proving the engine survives
                     it cleanly.

  model-kinds        Every ModelSpec::Kind enumerator in
                     src/reopt/query_runner.h appears in the model-sweep
                     differential suite (tests/planner_differential_test.cc),
                     so no cardinality-model kind (estimator / perfect-n /
                     injected / learned / ...) can be added without a
                     differential test pinning its planner behavior.

  encodings          Every storage::ColumnEncoding enumerator in
                     src/storage/column.h appears in the kernel differential
                     suite (tests/kernel_differential_test.cc), so no
                     physical column encoding (plain / dictionary /
                     partitioned / ...) can be added without the 113-query
                     workload being replayed over it against the scalar
                     reference kernel.

Exit status: 0 = clean, 1 = violations, 2 = lint is misconfigured (e.g. a
checked file is missing — fail loudly rather than silently skipping).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

violations: list[str] = []
errors: list[str] = []


def violate(path: Path, lineno: int, rule: str, msg: str) -> None:
    rel = path.relative_to(REPO)
    violations.append(f"{rel}:{lineno}: [{rule}] {msg}")


# --------------------------------------------------------------------------
# Rule: naked-mutex
# --------------------------------------------------------------------------

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable)\b"
    r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
)


def check_naked_mutex() -> None:
    allowed = REPO / "src" / "common"
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".h", ".cc") or allowed in path.parents:
            continue
        for lineno, line in enumerate(read_lines(path), 1):
            if NAKED_MUTEX_RE.search(strip_comment(line)):
                violate(
                    path, lineno, "naked-mutex",
                    "raw std synchronization primitive outside src/common/ "
                    "— use common::Mutex / common::MutexLock / "
                    "common::CondVar (common/mutex.h) so the thread-safety "
                    "analysis can check it")


# --------------------------------------------------------------------------
# Rule: check-on-input
# --------------------------------------------------------------------------

CHECK_RE = re.compile(r"\bREOPT_CHECK(_MSG)?\s*\(")
ALLOW_CHECK_RE = re.compile(r"//\s*lint:\s*allow-check\(\S")


def waived(lines: list[str], idx: int) -> bool:
    """Marker on the CHECK line itself or in the contiguous comment block
    directly above it."""
    if ALLOW_CHECK_RE.search(lines[idx]):
        return True
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        if ALLOW_CHECK_RE.search(lines[j]):
            return True
        j -= 1
    return False


def check_no_check_on_input_paths() -> None:
    for layer in ("sql", "service"):
        for path in sorted((REPO / "src" / layer).rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            lines = read_lines(path)
            for lineno, line in enumerate(lines, 1):
                if CHECK_RE.search(strip_comment(line)) and not \
                        waived(lines, lineno - 1):
                    violate(
                        path, lineno, "check-on-input",
                        "REOPT_CHECK on a user-input layer aborts the "
                        "server on bad input — return a Status instead, or "
                        "waive a genuine internal invariant with "
                        "'// lint: allow-check(<why>)'")


# --------------------------------------------------------------------------
# Rule: kernel-reference
# --------------------------------------------------------------------------

# Free-function declarations at namespace scope in a header: a return type
# line followed by Name(  — we only need the names, conservatively.
KERNEL_FN_RE = re.compile(r"^[A-Za-z_][\w:<>,\s*&]*?\b([A-Z]\w+)\s*\(")


def declared_functions(header: Path) -> set[str]:
    names: set[str] = set()
    depth_struct = 0
    for line in read_lines(header):
        code = strip_comment(line)
        # Skip member declarations: track struct/class blocks crudely.
        if re.search(r"\b(struct|class)\s+\w+[^;]*$", code):
            depth_struct += code.count("{")
        elif depth_struct > 0:
            depth_struct += code.count("{") - code.count("}")
            continue
        m = KERNEL_FN_RE.match(code.strip())
        if m and not code.strip().startswith(("#", "//", "using", "typedef")):
            names.add(m.group(1))
    return names


def check_kernel_reference_twins() -> None:
    kernel_h = REPO / "src" / "exec" / "kernel.h"
    reference_h = REPO / "src" / "exec" / "kernel_reference.h"
    diff_tests = [REPO / "tests" / name
                  for name in ("kernel_differential_test.cc",
                               "kernel_edge_test.cc",
                               "kernel_fuzz_test.cc")]
    for required in [kernel_h, reference_h] + diff_tests:
        if not required.exists():
            errors.append(f"kernel-reference: missing {required}")
            return
    optimized = declared_functions(kernel_h)
    reference = declared_functions(reference_h)
    diff_src = "\n".join(t.read_text() for t in diff_tests)
    # Only kernel entry points need twins: the names the reference header
    # itself mirrors define the differential surface. A *new* optimized
    # kernel must grow all three places; this catches the forgotten two.
    missing_ref = sorted(n for n in optimized
                         if n in KERNEL_ENTRY_POINTS and n not in reference)
    for name in missing_ref:
        violate(kernel_h, 1, "kernel-reference",
                f"optimized kernel '{name}' has no exec::reference twin in "
                f"{reference_h.relative_to(REPO)}")
    for name in sorted(KERNEL_ENTRY_POINTS & optimized & reference):
        if name not in diff_src:
            violate(
                diff_tests[0], 1, "kernel-reference",
                f"kernel '{name}' is not exercised by any differential "
                "suite (kernel_differential/edge/fuzz_test.cc)")


# The differential surface: optimized kernels with scalar reference twins.
# Extend this set when adding a kernel entry point; the lint then enforces
# twin + differential coverage for it.
KERNEL_ENTRY_POINTS = {
    "FilterScan",
    "HashJoinIntermediates",
    "ExactJoinCount",
}


# --------------------------------------------------------------------------
# Rule: fail-points
# --------------------------------------------------------------------------

FAIL_POINT_PLANT_RE = re.compile(
    r'(?:REOPT_INJECT_FAULT|failpoint::Triggered)\s*\(\s*"([^"]+)"')


def check_fail_points_have_chaos_tests() -> None:
    chaos_tests = [REPO / "tests" / name
                   for name in ("chaos_test.cc", "lifecycle_test.cc")]
    for required in chaos_tests:
        if not required.exists():
            errors.append(f"fail-points: missing {required}")
            return
    chaos_src = "\n".join(t.read_text() for t in chaos_tests)
    planted: dict[str, tuple[Path, int]] = {}
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        if path.name.startswith("fail_point."):
            continue  # the registry itself, not a planted point
        for lineno, line in enumerate(read_lines(path), 1):
            for name in FAIL_POINT_PLANT_RE.findall(strip_comment(line)):
                planted.setdefault(name, (path, lineno))
    if not planted:
        errors.append("fail-points: no planted fail points found under src/ "
                      "— the plant regex is stale")
        return
    for name in sorted(planted):
        if f'"{name}"' not in chaos_src:
            path, lineno = planted[name]
            violate(
                path, lineno, "fail-points",
                f"fail point '{name}' is not exercised by any chaos test "
                "(tests/chaos_test.cc / tests/lifecycle_test.cc) — arm it "
                "in a test that proves the abort path is clean")


# --------------------------------------------------------------------------
# Rule: model-kinds
# --------------------------------------------------------------------------

MODEL_KIND_ENUM_RE = re.compile(
    r"enum\s+class\s+Kind\s*\{([^}]*)\}", re.DOTALL)


def check_model_kinds_differential() -> None:
    runner_h = REPO / "src" / "reopt" / "query_runner.h"
    diff_test = REPO / "tests" / "planner_differential_test.cc"
    for required in (runner_h, diff_test):
        if not required.exists():
            errors.append(f"model-kinds: missing {required}")
            return
    m = MODEL_KIND_ENUM_RE.search(runner_h.read_text())
    if m is None:
        errors.append(f"model-kinds: no 'enum class Kind' found in "
                      f"{runner_h.relative_to(REPO)}")
        return
    kinds = re.findall(r"\bk([A-Z]\w*)", m.group(1))
    if not kinds:
        errors.append("model-kinds: Kind enum parsed empty")
        return
    diff_src = diff_test.read_text()
    for kind in kinds:
        # Accept either the factory spelling (ModelSpec::Estimator() /
        # PerfectN(n) / Learned()) or the raw enumerator.
        if re.search(rf"ModelSpec::{kind}\s*\(", diff_src):
            continue
        if f"Kind::k{kind}" in diff_src:
            continue
        violate(
            runner_h, 1, "model-kinds",
            f"ModelSpec::Kind::k{kind} is not exercised by the model-sweep "
            f"differential suite ({diff_test.relative_to(REPO)}) — every "
            "cardinality-model kind needs a differential test pinning its "
            "planner behavior")


# --------------------------------------------------------------------------
# Rule: encodings
# --------------------------------------------------------------------------

ENCODING_ENUM_RE = re.compile(
    r"enum\s+class\s+ColumnEncoding\s*\{([^}]*)\}", re.DOTALL)


def check_encodings_differential() -> None:
    column_h = REPO / "src" / "storage" / "column.h"
    diff_test = REPO / "tests" / "kernel_differential_test.cc"
    for required in (column_h, diff_test):
        if not required.exists():
            errors.append(f"encodings: missing {required}")
            return
    m = ENCODING_ENUM_RE.search(column_h.read_text())
    if m is None:
        errors.append(f"encodings: no 'enum class ColumnEncoding' found in "
                      f"{column_h.relative_to(REPO)}")
        return
    encodings = re.findall(r"\bk([A-Z]\w*)", m.group(1))
    if not encodings:
        errors.append("encodings: ColumnEncoding enum parsed empty")
        return
    diff_src = diff_test.read_text()
    for enc in encodings:
        if f"k{enc}" in diff_src:
            continue
        violate(
            column_h, 1, "encodings",
            f"ColumnEncoding::k{enc} is not exercised by the kernel "
            f"differential suite ({diff_test.relative_to(REPO)}) — every "
            "physical encoding must replay the full workload against the "
            "scalar reference kernel")


# --------------------------------------------------------------------------

def strip_comment(line: str) -> str:
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def read_lines(path: Path) -> list[str]:
    try:
        return path.read_text().splitlines()
    except OSError as e:
        errors.append(f"unreadable: {path}: {e}")
        return []


def main() -> int:
    check_naked_mutex()
    check_no_check_on_input_paths()
    check_kernel_reference_twins()
    check_fail_points_have_chaos_tests()
    check_model_kinds_differential()
    check_encodings_differential()
    if errors:
        for e in errors:
            print(f"lint error: {e}", file=sys.stderr)
        return 2
    if violations:
        for v in violations:
            print(v)
        print(f"\ntools/lint.py: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("tools/lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
