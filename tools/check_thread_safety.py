#!/usr/bin/env python3
"""Proves the Clang thread-safety gate actually gates.

Two compiles with the given Clang driver and -Werror=thread-safety:

  positive: tools/thread_safety_positive.cc (correct lock discipline over
            the annotated primitives) must COMPILE.
  negative: tools/thread_safety_negative.cc (unguarded reads/writes and a
            REQUIRES violation) must FAIL, and the diagnostics must be
            thread-safety ones.

Run from anywhere:  tools/check_thread_safety.py <clang++> [extra flags...]
Registered as the `thread_safety_negative` ctest when the build compiler is
Clang, so the clang-thread-safety CI job runs it on every push. A gcc/g++
driver is rejected up front — without the analysis both files compile and
the negative check would be meaningless.
"""

import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FLAGS = ["-std=c++17", "-fsyntax-only", "-Wthread-safety",
         "-Werror=thread-safety", "-I", str(REPO / "src")]


def compile_file(compiler: str, source: Path,
                 extra: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [compiler, *FLAGS, *extra, str(source)],
        capture_output=True, text=True)


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    compiler, extra = sys.argv[1], sys.argv[2:]

    probe = subprocess.run([compiler, "--version"], capture_output=True,
                           text=True)
    if "clang" not in probe.stdout.lower():
        print(f"FAIL: {compiler} is not Clang — the thread-safety analysis "
              "does not exist there, so this check cannot prove anything",
            file=sys.stderr)
        return 2

    failures = 0

    positive = REPO / "tools" / "thread_safety_positive.cc"
    result = compile_file(compiler, positive, extra)
    if result.returncode != 0:
        print("FAIL: correctly-locked code no longer compiles under "
              f"-Werror=thread-safety:\n{result.stderr}", file=sys.stderr)
        failures += 1
    else:
        print("ok: positive file compiles under -Werror=thread-safety")

    negative = REPO / "tools" / "thread_safety_negative.cc"
    result = compile_file(compiler, negative, extra)
    if result.returncode == 0:
        print("FAIL: thread_safety_negative.cc COMPILED — the annotation "
              "layer no longer rejects unguarded access; the gate is dead",
              file=sys.stderr)
        failures += 1
    elif "-Wthread-safety" not in result.stderr:
        print("FAIL: negative file failed for a non-thread-safety reason "
              f"(broken test input?):\n{result.stderr}", file=sys.stderr)
        failures += 1
    else:
        diags = result.stderr.count("error:")
        print(f"ok: negative file rejected with {diags} thread-safety "
              "error(s)")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
