// Query-lifecycle governance unit and regression suite:
//
//  * exec::CancelToken semantics — cancellation, deadlines, precedence.
//  * Kernel truncation contract: a tripped token makes the vectorized and
//    reference kernels stop at a batch boundary and return truncated
//    results, which the Executor then converts to a clean error before
//    anything escapes.
//  * Abort-path hygiene (the catalog-empty-after-failure regression
//    suite): every early return out of sql::Engine and
//    reoptimizer::QueryRunner — injected faults, pre-cancelled tokens,
//    expired deadlines — must leave no temp table and no statistics
//    behind, and an immediate fault-free retry of the same statement must
//    succeed (proving the name was not leaked either).
//  * Graceful degradation: row- and byte-based materialization budgets
//    stop re-optimization without failing the query; answers stay exact.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/fail_point.h"
#include "common/status.h"
#include "exec/cancel.h"
#include "exec/kernel.h"
#include "exec/kernel_reference.h"
#include "reopt/query_runner.h"
#include "sql/engine.h"
#include "tests/test_util.h"
#include "workload/job_like.h"

namespace reopt {
namespace {

using testing::SmallImdb;

namespace fp = common::failpoint;

reoptimizer::ReoptOptions ReoptOn() {
  reoptimizer::ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = 32.0;
  return r;
}

// ---- CancelToken ------------------------------------------------------------

TEST(CancelTokenTest, DefaultTokenNeverStops) {
  exec::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(exec::ShouldStop(nullptr));  // nullptr-tolerant helper
}

TEST(CancelTokenTest, CancelTripsAndReportsCancelled) {
  exec::CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.Check().code(), common::StatusCode::kCancelled);
  EXPECT_TRUE(exec::ShouldStop(&token));
}

TEST(CancelTokenTest, FutureDeadlinePassesExpiredDeadlineTrips) {
  exec::CancelToken future;
  future.set_deadline(exec::CancelToken::Clock::now() +
                      std::chrono::hours(1));
  EXPECT_FALSE(future.ShouldStop());
  EXPECT_TRUE(future.Check().ok());

  exec::CancelToken expired;
  expired.set_deadline(exec::CancelToken::Clock::now() -
                       std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.ShouldStop());
  EXPECT_EQ(expired.Check().code(), common::StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, CancellationTakesPrecedenceOverDeadline) {
  exec::CancelToken token;
  token.set_deadline(exec::CancelToken::Clock::now() -
                     std::chrono::milliseconds(1));
  token.Cancel();
  EXPECT_EQ(token.Check().code(), common::StatusCode::kCancelled);
}

// ---- Kernel truncation contract ---------------------------------------------

// A pre-tripped token makes both kernel implementations stop at the first
// batch boundary: the truncated result is empty, and it is the Executor's
// top-level re-check (tested below through the engine) that turns it into
// an error before it can escape.
TEST(KernelCancelTest, TrippedTokenTruncatesBothFilterScanKernels) {
  const storage::Table* t = SmallImdb()->catalog.FindTable("keyword");
  ASSERT_NE(t, nullptr);
  ASSERT_GT(t->num_rows(), 0);

  exec::CancelToken token;
  token.Cancel();
  EXPECT_TRUE(exec::FilterScan(*t, {}, &token).empty());
  EXPECT_TRUE(exec::reference::FilterScan(*t, {}, &token).empty());
  // Untripped, both still produce the full scan.
  exec::CancelToken idle;
  EXPECT_EQ(static_cast<int64_t>(exec::FilterScan(*t, {}, &idle).size()),
            t->num_rows());
  EXPECT_EQ(
      static_cast<int64_t>(exec::reference::FilterScan(*t, {}, &idle).size()),
      t->num_rows());
}

// ---- Engine abort paths -----------------------------------------------------

constexpr char kSelectSql[] =
    "SELECT MIN(k.id) FROM keyword AS k WHERE k.id > 100;";
constexpr char kCreateSql[] =
    "CREATE TEMP TABLE lc_probe AS SELECT k.id FROM keyword AS k "
    "WHERE k.id > 100;";

TEST(EngineLifecycleTest, PreCancelledTokenFailsSelectCleanly) {
  imdb::ImdbDatabase* db = SmallImdb();
  sql::Engine engine(&db->catalog, &db->stats);
  exec::CancelToken token;
  token.Cancel();
  engine.set_cancel_token(&token);
  auto out = engine.Execute(kSelectSql);
  EXPECT_EQ(out.status().code(), common::StatusCode::kCancelled);
  // Detached, the same engine serves the same statement.
  engine.set_cancel_token(nullptr);
  EXPECT_TRUE(engine.Execute(kSelectSql).ok());
}

TEST(EngineLifecycleTest, ExpiredDeadlineFailsSelectCleanly) {
  imdb::ImdbDatabase* db = SmallImdb();
  sql::Engine engine(&db->catalog, &db->stats);
  exec::CancelToken token;
  token.set_deadline(exec::CancelToken::Clock::now() -
                     std::chrono::milliseconds(1));
  engine.set_cancel_token(&token);
  auto out = engine.Execute(kSelectSql);
  EXPECT_EQ(out.status().code(), common::StatusCode::kDeadlineExceeded);
}

// The catalog-empty-after-failure regression: a CREATE TEMP TABLE aborted
// by a fault *after* the table exists (exec.analyze fires between the
// column writes and the stats commit) must drop the half-written table and
// its statistics, and the retry must not see an AlreadyExists collision —
// the proof that the name was not leaked.
class EngineAbortSweep : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { fp::DisarmAll(); }
  void TearDown() override { fp::DisarmAll(); }
};

TEST_P(EngineAbortSweep, AbortedCreateLeavesNoTraceAndRetrySucceeds) {
  const char* point = GetParam();
  imdb::ImdbDatabase* db = SmallImdb();
  const std::vector<std::string> baseline_stats = db->stats.Names();
  sql::Engine engine(&db->catalog, &db->stats);

  ASSERT_TRUE(fp::Arm(point, "nth:1").ok());
  auto faulted = engine.Execute(kCreateSql);
  ASSERT_GT(fp::Triggers(point), 0) << point;
  fp::Disarm(point);
  EXPECT_FALSE(faulted.ok()) << point;
  EXPECT_EQ(db->catalog.FindTable("lc_probe"), nullptr)
      << point << " leaked the temp table";
  EXPECT_TRUE(db->catalog.TableNames(/*temp_only=*/true).empty());
  EXPECT_EQ(db->stats.Names(), baseline_stats)
      << point << " leaked statistics";

  // Fault-free retry: no AlreadyExists, the table and stats materialize.
  auto retry = engine.Execute(kCreateSql);
  ASSERT_TRUE(retry.ok()) << point << ": " << retry.status().ToString();
  EXPECT_NE(db->catalog.FindTable("lc_probe"), nullptr);
  EXPECT_NE(db->stats.Find("lc_probe"), nullptr);

  // Leave the shared database as we found it.
  EXPECT_TRUE(db->catalog.DropTable("lc_probe").ok());
  db->stats.Remove("lc_probe");
}

INSTANTIATE_TEST_SUITE_P(CreateAbortPoints, EngineAbortSweep,
                         ::testing::Values("exec.temp_write", "exec.analyze"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

// A cancelled CREATE TEMP TABLE (token trips during the column writes)
// takes the same cleanup path.
TEST(EngineLifecycleTest, CancelledCreateLeavesNoTrace) {
  imdb::ImdbDatabase* db = SmallImdb();
  const std::vector<std::string> baseline_stats = db->stats.Names();
  sql::Engine engine(&db->catalog, &db->stats);
  exec::CancelToken token;
  token.Cancel();
  engine.set_cancel_token(&token);
  auto out = engine.Execute(kCreateSql);
  EXPECT_EQ(out.status().code(), common::StatusCode::kCancelled);
  EXPECT_EQ(db->catalog.FindTable("lc_probe"), nullptr);
  EXPECT_EQ(db->stats.Names(), baseline_stats);
}

// ---- QueryRunner abort paths ------------------------------------------------

TEST(RunnerLifecycleTest, TrippedTokensFailAtRoundBoundaryWithNoLeaks) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto workload = workload::BuildJobLikeWorkload(db->catalog);
  const std::vector<std::string> baseline_stats = db->stats.Names();
  reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                  optimizer::CostParams{});
  runner.set_temp_namespace("lc");
  auto session = reoptimizer::QuerySession::Create(
      workload->queries[0].get(), &db->catalog, &db->stats);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  exec::CancelToken cancelled;
  cancelled.Cancel();
  auto run = runner.Run(session->get(), reoptimizer::ModelSpec::Estimator(),
                        ReoptOn(), &cancelled);
  EXPECT_EQ(run.status().code(), common::StatusCode::kCancelled);

  exec::CancelToken expired;
  expired.set_deadline(exec::CancelToken::Clock::now() -
                       std::chrono::milliseconds(1));
  run = runner.Run(session->get(), reoptimizer::ModelSpec::Estimator(),
                   ReoptOn(), &expired);
  EXPECT_EQ(run.status().code(), common::StatusCode::kDeadlineExceeded);

  EXPECT_TRUE(db->catalog.TableNames(/*temp_only=*/true).empty());
  EXPECT_EQ(db->stats.Names(), baseline_stats);

  // The same session runs fault-free afterwards.
  EXPECT_TRUE(runner
                  .Run(session->get(), reoptimizer::ModelSpec::Estimator(),
                       ReoptOn())
                  .ok());
}

// ---- Materialization budgets ------------------------------------------------

// Finds a workload query the re-optimizer materializes at least twice with
// a non-empty first materialization, runs it fault-free for reference,
// then reruns it under a budget sized so the first materialization
// exhausts it. The budgeted run must degrade gracefully: OK status, exact
// answer, strictly fewer materializations, degraded flagged.
class BudgetTest : public ::testing::Test {
 protected:
  struct Target {
    std::unique_ptr<workload::JobLikeWorkload> workload;
    std::unique_ptr<reoptimizer::QuerySession> session;
    reoptimizer::RunResult reference;
    int64_t first_mat_rows = 0;
  };

  static Target FindTarget() {
    Target target;
    imdb::ImdbDatabase* db = SmallImdb();
    target.workload = workload::BuildJobLikeWorkload(db->catalog);
    reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                    optimizer::CostParams{});
    runner.set_temp_namespace("lc_budget");
    for (const auto& q : target.workload->queries) {
      auto session = reoptimizer::QuerySession::Create(q.get(), &db->catalog,
                                                       &db->stats);
      EXPECT_TRUE(session.ok()) << session.status().ToString();
      auto run = runner.Run(session->get(),
                            reoptimizer::ModelSpec::Estimator(), ReoptOn());
      EXPECT_TRUE(run.ok()) << q->name << ": " << run.status().ToString();
      if (run->num_materializations < 2) continue;
      const int64_t first_rows =
          static_cast<int64_t>(run->rounds.front().true_rows);
      if (first_rows < 1) continue;
      target.session = std::move(session.value());
      target.reference = std::move(run.value());
      target.first_mat_rows = first_rows;
      return target;
    }
    return target;  // session == nullptr: no suitable query at this scale
  }

  static void ExpectDegraded(const reoptimizer::RunResult& run,
                             const reoptimizer::RunResult& reference) {
    EXPECT_TRUE(run.degraded);
    EXPECT_EQ(run.aggregates, reference.aggregates);
    EXPECT_EQ(run.raw_rows, reference.raw_rows);
    EXPECT_LT(run.num_materializations, reference.num_materializations);
    EXPECT_GT(run.materialized_rows, 0);
  }
};

TEST_F(BudgetTest, RowBudgetDegradesGracefully) {
  Target target = FindTarget();
  if (target.session == nullptr) {
    GTEST_SKIP() << "no workload query materializes twice at this scale";
  }
  imdb::ImdbDatabase* db = SmallImdb();
  reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                  optimizer::CostParams{});
  runner.set_temp_namespace("lc_budget");
  reoptimizer::ReoptOptions budgeted = ReoptOn();
  budgeted.max_materialized_rows = target.first_mat_rows;
  auto run = runner.Run(target.session.get(),
                        reoptimizer::ModelSpec::Estimator(), budgeted);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectDegraded(*run, target.reference);
  EXPECT_GE(run->materialized_rows, budgeted.max_materialized_rows);
}

TEST_F(BudgetTest, ByteBudgetDegradesGracefully) {
  Target target = FindTarget();
  if (target.session == nullptr) {
    GTEST_SKIP() << "no workload query materializes twice at this scale";
  }
  imdb::ImdbDatabase* db = SmallImdb();
  reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                  optimizer::CostParams{});
  runner.set_temp_namespace("lc_budget");
  reoptimizer::ReoptOptions budgeted = ReoptOn();
  budgeted.max_materialized_bytes = 1;  // any non-empty materialization
  auto run = runner.Run(target.session.get(),
                        reoptimizer::ModelSpec::Estimator(), budgeted);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectDegraded(*run, target.reference);
  EXPECT_GT(run->materialized_bytes, budgeted.max_materialized_bytes);
}

// An unlimited budget (the default 0) never degrades.
TEST_F(BudgetTest, UnlimitedBudgetNeverDegrades) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto workload = workload::BuildJobLikeWorkload(db->catalog);
  reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                  optimizer::CostParams{});
  runner.set_temp_namespace("lc_budget");
  auto session = reoptimizer::QuerySession::Create(
      workload->queries[0].get(), &db->catalog, &db->stats);
  ASSERT_TRUE(session.ok());
  auto run = runner.Run(session->get(), reoptimizer::ModelSpec::Estimator(),
                        ReoptOn());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->degraded);
}

}  // namespace
}  // namespace reopt
