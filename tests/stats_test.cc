#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/analyze.h"
#include "stats/analyze_reference.h"
#include "stats/histogram.h"
#include "stats/stats_catalog.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace reopt::stats {
namespace {

using common::Value;

// ---- EquiDepthHistogram ---------------------------------------------------

std::vector<Value> IntValues(const std::vector<int64_t>& xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int(x));
  return out;
}

TEST(HistogramTest, EmptyInput) {
  EquiDepthHistogram h = EquiDepthHistogram::Build({}, 10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.num_buckets(), 0);
}

TEST(HistogramTest, BoundsAreSorted) {
  common::Rng rng(5);
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(Value::Int(rng.UniformInt(0, 500)));
  }
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 20);
  for (size_t i = 1; i < h.bounds().size(); ++i) {
    EXPECT_LE(h.bounds()[i - 1], h.bounds()[i]);
  }
}

TEST(HistogramTest, FractionBelowEndpoints) {
  EquiDepthHistogram h =
      EquiDepthHistogram::Build(IntValues({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}), 5);
  EXPECT_DOUBLE_EQ(h.FractionBelow(Value::Int(0), true), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(Value::Int(11), true), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(Value::Int(10), true), 1.0);
}

TEST(HistogramTest, FractionBelowIsMonotone) {
  common::Rng rng(9);
  std::vector<Value> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(Value::Int(rng.UniformInt(0, 1000)));
  }
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 50);
  double prev = -1.0;
  for (int64_t v = 0; v <= 1000; v += 25) {
    double f = h.FractionBelow(Value::Int(v), true);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

// Property sweep: on uniform data the histogram's range estimate should be
// close to the true fraction, for several bucket counts.
class HistogramAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramAccuracyTest, UniformRangeEstimateAccurate) {
  int buckets = GetParam();
  common::Rng rng(42);
  std::vector<int64_t> raw;
  std::vector<Value> values;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.UniformInt(0, 9999);
    raw.push_back(v);
    values.push_back(Value::Int(v));
  }
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, buckets);
  int64_t lo = 2500;
  int64_t hi = 7500;
  double truth = 0.0;
  for (int64_t v : raw) {
    if (v >= lo && v <= hi) truth += 1.0;
  }
  truth /= static_cast<double>(raw.size());
  double est =
      h.FractionBetween(Value::Int(lo), true, Value::Int(hi), true);
  EXPECT_NEAR(est, truth, 2.0 / buckets + 0.01);
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, HistogramAccuracyTest,
                         ::testing::Values(10, 25, 50, 100, 200));

TEST(HistogramTest, StringBounds) {
  EquiDepthHistogram h = EquiDepthHistogram::Build(
      {Value::Str("a"), Value::Str("b"), Value::Str("c"), Value::Str("d")},
      2);
  EXPECT_GT(h.FractionBelow(Value::Str("c"), true), 0.0);
  EXPECT_LE(h.FractionBelow(Value::Str("a"), false), 0.0);
}

// ---- AnalyzeColumn ------------------------------------------------------------

storage::Column MakeIntColumn(const std::vector<int64_t>& xs,
                              int num_nulls = 0) {
  storage::Column col(common::DataType::kInt64);
  for (int64_t x : xs) col.AppendInt(x);
  for (int i = 0; i < num_nulls; ++i) col.AppendNull();
  return col;
}

TEST(AnalyzeTest, NullFraction) {
  storage::Column col = MakeIntColumn({1, 2, 3}, 1);
  ColumnStats stats = AnalyzeColumn(col);
  EXPECT_NEAR(stats.null_frac, 0.25, 1e-9);
}

TEST(AnalyzeTest, DistinctCountExact) {
  storage::Column col = MakeIntColumn({1, 1, 2, 2, 2, 3});
  ColumnStats stats = AnalyzeColumn(col);
  EXPECT_DOUBLE_EQ(stats.num_distinct, 3.0);
  EXPECT_EQ(stats.min, common::Value::Int(1));
  EXPECT_EQ(stats.max, common::Value::Int(3));
}

TEST(AnalyzeTest, McvCapturesSkewedValue) {
  // Value 7 appears in half the rows; it must be an MCV with freq ~0.5.
  std::vector<int64_t> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(7);
  for (int i = 0; i < 500; ++i) xs.push_back(100 + i);
  ColumnStats stats = AnalyzeColumn(MakeIntColumn(xs));
  auto freq = stats.mcv.Find(common::Value::Int(7));
  ASSERT_TRUE(freq.has_value());
  EXPECT_NEAR(*freq, 0.5, 0.01);
}

TEST(AnalyzeTest, UniformColumnHasNoMcvs) {
  std::vector<int64_t> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(i);
  ColumnStats stats = AnalyzeColumn(MakeIntColumn(xs));
  EXPECT_TRUE(stats.mcv.empty());
  EXPECT_NEAR(stats.non_mcv_frac, 1.0, 1e-9);
}

TEST(AnalyzeTest, McvRespectsStatisticsTarget) {
  // 50 heavy values, target 10 -> exactly 10 MCVs (the heaviest).
  std::vector<int64_t> xs;
  for (int64_t v = 0; v < 50; ++v) {
    for (int64_t c = 0; c < 20 + v; ++c) xs.push_back(v);
  }
  for (int64_t i = 0; i < 200; ++i) xs.push_back(1000 + i);
  AnalyzeOptions options;
  options.statistics_target = 10;
  ColumnStats stats = AnalyzeColumn(MakeIntColumn(xs), options);
  EXPECT_LE(stats.mcv.size(), 10);
  // The very heaviest value must be included.
  EXPECT_TRUE(stats.mcv.Find(common::Value::Int(49)).has_value());
}

TEST(AnalyzeTest, NonMcvFractionConsistent) {
  std::vector<int64_t> xs;
  for (int i = 0; i < 600; ++i) xs.push_back(1);
  for (int i = 0; i < 400; ++i) xs.push_back(10 + i);
  ColumnStats stats = AnalyzeColumn(MakeIntColumn(xs));
  double mcv_total = stats.mcv.TotalFreq();
  EXPECT_NEAR(mcv_total + stats.non_mcv_frac, 1.0, 1e-9);
}

TEST(AnalyzeTest, SampledAnalyzeApproximatesNullFrac) {
  storage::Column col = MakeIntColumn(std::vector<int64_t>(9000, 5), 1000);
  AnalyzeOptions options;
  options.sample_size = 2000;
  ColumnStats stats = AnalyzeColumn(col, options);
  EXPECT_NEAR(stats.null_frac, 0.1, 0.03);
}

TEST(AnalyzeTest, WholeTable) {
  storage::Table t("t", storage::Schema({{"a", common::DataType::kInt64},
                                         {"b", common::DataType::kString}}));
  t.AppendRow({Value::Int(1), Value::Str("x")});
  t.AppendRow({Value::Int(2), Value::Str("y")});
  TableStats stats = Analyze(t);
  EXPECT_DOUBLE_EQ(stats.row_count, 2.0);
  ASSERT_EQ(stats.columns.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.column(0).num_distinct, 2.0);
}

// ---- StatsCatalog ---------------------------------------------------------------

TEST(StatsCatalogTest, AnalyzeAllAndLookup) {
  storage::Catalog cat;
  auto t = cat.CreateTable("t1", storage::Schema({{"a", common::DataType::kInt64}}));
  ASSERT_TRUE(t.ok());
  t.value()->AppendRow({Value::Int(1)});
  StatsCatalog sc;
  sc.AnalyzeAll(cat);
  ASSERT_NE(sc.Find("t1"), nullptr);
  EXPECT_DOUBLE_EQ(sc.Find("t1")->row_count, 1.0);
  EXPECT_EQ(sc.Find("missing"), nullptr);
  sc.Remove("t1");
  EXPECT_EQ(sc.Find("t1"), nullptr);
}

// ---- Typed ANALYZE vs the retained boxed reference ------------------------

// Bit-identical is the contract: the typed single-pass path must emit
// exactly the stats the boxed implementation does, double for double.
void ExpectStatsEqual(const ColumnStats& a, const ColumnStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.null_frac, b.null_frac) << label;
  EXPECT_EQ(a.num_distinct, b.num_distinct) << label;
  EXPECT_EQ(a.non_mcv_frac, b.non_mcv_frac) << label;
  EXPECT_EQ(a.non_mcv_distinct, b.non_mcv_distinct) << label;
  EXPECT_EQ(a.min, b.min) << label;
  EXPECT_EQ(a.max, b.max) << label;
  ASSERT_EQ(a.mcv.values.size(), b.mcv.values.size()) << label;
  for (size_t i = 0; i < a.mcv.values.size(); ++i) {
    EXPECT_EQ(a.mcv.values[i], b.mcv.values[i]) << label << " mcv " << i;
    EXPECT_EQ(a.mcv.freqs[i], b.mcv.freqs[i]) << label << " mcv " << i;
  }
  ASSERT_EQ(a.histogram.bounds().size(), b.histogram.bounds().size()) << label;
  for (size_t i = 0; i < a.histogram.bounds().size(); ++i) {
    EXPECT_EQ(a.histogram.bounds()[i], b.histogram.bounds()[i])
        << label << " bound " << i;
  }
}

TEST(AnalyzeDifferentialTest, MatchesReferenceOnEveryImdbColumn) {
  // Every column of the generated IMDB database — int keys, nullable
  // foreign keys, strings, skew — full scan and two sample sizes.
  const storage::Catalog& catalog = testing::SmallImdb()->catalog;
  for (int64_t sample : {int64_t{0}, int64_t{257}, int64_t{4096}}) {
    AnalyzeOptions options;
    options.sample_size = sample;
    for (const std::string& name : catalog.TableNames()) {
      const storage::Table* table = catalog.FindTable(name);
      for (common::ColumnIdx c = 0; c < table->num_columns(); ++c) {
        ColumnStats typed = AnalyzeColumn(table->column(c), options);
        ColumnStats boxed = reference::AnalyzeColumn(table->column(c), options);
        ExpectStatsEqual(typed, boxed,
                         name + "." + std::to_string(c) + " sample=" +
                             std::to_string(sample));
      }
    }
  }
}

TEST(AnalyzeDifferentialTest, FusedComputeMatchesAnalyzeColumn) {
  // The fused materialize+ANALYZE contract: feeding the values written to a
  // temp column straight into ComputeColumnStats equals analyzing the
  // finished column.
  std::vector<int64_t> raw = {5, 3, 3, 7, 7, 7, 1, 9, 9, 2};
  storage::Column col(common::DataType::kInt64);
  std::vector<int64_t> values;
  int64_t nulls = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i % 4 == 3) {
      col.AppendNull();
      ++nulls;
    } else {
      col.AppendInt(raw[i]);
      values.push_back(raw[i]);
    }
  }
  ColumnStats fused =
      ComputeColumnStats(std::move(values), col.size(), nulls);
  ExpectStatsEqual(fused, AnalyzeColumn(col), "fused int column");
}

TEST(AnalyzeDifferentialTest, EncodingInvariantStats) {
  // ANALYZE must emit bit-identical stats before and after a column is
  // encoded: the dictionary path gathers int32 codes (order-isomorphic to
  // the strings), the partitioned path reads the unchanged plain spans.
  storage::Column plain_s(common::DataType::kString);
  storage::Column dict_s(common::DataType::kString);
  for (int64_t i = 0; i < 3000; ++i) {
    if (i % 11 == 3) {
      plain_s.AppendNull();
      dict_s.AppendNull();
    } else {
      std::string v = "tag" + std::to_string((i * 7) % 13);
      plain_s.AppendString(v);
      dict_s.AppendString(v);
    }
  }
  dict_s.EncodeDictionary();
  ASSERT_EQ(dict_s.encoding(), storage::ColumnEncoding::kDictionary);
  for (int64_t sample : {int64_t{0}, int64_t{512}}) {
    AnalyzeOptions options;
    options.sample_size = sample;
    ExpectStatsEqual(AnalyzeColumn(dict_s, options),
                     AnalyzeColumn(plain_s, options),
                     "dict vs plain sample=" + std::to_string(sample));
    ExpectStatsEqual(AnalyzeColumn(dict_s, options),
                     reference::AnalyzeColumn(dict_s, options),
                     "dict vs boxed sample=" + std::to_string(sample));
  }

  storage::Column plain_i(common::DataType::kInt64);
  storage::Column part_i(common::DataType::kInt64);
  for (int64_t i = 0; i < 3000; ++i) {
    if (i % 7 == 0) {
      plain_i.AppendNull();
      part_i.AppendNull();
    } else {
      plain_i.AppendInt(i % 97);
      part_i.AppendInt(i % 97);
    }
  }
  part_i.EncodePartitioned();
  ASSERT_EQ(part_i.encoding(), storage::ColumnEncoding::kPartitioned);
  ExpectStatsEqual(AnalyzeColumn(part_i), AnalyzeColumn(plain_i),
                   "partitioned vs plain");
}

// ---- Sampling semantics (pinned) ------------------------------------------

TEST(AnalyzeSamplingTest, ColumnSmallerThanSampleSizeIsExact) {
  // A column with fewer rows than sample_size takes the full-scan branch:
  // no replacement, no double counting, exact NDV and null fraction.
  storage::Column col = MakeIntColumn({1, 1, 2, 3, 4, 4, 5, 6}, 2);
  AnalyzeOptions options;
  options.sample_size = 100;  // > 10 rows
  ColumnStats stats = AnalyzeColumn(col, options);
  EXPECT_DOUBLE_EQ(stats.null_frac, 0.2);
  EXPECT_DOUBLE_EQ(stats.num_distinct, 6.0);
  EXPECT_EQ(stats.min, common::Value::Int(1));
  EXPECT_EQ(stats.max, common::Value::Int(6));
}

TEST(AnalyzeSamplingTest, WithReplacementDoubleCountsDeterministically) {
  // When it does sample (sample_size < rows), sampling is WITH
  // replacement: a row drawn twice counts twice toward sample_rows and
  // the value distribution. The fixed seed pins the draw sequence, so the
  // resulting stats are deterministic and identical to the reference
  // implementation's.
  std::vector<int64_t> xs;
  for (int64_t i = 0; i < 200; ++i) xs.push_back(i % 8);
  storage::Column col = MakeIntColumn(xs, /*num_nulls=*/1);
  AnalyzeOptions options;
  options.sample_size = 64;
  ColumnStats typed = AnalyzeColumn(col, options);
  ColumnStats boxed = reference::AnalyzeColumn(col, options);
  ExpectStatsEqual(typed, boxed, "with-replacement sample");
  // null_frac's denominator is the 64 drawn rows (duplicates included):
  // whatever fraction comes out is a whole number of 64ths.
  double scaled = typed.null_frac * 64.0;
  EXPECT_EQ(scaled, std::floor(scaled));
  // At most 8 distinct values exist; replacement cannot invent more.
  EXPECT_LE(typed.num_distinct, 8.0);
  EXPECT_GE(typed.num_distinct, 1.0);
}

}  // namespace
}  // namespace reopt::stats
