// CardinalityKnowledgeBase: feature extraction (subspace hashing, temp-table
// exclusion, stability across re-opt relation renumbering), the kNN
// predictor (exact-hit recall, interpolation, refusal on unknown
// subspaces), the staleness/eviction policy, and concurrent warm-up
// (tsan-labelled). End-to-end learned-vs-estimator differentials live in
// tests/planner_differential_test.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <unordered_map>
#include <vector>

#include "optimizer/knowledge_base.h"
#include "reopt/query_runner.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt::optimizer {
namespace {

using testing::SmallImdb;

SubsetFeatures Synthetic(uint64_t fss, std::vector<double> selectivities,
                         double cartesian_rows) {
  SubsetFeatures f;
  f.fss_hash = fss;
  for (double s : selectivities) {
    f.log_selectivities.push_back(std::log(s));
  }
  f.log_cartesian = std::log(cartesian_rows);
  return f;
}

TEST(KnowledgeBaseTest, ExactHitRoundTripsObservedTruth) {
  CardinalityKnowledgeBase kb;
  SubsetFeatures f = Synthetic(42, {0.1, 0.5}, 1e6);
  kb.Observe(f, 1234.0);
  auto predicted = kb.PredictRows(f);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, 1234.0, 1e-6);
  KnowledgeBaseStats stats = kb.Stats();
  EXPECT_EQ(stats.spaces, 1);
  EXPECT_EQ(stats.observations, 1);
  EXPECT_EQ(stats.exact_hits, 1);
}

TEST(KnowledgeBaseTest, RefusesUnknownSubspace) {
  CardinalityKnowledgeBase kb;
  kb.Observe(Synthetic(42, {0.1}, 1e6), 50.0);
  EXPECT_FALSE(kb.PredictRows(Synthetic(43, {0.1}, 1e6)).has_value());
  KnowledgeBaseStats stats = kb.Stats();
  EXPECT_EQ(stats.predictions, 1);
  EXPECT_EQ(stats.hits, 0);
}

TEST(KnowledgeBaseTest, KnnInterpolatesBetweenNeighbors) {
  // Observations where true selectivity == the marginal feature, at
  // selectivities 0.1 / 0.2 / 0.4; a query at 0.25 must interpolate into
  // the neighbors' range instead of snapping to any single observation.
  CardinalityKnowledgeBase kb;
  for (double sel : {0.1, 0.2, 0.4}) {
    kb.Observe(Synthetic(7, {sel}, 1e6), sel * 1e6);
  }
  auto predicted = kb.PredictRows(Synthetic(7, {0.25}, 1e6));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_GT(*predicted, 0.1 * 1e6);
  EXPECT_LT(*predicted, 0.4 * 1e6);
  KnowledgeBaseStats stats = kb.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.exact_hits, 0);
}

TEST(KnowledgeBaseTest, TargetsScaleWithCartesianProduct) {
  // The same log-selectivity target transfers across table scales: learn
  // at a 1e6-row cartesian space, predict at 2e6 -> twice the rows.
  CardinalityKnowledgeBase kb;
  kb.Observe(Synthetic(9, {0.5}, 1e6), 1000.0);
  SubsetFeatures scaled = Synthetic(9, {0.5}, 2e6);
  auto predicted = kb.PredictRows(scaled);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, 2000.0, 1e-5);
}

TEST(KnowledgeBaseTest, LatestTruthWinsOnExactDuplicate) {
  CardinalityKnowledgeBase kb;
  SubsetFeatures f = Synthetic(42, {0.1}, 1e6);
  kb.Observe(f, 100.0);
  kb.Observe(f, 200.0);  // data shifted: the re-observation must replace
  auto predicted = kb.PredictRows(f);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, 200.0, 1e-6);
  KnowledgeBaseStats stats = kb.Stats();
  EXPECT_EQ(stats.observations, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.updates, 1);
}

TEST(KnowledgeBaseTest, EvictionKeepsSubspaceBounded) {
  KnowledgeBaseOptions options;
  options.capacity_per_space = 2;
  CardinalityKnowledgeBase kb(options);
  for (int i = 0; i < 5; ++i) {
    kb.Observe(Synthetic(42, {0.1 + 0.1 * i}, 1e6), 100.0 * (i + 1));
  }
  KnowledgeBaseStats stats = kb.Stats();
  EXPECT_EQ(stats.observations, 2);
  EXPECT_EQ(stats.inserts, 2);
  EXPECT_EQ(stats.evictions, 3);
  // FIFO ring: the two *newest* observations survive.
  auto predicted = kb.PredictRows(Synthetic(42, {0.5}, 1e6));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, 500.0, 1e-6);
}

TEST(KnowledgeBaseTest, FreezeStopsLearningButKeepsPredicting) {
  CardinalityKnowledgeBase kb;
  SubsetFeatures f = Synthetic(42, {0.1}, 1e6);
  kb.Observe(f, 100.0);
  kb.set_learning_enabled(false);
  kb.Observe(f, 999.0);                       // dropped
  kb.Observe(Synthetic(43, {0.1}, 1e6), 1.0);  // dropped
  auto predicted = kb.PredictRows(f);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, 100.0, 1e-6);
  EXPECT_EQ(kb.Stats().observations, 1);
  kb.set_learning_enabled(true);
  kb.Observe(f, 999.0);
  EXPECT_NEAR(*kb.PredictRows(f), 999.0, 1e-5);
}

TEST(KnowledgeBaseTest, ClearResetsEverything) {
  CardinalityKnowledgeBase kb;
  SubsetFeatures f = Synthetic(42, {0.1}, 1e6);
  kb.Observe(f, 100.0);
  (void)kb.PredictRows(f);
  kb.Clear();
  KnowledgeBaseStats stats = kb.Stats();
  EXPECT_EQ(stats.spaces, 0);
  EXPECT_EQ(stats.observations, 0);
  EXPECT_EQ(stats.predictions, 0);
  EXPECT_FALSE(kb.PredictRows(f).has_value());
}

TEST(KnowledgeBaseTest, FeaturesSeparateLiteralsFromStructure) {
  // Two predicates on the same column with different constants must share
  // a subspace (same structure) but differ in features (different marginal
  // selectivity) — that separation is what lets kNN generalize across
  // literal values.
  imdb::ImdbDatabase* db = SmallImdb();
  auto query = workload::MakeQuery6d(db->catalog);
  auto bound = QueryContext::Bind(query.get(), &db->catalog, &db->stats);
  ASSERT_TRUE(bound.ok());

  SubsetFeatures whole;
  ASSERT_TRUE(CardinalityKnowledgeBase::FeaturesOf(
      *bound.value(), query->AllRelations(), &whole));
  EXPECT_NE(whole.fss_hash, 0u);
  EXPECT_GT(whole.log_cartesian, 0.0);

  // Disjoint subsets of the same query live in different subspaces.
  SubsetFeatures single;
  ASSERT_TRUE(CardinalityKnowledgeBase::FeaturesOf(
      *bound.value(), plan::RelSet::Single(0), &single));
  EXPECT_NE(single.fss_hash, whole.fss_hash);
}

TEST(KnowledgeBaseTest, FeatureHashStableAcrossReoptRenumbering) {
  // After a re-optimization rewrite the surviving relations are compacted
  // to new ids (RewriteInfo::rel_remap) and the model is Rebind()-ed to
  // the new context. A surviving subset must keep its exact feature view —
  // same subspace hash, same features, same cartesian log — or knowledge
  // learned before a rewrite would be unreachable after it. Subsets that
  // *contain* the temp relation must have no feature space at all.
  imdb::ImdbDatabase* db = SmallImdb();
  auto query = workload::MakeQuery6d(db->catalog);
  auto old_bound = QueryContext::Bind(query.get(), &db->catalog, &db->stats);
  ASSERT_TRUE(old_bound.ok());
  const QueryContext& old_ctx = *old_bound.value();

  int compared = 0;
  int temp_subsets = 0;
  reoptimizer::QueryRunner runner(&db->catalog, &db->stats, {});
  runner.set_plan_observer([&](int round, const plan::PlanNode& root,
                               const plan::QuerySpec& spec) {
    (void)root;
    if (round == 0) return;  // pre-rewrite numbering == old_ctx numbering
    auto new_bound = QueryContext::Bind(&spec, &db->catalog, &db->stats);
    ASSERT_TRUE(new_bound.ok());
    const QueryContext& new_ctx = *new_bound.value();

    // Recover new -> old ids by alias (aliases are unique and survive the
    // rewrite); the temp relation's name maps to no original alias.
    std::unordered_map<size_t, int> new_to_old;
    plan::RelSet temp_rels;
    for (size_t nr = 0; nr < spec.relations.size(); ++nr) {
      bool found = false;
      for (size_t orig = 0; orig < query->relations.size(); ++orig) {
        if (spec.relations[nr].alias == query->relations[orig].alias) {
          new_to_old[nr] = static_cast<int>(orig);
          found = true;
          break;
        }
      }
      if (!found) temp_rels = temp_rels.With(static_cast<int>(nr));
    }
    // At least one temp after a rewrite; earlier temps may have been folded
    // into a later materialization, so the count need not equal the round.
    ASSERT_GE(temp_rels.count(), 1);

    for (plan::RelSet new_set : new_ctx.graph().ConnectedSubsets()) {
      SubsetFeatures new_features;
      if (!new_set.Intersect(temp_rels).empty()) {
        EXPECT_FALSE(CardinalityKnowledgeBase::FeaturesOf(
            new_ctx, new_set, &new_features))
            << "temp-touching subset must refuse a feature space";
        ++temp_subsets;
        continue;
      }
      plan::RelSet old_set;
      for (int nr : new_set.Members()) {
        old_set = old_set.With(new_to_old.at(static_cast<size_t>(nr)));
      }
      SubsetFeatures old_features;
      ASSERT_TRUE(CardinalityKnowledgeBase::FeaturesOf(new_ctx, new_set,
                                                       &new_features));
      ASSERT_TRUE(CardinalityKnowledgeBase::FeaturesOf(old_ctx, old_set,
                                                       &old_features));
      EXPECT_EQ(new_features.fss_hash, old_features.fss_hash);
      EXPECT_EQ(new_features.log_selectivities,
                old_features.log_selectivities);
      EXPECT_DOUBLE_EQ(new_features.log_cartesian,
                       old_features.log_cartesian);
      ++compared;
    }
  });

  auto session =
      reoptimizer::QuerySession::Create(query.get(), &db->catalog, &db->stats);
  ASSERT_TRUE(session.ok());
  reoptimizer::ReoptOptions reopt;
  reopt.enabled = true;
  reopt.qerror_threshold = 2.0;  // aggressive: force at least one rewrite
  auto run = session.ok()
                 ? runner.Run(session.value().get(),
                              reoptimizer::ModelSpec::Estimator(), reopt)
                 : common::Result<reoptimizer::RunResult>(
                       session.status());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GT(run->num_materializations, 0);
  EXPECT_GT(compared, 0);
  EXPECT_GT(temp_subsets, 0);
}

TEST(KnowledgeBaseTest, ConcurrentWarmupIsConsistent) {
  // tsan target: 8 threads hammer Observe/Predict across 16 shared
  // subspaces; afterwards the counters must account for every learning
  // call and no subspace may exceed its capacity.
  KnowledgeBaseOptions options;
  options.capacity_per_space = 8;
  CardinalityKnowledgeBase kb(options);
  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &kb] {
      for (int i = 0; i < kOps; ++i) {
        SubsetFeatures f;
        f.fss_hash = static_cast<uint64_t>(i % 16);
        f.log_selectivities = {-0.01 * ((t * kOps + i) % 97)};
        f.log_cartesian = 10.0;
        if (i % 3 == 0) {
          (void)kb.PredictRows(f);
        } else {
          kb.Observe(f, 100.0 + i);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  int64_t observe_calls = 0;
  for (int i = 0; i < kOps; ++i) {
    if (i % 3 != 0) observe_calls += kThreads;
  }
  KnowledgeBaseStats stats = kb.Stats();
  EXPECT_EQ(stats.inserts + stats.updates + stats.evictions, observe_calls);
  EXPECT_LE(stats.observations, int64_t{16} * options.capacity_per_space);
  EXPECT_EQ(stats.predictions, int64_t{kThreads} * kOps - observe_calls);
}

TEST(KnowledgeBaseTest, FrozenBaseParallelSweepMatchesSerial) {
  // The workload-level determinism contract: with a *frozen* shared base,
  // a 4-worker learned sweep must be byte-identical to a serial learned
  // run (workload/runner.h). Warming runs serially first — commit order is
  // part of the learned state.
  imdb::ImdbDatabase* db = SmallImdb();
  auto workload = workload::BuildJobLikeWorkload(db->catalog);
  CardinalityKnowledgeBase kb;

  reoptimizer::ReoptOptions reopt;
  reopt.enabled = true;
  reopt.qerror_threshold = 32.0;

  workload::WorkloadRunner runner(db);
  runner.set_knowledge_base(&kb);
  auto warm = runner.RunAll(*workload, reoptimizer::ModelSpec::Learned(),
                            reopt, /*num_threads=*/1);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_GT(kb.Stats().observations, 0);
  kb.set_learning_enabled(false);

  auto serial = runner.RunAll(*workload, reoptimizer::ModelSpec::Learned(),
                              reopt, /*num_threads=*/1);
  ASSERT_TRUE(serial.ok());
  auto parallel = runner.RunAll(*workload, reoptimizer::ModelSpec::Learned(),
                                reopt, /*num_threads=*/4);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->records.size(), parallel->records.size());
  for (size_t q = 0; q < serial->records.size(); ++q) {
    const workload::QueryRecord& sr = serial->records[q];
    const workload::QueryRecord& pr = parallel->records[q];
    EXPECT_EQ(sr.name, pr.name);
    EXPECT_EQ(sr.plan_seconds, pr.plan_seconds) << sr.name;
    EXPECT_EQ(sr.exec_seconds, pr.exec_seconds) << sr.name;
    EXPECT_EQ(sr.materializations, pr.materializations) << sr.name;
    EXPECT_EQ(sr.raw_rows, pr.raw_rows) << sr.name;
  }
}

}  // namespace
}  // namespace reopt::optimizer
