// CORDS-style column-group statistics: the machinery must fix single-table
// correlated equality pairs — and, per the paper's Sec. IV-B argument, must
// NOT fix join-crossing correlations (validated by the ablation bench at
// workload level and by a targeted check here).
#include <gtest/gtest.h>

#include "optimizer/cardinality_model.h"
#include "stats/column_groups.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::stats {
namespace {

using common::Value;
using testing::SmallImdb;

// movie_info columns: id(0), movie_id(1), info_type_id(2), info(3).
// info_type_id and info are strongly correlated by construction (genre
// strings only occur under info_type 4, etc.).
ColumnGroupStats MovieInfoGroup() {
  imdb::ImdbDatabase* db = SmallImdb();
  const storage::Table* mi = db->catalog.FindTable("movie_info");
  ColumnGroupOptions options;
  std::vector<ColumnGroupStats> groups = BuildColumnGroups(*mi, options);
  const ColumnGroupStats* group = FindGroup(groups, 2, 3);
  EXPECT_NE(group, nullptr) << "info_type_id x info must be detected";
  return group == nullptr ? ColumnGroupStats{} : *group;
}

TEST(ColumnGroupsTest, DetectsCorrelatedPair) {
  ColumnGroupStats group = MovieInfoGroup();
  EXPECT_GT(group.correlation, 0.2);
  EXPECT_FALSE(group.pairs.empty());
}

TEST(ColumnGroupsTest, SkipsWideColumns) {
  imdb::ImdbDatabase* db = SmallImdb();
  const storage::Table* mi = db->catalog.FindTable("movie_info");
  std::vector<ColumnGroupStats> groups = BuildColumnGroups(*mi);
  // id / movie_id are high-cardinality: no group may involve column 0.
  for (const ColumnGroupStats& g : groups) {
    EXPECT_NE(g.col_a, 0);
    EXPECT_NE(g.col_b, 0);
  }
}

TEST(ColumnGroupsTest, JointFrequencyMatchesTruth) {
  imdb::ImdbDatabase* db = SmallImdb();
  const storage::Table* mi = db->catalog.FindTable("movie_info");
  ColumnGroupStats group = MovieInfoGroup();
  ASSERT_FALSE(group.pairs.empty());
  // Check the most common pair's frequency against a direct count.
  const auto& [a, b] = group.pairs.front();
  int64_t hits = 0;
  for (common::RowIdx r = 0; r < mi->num_rows(); ++r) {
    if (mi->column(2).GetValue(r) == a && mi->column(3).GetValue(r) == b) {
      ++hits;
    }
  }
  EXPECT_NEAR(group.freqs.front(),
              static_cast<double>(hits) /
                  static_cast<double>(mi->num_rows()),
              1e-9);
}

TEST(ColumnGroupsTest, FindGroupIsOrderInsensitive) {
  imdb::ImdbDatabase* db = SmallImdb();
  const storage::Table* mi = db->catalog.FindTable("movie_info");
  std::vector<ColumnGroupStats> groups = BuildColumnGroups(*mi);
  EXPECT_EQ(FindGroup(groups, 2, 3), FindGroup(groups, 3, 2));
}

TEST(ColumnGroupsTest, CatalogBuildAndClear) {
  imdb::ImdbDatabase* db = SmallImdb();
  db->stats.BuildColumnGroupsAll(db->catalog);
  const TableStats* mi = db->stats.Find("movie_info");
  ASSERT_NE(mi, nullptr);
  EXPECT_FALSE(mi->groups.empty());
  db->stats.ClearColumnGroups();
  EXPECT_TRUE(db->stats.Find("movie_info")->groups.empty());
}

TEST(ColumnGroupsTest, FixesSingleTableCorrelatedPair) {
  // mi.info_type_id = 4 AND mi.info = 'Action': independence multiplies
  // ~1/6 by P(Action); the truth is P(Action) alone (Action only occurs
  // under type 4). The group-aware estimator must be several times more
  // accurate.
  imdb::ImdbDatabase* db = SmallImdb();
  db->stats.BuildColumnGroupsAll(db->catalog);

  workload::QueryBuilder qb(&db->catalog, "corr_pair");
  int mi = qb.AddRelation("movie_info", "mi");
  qb.FilterEq(mi, "info_type_id", Value::Int(4))
      .FilterEq(mi, "info", Value::Str("Action"))
      .OutputMin(mi, "info", "g");
  auto query = qb.Build();
  auto ctx = optimizer::QueryContext::Bind(query.get(), &db->catalog,
                                           &db->stats);
  ASSERT_TRUE(ctx.ok());

  optimizer::TrueCardinalityOracle oracle(ctx.value().get());
  double truth = std::max(1.0, oracle.True(plan::RelSet::Single(0)));

  optimizer::EstimatorModel plain(ctx.value().get());
  optimizer::EstimatorModel cords(ctx.value().get());
  cords.set_use_column_groups(true);
  double est_plain = plain.Cardinality(plan::RelSet::Single(0));
  double est_cords = cords.Cardinality(plan::RelSet::Single(0));

  double q_plain = std::max(truth / est_plain, est_plain / truth);
  double q_cords = std::max(truth / est_cords, est_cords / truth);
  EXPECT_LT(q_cords, q_plain / 2.0)
      << "plain q " << q_plain << " cords q " << q_cords;
  EXPECT_LT(q_cords, 1.5);

  db->stats.ClearColumnGroups();
}

TEST(ColumnGroupsTest, CannotFixJoinCrossingCorrelation) {
  // The paper's Sec. IV-B point: the hot-keyword x movie correlation
  // crosses the keyword-movie_keyword join edge, so same-table group
  // statistics leave the join estimate unchanged.
  imdb::ImdbDatabase* db = SmallImdb();
  db->stats.BuildColumnGroupsAll(db->catalog);

  auto query = workload::MakeQuery6d(db->catalog);
  auto ctx = optimizer::QueryContext::Bind(query.get(), &db->catalog,
                                           &db->stats);
  ASSERT_TRUE(ctx.ok());
  optimizer::EstimatorModel plain(ctx.value().get());
  optimizer::EstimatorModel cords(ctx.value().get());
  cords.set_use_column_groups(true);
  plan::RelSet k_mk = plan::RelSet::Single(1).With(2);
  EXPECT_DOUBLE_EQ(plain.Cardinality(k_mk), cords.Cardinality(k_mk));

  db->stats.ClearColumnGroups();
}

}  // namespace
}  // namespace reopt::stats
