// Invalidation correctness for the incremental re-planner: after a
// materialize+rewrite, PlanIncremental must produce exactly the plan,
// costs and accounting of a from-scratch DP over the rewritten query —
// across chain, star and clique join-graph shapes — and must fall back to
// from-scratch DP when the graph's shape changes in a way the carry-over
// invariant does not cover.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "optimizer/planner_reference.h"
#include "plan/physical_plan.h"
#include "reopt/rewrite.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::optimizer {
namespace {

using testing::SmallImdb;

std::unique_ptr<plan::QuerySpec> ChainQuery() {
  workload::QueryBuilder qb(&SmallImdb()->catalog, "chain4");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int k = qb.AddRelation("keyword", "k");
  int mc = qb.AddRelation("movie_companies", "mc");
  qb.Join(t, "id", mk, "movie_id")
      .Join(mk, "keyword_id", k, "id")
      .Join(t, "id", mc, "movie_id")
      .FilterCompare(t, "production_year", plan::CompareOp::kGt,
                     common::Value::Int(1990))
      .OutputMin(t, "title", "m");
  return qb.Build();
}

std::unique_ptr<plan::QuerySpec> StarQuery() {
  workload::QueryBuilder qb(&SmallImdb()->catalog, "star4");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int ci = qb.AddRelation("cast_info", "ci");
  int mc = qb.AddRelation("movie_companies", "mc");
  qb.Join(t, "id", mk, "movie_id")
      .Join(t, "id", ci, "movie_id")
      .Join(t, "id", mc, "movie_id")
      .FilterCompare(mc, "company_type_id", plan::CompareOp::kEq,
                     common::Value::Int(1))
      .OutputMin(t, "title", "m");
  return qb.Build();
}

std::unique_ptr<plan::QuerySpec> CliqueQuery() {
  workload::QueryBuilder qb(&SmallImdb()->catalog, "clique4");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int ci = qb.AddRelation("cast_info", "ci");
  int mc = qb.AddRelation("movie_companies", "mc");
  qb.Join(t, "id", mk, "movie_id")
      .Join(t, "id", ci, "movie_id")
      .Join(t, "id", mc, "movie_id")
      .Join(mk, "movie_id", ci, "movie_id")
      .Join(mk, "movie_id", mc, "movie_id")
      .Join(ci, "movie_id", mc, "movie_id")
      .FilterCompare(t, "production_year", plan::CompareOp::kLt,
                     common::Value::Int(2005))
      .OutputMin(t, "title", "m");
  return qb.Build();
}

// The state of one simulated re-optimization round: the original plan's
// memo, the rewritten spec bound to a real materialized temp table, and
// the memo translation — everything PlanIncremental consumes.
struct RewrittenRound {
  std::unique_ptr<plan::QuerySpec> old_spec;
  std::unique_ptr<QueryContext> old_ctx;
  PlanMemo memo;
  plan::RelSet subset;
  std::string temp_name;
  std::unique_ptr<plan::QuerySpec> new_spec;
  std::unique_ptr<QueryContext> new_ctx;
  reoptimizer::RewriteInfo info;
  MemoTranslation translation;

  ~RewrittenRound() {
    if (!temp_name.empty()) {
      (void)SmallImdb()->catalog.DropTable(temp_name);
      SmallImdb()->stats.Remove(temp_name);
    }
  }
};

// Plans `spec`, materializes the lowest join of the chosen plan into a
// temp table (exactly like the re-optimizer does) and rewrites the query.
std::unique_ptr<RewrittenRound> MaterializeLowestJoin(
    std::unique_ptr<plan::QuerySpec> spec) {
  auto round = std::make_unique<RewrittenRound>();
  imdb::ImdbDatabase* db = SmallImdb();
  round->old_spec = std::move(spec);
  auto bound =
      QueryContext::Bind(round->old_spec.get(), &db->catalog, &db->stats);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  round->old_ctx = std::move(bound.value());

  EstimatorModel model(round->old_ctx.get());
  CostParams params;
  Planner planner(round->old_ctx.get(), &model, params);
  auto planned = planner.Plan();
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  round->memo = planner.TakeMemo();

  // Lowest join node = the re-optimizer's default materialization pick.
  plan::PlanNode* offender = nullptr;
  planned->root->PostOrder([&](plan::PlanNode* node) {
    if (!node->is_join()) return;
    if (offender == nullptr ||
        node->rels.count() < offender->rels.count()) {
      offender = node;
    }
  });
  EXPECT_NE(offender, nullptr);
  round->subset = offender->rels;

  std::vector<plan::ColumnRef> temp_cols =
      reoptimizer::ColumnsToMaterialize(*round->old_spec, round->subset);
  round->temp_name = db->catalog.NextTempName("incrtest");

  auto write = std::make_unique<plan::PlanNode>();
  write->op = plan::PlanOp::kTempWrite;
  write->rels = round->subset;
  write->est_rows = offender->est_rows;
  write->temp_table_name = round->temp_name;
  write->temp_columns = temp_cols;
  write->left = plan::ClonePlan(*offender);
  write->est_cost = write->left->est_cost;
  exec::Executor executor(&db->catalog, &db->stats, params);
  auto executed = executor.Execute(*round->old_spec, write.get());
  EXPECT_TRUE(executed.ok()) << executed.status().ToString();

  round->new_spec =
      reoptimizer::RewriteWithTemp(*round->old_spec, round->subset,
                                   round->temp_name, temp_cols,
                                   /*round=*/0, &round->info);
  auto rebound =
      QueryContext::Bind(round->new_spec.get(), &db->catalog, &db->stats);
  EXPECT_TRUE(rebound.ok()) << rebound.status().ToString();
  round->new_ctx = std::move(rebound.value());
  round->translation = reoptimizer::MemoTranslationFor(
      *round->old_spec, *round->new_spec, round->subset, round->info);
  EXPECT_TRUE(round->translation.valid);
  return round;
}

void ExpectSameResult(const PlannerResult& a, const PlannerResult& b,
                      const plan::QuerySpec& query) {
  EXPECT_EQ(plan::ExplainPlan(*a.root, query),
            plan::ExplainPlan(*b.root, query));
  EXPECT_EQ(a.root->est_cost, b.root->est_cost);
  EXPECT_EQ(a.num_estimates, b.num_estimates);
  EXPECT_EQ(a.num_paths, b.num_paths);
  EXPECT_EQ(a.planning_cost_units, b.planning_cost_units);
}

void CheckIncrementalMatchesFromScratch(
    std::unique_ptr<plan::QuerySpec> spec) {
  auto round = MaterializeLowestJoin(std::move(spec));
  CostParams params;

  // Incremental: rebind the original run's model (the hoisted-model flow)
  // and carry the memo across the rewrite.
  EstimatorModel inc_model(round->old_ctx.get());
  inc_model.Rebind(round->new_ctx.get(), nullptr);
  Planner inc_planner(round->new_ctx.get(), &inc_model, params);
  auto inc = inc_planner.PlanIncremental(round->memo, round->translation);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_TRUE(inc->used_incremental);

  // From-scratch oracle: fresh model, fresh DP on the rewritten query.
  EstimatorModel fresh_model(round->new_ctx.get());
  Planner fresh_planner(round->new_ctx.get(), &fresh_model, params);
  auto fresh = fresh_planner.Plan();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  ExpectSameResult(*inc, *fresh, *round->new_spec);
  // The carried model's accounting matches the fresh model's too.
  EXPECT_EQ(inc_model.num_estimates(), fresh_model.num_estimates());
  EXPECT_EQ(inc_model.estimates_by_size(), fresh_model.estimates_by_size());
}

TEST(PlannerIncrementalTest, ChainGraph) {
  CheckIncrementalMatchesFromScratch(ChainQuery());
}

TEST(PlannerIncrementalTest, StarGraph) {
  CheckIncrementalMatchesFromScratch(StarQuery());
}

TEST(PlannerIncrementalTest, CliqueGraph) {
  CheckIncrementalMatchesFromScratch(CliqueQuery());
}

TEST(PlannerIncrementalTest, InvalidTranslationFallsBack) {
  auto round = MaterializeLowestJoin(ChainQuery());
  CostParams params;
  MemoTranslation broken;  // valid == false
  EstimatorModel model(round->new_ctx.get());
  Planner planner(round->new_ctx.get(), &model, params);
  auto planned = planner.PlanIncremental(round->memo, broken);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_FALSE(planned->used_incremental);

  EstimatorModel fresh_model(round->new_ctx.get());
  Planner fresh_planner(round->new_ctx.get(), &fresh_model, params);
  auto fresh = fresh_planner.Plan();
  ASSERT_TRUE(fresh.ok());
  ExpectSameResult(*planned, *fresh, *round->new_spec);
}

TEST(PlannerIncrementalTest, ShapeChangeForcesFromScratchFallback) {
  // Star rewrite, then the rewritten query gains an extra edge directly
  // connecting two surviving relations that were previously connected only
  // through the materialized center. The new graph has connected
  // survivor-only subsets the old DP never planned, so the carry-over
  // invariant fails and PlanIncremental must fall back.
  auto round = MaterializeLowestJoin(StarQuery());
  ASSERT_GE(round->new_spec->num_relations(), 3);

  // Find two survivor relations (not the temp) with a movie_id column —
  // the star's leaves all have one, and none of them are adjacent to each
  // other in the original graph (only to the materialized center).
  const storage::Catalog& catalog = SmallImdb()->catalog;
  int rel_a = -1, rel_b = -1;
  common::ColumnIdx col_a = -1, col_b = -1;
  for (int r = 0; r < round->new_spec->num_relations() - 1 &&
                  (rel_a < 0 || rel_b < 0);
       ++r) {
    if (r == round->info.temp_rel) continue;
    const storage::Table* table = catalog.FindTable(
        round->new_spec->relations[static_cast<size_t>(r)].table_name);
    ASSERT_NE(table, nullptr);
    common::ColumnIdx c = table->schema().FindColumn("movie_id");
    if (c < 0) continue;
    if (rel_a < 0) {
      rel_a = r;
      col_a = c;
    } else {
      rel_b = r;
      col_b = c;
    }
  }
  ASSERT_GE(rel_a, 0);
  ASSERT_GE(rel_b, 0);

  plan::JoinEdge extra;
  extra.left = plan::ColumnRef{rel_a, col_a, "movie_id"};
  extra.right = plan::ColumnRef{rel_b, col_b, "movie_id"};

  // Reserve first so appending does not reallocate: the translation built
  // against the pre-append spec (whose edge pointers must stay valid) is
  // the one fed to the planner, forcing its *internal* shape check to
  // detect the new survivor-survivor connectivity.
  round->new_spec->joins.reserve(round->new_spec->joins.size() + 1);
  round->translation = reoptimizer::MemoTranslationFor(
      *round->old_spec, *round->new_spec, round->subset, round->info);
  ASSERT_TRUE(round->translation.valid);
  round->new_spec->joins.push_back(extra);

  imdb::ImdbDatabase* db = SmallImdb();
  auto rebound =
      QueryContext::Bind(round->new_spec.get(), &db->catalog, &db->stats);
  ASSERT_TRUE(rebound.ok()) << rebound.status().ToString();
  round->new_ctx = std::move(rebound.value());

  // Deriving the translation after the mutation must itself refuse: the
  // trailing edge is something RewriteWithTemp can never have produced.
  EXPECT_FALSE(reoptimizer::MemoTranslationFor(*round->old_spec,
                                               *round->new_spec,
                                               round->subset, round->info)
                   .valid);

  CostParams params;
  EstimatorModel model(round->new_ctx.get());
  Planner planner(round->new_ctx.get(), &model, params);
  auto planned = planner.PlanIncremental(round->memo, round->translation);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_FALSE(planned->used_incremental);  // fell back

  EstimatorModel fresh_model(round->new_ctx.get());
  Planner fresh_planner(round->new_ctx.get(), &fresh_model, params);
  auto fresh = fresh_planner.Plan();
  ASSERT_TRUE(fresh.ok());
  ExpectSameResult(*planned, *fresh, *round->new_spec);
}

TEST(PlannerIncrementalTest, OptimizedPlannerMatchesRetainedReference) {
  // The allocation-discipline rewrite of the DP (unordered memo, edge
  // adjacency table, pooled plan nodes) must not move a single number
  // relative to the verbatim pre-change planner.
  imdb::ImdbDatabase* db = SmallImdb();
  std::vector<std::unique_ptr<plan::QuerySpec>> specs;
  specs.push_back(ChainQuery());
  specs.push_back(StarQuery());
  specs.push_back(CliqueQuery());
  specs.push_back(workload::MakeQuery6d(db->catalog));
  specs.push_back(workload::MakeQuery18a(db->catalog));
  specs.push_back(workload::MakeQuery25c(db->catalog));
  CostParams params;
  for (const auto& spec : specs) {
    auto bound = QueryContext::Bind(spec.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(bound.ok()) << spec->name;
    auto ctx = std::move(bound.value());

    EstimatorModel ref_model(ctx.get());
    reference::Planner ref_planner(ctx.get(), &ref_model, params);
    auto ref = ref_planner.Plan();
    ASSERT_TRUE(ref.ok()) << spec->name;

    EstimatorModel opt_model(ctx.get());
    Planner opt_planner(ctx.get(), &opt_model, params);
    auto opt = opt_planner.Plan();
    ASSERT_TRUE(opt.ok()) << spec->name;

    ExpectSameResult(*ref, *opt, *spec);
    EXPECT_EQ(ref_model.num_estimates(), opt_model.num_estimates())
        << spec->name;
    EXPECT_EQ(ref_model.estimates_by_size(), opt_model.estimates_by_size())
        << spec->name;
  }
}

TEST(PlannerIncrementalTest, MemoReplayMatchesPlan) {
  // PlanFromMemo on the same context: identical plan and accounting, zero
  // fresh model computations beyond the seeded entries.
  imdb::ImdbDatabase* db = SmallImdb();
  auto spec = ChainQuery();
  auto bound = QueryContext::Bind(spec.get(), &db->catalog, &db->stats);
  ASSERT_TRUE(bound.ok());
  auto ctx = std::move(bound.value());
  CostParams params;

  EstimatorModel model_a(ctx.get());
  Planner planner_a(ctx.get(), &model_a, params);
  auto first = planner_a.Plan();
  ASSERT_TRUE(first.ok());
  PlanMemo memo = planner_a.TakeMemo();

  EstimatorModel model_b(ctx.get());
  Planner planner_b(ctx.get(), &model_b, params);
  auto replay = planner_b.PlanFromMemo(memo);
  ASSERT_TRUE(replay.ok());
  ExpectSameResult(*first, *replay, *spec);
  EXPECT_EQ(model_a.num_estimates(), model_b.num_estimates());
  EXPECT_EQ(model_a.estimates_by_size(), model_b.estimates_by_size());
}

}  // namespace
}  // namespace reopt::optimizer
