// The planner differential suite: incremental re-planning (session-cached
// memos, carried DP tables) against the retained from-scratch DP, across
// all 113 workload queries, every re-optimization round, estimator and
// perfect-(n) models, serial and 4 worker threads. Plans, simulated costs
// and estimate accounting must be identical — the fast path only removes
// wall-clock work, never changes what the simulated system charges.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "plan/physical_plan.h"
#include "reopt/query_runner.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt::reoptimizer {
namespace {

using testing::SmallImdb;

workload::JobLikeWorkload* TestWorkload() {
  static workload::JobLikeWorkload* wl =
      workload::BuildJobLikeWorkload(SmallImdb()->catalog).release();
  return wl;
}

ReoptOptions ReoptOn(double threshold) {
  ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = threshold;
  return r;
}

// Temp-table names come from a global monotonic counter, so two otherwise
// identical runs materialize reopt_temp_<k> with different k. Normalize
// them before comparing plans — nothing but the label differs.
std::string NormalizeTempNames(std::string text) {
  const std::string prefix = "reopt_temp_";
  size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    size_t start = pos + prefix.size();
    size_t end = start;
    while (end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[end])) ||
            text[end] == '_')) {
      ++end;
    }
    text.replace(start, end - start, "#");
    pos = start + 1;
  }
  return text;
}

void ExpectSameRun(const RunResult& a, const RunResult& b,
                   const std::string& name) {
  EXPECT_EQ(a.raw_rows, b.raw_rows) << name;
  EXPECT_EQ(a.plan_cost_units, b.plan_cost_units) << name;
  EXPECT_EQ(a.exec_cost_units, b.exec_cost_units) << name;
  EXPECT_EQ(a.num_materializations, b.num_materializations) << name;
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size()) << name;
  for (size_t i = 0; i < a.aggregates.size(); ++i) {
    EXPECT_EQ(a.aggregates[i], b.aggregates[i]) << name << " output " << i;
  }
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << name;
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].materialized, b.rounds[i].materialized) << name;
    EXPECT_EQ(a.rounds[i].subset.bits(), b.rounds[i].subset.bits()) << name;
    EXPECT_EQ(a.rounds[i].qerror, b.rounds[i].qerror) << name;
    EXPECT_EQ(a.rounds[i].est_rows, b.rounds[i].est_rows) << name;
    EXPECT_EQ(a.rounds[i].true_rows, b.rounds[i].true_rows) << name;
    EXPECT_EQ(a.rounds[i].plan_cost_units, b.rounds[i].plan_cost_units)
        << name << " round " << i;
    EXPECT_EQ(a.rounds[i].exec_cost_units, b.rounds[i].exec_cost_units)
        << name << " round " << i;
  }
}

// Runs every query under `model` in both planner modes, with per-round
// EXPLAIN capture, and requires bit-identical results and plans. Each
// query runs twice per mode: the second incremental run replays the
// session-cached round-0 memo, which must change nothing either.
void RunDifferential(const ModelSpec& model, double threshold) {
  imdb::ImdbDatabase* db = SmallImdb();
  QueryRunner incremental(&db->catalog, &db->stats, {});
  QueryRunner scratch(&db->catalog, &db->stats, {});
  scratch.set_incremental_replanning(false);
  ASSERT_TRUE(incremental.incremental_replanning());

  std::vector<std::string> inc_plans, scratch_plans;
  incremental.set_plan_observer(
      [&inc_plans](int, const plan::PlanNode& root,
                   const plan::QuerySpec& spec) {
        inc_plans.push_back(NormalizeTempNames(plan::ExplainPlan(root, spec)));
      });
  scratch.set_plan_observer(
      [&scratch_plans](int, const plan::PlanNode& root,
                       const plan::QuerySpec& spec) {
        scratch_plans.push_back(
            NormalizeTempNames(plan::ExplainPlan(root, spec)));
      });

  int queries_with_rounds = 0;
  for (const auto& query : TestWorkload()->queries) {
    auto session =
        QuerySession::Create(query.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(session.ok()) << query->name;

    inc_plans.clear();
    scratch_plans.clear();
    auto inc = incremental.Run(session.value().get(), model,
                               ReoptOn(threshold));
    auto base = scratch.Run(session.value().get(), model, ReoptOn(threshold));
    ASSERT_TRUE(inc.ok()) << query->name << ": " << inc.status().ToString();
    ASSERT_TRUE(base.ok()) << query->name;
    ExpectSameRun(*inc, *base, query->name);
    EXPECT_EQ(inc_plans, scratch_plans) << query->name;
    if (inc->num_materializations > 0) ++queries_with_rounds;

    // Second incremental run: round 0 now replays the session memo.
    std::vector<std::string> first_inc_plans = inc_plans;
    inc_plans.clear();
    auto again = incremental.Run(session.value().get(), model,
                                 ReoptOn(threshold));
    ASSERT_TRUE(again.ok()) << query->name;
    ExpectSameRun(*again, *base, query->name + " (memo replay)");
    EXPECT_EQ(inc_plans, first_inc_plans) << query->name;
  }
  // The suite must actually exercise multi-round re-planning.
  EXPECT_GT(queries_with_rounds, 0);
}

TEST(PlannerDifferentialTest, EstimatorAllQueriesDefaultThreshold) {
  RunDifferential(ModelSpec::Estimator(), 32.0);
}

TEST(PlannerDifferentialTest, EstimatorAllQueriesAggressiveThreshold) {
  // Threshold 2 triggers many more rounds per query — deeper carry chains.
  RunDifferential(ModelSpec::Estimator(), 2.0);
}

TEST(PlannerDifferentialTest, PerfectNModel) {
  RunDifferential(ModelSpec::PerfectN(3), 32.0);
}

TEST(PlannerDifferentialTest, CordsModel) {
  RunDifferential(ModelSpec::Cords(), 32.0);
}

TEST(PlannerDifferentialTest, ParallelSweepMatchesFromScratchSerial) {
  // The full sweep engine: 4 workers with incremental re-planning (and a
  // shared session memo cache) vs a serial from-scratch run, two
  // configurations sharing the same memo key (same model, different
  // thresholds) to force concurrent memo publication and replay.
  imdb::ImdbDatabase* db = SmallImdb();
  std::vector<workload::SweepConfig> configs(2);
  configs[0].label = "threshold=4";
  configs[0].model = ModelSpec::Estimator();
  configs[0].reopt = ReoptOn(4.0);
  configs[1].label = "threshold=32";
  configs[1].model = ModelSpec::Estimator();
  configs[1].reopt = ReoptOn(32.0);

  workload::WorkloadRunner parallel_runner(db);
  auto parallel =
      parallel_runner.RunSweep(*TestWorkload(), configs, /*num_threads=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  workload::WorkloadRunner serial_runner(db);
  serial_runner.query_runner()->set_incremental_replanning(false);
  for (size_t c = 0; c < configs.size(); ++c) {
    auto serial = serial_runner.RunAll(*TestWorkload(), configs[c].model,
                                       configs[c].reopt, /*num_threads=*/1);
    ASSERT_TRUE(serial.ok());
    ASSERT_EQ(parallel.value()[c].records.size(), serial->records.size());
    for (size_t q = 0; q < serial->records.size(); ++q) {
      const workload::QueryRecord& pr = parallel.value()[c].records[q];
      const workload::QueryRecord& sr = serial->records[q];
      EXPECT_EQ(pr.name, sr.name);
      EXPECT_EQ(pr.plan_seconds, sr.plan_seconds) << sr.name;
      EXPECT_EQ(pr.exec_seconds, sr.exec_seconds) << sr.name;
      EXPECT_EQ(pr.materializations, sr.materializations) << sr.name;
      EXPECT_EQ(pr.raw_rows, sr.raw_rows) << sr.name;
    }
  }
}

}  // namespace
}  // namespace reopt::reoptimizer
