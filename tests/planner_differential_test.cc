// The planner differential suite: incremental re-planning (session-cached
// memos, carried DP tables) against the retained from-scratch DP, across
// all 113 workload queries, every re-optimization round, estimator and
// perfect-(n) models, serial and 4 worker threads. Plans, simulated costs
// and estimate accounting must be identical — the fast path only removes
// wall-clock work, never changes what the simulated system charges.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "optimizer/knowledge_base.h"
#include "plan/physical_plan.h"
#include "reopt/query_runner.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt::reoptimizer {
namespace {

using testing::SmallImdb;

workload::JobLikeWorkload* TestWorkload() {
  static workload::JobLikeWorkload* wl =
      workload::BuildJobLikeWorkload(SmallImdb()->catalog).release();
  return wl;
}

ReoptOptions ReoptOn(double threshold) {
  ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = threshold;
  return r;
}

// Temp-table names come from a global monotonic counter, so two otherwise
// identical runs materialize reopt_temp_<k> with different k. Normalize
// them before comparing plans — nothing but the label differs.
std::string NormalizeTempNames(std::string text) {
  const std::string prefix = "reopt_temp_";
  size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    size_t start = pos + prefix.size();
    size_t end = start;
    while (end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[end])) ||
            text[end] == '_')) {
      ++end;
    }
    text.replace(start, end - start, "#");
    pos = start + 1;
  }
  return text;
}

void ExpectSameRun(const RunResult& a, const RunResult& b,
                   const std::string& name) {
  EXPECT_EQ(a.raw_rows, b.raw_rows) << name;
  EXPECT_EQ(a.plan_cost_units, b.plan_cost_units) << name;
  EXPECT_EQ(a.exec_cost_units, b.exec_cost_units) << name;
  EXPECT_EQ(a.num_materializations, b.num_materializations) << name;
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size()) << name;
  for (size_t i = 0; i < a.aggregates.size(); ++i) {
    EXPECT_EQ(a.aggregates[i], b.aggregates[i]) << name << " output " << i;
  }
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << name;
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].materialized, b.rounds[i].materialized) << name;
    EXPECT_EQ(a.rounds[i].subset.bits(), b.rounds[i].subset.bits()) << name;
    EXPECT_EQ(a.rounds[i].qerror, b.rounds[i].qerror) << name;
    EXPECT_EQ(a.rounds[i].est_rows, b.rounds[i].est_rows) << name;
    EXPECT_EQ(a.rounds[i].true_rows, b.rounds[i].true_rows) << name;
    EXPECT_EQ(a.rounds[i].plan_cost_units, b.rounds[i].plan_cost_units)
        << name << " round " << i;
    EXPECT_EQ(a.rounds[i].exec_cost_units, b.rounds[i].exec_cost_units)
        << name << " round " << i;
  }
}

// Runs every query under `model` in both planner modes, with per-round
// EXPLAIN capture, and requires bit-identical results and plans. Each
// query runs twice per mode: the second incremental run replays the
// session-cached round-0 memo, which must change nothing either.
void RunDifferential(const ModelSpec& model, double threshold) {
  imdb::ImdbDatabase* db = SmallImdb();
  QueryRunner incremental(&db->catalog, &db->stats, {});
  QueryRunner scratch(&db->catalog, &db->stats, {});
  scratch.set_incremental_replanning(false);
  ASSERT_TRUE(incremental.incremental_replanning());

  std::vector<std::string> inc_plans, scratch_plans;
  incremental.set_plan_observer(
      [&inc_plans](int, const plan::PlanNode& root,
                   const plan::QuerySpec& spec) {
        inc_plans.push_back(NormalizeTempNames(plan::ExplainPlan(root, spec)));
      });
  scratch.set_plan_observer(
      [&scratch_plans](int, const plan::PlanNode& root,
                       const plan::QuerySpec& spec) {
        scratch_plans.push_back(
            NormalizeTempNames(plan::ExplainPlan(root, spec)));
      });

  int queries_with_rounds = 0;
  for (const auto& query : TestWorkload()->queries) {
    auto session =
        QuerySession::Create(query.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(session.ok()) << query->name;

    inc_plans.clear();
    scratch_plans.clear();
    auto inc = incremental.Run(session.value().get(), model,
                               ReoptOn(threshold));
    auto base = scratch.Run(session.value().get(), model, ReoptOn(threshold));
    ASSERT_TRUE(inc.ok()) << query->name << ": " << inc.status().ToString();
    ASSERT_TRUE(base.ok()) << query->name;
    ExpectSameRun(*inc, *base, query->name);
    EXPECT_EQ(inc_plans, scratch_plans) << query->name;
    if (inc->num_materializations > 0) ++queries_with_rounds;

    // Second incremental run: round 0 now replays the session memo.
    std::vector<std::string> first_inc_plans = inc_plans;
    inc_plans.clear();
    auto again = incremental.Run(session.value().get(), model,
                                 ReoptOn(threshold));
    ASSERT_TRUE(again.ok()) << query->name;
    ExpectSameRun(*again, *base, query->name + " (memo replay)");
    EXPECT_EQ(inc_plans, first_inc_plans) << query->name;
  }
  // The suite must actually exercise multi-round re-planning.
  EXPECT_GT(queries_with_rounds, 0);
}

TEST(PlannerDifferentialTest, EstimatorAllQueriesDefaultThreshold) {
  RunDifferential(ModelSpec::Estimator(), 32.0);
}

TEST(PlannerDifferentialTest, EstimatorAllQueriesAggressiveThreshold) {
  // Threshold 2 triggers many more rounds per query — deeper carry chains.
  RunDifferential(ModelSpec::Estimator(), 2.0);
}

TEST(PlannerDifferentialTest, PerfectNModel) {
  RunDifferential(ModelSpec::PerfectN(3), 32.0);
}

TEST(PlannerDifferentialTest, CordsModel) {
  RunDifferential(ModelSpec::Cords(), 32.0);
}

TEST(PlannerDifferentialTest, LearnedEmptyBaseMatchesEstimator) {
  // The learned model's miss path IS the estimator computation: over an
  // empty (frozen) knowledge base every prediction refuses, so all 113
  // queries must produce bit-identical results and plans under
  // ModelSpec::Learned() and ModelSpec::Estimator().
  imdb::ImdbDatabase* db = SmallImdb();
  optimizer::CardinalityKnowledgeBase kb;
  kb.set_learning_enabled(false);  // stays empty through the whole sweep

  QueryRunner estimator(&db->catalog, &db->stats, {});
  QueryRunner learned(&db->catalog, &db->stats, {});
  learned.set_knowledge_base(&kb);

  std::vector<std::string> est_plans, learned_plans;
  estimator.set_plan_observer([&est_plans](int, const plan::PlanNode& root,
                                           const plan::QuerySpec& spec) {
    est_plans.push_back(NormalizeTempNames(plan::ExplainPlan(root, spec)));
  });
  learned.set_plan_observer([&learned_plans](int, const plan::PlanNode& root,
                                             const plan::QuerySpec& spec) {
    learned_plans.push_back(
        NormalizeTempNames(plan::ExplainPlan(root, spec)));
  });

  for (const auto& query : TestWorkload()->queries) {
    auto session =
        QuerySession::Create(query.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(session.ok()) << query->name;
    est_plans.clear();
    learned_plans.clear();
    auto est = estimator.Run(session.value().get(), ModelSpec::Estimator(),
                             ReoptOn(32.0));
    auto lrn = learned.Run(session.value().get(), ModelSpec::Learned(),
                           ReoptOn(32.0));
    ASSERT_TRUE(est.ok()) << query->name;
    ASSERT_TRUE(lrn.ok()) << query->name;
    ExpectSameRun(*est, *lrn, query->name);
    EXPECT_EQ(est_plans, learned_plans) << query->name;
  }
  // The frozen base must have answered nothing and learned nothing.
  optimizer::KnowledgeBaseStats stats = kb.Stats();
  EXPECT_EQ(stats.observations, 0);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_GT(stats.predictions, 0);  // ... but it was consulted
}

TEST(PlannerDifferentialTest, LearnedModelIncrementalMatchesScratch) {
  // Learned-model runs must preserve the incremental == from-scratch
  // invariant like every other model kind. Two bases are warmed by
  // identical serial estimator passes (also proving observation
  // determinism), frozen, and then driven through the differential; the
  // repeat incremental run additionally exercises the learned-mode session
  // memo *bypass* — estimates drift as a base warms, so learned runs never
  // replay cached round-0 memos.
  imdb::ImdbDatabase* db = SmallImdb();
  optimizer::CardinalityKnowledgeBase kb_inc, kb_scratch;
  {
    QueryRunner warm_inc(&db->catalog, &db->stats, {});
    QueryRunner warm_scratch(&db->catalog, &db->stats, {});
    warm_inc.set_knowledge_base(&kb_inc);
    warm_scratch.set_knowledge_base(&kb_scratch);
    for (const auto& query : TestWorkload()->queries) {
      auto session =
          QuerySession::Create(query.get(), &db->catalog, &db->stats);
      ASSERT_TRUE(session.ok()) << query->name;
      ASSERT_TRUE(warm_inc
                      .Run(session.value().get(), ModelSpec::Estimator(),
                           ReoptOn(32.0))
                      .ok());
      ASSERT_TRUE(warm_scratch
                      .Run(session.value().get(), ModelSpec::Estimator(),
                           ReoptOn(32.0))
                      .ok());
    }
  }
  optimizer::KnowledgeBaseStats a = kb_inc.Stats();
  optimizer::KnowledgeBaseStats b = kb_scratch.Stats();
  EXPECT_EQ(a.spaces, b.spaces);
  EXPECT_EQ(a.observations, b.observations);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_GT(a.observations, 0);
  kb_inc.set_learning_enabled(false);
  kb_scratch.set_learning_enabled(false);

  QueryRunner incremental(&db->catalog, &db->stats, {});
  QueryRunner scratch(&db->catalog, &db->stats, {});
  incremental.set_knowledge_base(&kb_inc);
  scratch.set_knowledge_base(&kb_scratch);
  scratch.set_incremental_replanning(false);

  int learned_plan_changes = 0;
  for (const auto& query : TestWorkload()->queries) {
    auto session =
        QuerySession::Create(query.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(session.ok()) << query->name;
    auto inc = incremental.Run(session.value().get(), ModelSpec::Learned(),
                               ReoptOn(32.0));
    auto base = scratch.Run(session.value().get(), ModelSpec::Learned(),
                            ReoptOn(32.0));
    ASSERT_TRUE(inc.ok()) << query->name << ": " << inc.status().ToString();
    ASSERT_TRUE(base.ok()) << query->name;
    ExpectSameRun(*inc, *base, query->name);

    auto again = incremental.Run(session.value().get(), ModelSpec::Learned(),
                                 ReoptOn(32.0));
    ASSERT_TRUE(again.ok()) << query->name;
    ExpectSameRun(*again, *base, query->name + " (repeat)");

    // Sanity that the warmed base is actually steering re-optimization:
    // compare against a fresh estimator run on a fresh session.
    auto est_session =
        QuerySession::Create(query.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(est_session.ok());
    QueryRunner est_runner(&db->catalog, &db->stats, {});
    auto est = est_runner.Run(est_session.value().get(),
                              ModelSpec::Estimator(), ReoptOn(32.0));
    ASSERT_TRUE(est.ok());
    if (est->num_materializations != inc->num_materializations) {
      ++learned_plan_changes;
    }
  }
  EXPECT_GT(learned_plan_changes, 0)
      << "a warmed base should change re-optimization behaviour somewhere";
}

TEST(PlannerDifferentialTest, ParallelSweepMatchesFromScratchSerial) {
  // The full sweep engine: 4 workers with incremental re-planning (and a
  // shared session memo cache) vs a serial from-scratch run, two
  // configurations sharing the same memo key (same model, different
  // thresholds) to force concurrent memo publication and replay.
  imdb::ImdbDatabase* db = SmallImdb();
  std::vector<workload::SweepConfig> configs(2);
  configs[0].label = "threshold=4";
  configs[0].model = ModelSpec::Estimator();
  configs[0].reopt = ReoptOn(4.0);
  configs[1].label = "threshold=32";
  configs[1].model = ModelSpec::Estimator();
  configs[1].reopt = ReoptOn(32.0);

  workload::WorkloadRunner parallel_runner(db);
  auto parallel =
      parallel_runner.RunSweep(*TestWorkload(), configs, /*num_threads=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  workload::WorkloadRunner serial_runner(db);
  serial_runner.query_runner()->set_incremental_replanning(false);
  for (size_t c = 0; c < configs.size(); ++c) {
    auto serial = serial_runner.RunAll(*TestWorkload(), configs[c].model,
                                       configs[c].reopt, /*num_threads=*/1);
    ASSERT_TRUE(serial.ok());
    ASSERT_EQ(parallel.value()[c].records.size(), serial->records.size());
    for (size_t q = 0; q < serial->records.size(); ++q) {
      const workload::QueryRecord& pr = parallel.value()[c].records[q];
      const workload::QueryRecord& sr = serial->records[q];
      EXPECT_EQ(pr.name, sr.name);
      EXPECT_EQ(pr.plan_seconds, sr.plan_seconds) << sr.name;
      EXPECT_EQ(pr.exec_seconds, sr.exec_seconds) << sr.name;
      EXPECT_EQ(pr.materializations, sr.materializations) << sr.name;
      EXPECT_EQ(pr.raw_rows, sr.raw_rows) << sr.name;
    }
  }
}

}  // namespace
}  // namespace reopt::reoptimizer
