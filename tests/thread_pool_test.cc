#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/thread_pool.h"

namespace reopt::common {
namespace {

// ---- common::Mutex / MutexLock / CondVar (annotated primitives) ------------
// Functional coverage for the wrappers every concurrent component now uses;
// the *static* half of their contract (GUARDED_BY enforcement) is proven by
// tools/check_thread_safety.py under Clang.

TEST(MutexTest, MutexLockSerializesIncrements) {
  Mutex mu;
  int counter = 0;  // guarded by mu (by discipline; plain int on purpose —
                    // TSan on this tsan-labelled suite proves the locking)
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, 4000);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::thread contender([&mu] {
    EXPECT_FALSE(mu.TryLock());
  });
  contender.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = 42;  // must hold the lock again here
  });
  {
    // The waiter must have dropped the mutex while blocked, or this
    // acquisition would deadlock.
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(observed, 42);
  EXPECT_TRUE(ready);
}

TEST(MutexTest, CondVarNotifyOneWakesAWaiter) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (stage == 0) cv.Wait(&mu);
    stage = 2;
  });
  {
    MutexLock lock(&mu);
    stage = 1;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(stage, 2);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count](int) { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count](int) { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WorkerIndexStaysInRange) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&bad](int worker) {
      if (worker < 0 || worker >= 3) bad.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count](int) { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&](int) {
    count.fetch_add(1);
    pool.Submit([&count](int) { count.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kCount = 1000;
  std::vector<int> hits(kCount, 0);
  // Distinct indices are owned by exactly one worker, so the unguarded
  // increments below are race-free if (and only if) indices never repeat.
  ParallelFor(kCount, 4, [&hits](int64_t i, int) {
    hits[static_cast<size_t>(i)] += 1;
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<int64_t> seen;
  std::thread::id main_id = std::this_thread::get_id();
  bool off_thread = false;
  ParallelFor(10, 1, [&](int64_t i, int worker) {
    seen.push_back(i);
    EXPECT_EQ(worker, 0);
    if (std::this_thread::get_id() != main_id) off_thread = true;
  });
  EXPECT_FALSE(off_thread);
  ASSERT_EQ(seen.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  int calls = 0;
  ParallelFor(0, 8, [&calls](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, MoreThreadsThanWorkClampsWorkerIds) {
  std::atomic<int> max_worker{-1};
  ParallelFor(2, 16, [&max_worker](int64_t, int worker) {
    int prev = max_worker.load();
    while (worker > prev && !max_worker.compare_exchange_weak(prev, worker)) {
    }
  });
  // Only min(threads, count) = 2 workers may exist.
  EXPECT_LT(max_worker.load(), 2);
}

TEST(ParallelForTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

// ---- Exception safety ------------------------------------------------------
// Regression: a throwing task used to escape WorkerLoop and
// std::terminate the whole process. The pool must capture the exception
// and rethrow it on the joining thread instead.

TEST(ThreadPoolTest, TaskExceptionRethrownOnWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran](int) { ran.fetch_add(1); });
  }
  pool.Submit([](int) { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran](int) { ran.fetch_add(1); });
  }
  EXPECT_THROW(
      {
        try {
          pool.Wait();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task boom");
          throw;
        }
      },
      std::runtime_error);
  // Non-throwing tasks all still ran (the pool drains; it does not skip).
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  pool.Submit([](int) { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_FALSE(pool.has_error());
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count](int) { count.fetch_add(1); });
  }
  pool.Wait();  // must not rethrow the already-collected exception
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, FirstExceptionWinsLaterOnesDropped) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([](int) { throw std::runtime_error("boom"); });
  }
  // Exactly one exception comes back; the pool is clean afterwards.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();
}

TEST(ThreadPoolTest, DestructorSwallowsPendingException) {
  // A pending exception at destruction must not terminate (dtors cannot
  // throw). The test passes by not crashing.
  ThreadPool pool(2);
  pool.Submit([](int) { throw std::runtime_error("never collected"); });
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      {
        try {
          ParallelFor(1000, 4, [](int64_t i, int) {
            if (i == 373) throw std::runtime_error("index 373");
          });
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "index 373");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ParallelForTest, InlineExceptionPropagates) {
  EXPECT_THROW(ParallelFor(10, 1,
                           [](int64_t i, int) {
                             if (i == 3) throw std::runtime_error("inline");
                           }),
               std::runtime_error);
}

// ---- ParallelRun / MorselRanges --------------------------------------------

TEST(ThreadPoolTest, ParallelRunCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr int64_t kCount = 500;
  std::vector<int> hits(kCount, 0);
  pool.ParallelRun(kCount, [&hits](int64_t i, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 3);
    hits[static_cast<size_t>(i)] += 1;
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
  // Reusable for a second batch on the same pool.
  std::atomic<int> count{0};
  pool.ParallelRun(64, [&count](int64_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ParallelRunRethrowsAndSkipsRemainder) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelRun(100,
                                [](int64_t i, int) {
                                  if (i == 7) {
                                    throw std::runtime_error("morsel 7");
                                  }
                                }),
               std::runtime_error);
  // The pool recovered: a clean batch runs fine.
  std::atomic<int> count{0};
  pool.ParallelRun(10, [&count](int64_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(MorselRangesTest, AlignedCoveringAndDeterministic) {
  for (int64_t total : {int64_t{0}, int64_t{1}, int64_t{1023}, int64_t{1024},
                        int64_t{1025}, int64_t{100000}}) {
    for (int chunks : {1, 3, 4, 7, 64}) {
      SCOPED_TRACE(std::to_string(total) + "/" + std::to_string(chunks));
      std::vector<MorselRange> ranges = MorselRanges(total, 1024, chunks);
      if (total <= 0) {
        EXPECT_TRUE(ranges.empty());
        continue;
      }
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(static_cast<int>(ranges.size()), chunks);
      EXPECT_EQ(ranges.front().begin, 0);
      EXPECT_EQ(ranges.back().end, total);
      for (size_t i = 0; i < ranges.size(); ++i) {
        // Contiguous cover; every internal boundary is 1024-aligned.
        if (i > 0) {
          EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
        }
        EXPECT_LT(ranges[i].begin, ranges[i].end);
        EXPECT_EQ(ranges[i].begin % 1024, 0);
      }
      // Deterministic: same inputs, same partition.
      EXPECT_EQ(ranges.size(), MorselRanges(total, 1024, chunks).size());
    }
  }
}

// ---- Saturation ------------------------------------------------------------
// Submissions far beyond the worker budget must queue inside the pool —
// Submit never blocks the producer and Wait never deadlocks, even while
// every worker is pinned on a long task.

TEST(ThreadPoolTest, SaturatedSubmissionsQueueWithoutDeadlock) {
  constexpr int kWorkers = 2;
  constexpr int kTasks = 500;
  ThreadPool pool(kWorkers);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  // Pin every worker on a blocking task, then pile up kTasks submissions
  // behind them: all Submit calls must return immediately.
  for (int i = 0; i < kWorkers; ++i) {
    pool.Submit([&](int) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
      ran.fetch_add(1);
    });
  }
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&ran](int) { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 0);  // nothing ran yet: workers are pinned, queue holds
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(ran.load(), kWorkers + kTasks);
}

// ---- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPushRejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: shed, don't block
  (void)q.Pop();
  EXPECT_TRUE(q.TryPush(3));  // a slot freed up
}

TEST(BoundedQueueTest, PushBlocksUntilPopFreesASlot) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks: queue is full
    pushed.store(true);
  });
  // The producer is blocked in Push; popping unblocks it.
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsEmpty) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(7));
  EXPECT_TRUE(q.Push(8));
  q.Close();
  EXPECT_TRUE(q.closed());
  // Accepted items drain in order...
  EXPECT_EQ(*q.Pop(), 7);
  EXPECT_EQ(*q.Pop(), 8);
  // ...then Pop reports closed-and-drained instead of blocking forever.
  EXPECT_FALSE(q.Pop().has_value());
  // New items are refused after Close (both admission paths).
  EXPECT_FALSE(q.Push(9));
  EXPECT_FALSE(q.TryPush(9));
  q.Close();  // idempotent
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(2);
  std::atomic<int> empty_pops{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      if (!q.Pop().has_value()) empty_pops.fetch_add(1);
    });
  }
  q.Close();  // all three blocked Pops must wake and return nullopt
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(empty_pops.load(), 3);
}

TEST(BoundedQueueTest, CapacityClampsToAtLeastOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(BoundedQueueTest, ManyProducersManyConsumersDeliverEverythingOnce) {
  BoundedQueue<int> q(3);  // smaller than the in-flight item count
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> workers;
  std::atomic<int64_t> sum{0};
  std::atomic<int> popped{0};
  for (int c = 0; c < kConsumers; ++c) {
    workers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  for (std::thread& t : workers) t.join();
  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), int64_t{kTotal} * (kTotal - 1) / 2);
}

// ---- Timed waits (CondVar::WaitFor, PushFor/PopFor) ------------------------
// The primitives under the service layer's deadlines: Ticket::WaitFor and
// Submit's bounded admission are built on exactly these.

TEST(CondVarTest, WaitForTimesOutWithoutANotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(5)));
}

TEST(CondVarTest, WaitForWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (by discipline, as above)
  std::thread notifier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    // Spurious wakeups are allowed, so loop on the predicate; the generous
    // timeout only bounds a lost-notify bug.
    while (!ready) {
      (void)cv.WaitFor(&mu, std::chrono::seconds(60));
    }
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

TEST(BoundedQueueTest, PushForTimesOutWhenFullThenSucceedsAfterADrain) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  EXPECT_FALSE(q.PushFor(2, std::chrono::milliseconds(5)));  // full: timeout
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(*q.Pop(), 1);
  });
  EXPECT_TRUE(q.PushFor(2, std::chrono::seconds(60)));
  consumer.join();
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, PopForTimesOutOnEmptyThenReturnsAPushedItem) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(5)).has_value());
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(q.Push(7));
  });
  std::optional<int> item = q.PopFor(std::chrono::seconds(60));
  producer.join();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
}

TEST(BoundedQueueTest, TimedOperationsRespectClose) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  q.Close();
  // Closed: PushFor fails immediately instead of waiting out the timeout,
  // PopFor still drains the accepted item, then reports empty.
  EXPECT_FALSE(q.PushFor(2, std::chrono::seconds(60)));
  EXPECT_EQ(*q.PopFor(std::chrono::seconds(60)), 1);
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(5)).has_value());
}

TEST(MorselRangesTest, SmallAlignmentAndSingleChunk) {
  std::vector<MorselRange> one = MorselRanges(10, 1024, 4);
  ASSERT_EQ(one.size(), 1u);  // 10 rows round up to one aligned chunk
  EXPECT_EQ(one[0].begin, 0);
  EXPECT_EQ(one[0].end, 10);
  std::vector<MorselRange> fine = MorselRanges(10, 1, 5);
  ASSERT_EQ(fine.size(), 5u);
  EXPECT_EQ(fine.back().end, 10);
}

}  // namespace
}  // namespace reopt::common
