#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace reopt::common {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count](int) { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count](int) { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WorkerIndexStaysInRange) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&bad](int worker) {
      if (worker < 0 || worker >= 3) bad.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count](int) { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&](int) {
    count.fetch_add(1);
    pool.Submit([&count](int) { count.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kCount = 1000;
  std::vector<int> hits(kCount, 0);
  // Distinct indices are owned by exactly one worker, so the unguarded
  // increments below are race-free if (and only if) indices never repeat.
  ParallelFor(kCount, 4, [&hits](int64_t i, int) {
    hits[static_cast<size_t>(i)] += 1;
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<int64_t> seen;
  std::thread::id main_id = std::this_thread::get_id();
  bool off_thread = false;
  ParallelFor(10, 1, [&](int64_t i, int worker) {
    seen.push_back(i);
    EXPECT_EQ(worker, 0);
    if (std::this_thread::get_id() != main_id) off_thread = true;
  });
  EXPECT_FALSE(off_thread);
  ASSERT_EQ(seen.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  int calls = 0;
  ParallelFor(0, 8, [&calls](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, MoreThreadsThanWorkClampsWorkerIds) {
  std::atomic<int> max_worker{-1};
  ParallelFor(2, 16, [&max_worker](int64_t, int worker) {
    int prev = max_worker.load();
    while (worker > prev && !max_worker.compare_exchange_weak(prev, worker)) {
    }
  });
  // Only min(threads, count) = 2 workers may exist.
  EXPECT_LT(max_worker.load(), 2);
}

TEST(ParallelForTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

// ---- Exception safety ------------------------------------------------------
// Regression: a throwing task used to escape WorkerLoop and
// std::terminate the whole process. The pool must capture the exception
// and rethrow it on the joining thread instead.

TEST(ThreadPoolTest, TaskExceptionRethrownOnWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran](int) { ran.fetch_add(1); });
  }
  pool.Submit([](int) { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran](int) { ran.fetch_add(1); });
  }
  EXPECT_THROW(
      {
        try {
          pool.Wait();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task boom");
          throw;
        }
      },
      std::runtime_error);
  // Non-throwing tasks all still ran (the pool drains; it does not skip).
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  pool.Submit([](int) { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_FALSE(pool.has_error());
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count](int) { count.fetch_add(1); });
  }
  pool.Wait();  // must not rethrow the already-collected exception
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, FirstExceptionWinsLaterOnesDropped) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([](int) { throw std::runtime_error("boom"); });
  }
  // Exactly one exception comes back; the pool is clean afterwards.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();
}

TEST(ThreadPoolTest, DestructorSwallowsPendingException) {
  // A pending exception at destruction must not terminate (dtors cannot
  // throw). The test passes by not crashing.
  ThreadPool pool(2);
  pool.Submit([](int) { throw std::runtime_error("never collected"); });
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      {
        try {
          ParallelFor(1000, 4, [](int64_t i, int) {
            if (i == 373) throw std::runtime_error("index 373");
          });
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "index 373");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ParallelForTest, InlineExceptionPropagates) {
  EXPECT_THROW(ParallelFor(10, 1,
                           [](int64_t i, int) {
                             if (i == 3) throw std::runtime_error("inline");
                           }),
               std::runtime_error);
}

// ---- ParallelRun / MorselRanges --------------------------------------------

TEST(ThreadPoolTest, ParallelRunCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr int64_t kCount = 500;
  std::vector<int> hits(kCount, 0);
  pool.ParallelRun(kCount, [&hits](int64_t i, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 3);
    hits[static_cast<size_t>(i)] += 1;
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
  // Reusable for a second batch on the same pool.
  std::atomic<int> count{0};
  pool.ParallelRun(64, [&count](int64_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ParallelRunRethrowsAndSkipsRemainder) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelRun(100,
                                [](int64_t i, int) {
                                  if (i == 7) {
                                    throw std::runtime_error("morsel 7");
                                  }
                                }),
               std::runtime_error);
  // The pool recovered: a clean batch runs fine.
  std::atomic<int> count{0};
  pool.ParallelRun(10, [&count](int64_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(MorselRangesTest, AlignedCoveringAndDeterministic) {
  for (int64_t total : {int64_t{0}, int64_t{1}, int64_t{1023}, int64_t{1024},
                        int64_t{1025}, int64_t{100000}}) {
    for (int chunks : {1, 3, 4, 7, 64}) {
      SCOPED_TRACE(std::to_string(total) + "/" + std::to_string(chunks));
      std::vector<MorselRange> ranges = MorselRanges(total, 1024, chunks);
      if (total <= 0) {
        EXPECT_TRUE(ranges.empty());
        continue;
      }
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(static_cast<int>(ranges.size()), chunks);
      EXPECT_EQ(ranges.front().begin, 0);
      EXPECT_EQ(ranges.back().end, total);
      for (size_t i = 0; i < ranges.size(); ++i) {
        // Contiguous cover; every internal boundary is 1024-aligned.
        if (i > 0) {
          EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
        }
        EXPECT_LT(ranges[i].begin, ranges[i].end);
        EXPECT_EQ(ranges[i].begin % 1024, 0);
      }
      // Deterministic: same inputs, same partition.
      EXPECT_EQ(ranges.size(), MorselRanges(total, 1024, chunks).size());
    }
  }
}

TEST(MorselRangesTest, SmallAlignmentAndSingleChunk) {
  std::vector<MorselRange> one = MorselRanges(10, 1024, 4);
  ASSERT_EQ(one.size(), 1u);  // 10 rows round up to one aligned chunk
  EXPECT_EQ(one[0].begin, 0);
  EXPECT_EQ(one[0].end, 10);
  std::vector<MorselRange> fine = MorselRanges(10, 1, 5);
  ASSERT_EQ(fine.size(), 5u);
  EXPECT_EQ(fine.back().end, 10);
}

}  // namespace
}  // namespace reopt::common
