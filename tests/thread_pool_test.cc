#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace reopt::common {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count](int) { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count](int) { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WorkerIndexStaysInRange) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&bad](int worker) {
      if (worker < 0 || worker >= 3) bad.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count](int) { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&](int) {
    count.fetch_add(1);
    pool.Submit([&count](int) { count.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kCount = 1000;
  std::vector<int> hits(kCount, 0);
  // Distinct indices are owned by exactly one worker, so the unguarded
  // increments below are race-free if (and only if) indices never repeat.
  ParallelFor(kCount, 4, [&hits](int64_t i, int) {
    hits[static_cast<size_t>(i)] += 1;
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<int64_t> seen;
  std::thread::id main_id = std::this_thread::get_id();
  bool off_thread = false;
  ParallelFor(10, 1, [&](int64_t i, int worker) {
    seen.push_back(i);
    EXPECT_EQ(worker, 0);
    if (std::this_thread::get_id() != main_id) off_thread = true;
  });
  EXPECT_FALSE(off_thread);
  ASSERT_EQ(seen.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  int calls = 0;
  ParallelFor(0, 8, [&calls](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, MoreThreadsThanWorkClampsWorkerIds) {
  std::atomic<int> max_worker{-1};
  ParallelFor(2, 16, [&max_worker](int64_t, int worker) {
    int prev = max_worker.load();
    while (worker > prev && !max_worker.compare_exchange_weak(prev, worker)) {
    }
  });
  // Only min(threads, count) = 2 workers may exist.
  EXPECT_LT(max_worker.load(), 2);
}

TEST(ParallelForTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace reopt::common
