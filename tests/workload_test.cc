#include <gtest/gtest.h>

#include <map>

#include "optimizer/query_context.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::workload {
namespace {

using testing::SmallImdb;

JobLikeWorkload* TestWorkload() {
  static JobLikeWorkload* wl =
      BuildJobLikeWorkload(SmallImdb()->catalog).release();
  return wl;
}

TEST(WorkloadTest, ExactlyOneHundredThirteenQueries) {
  EXPECT_EQ(TestWorkload()->queries.size(), 113u);
}

TEST(WorkloadTest, TableCountDistributionMatchesTableIII) {
  std::map<int, int> counts;
  for (const auto& q : TestWorkload()->queries) {
    ++counts[q->num_relations()];
  }
  EXPECT_EQ(counts, JobLikeWorkload::TableCountDistribution());
}

TEST(WorkloadTest, SignatureQueriesPresent) {
  for (const char* name : {"6d", "18a", "fig6", "16b", "25c", "30a"}) {
    EXPECT_NE(TestWorkload()->Find(name), nullptr) << name;
  }
  EXPECT_EQ(TestWorkload()->Find("nonexistent"), nullptr);
}

TEST(WorkloadTest, UniqueQueryNames) {
  std::map<std::string, int> names;
  for (const auto& q : TestWorkload()->queries) ++names[q->name];
  for (const auto& [name, count] : names) {
    EXPECT_EQ(count, 1) << name;
  }
}

TEST(WorkloadTest, EveryQueryBinds) {
  imdb::ImdbDatabase* db = SmallImdb();
  for (const auto& q : TestWorkload()->queries) {
    auto ctx =
        optimizer::QueryContext::Bind(q.get(), &db->catalog, &db->stats);
    EXPECT_TRUE(ctx.ok()) << q->name << ": " << ctx.status().ToString();
  }
}

TEST(WorkloadTest, GeneratedJoinGraphsAreTrees) {
  // Tree graphs guarantee the oracle's fast factorized-count path and
  // match JOB's (transitively-reduced) join structure.
  for (const auto& q : TestWorkload()->queries) {
    EXPECT_EQ(static_cast<int>(q->joins.size()), q->num_relations() - 1)
        << q->name;
  }
}

TEST(WorkloadTest, EveryQueryHasFilterAndOutput) {
  for (const auto& q : TestWorkload()->queries) {
    EXPECT_FALSE(q->filters.empty()) << q->name;
    EXPECT_FALSE(q->outputs.empty()) << q->name;
    EXPECT_LE(q->outputs.size(), 4u) << q->name;
  }
}

TEST(WorkloadTest, DeterministicAcrossBuilds) {
  auto a = BuildJobLikeWorkload(SmallImdb()->catalog);
  auto b = BuildJobLikeWorkload(SmallImdb()->catalog);
  ASSERT_EQ(a->queries.size(), b->queries.size());
  for (size_t i = 0; i < a->queries.size(); ++i) {
    EXPECT_EQ(a->queries[i]->ToString(), b->queries[i]->ToString());
  }
}

TEST(WorkloadTest, SeedChangesGeneratedQueries) {
  WorkloadOptions other;
  other.seed = 999;
  auto a = BuildJobLikeWorkload(SmallImdb()->catalog);
  auto b = BuildJobLikeWorkload(SmallImdb()->catalog, other);
  int different = 0;
  for (size_t i = 0; i < a->queries.size(); ++i) {
    if (a->queries[i]->ToString() != b->queries[i]->ToString()) ++different;
  }
  EXPECT_GT(different, 50);
}

TEST(WorkloadTest, AliasesUniquePerQuery) {
  for (const auto& q : TestWorkload()->queries) {
    std::map<std::string, int> aliases;
    for (const auto& rel : q->relations) ++aliases[rel.alias];
    for (const auto& [alias, count] : aliases) {
      EXPECT_EQ(count, 1) << q->name << " alias " << alias;
    }
  }
}

TEST(QueryBuilderTest, BuildsValidSpec) {
  imdb::ImdbDatabase* db = SmallImdb();
  QueryBuilder qb(&db->catalog, "qb_test");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  qb.Join(t, "id", mk, "movie_id")
      .FilterEq(t, "production_year", common::Value::Int(2001))
      .FilterIsNotNull(t, "title")
      .OutputMin(t, "title", "m");
  auto spec = qb.Build();
  EXPECT_EQ(spec->num_relations(), 2);
  EXPECT_EQ(spec->joins.size(), 1u);
  EXPECT_EQ(spec->filters.size(), 2u);
  auto ctx =
      optimizer::QueryContext::Bind(spec.get(), &db->catalog, &db->stats);
  EXPECT_TRUE(ctx.ok());
}

}  // namespace
}  // namespace reopt::workload
