// Differential-testing harness for the vectorized execution kernel: every
// query of the 113-query JOB-like workload runs through both the vectorized
// kernel (the hot path) and the retained scalar reference kernel
// (exec::reference, the correctness oracle), and the results must be
// identical — row counts, MIN() aggregates, charged cost, and the
// per-node actual_rows the re-optimizer triggers on. A second suite runs
// the full workload (with re-optimization, serial and --threads=4) under
// both kernel modes and compares the per-query records field for field.
// A third dimension covers intra-query morsel parallelism: all 113
// queries with intra_query_threads in {1, 2, 4} must be byte-identical to
// the serial executor, per query and across a full composed workload run.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "exec/kernel.h"
#include "exec/kernel_reference.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "optimizer/query_context.h"
#include "plan/join_graph.h"
#include "plan/physical_plan.h"
#include "storage/column.h"
#include "storage/table.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt {
namespace {

using testing::SmallImdb;

/// (op, actual_rows, charged_cost) per node in post-order: the executor
/// state the re-optimizer reads.
std::vector<std::tuple<plan::PlanOp, double, double>> NodeActuals(
    const plan::PlanNode& root) {
  std::vector<std::tuple<plan::PlanOp, double, double>> out;
  root.PostOrderConst([&](const plan::PlanNode* n) {
    out.emplace_back(n->op, n->actual_rows, n->charged_cost);
  });
  return out;
}

TEST(KernelDifferentialTest, All113QueriesMatchReferenceKernel) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto workload = workload::BuildJobLikeWorkload(db->catalog);
  ASSERT_EQ(workload->queries.size(), 113u);

  optimizer::CostParams params;
  exec::Executor vec_exec(&db->catalog, &db->stats, params);
  exec::Executor ref_exec(&db->catalog, &db->stats, params);
  ref_exec.set_kernel_mode(exec::KernelMode::kReference);
  ASSERT_EQ(vec_exec.kernel_mode(), exec::KernelMode::kVectorized);

  for (const auto& query : workload->queries) {
    SCOPED_TRACE(query->name);
    auto ctx_result =
        optimizer::QueryContext::Bind(query.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(ctx_result.ok());
    auto ctx = std::move(ctx_result.value());
    optimizer::EstimatorModel model(ctx.get());
    optimizer::Planner planner(ctx.get(), &model, params);
    auto planned = planner.Plan();
    ASSERT_TRUE(planned.ok());
    plan::PlanNodePtr vec_plan = std::move(planned.value().root);
    plan::PlanNodePtr ref_plan = plan::ClonePlan(*vec_plan);

    auto vec_result = vec_exec.Execute(*query, vec_plan.get());
    auto ref_result = ref_exec.Execute(*query, ref_plan.get());
    ASSERT_TRUE(vec_result.ok());
    ASSERT_TRUE(ref_result.ok());

    EXPECT_EQ(vec_result.value().raw_rows, ref_result.value().raw_rows);
    EXPECT_EQ(vec_result.value().cost_units, ref_result.value().cost_units);
    ASSERT_EQ(vec_result.value().aggregates.size(),
              ref_result.value().aggregates.size());
    for (size_t i = 0; i < vec_result.value().aggregates.size(); ++i) {
      const common::Value& va = vec_result.value().aggregates[i];
      const common::Value& ra = ref_result.value().aggregates[i];
      EXPECT_EQ(va.is_null(), ra.is_null()) << "aggregate " << i;
      if (!va.is_null() && !ra.is_null()) {
        EXPECT_EQ(va, ra) << "aggregate " << i;
      }
    }
    EXPECT_EQ(NodeActuals(*vec_plan), NodeActuals(*ref_plan));
  }
}

/// All 113 queries with intra_query_threads in {1, 2, 4}: results must be
/// byte-identical to the serial executor — aggregates, raw rows, charged
/// cost, and every node's actual_rows (which the re-optimizer triggers on,
/// so a single off-by-one tuple would change figure outputs).
TEST(KernelDifferentialTest, All113QueriesIntraQueryThreadsMatchSerial) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto workload = workload::BuildJobLikeWorkload(db->catalog);
  ASSERT_EQ(workload->queries.size(), 113u);

  optimizer::CostParams params;
  exec::Executor serial_exec(&db->catalog, &db->stats, params);
  const int kThreadCounts[] = {1, 2, 4};
  common::ThreadPool pool(4);  // shared; each executor uses its budget
  exec::Executor intra_execs[3] = {
      exec::Executor(&db->catalog, &db->stats, params),
      exec::Executor(&db->catalog, &db->stats, params),
      exec::Executor(&db->catalog, &db->stats, params)};
  for (int i = 0; i < 3; ++i) {
    intra_execs[i].set_intra_query_parallelism(kThreadCounts[i], &pool);
  }

  for (const auto& query : workload->queries) {
    SCOPED_TRACE(query->name);
    auto ctx_result =
        optimizer::QueryContext::Bind(query.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(ctx_result.ok());
    auto ctx = std::move(ctx_result.value());
    optimizer::EstimatorModel model(ctx.get());
    optimizer::Planner planner(ctx.get(), &model, params);
    auto planned = planner.Plan();
    ASSERT_TRUE(planned.ok());
    plan::PlanNodePtr serial_plan = std::move(planned.value().root);

    auto serial_result = serial_exec.Execute(*query, serial_plan.get());
    ASSERT_TRUE(serial_result.ok());

    for (int i = 0; i < 3; ++i) {
      SCOPED_TRACE(kThreadCounts[i]);
      plan::PlanNodePtr intra_plan = plan::ClonePlan(*serial_plan);
      auto intra_result = intra_execs[i].Execute(*query, intra_plan.get());
      ASSERT_TRUE(intra_result.ok());
      EXPECT_EQ(intra_result.value().raw_rows,
                serial_result.value().raw_rows);
      EXPECT_EQ(intra_result.value().cost_units,
                serial_result.value().cost_units);
      ASSERT_EQ(intra_result.value().aggregates.size(),
                serial_result.value().aggregates.size());
      for (size_t a = 0; a < serial_result.value().aggregates.size(); ++a) {
        const common::Value& iv = intra_result.value().aggregates[a];
        const common::Value& sv = serial_result.value().aggregates[a];
        EXPECT_EQ(iv.is_null(), sv.is_null()) << "aggregate " << a;
        if (!iv.is_null() && !sv.is_null()) {
          EXPECT_EQ(iv, sv) << "aggregate " << a;
        }
      }
      EXPECT_EQ(NodeActuals(*intra_plan), NodeActuals(*serial_plan));
    }
  }
}

/// The encoding dimension: the same seed/scale database is generated once
/// per physical column encoding (plain is the reference encoding;
/// dictionary and partitioned are the optimized layouts; kAuto mixes them
/// per DictionaryWorthwhile / column size), and the full 113-query
/// workload must come back byte-identical — raw rows, charged cost units
/// and every aggregate — under both kernel modes on every database.
/// Charged cost is part of the contract on purpose: SeqScanCost is a
/// function of num_rows and output rows, so zone-map partition skipping
/// must change wall-clock only, never a result or a cost unit.
TEST(KernelDifferentialTest, All113QueriesByteIdenticalAcrossEncodings) {
  struct Outcome {
    int64_t raw_rows;
    double cost_units;
    std::vector<common::Value> aggregates;
  };
  auto run_workload = [](imdb::ImdbDatabase* db, exec::KernelMode mode) {
    std::vector<Outcome> out;
    auto workload = workload::BuildJobLikeWorkload(db->catalog);
    EXPECT_EQ(workload->queries.size(), 113u);
    optimizer::CostParams params;
    exec::Executor ex(&db->catalog, &db->stats, params);
    ex.set_kernel_mode(mode);
    for (const auto& query : workload->queries) {
      SCOPED_TRACE(query->name);
      auto ctx_result = optimizer::QueryContext::Bind(query.get(),
                                                      &db->catalog,
                                                      &db->stats);
      EXPECT_TRUE(ctx_result.ok());
      auto ctx = std::move(ctx_result.value());
      optimizer::EstimatorModel model(ctx.get());
      optimizer::Planner planner(ctx.get(), &model, params);
      auto planned = planner.Plan();
      EXPECT_TRUE(planned.ok());
      auto result = ex.Execute(*query, planned.value().root.get());
      EXPECT_TRUE(result.ok());
      out.push_back(Outcome{result.value().raw_rows,
                            result.value().cost_units,
                            result.value().aggregates});
    }
    return out;
  };
  auto build = [](storage::EncodingPolicy policy) {
    imdb::ImdbOptions options;
    options.scale = 0.05;
    options.encoding_policy = policy;
    return imdb::BuildImdbDatabase(options);
  };
  auto column_encoding = [](const imdb::ImdbDatabase& db, const char* table,
                            const char* column) {
    const storage::Table* t = db.catalog.FindTable(table);
    return t->column(t->schema().FindColumn(column)).encoding();
  };
  auto expect_same = [](const std::vector<Outcome>& want,
                        const std::vector<Outcome>& got) {
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(want[i].raw_rows, got[i].raw_rows);
      EXPECT_EQ(want[i].cost_units, got[i].cost_units);
      ASSERT_EQ(want[i].aggregates.size(), got[i].aggregates.size());
      for (size_t a = 0; a < want[i].aggregates.size(); ++a) {
        EXPECT_EQ(want[i].aggregates[a].is_null(),
                  got[i].aggregates[a].is_null());
        if (!want[i].aggregates[a].is_null() &&
            !got[i].aggregates[a].is_null()) {
          EXPECT_EQ(want[i].aggregates[a], got[i].aggregates[a])
              << "aggregate " << a;
        }
      }
    }
  };

  // Baseline: the forced-plain database under the scalar reference kernel
  // — no encoding, no vectorization; the slowest, most obviously correct
  // configuration anchors every other one.
  auto plain_db = build(storage::EncodingPolicy::kForcePlain);
  ASSERT_EQ(column_encoding(*plain_db, "cast_info", "note"),
            storage::ColumnEncoding::kPlain);
  ASSERT_EQ(column_encoding(*plain_db, "cast_info", "id"),
            storage::ColumnEncoding::kPlain);
  std::vector<Outcome> baseline =
      run_workload(plain_db.get(), exec::KernelMode::kReference);
  {
    SCOPED_TRACE("plain / vectorized");
    expect_same(baseline,
                run_workload(plain_db.get(), exec::KernelMode::kVectorized));
  }

  // Dictionary: every string column holds sorted-dict codes; equality and
  // LIKE compile to code compares / bitmap probes in the vectorized path.
  {
    auto db = build(storage::EncodingPolicy::kForceDictionary);
    ASSERT_EQ(column_encoding(*db, "cast_info", "note"),
              storage::ColumnEncoding::kDictionary);
    ASSERT_EQ(column_encoding(*db, "title", "title"),
              storage::ColumnEncoding::kDictionary);
    SCOPED_TRACE("dictionary");
    expect_same(baseline,
                run_workload(db.get(), exec::KernelMode::kVectorized));
    expect_same(baseline,
                run_workload(db.get(), exec::KernelMode::kReference));
  }

  // Partitioned: every numeric column carries per-1024-row zone maps that
  // FilterScan consults for batch skipping.
  {
    auto db = build(storage::EncodingPolicy::kForcePartitioned);
    ASSERT_EQ(column_encoding(*db, "cast_info", "id"),
              storage::ColumnEncoding::kPartitioned);
    ASSERT_EQ(column_encoding(*db, "title", "production_year"),
              storage::ColumnEncoding::kPartitioned);
    SCOPED_TRACE("partitioned");
    expect_same(baseline,
                run_workload(db.get(), exec::KernelMode::kVectorized));
    expect_same(baseline,
                run_workload(db.get(), exec::KernelMode::kReference));
  }

  // kAuto: the production mix (what SmallImdb and every bench database
  // actually run with).
  {
    auto db = build(storage::EncodingPolicy::kAuto);
    SCOPED_TRACE("auto");
    expect_same(baseline,
                run_workload(db.get(), exec::KernelMode::kVectorized));
    expect_same(baseline,
                run_workload(db.get(), exec::KernelMode::kReference));
  }
}

TEST(KernelDifferentialTest, ExactJoinCountMatchesReferenceOnSignatureQueries) {
  imdb::ImdbDatabase* db = SmallImdb();
  for (auto make : {workload::MakeQuery6d, workload::MakeQuery16b,
                    workload::MakeQueryFig6}) {
    auto query = make(db->catalog);
    SCOPED_TRACE(query->name);
    exec::BoundRelations rels = exec::BindRelations(*query, db->catalog);
    // Every connected sub-join the oracle could be asked about.
    plan::JoinGraph graph(*query);
    for (const plan::CsgCmpPair& pair : graph.ConnectedPairs()) {
      plan::RelSet set = pair.left.Union(pair.right);
      EXPECT_DOUBLE_EQ(exec::ExactJoinCount(*query, set, rels),
                       exec::reference::ExactJoinCount(*query, set, rels))
          << set.ToString();
    }
    plan::RelSet all = query->AllRelations();
    EXPECT_DOUBLE_EQ(exec::ExactJoinCount(*query, all, rels),
                     exec::reference::ExactJoinCount(*query, all, rels));
  }
}

/// Per-query records of a full workload run must be identical across
/// kernel modes and thread counts — the same invariant the parallel
/// runner test pins for scheduling, extended to the kernel dimension.
class KernelModeWorkloadTest : public ::testing::Test {
 protected:
  static void ExpectSameRecords(const workload::WorkloadRunResult& a,
                                const workload::WorkloadRunResult& b) {
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
      const workload::QueryRecord& ra = a.records[i];
      const workload::QueryRecord& rb = b.records[i];
      SCOPED_TRACE(ra.name);
      EXPECT_EQ(ra.name, rb.name);
      EXPECT_EQ(ra.num_tables, rb.num_tables);
      EXPECT_EQ(ra.raw_rows, rb.raw_rows);
      EXPECT_EQ(ra.materializations, rb.materializations);
      EXPECT_EQ(ra.plan_seconds, rb.plan_seconds);
      EXPECT_EQ(ra.exec_seconds, rb.exec_seconds);
    }
  }
};

TEST_F(KernelModeWorkloadTest, FullWorkloadWithReoptSerialAndThreaded) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto workload = workload::BuildJobLikeWorkload(db->catalog);
  reoptimizer::ModelSpec model = reoptimizer::ModelSpec::Estimator();
  reoptimizer::ReoptOptions reopt;
  reopt.enabled = true;  // exercises temp-write materialization too

  // Each run gets a fresh WorkloadRunner (sessions cache oracle counts,
  // which are kernel-independent, but a fresh runner keeps runs symmetric).
  auto run = [&](exec::KernelMode mode, int threads) {
    exec::SetDefaultKernelMode(mode);
    workload::WorkloadRunner runner(db);
    auto result = runner.RunAll(*workload, model, reopt, threads);
    exec::SetDefaultKernelMode(exec::KernelMode::kVectorized);
    EXPECT_TRUE(result.ok());
    return std::move(result.value());
  };

  workload::WorkloadRunResult vec_serial =
      run(exec::KernelMode::kVectorized, 1);
  workload::WorkloadRunResult ref_serial =
      run(exec::KernelMode::kReference, 1);
  workload::WorkloadRunResult vec_threaded =
      run(exec::KernelMode::kVectorized, 4);
  workload::WorkloadRunResult ref_threaded =
      run(exec::KernelMode::kReference, 4);

  ExpectSameRecords(vec_serial, ref_serial);
  ExpectSameRecords(vec_serial, vec_threaded);
  ExpectSameRecords(vec_serial, ref_threaded);

  // Composed two-level parallelism: 2 inter-query workers x 2 intra-query
  // morsel threads (and pure intra: 1 x 4). Records must still match the
  // serial run field for field — re-optimization rounds included, since
  // materialized temp tables are produced by the parallel kernels too.
  auto run_intra = [&](int workers, int intra) {
    exec::SetDefaultKernelMode(exec::KernelMode::kVectorized);
    workload::WorkloadRunner runner(db);
    runner.set_intra_query_threads(intra);
    auto result = runner.RunAll(*workload, model, reopt, workers);
    EXPECT_TRUE(result.ok());
    return std::move(result.value());
  };
  ExpectSameRecords(vec_serial, run_intra(2, 2));
  ExpectSameRecords(vec_serial, run_intra(1, 4));
}

}  // namespace
}  // namespace reopt
