// Regression tests for the strict benchmark flag/env parsing in
// bench/bench_util.h. The old code funnelled --zipf/--arrival-us/--scale
// through unchecked std::atof, which returns 0.0 for garbage — a replay
// bench could silently run with zipf=0 (uniform!) because of a typo. Every
// knob now rejects garbage, trailing junk, non-finite and out-of-range
// values, reports to stderr, and falls back to a safe default.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace reopt::bench {
namespace {

// Builds a mutable fake argv from string literals (argv[0] = program name).
class FakeArgv {
 public:
  explicit FakeArgv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "bench_test");
    for (std::string& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(BenchFlagsTest, ParseDoubleValueAcceptsValidInput) {
  EXPECT_DOUBLE_EQ(ParseDoubleValue("0.8", "x", 0.0, 10.0, 1.0), 0.8);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("2", "x", 0.0, 10.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("1e-2", "x", 0.0, 10.0, 1.0), 0.01);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("0", "x", 0.0, 10.0, 1.0), 0.0);
}

TEST(BenchFlagsTest, ParseDoubleValueRejectsGarbage) {
  EXPECT_DOUBLE_EQ(ParseDoubleValue("banana", "x", 0.0, 10.0, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("", "x", 0.0, 10.0, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("0.8x", "x", 0.0, 10.0, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("1.2.3", "x", 0.0, 10.0, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("nan", "x", 0.0, 10.0, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("inf", "x", 0.0, 10.0, 1.5), 1.5);
  // std::atof would have returned 0.0 here — the bug this replaces.
  EXPECT_NE(ParseDoubleValue("oops", "x", 0.0, 10.0, 1.5), 0.0);
}

TEST(BenchFlagsTest, ParseDoubleValueRejectsOutOfRange) {
  EXPECT_DOUBLE_EQ(ParseDoubleValue("-0.1", "x", 0.0, 10.0, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("11", "x", 0.0, 10.0, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(ParseDoubleValue("1e400", "x", 0.0, 10.0, 1.5), 1.5);
}

TEST(BenchFlagsTest, ParseIntValueAcceptsValidInput) {
  EXPECT_EQ(ParseIntValue("128", "x", 1, 100000, 7), 128);
  EXPECT_EQ(ParseIntValue("1", "x", 1, 100000, 7), 1);
}

TEST(BenchFlagsTest, ParseIntValueRejectsGarbageAndRange) {
  EXPECT_EQ(ParseIntValue("12x", "x", 1, 100000, 7), 7);
  EXPECT_EQ(ParseIntValue("", "x", 1, 100000, 7), 7);
  EXPECT_EQ(ParseIntValue("3.5", "x", 1, 100000, 7), 7);
  EXPECT_EQ(ParseIntValue("-4", "x", 1, 100000, 7), 7);
  EXPECT_EQ(ParseIntValue("0", "x", 1, 100000, 7), 7);
  EXPECT_EQ(ParseIntValue("99999999999999999999", "x", 1, 100000, 7), 7);
}

TEST(BenchFlagsTest, BenchFlagValueFindsExactFlagOnly) {
  FakeArgv fake({"--zipf=0.8", "--queue=64", "--zipfoid=9"});
  ASSERT_NE(BenchFlagValue(fake.argc(), fake.argv(), "--zipf"), nullptr);
  EXPECT_STREQ(BenchFlagValue(fake.argc(), fake.argv(), "--zipf"), "0.8");
  EXPECT_STREQ(BenchFlagValue(fake.argc(), fake.argv(), "--queue"), "64");
  EXPECT_EQ(BenchFlagValue(fake.argc(), fake.argv(), "--missing"), nullptr);
}

TEST(BenchFlagsTest, BenchFlagDoubleValidatesAndDefaults) {
  FakeArgv fake({"--zipf=0.8", "--arrival-us=bogus"});
  EXPECT_DOUBLE_EQ(
      BenchFlagDouble(fake.argc(), fake.argv(), "--zipf", 0.0, 10.0, 0.5),
      0.8);
  // Garbage value -> fallback, not atof's silent 0.0.
  EXPECT_DOUBLE_EQ(BenchFlagDouble(fake.argc(), fake.argv(), "--arrival-us",
                                   0.0, 1e9, 25.0),
                   25.0);
  // Absent flag -> fallback silently.
  EXPECT_DOUBLE_EQ(
      BenchFlagDouble(fake.argc(), fake.argv(), "--scale", 0.0, 10.0, 0.4),
      0.4);
}

TEST(BenchFlagsTest, BenchFlagIntValidatesAndDefaults) {
  FakeArgv fake({"--sessions=32", "--queue=-5"});
  EXPECT_EQ(BenchFlagInt(fake.argc(), fake.argv(), "--sessions", 1, 100000, 8),
            32);
  EXPECT_EQ(BenchFlagInt(fake.argc(), fake.argv(), "--queue", 1, 1 << 20, 64),
            64);
  EXPECT_EQ(BenchFlagInt(fake.argc(), fake.argv(), "--absent", 1, 10, 3), 3);
}

TEST(BenchFlagsTest, BenchFlagStringPassesThrough) {
  FakeArgv fake({"--out=custom.json"});
  EXPECT_EQ(BenchFlagString(fake.argc(), fake.argv(), "--out", "dflt.json"),
            "custom.json");
  EXPECT_EQ(BenchFlagString(fake.argc(), fake.argv(), "--other", "dflt.json"),
            "dflt.json");
}

TEST(BenchFlagsTest, BenchScaleValidatesEnvironment) {
  ASSERT_EQ(setenv("REOPT_BENCH_SCALE", "0.15", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.15);
  // Garbage: atof used to coerce this to 0.0, which BuildImdbDatabase then
  // treated as scale zero; now it errors and keeps the default.
  ASSERT_EQ(setenv("REOPT_BENCH_SCALE", "fast", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.4);
  ASSERT_EQ(setenv("REOPT_BENCH_SCALE", "-1", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.4);
  ASSERT_EQ(setenv("REOPT_BENCH_SCALE", "0.4x", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.4);
  ASSERT_EQ(setenv("REOPT_BENCH_SCALE", "", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.4);
  ASSERT_EQ(unsetenv("REOPT_BENCH_SCALE"), 0);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.4);
}

TEST(BenchFlagsTest, BenchScaleFlagTakesPrecedenceOverEnv) {
  ASSERT_EQ(setenv("REOPT_BENCH_SCALE", "0.15", 1), 0);
  FakeArgv fake({"--scale=2"});
  EXPECT_DOUBLE_EQ(BenchScale(fake.argc(), fake.argv()), 2.0);
  // Garbage flag value: the flag was given, so it falls back to the safe
  // default (like every other flag) rather than silently shadowing the
  // environment or coercing to 0.0.
  FakeArgv bad({"--scale=huge"});
  EXPECT_DOUBLE_EQ(BenchScale(bad.argc(), bad.argv()), 0.4);
  // No flag: environment applies as before.
  FakeArgv none({"--out=x.json"});
  EXPECT_DOUBLE_EQ(BenchScale(none.argc(), none.argv()), 0.15);
  ASSERT_EQ(unsetenv("REOPT_BENCH_SCALE"), 0);
  EXPECT_DOUBLE_EQ(BenchScale(none.argc(), none.argv()), 0.4);
}

TEST(BenchFlagsTest, ParseScaleListSplitsAndValidates) {
  EXPECT_EQ(ParseScaleList("1"), (std::vector<double>{1.0}));
  EXPECT_EQ(ParseScaleList("0.1,1,10"), (std::vector<double>{0.1, 1.0, 10.0}));
  // Invalid elements are dropped (reported to stderr), valid ones kept.
  EXPECT_EQ(ParseScaleList("0.5,junk,2"), (std::vector<double>{0.5, 2.0}));
  EXPECT_EQ(ParseScaleList("-1,0,1e9"), (std::vector<double>{}));
  EXPECT_TRUE(ParseScaleList("").empty());
  EXPECT_TRUE(ParseScaleList(",,").empty());
}

TEST(BenchFlagsTest, BenchScaleListReadsSweepFlag) {
  FakeArgv fake({"--scale=0.1,1"});
  EXPECT_EQ(BenchScaleList(fake.argc(), fake.argv()),
            (std::vector<double>{0.1, 1.0}));
  // Single value still comes back as a one-element sweep.
  FakeArgv one({"--scale=0.25"});
  EXPECT_EQ(BenchScaleList(one.argc(), one.argv()),
            (std::vector<double>{0.25}));
  // Absent flag: empty, callers fall back to the default single scale.
  FakeArgv none({"--out=x.json"});
  EXPECT_TRUE(BenchScaleList(none.argc(), none.argv()).empty());
}

TEST(BenchFlagsTest, ParseThreadCountRegression) {
  EXPECT_EQ(ParseThreadCount("4", "--threads"), 4);
  EXPECT_EQ(ParseThreadCount("junk", "--threads"), 1);
  EXPECT_EQ(ParseThreadCount("-2", "--threads"), 1);
  EXPECT_EQ(ParseThreadCount("2x", "--threads"), 1);
  EXPECT_GE(ParseThreadCount("0", "--threads"), 1);  // 0 = all hardware
  EXPECT_EQ(ParseThreadCount("99999", "--threads"), 1024);
}

}  // namespace
}  // namespace reopt::bench
