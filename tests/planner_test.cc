#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/cardinality_model.h"
#include "optimizer/cost_formulas.h"
#include "optimizer/planner.h"
#include "exec/executor.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::optimizer {
namespace {

using testing::SmallImdb;

struct PlannedQuery {
  std::unique_ptr<plan::QuerySpec> query;
  std::unique_ptr<QueryContext> ctx;
  std::unique_ptr<CardinalityModel> model;
  PlannerResult result;
};

PlannedQuery PlanQuery(std::unique_ptr<plan::QuerySpec> query,
                       const PlannerOptions& options = {},
                       int perfect_n = -1) {
  PlannedQuery out;
  imdb::ImdbDatabase* db = SmallImdb();
  out.query = std::move(query);
  auto bound =
      QueryContext::Bind(out.query.get(), &db->catalog, &db->stats);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  out.ctx = std::move(bound.value());
  if (perfect_n >= 0) {
    static std::vector<std::unique_ptr<TrueCardinalityOracle>>* oracles =
        new std::vector<std::unique_ptr<TrueCardinalityOracle>>();
    oracles->push_back(
        std::make_unique<TrueCardinalityOracle>(out.ctx.get()));
    out.model = std::make_unique<PerfectNModel>(
        out.ctx.get(), oracles->back().get(), perfect_n);
  } else {
    out.model = std::make_unique<EstimatorModel>(out.ctx.get());
  }
  CostParams params;
  Planner planner(out.ctx.get(), out.model.get(), params, options);
  auto planned = planner.Plan();
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  out.result = std::move(planned.value());
  return out;
}

// ---- Structural validity ----------------------------------------------------

void CheckPlanShape(const plan::PlanNode& node, const plan::QuerySpec& query) {
  if (node.is_scan()) {
    EXPECT_EQ(node.rels.count(), 1);
    EXPECT_EQ(node.rels.Lowest(), node.scan_rel);
    // Every filter of the relation is applied at the scan.
    EXPECT_EQ(node.filters.size(), query.FiltersFor(node.scan_rel).size());
    return;
  }
  if (node.is_join()) {
    ASSERT_NE(node.left, nullptr);
    ASSERT_NE(node.right, nullptr);
    EXPECT_EQ(node.rels.bits(),
              node.left->rels.Union(node.right->rels).bits());
    EXPECT_FALSE(node.left->rels.Intersects(node.right->rels));
    // All edges between the two sides are applied here.
    EXPECT_EQ(node.edges.size(),
              query.JoinsBetween(node.left->rels, node.right->rels).size());
    EXPECT_FALSE(node.edges.empty());
    if (node.op == plan::PlanOp::kIndexNestedLoopJoin) {
      EXPECT_TRUE(node.right->is_scan());
      ASSERT_NE(node.index_edge, nullptr);
    }
    CheckPlanShape(*node.left, query);
    CheckPlanShape(*node.right, query);
  }
}

TEST(PlannerTest, PlansAreStructurallyValid) {
  for (auto make : {workload::MakeQuery6d, workload::MakeQuery18a,
                    workload::MakeQueryFig6, workload::MakeQuery16b,
                    workload::MakeQuery25c, workload::MakeQuery30a}) {
    PlannedQuery p = PlanQuery(make(SmallImdb()->catalog));
    ASSERT_EQ(p.result.root->op, plan::PlanOp::kAggregate);
    ASSERT_NE(p.result.root->left, nullptr);
    EXPECT_EQ(p.result.root->left->rels.bits(),
              p.query->AllRelations().bits());
    CheckPlanShape(*p.result.root->left, *p.query);
  }
}

TEST(PlannerTest, SingleRelationQuery) {
  imdb::ImdbDatabase* db = SmallImdb();
  workload::QueryBuilder qb(&db->catalog, "single");
  int t = qb.AddRelation("title", "t");
  qb.FilterCompare(t, "production_year", plan::CompareOp::kGt,
                   common::Value::Int(2010))
      .OutputMin(t, "title", "m");
  PlannedQuery p = PlanQuery(qb.Build());
  EXPECT_EQ(p.result.root->op, plan::PlanOp::kAggregate);
  EXPECT_TRUE(p.result.root->left->is_scan());
}

// ---- Optimality vs exhaustive search --------------------------------------------

// Recomputes the cumulative cost of a plan bottom-up from the cost formulas
// and the model, verifying the DP's bookkeeping.
double RecomputeCost(const plan::PlanNode& node, CardinalityModel* model,
                     const QueryContext& ctx, const CostParams& params) {
  if (node.is_scan()) return node.est_cost;  // validated structurally
  double left = RecomputeCost(*node.left, model, ctx, params);
  double rows = model->Cardinality(node.rels);
  if (node.op == plan::PlanOp::kHashJoin) {
    double right = RecomputeCost(*node.right, model, ctx, params);
    return left + right +
           HashJoinCost(params, node.left->est_rows, node.right->est_rows,
                        rows);
  }
  if (node.op == plan::PlanOp::kNestedLoopJoin) {
    double right = RecomputeCost(*node.right, model, ctx, params);
    return left + right +
           NestedLoopJoinCost(params, node.left->est_rows,
                              node.right->est_rows, rows);
  }
  return node.est_cost;  // index NLJ: trust the planner's record
}

TEST(PlannerTest, RecordedCostsConsistent) {
  PlannedQuery p = PlanQuery(workload::MakeQueryFig6(SmallImdb()->catalog));
  CostParams params;
  const plan::PlanNode& join_root = *p.result.root->left;
  double recomputed =
      RecomputeCost(join_root, p.model.get(), *p.ctx, params);
  EXPECT_NEAR(recomputed, join_root.est_cost,
              1e-6 * std::abs(join_root.est_cost) + 1e-6);
}

// Exhaustive reference: enumerate ALL bushy join trees over connected
// pairs recursively and find the minimum cost (hash joins only, to bound
// the search). The DP must match it.
double BestCostExhaustive(plan::RelSet set, const QueryContext& ctx,
                          CardinalityModel* model, const CostParams& params,
                          std::map<uint64_t, double>* memo) {
  auto it = memo->find(set.bits());
  if (it != memo->end()) return it->second;
  double best;
  if (set.count() == 1) {
    int rel = set.Lowest();
    double rows = model->Cardinality(set);
    double table_rows =
        static_cast<double>(ctx.table(rel).num_rows());
    best = SeqScanCost(params, table_rows,
                       static_cast<int>(ctx.query().FiltersFor(rel).size()),
                       rows);
  } else {
    best = 1e300;
    uint64_t low_bit = uint64_t{1} << set.Lowest();
    uint64_t rest = set.bits() & ~low_bit;
    for (uint64_t sub = rest;; sub = (sub - 1) & rest) {
      uint64_t left_bits = sub | low_bit;
      uint64_t right_bits = set.bits() & ~left_bits;
      if (right_bits != 0) {
        plan::RelSet left(left_bits);
        plan::RelSet right(right_bits);
        if (ctx.graph().IsConnected(left) && ctx.graph().IsConnected(right) &&
            !ctx.query().JoinsBetween(left, right).empty()) {
          double l = BestCostExhaustive(left, ctx, model, params, memo);
          double r = BestCostExhaustive(right, ctx, model, params, memo);
          double rows = model->Cardinality(set);
          double a = l + r +
                     HashJoinCost(params, model->Cardinality(left),
                                  model->Cardinality(right), rows);
          double b = l + r +
                     HashJoinCost(params, model->Cardinality(right),
                                  model->Cardinality(left), rows);
          best = std::min({best, a, b});
        }
      }
      if (sub == 0) break;
    }
  }
  (*memo)[set.bits()] = best;
  return best;
}

TEST(PlannerTest, DpMatchesExhaustiveHashOnlySearch) {
  PlannerOptions hash_only;
  hash_only.enable_nested_loop = false;
  hash_only.enable_index_nested_loop = false;
  hash_only.enable_index_scan = false;
  for (auto make : {workload::MakeQuery6d, workload::MakeQueryFig6}) {
    PlannedQuery p = PlanQuery(make(SmallImdb()->catalog), hash_only);
    std::map<uint64_t, double> memo;
    CostParams params;
    double exhaustive = BestCostExhaustive(
        p.query->AllRelations(), *p.ctx, p.model.get(), params, &memo);
    EXPECT_NEAR(p.result.root->left->est_cost, exhaustive,
                1e-6 * exhaustive)
        << p.query->name;
  }
}

// ---- Operator selection behaviour -------------------------------------------------

TEST(PlannerTest, IndexScanChosenForSelectiveEqualityOnIndexedColumn) {
  imdb::ImdbDatabase* db = SmallImdb();
  workload::QueryBuilder qb(&db->catalog, "idx");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  qb.Join(t, "id", mk, "movie_id")
      .FilterEq(t, "id", common::Value::Int(77))
      .OutputMin(t, "title", "m");
  PlannedQuery p = PlanQuery(qb.Build());
  bool found_index_scan = false;
  p.result.root->PostOrder([&](plan::PlanNode* node) {
    if (node->op == plan::PlanOp::kIndexScan && node->scan_rel == 0) {
      found_index_scan = true;
    }
    // Index-NLJ into t with the id probe is equally reasonable.
    if (node->op == plan::PlanOp::kIndexNestedLoopJoin) {
      found_index_scan = true;
    }
  });
  EXPECT_TRUE(found_index_scan);
}

TEST(PlannerTest, PerfectModelNeverCostsMoreOnItsOwnTerms) {
  // The plan chosen under the oracle model, costed with true
  // cardinalities, is at least as cheap as the estimator's plan costed
  // with true cardinalities (optimality transfer).
  imdb::ImdbDatabase* db = SmallImdb();
  auto q1 = workload::MakeQuery6d(db->catalog);
  auto q2 = workload::MakeQuery6d(db->catalog);
  PlannedQuery est = PlanQuery(std::move(q1));
  PlannedQuery perfect = PlanQuery(std::move(q2), {}, /*perfect_n=*/5);
  // Execute both and compare charged (true-cardinality) costs.
  exec::Executor executor(&db->catalog, &db->stats, CostParams());
  auto r_est = executor.Execute(*est.query, est.result.root.get());
  auto r_perf = executor.Execute(*perfect.query, perfect.result.root.get());
  ASSERT_TRUE(r_est.ok());
  ASSERT_TRUE(r_perf.ok());
  EXPECT_LE(r_perf->cost_units, r_est->cost_units * 1.0001);
}

TEST(PlannerTest, PlanningChargesGrowWithQuerySize) {
  PlannedQuery small = PlanQuery(workload::MakeQuery6d(SmallImdb()->catalog));
  PlannedQuery large = PlanQuery(workload::MakeQuery25c(SmallImdb()->catalog));
  EXPECT_GT(large.result.num_estimates, small.result.num_estimates);
  EXPECT_GT(large.result.planning_cost_units,
            small.result.planning_cost_units);
}

TEST(PlannerTest, DeterministicPlans) {
  auto a = PlanQuery(workload::MakeQuery18a(SmallImdb()->catalog));
  auto b = PlanQuery(workload::MakeQuery18a(SmallImdb()->catalog));
  EXPECT_EQ(plan::ExplainPlan(*a.result.root, *a.query),
            plan::ExplainPlan(*b.result.root, *b.query));
}

TEST(PlannerTest, DisconnectedQueryRejectedAtBind) {
  imdb::ImdbDatabase* db = SmallImdb();
  plan::QuerySpec spec;
  spec.name = "disconnected";
  spec.relations.push_back(plan::RelationRef{"title", "t"});
  spec.relations.push_back(plan::RelationRef{"keyword", "k"});
  plan::OutputExpr out;
  out.column = plan::ColumnRef{0, 0, ""};
  spec.outputs.push_back(out);
  auto bound = QueryContext::Bind(&spec, &db->catalog, &db->stats);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace reopt::optimizer
