// The parallel sweep engine's correctness contract: RunAll/RunSweep with
// num_threads > 1 produce records byte-identical to the serial run, never
// leak temp tables, and propagate errors deterministically. This suite is
// the ThreadSanitizer target (ctest label "tsan"): it drives 4+ workers
// through concurrent re-optimization rounds — temp-table DDL, stats
// registration, shared oracle counting — over a reduced workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt::workload {
namespace {

using testing::SmallImdb;

// A reduced workload: the first 18 generated queries plus every signature
// query (6d materializes even at test scale, so re-optimization's
// temp-table path runs concurrently).
std::unique_ptr<JobLikeWorkload> ReducedWorkload() {
  auto full = BuildJobLikeWorkload(SmallImdb()->catalog);
  auto reduced = std::make_unique<JobLikeWorkload>();
  const std::vector<std::string> keep = {"6d",  "18a", "fig6",
                                         "16b", "25c", "30a"};
  for (size_t i = 0; i < full->queries.size(); ++i) {
    bool is_signature = false;
    for (const std::string& name : keep) {
      if (full->queries[i]->name == name) is_signature = true;
    }
    if (i < 18 || is_signature) {
      reduced->queries.push_back(std::move(full->queries[i]));
    }
  }
  return reduced;
}

void ExpectSameRecords(const WorkloadRunResult& a,
                       const WorkloadRunResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const QueryRecord& x = a.records[i];
    const QueryRecord& y = b.records[i];
    EXPECT_EQ(x.name, y.name) << i;
    EXPECT_EQ(x.num_tables, y.num_tables) << x.name;
    EXPECT_DOUBLE_EQ(x.plan_seconds, y.plan_seconds) << x.name;
    EXPECT_DOUBLE_EQ(x.exec_seconds, y.exec_seconds) << x.name;
    EXPECT_EQ(x.materializations, y.materializations) << x.name;
    EXPECT_EQ(x.raw_rows, y.raw_rows) << x.name;
  }
}

TEST(ParallelRunnerTest, ParallelRunAllMatchesSerial) {
  auto workload = ReducedWorkload();
  WorkloadRunner runner(SmallImdb());
  reoptimizer::ReoptOptions reopt;
  reopt.enabled = true;
  reopt.qerror_threshold = 32.0;

  auto serial = runner.RunAll(*workload, reoptimizer::ModelSpec::Estimator(),
                              reopt);
  auto parallel = runner.RunAll(*workload,
                                reoptimizer::ModelSpec::Estimator(), reopt,
                                /*num_threads=*/4);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectSameRecords(*serial, *parallel);

  // The run must actually have exercised the concurrent temp-table path.
  int materializations = 0;
  for (const QueryRecord& r : parallel->records) {
    materializations += r.materializations;
  }
  EXPECT_GT(materializations, 0);
  EXPECT_TRUE(SmallImdb()->catalog.TableNames(/*temp_only=*/true).empty());
}

TEST(ParallelRunnerTest, SweepMatchesPerConfigSerialRuns) {
  auto workload = ReducedWorkload();
  WorkloadRunner runner(SmallImdb());
  reoptimizer::ReoptOptions reopt32;
  reopt32.enabled = true;
  reopt32.qerror_threshold = 32.0;
  std::vector<SweepConfig> configs = {
      {"default", reoptimizer::ModelSpec::Estimator(), {}},
      {"reopt-32", reoptimizer::ModelSpec::Estimator(), reopt32},
      {"perfect-4", reoptimizer::ModelSpec::PerfectN(4), {}},
  };

  auto sweep = runner.RunSweep(*workload, configs, /*num_threads=*/4);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  ASSERT_EQ(sweep->size(), configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    auto serial = runner.RunAll(*workload, configs[c].model,
                                configs[c].reopt);
    ASSERT_TRUE(serial.ok()) << configs[c].label;
    ExpectSameRecords(*serial, (*sweep)[c]);
  }
  EXPECT_TRUE(SmallImdb()->catalog.TableNames(/*temp_only=*/true).empty());
}

TEST(ParallelRunnerTest, ProgressHookFiresOncePerConfigWithFullResult) {
  auto workload = ReducedWorkload();
  WorkloadRunner runner(SmallImdb());
  std::vector<SweepConfig> configs = {
      {"a", reoptimizer::ModelSpec::Estimator(), {}},
      {"b", reoptimizer::ModelSpec::PerfectN(3), {}},
  };
  // Invocations are serialized by RunSweep, so the unguarded vector is safe.
  std::vector<std::string> seen;
  auto sweep = runner.RunSweep(
      *workload, configs, /*num_threads=*/4,
      [&](const SweepConfig& config, const WorkloadRunResult& result) {
        EXPECT_EQ(result.records.size(), workload->queries.size());
        for (const QueryRecord& r : result.records) {
          EXPECT_FALSE(r.name.empty());  // complete when reported
        }
        seen.push_back(config.label);
      });
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b"}));
}

TEST(ParallelRunnerTest, RepeatedParallelRunsAreDeterministic) {
  auto workload = ReducedWorkload();
  WorkloadRunner runner(SmallImdb());
  reoptimizer::ReoptOptions reopt;
  reopt.enabled = true;
  reopt.qerror_threshold = 8.0;
  auto a = runner.RunAll(*workload, reoptimizer::ModelSpec::Estimator(),
                         reopt, 4);
  auto b = runner.RunAll(*workload, reoptimizer::ModelSpec::Estimator(),
                         reopt, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameRecords(*a, *b);
}

TEST(ParallelRunnerTest, ErrorPropagatesAndLeavesNoTempTables) {
  auto workload = ReducedWorkload();
  WorkloadRunner runner(SmallImdb());
  // With every join algorithm disabled, multi-relation queries cannot be
  // planned: the DP never reaches the full relation set.
  optimizer::PlannerOptions no_joins;
  no_joins.enable_hash_join = false;
  no_joins.enable_nested_loop = false;
  no_joins.enable_index_nested_loop = false;
  runner.query_runner()->set_planner_options(no_joins);

  size_t tables_before = SmallImdb()->catalog.TableNames().size();
  auto run = runner.RunAll(*workload, reoptimizer::ModelSpec::Estimator(),
                           {}, /*num_threads=*/4);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), common::StatusCode::kInternal);
  EXPECT_EQ(SmallImdb()->catalog.TableNames().size(), tables_before);
  EXPECT_TRUE(SmallImdb()->catalog.TableNames(/*temp_only=*/true).empty());

  // The runner recovers once the options are restored.
  runner.query_runner()->set_planner_options({});
  auto ok_run = runner.RunAll(*workload,
                              reoptimizer::ModelSpec::Estimator(), {}, 4);
  EXPECT_TRUE(ok_run.ok()) << ok_run.status().ToString();
}

TEST(ParallelRunnerTest, OversubscribedThreadCountStillMatches) {
  auto workload = ReducedWorkload();
  WorkloadRunner runner(SmallImdb());
  auto serial = runner.RunAll(*workload,
                              reoptimizer::ModelSpec::Estimator(), {});
  auto wide = runner.RunAll(*workload, reoptimizer::ModelSpec::Estimator(),
                            {}, /*num_threads=*/64);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(wide.ok());
  ExpectSameRecords(*serial, *wide);
}

}  // namespace
}  // namespace reopt::workload
