#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/planner.h"
#include "sql/engine.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::sql {
namespace {

using testing::SmallImdb;

// ---- Lexer ------------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("SELECT MIN(t.title) FROM title AS t WHERE "
                    "t.production_year >= 2000;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().type, TokenType::kKeyword);
  EXPECT_EQ(tokens->front().text, "SELECT");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Lex("'oops");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("SELECT -- this is a comment\n 1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 2u);
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("<= >= <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");  // != normalizes
}

// ---- Parser / binder ----------------------------------------------------------

TEST(ParserTest, ParsesJobStyleQuery) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "SELECT MIN(k.keyword) AS movie_keyword, MIN(t.title) AS hero_movie "
      "FROM keyword AS k, movie_keyword AS mk, title AS t "
      "WHERE k.keyword IN ('superhero', 'sequel') "
      "  AND t.production_year > 2000 "
      "  AND mk.keyword_id = k.id AND t.id = mk.movie_id;",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const plan::QuerySpec& q = *parsed->query;
  EXPECT_EQ(q.num_relations(), 3);
  EXPECT_EQ(q.joins.size(), 2u);
  EXPECT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.outputs.size(), 2u);
  EXPECT_TRUE(parsed->create_table_name.empty());
}

TEST(ParserTest, SqlMatchesQueryBuilderOn6d) {
  // The SQL rendering of the 6d analogue must parse back into an
  // equivalent spec (same counts, same estimated behavior).
  imdb::ImdbDatabase* db = SmallImdb();
  auto built = workload::MakeQuery6d(db->catalog);
  auto parsed = ParseStatement(
      "SELECT MIN(k.keyword), MIN(n.name), MIN(t.title) "
      "FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, "
      "     name AS n, title AS t "
      "WHERE k.keyword IN ('superhero','sequel','second-part',"
      "'marvel-comics','based-on-comic','tv-special','fight','violence') "
      "  AND n.name LIKE '%Downey%' AND t.production_year > 2000 "
      "  AND mk.keyword_id = k.id AND t.id = mk.movie_id "
      "  AND t.id = ci.movie_id AND ci.person_id = n.id;",
      db->catalog, "6d_sql");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->query->num_relations(), built->num_relations());
  EXPECT_EQ(parsed->query->joins.size(), built->joins.size());
  EXPECT_EQ(parsed->query->filters.size(), built->filters.size());
}

TEST(ParserTest, SqlQueryExecutesLikeBuiltQuery) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto run = [&](const plan::QuerySpec& q) {
    auto ctx = optimizer::QueryContext::Bind(&q, &db->catalog, &db->stats);
    EXPECT_TRUE(ctx.ok());
    optimizer::EstimatorModel model(ctx.value().get());
    optimizer::CostParams params;
    optimizer::Planner planner(ctx.value().get(), &model, params);
    auto planned = planner.Plan();
    EXPECT_TRUE(planned.ok());
    exec::Executor executor(&db->catalog, &db->stats, params);
    auto result = executor.Execute(q, planned->root.get());
    EXPECT_TRUE(result.ok());
    return std::move(result.value());
  };
  auto parsed = ParseStatement(
      "SELECT MIN(t.title) AS m FROM title AS t, movie_keyword AS mk, "
      "keyword AS k WHERE t.id = mk.movie_id AND mk.keyword_id = k.id "
      "AND k.keyword = 'superhero';",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  workload::QueryBuilder qb(&db->catalog, "same");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int k = qb.AddRelation("keyword", "k");
  qb.Join(t, "id", mk, "movie_id")
      .Join(mk, "keyword_id", k, "id")
      .FilterEq(k, "keyword", common::Value::Str("superhero"))
      .OutputMin(t, "title", "m");
  auto built = qb.Build();

  exec::QueryResult a = run(*parsed->query);
  exec::QueryResult b = run(*built);
  EXPECT_EQ(a.raw_rows, b.raw_rows);
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
  EXPECT_EQ(a.aggregates[0], b.aggregates[0]);
}

TEST(ParserTest, CreateTempTableAsSelect) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "CREATE TEMP TABLE temp1 AS "
      "SELECT mk.movie_id FROM keyword AS k, movie_keyword AS mk "
      "WHERE mk.keyword_id = k.id "
      "AND k.keyword = 'character-name-in-title';",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->create_table_name, "temp1");
  EXPECT_TRUE(parsed->temporary);
  EXPECT_EQ(parsed->query->num_relations(), 2);
  EXPECT_FALSE(parsed->query->outputs[0].min_agg);
}

TEST(ParserTest, BetweenAndIsNull) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "SELECT MIN(t.title) FROM title AS t "
      "WHERE t.production_year BETWEEN 1990 AND 2000 "
      "AND t.title IS NOT NULL;",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->query->filters.size(), 2u);
  EXPECT_EQ(parsed->query->filters[0].kind,
            plan::ScanPredicate::Kind::kBetween);
  EXPECT_EQ(parsed->query->filters[1].kind,
            plan::ScanPredicate::Kind::kIsNotNull);
}

TEST(ParserTest, ImplicitAliasAndBareAlias) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "SELECT MIN(title.title) FROM title WHERE title.id = 3;",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto parsed2 = ParseStatement(
      "SELECT MIN(t.title) FROM title t WHERE t.id = 3;", db->catalog);
  ASSERT_TRUE(parsed2.ok()) << parsed2.status().ToString();
}

struct BadSql {
  const char* sql;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSql> {};

TEST_P(ParserErrorTest, Rejected) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(GetParam().sql, db->catalog);
  EXPECT_FALSE(parsed.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserErrorTest,
    ::testing::Values(
        BadSql{"FROM title t", "missing SELECT"},
        BadSql{"SELECT MIN(t.title) FROM nope t", "unknown table"},
        BadSql{"SELECT MIN(t.nope) FROM title t", "unknown column"},
        BadSql{"SELECT MIN(x.title) FROM title t", "unknown alias"},
        BadSql{"SELECT MIN(t.title) FROM title t, title t",
               "duplicate alias"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.id <",
               "dangling operator"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.id = 1 garbage",
               "trailing tokens"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.id < t.kind_id",
               "non-equi join"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.id = t.kind_id",
               "self comparison"},
        BadSql{"", "empty statement"},
        BadSql{"   \n\t  ", "whitespace-only statement"},
        BadSql{";", "bare semicolon"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.title = 'oops",
               "unterminated string literal"},
        BadSql{"'unterminated", "unterminated string as whole input"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.nope = 1",
               "unknown column in predicate"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE nosuch.id = t.id",
               "unknown alias in join"},
        BadSql{"CREATE TEMP TABLE AS SELECT MIN(t.title) FROM title t",
               "CREATE without a table name"}));

TEST(ParserTest, ParsedQueryBindsIntoContext) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "SELECT MIN(n.name) FROM name AS n, cast_info AS ci "
      "WHERE n.id = ci.person_id AND n.gender = 'f';",
      db->catalog);
  ASSERT_TRUE(parsed.ok());
  auto ctx = optimizer::QueryContext::Bind(parsed->query.get(), &db->catalog,
                                           &db->stats);
  EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
}

// ---- Engine -----------------------------------------------------------------

TEST(EngineTest, SelectMatchesManualPipeline) {
  imdb::ImdbDatabase* db = SmallImdb();
  const std::string sql =
      "SELECT MIN(t.title) AS m FROM title AS t, movie_keyword AS mk, "
      "keyword AS k WHERE t.id = mk.movie_id AND mk.keyword_id = k.id "
      "AND k.keyword = 'superhero';";
  Engine engine(&db->catalog, &db->stats);
  auto outcome = engine.Execute(sql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  // Hand-built pipeline over the same parsed statement.
  auto parsed = ParseStatement(sql, db->catalog);
  ASSERT_TRUE(parsed.ok());
  auto ctx = optimizer::QueryContext::Bind(parsed->query.get(), &db->catalog,
                                           &db->stats);
  ASSERT_TRUE(ctx.ok());
  optimizer::EstimatorModel model(ctx->get());
  optimizer::CostParams params;
  optimizer::Planner planner(ctx->get(), &model, params);
  auto planned = planner.Plan();
  ASSERT_TRUE(planned.ok());
  exec::Executor executor(&db->catalog, &db->stats, params);
  auto manual = executor.Execute(*parsed->query, planned->root.get());
  ASSERT_TRUE(manual.ok());

  EXPECT_EQ(outcome->aggregates, manual->aggregates);
  EXPECT_EQ(outcome->raw_rows, manual->raw_rows);
  EXPECT_EQ(outcome->plan_cost_units, planned->planning_cost_units);
  EXPECT_EQ(outcome->exec_cost_units, manual->cost_units);
  EXPECT_TRUE(outcome->created_table.empty());
}

TEST(EngineTest, IntraQueryThreadsDoNotChangeResults) {
  imdb::ImdbDatabase* db = SmallImdb();
  const std::string sql =
      "SELECT MIN(n.name) FROM name AS n, cast_info AS ci "
      "WHERE n.id = ci.person_id AND n.name LIKE 'B%';";
  Engine serial(&db->catalog, &db->stats);
  Engine parallel(&db->catalog, &db->stats);
  parallel.set_intra_query_threads(2);
  auto a = serial.Execute(sql);
  auto b = parallel.Execute(sql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->aggregates, b->aggregates);
  EXPECT_EQ(a->raw_rows, b->raw_rows);
  EXPECT_EQ(a->exec_cost_units, b->exec_cost_units);
}

TEST(EngineTest, CreateTempTableThenSelectOverIt) {
  imdb::ImdbDatabase* db = SmallImdb();
  Engine engine(&db->catalog, &db->stats);
  auto created = engine.Execute(
      "CREATE TEMP TABLE eng_tmp AS SELECT mk.movie_id "
      "FROM keyword AS k, movie_keyword AS mk "
      "WHERE mk.keyword_id = k.id AND k.keyword = 'superhero';");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->created_table, "eng_tmp");
  EXPECT_TRUE(created->aggregates.empty());
  const storage::Table* tmp = db->catalog.FindTable("eng_tmp");
  ASSERT_NE(tmp, nullptr);
  EXPECT_TRUE(db->catalog.IsTemporary("eng_tmp"));
  EXPECT_EQ(tmp->num_rows(), created->raw_rows);

  // The materialized rows join like any base table.
  auto selected = engine.Execute(
      "SELECT MIN(t.title) FROM title AS t, eng_tmp AS e "
      "WHERE t.id = e.mk_movie_id;");
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();

  auto direct = engine.Execute(
      "SELECT MIN(t.title) FROM title AS t, keyword AS k, "
      "movie_keyword AS mk WHERE t.id = mk.movie_id "
      "AND mk.keyword_id = k.id AND k.keyword = 'superhero';");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(selected->aggregates, direct->aggregates);

  ASSERT_TRUE(db->catalog.DropTable("eng_tmp").ok());
}

TEST(EngineTest, ErrorsComeBackAsStatusNotCrash) {
  imdb::ImdbDatabase* db = SmallImdb();
  Engine engine(&db->catalog, &db->stats);
  EXPECT_FALSE(engine.Execute("").ok());
  EXPECT_FALSE(engine.Execute("SELECT FROM WHERE;").ok());
  EXPECT_FALSE(engine.Execute("'unterminated").ok());
  EXPECT_FALSE(
      engine.Execute("SELECT MIN(x.title) FROM no_such_table AS x;").ok());
}

TEST(EngineTest, CreateTempTableNameCollisionIsAlreadyExists) {
  imdb::ImdbDatabase* db = SmallImdb();
  Engine engine(&db->catalog, &db->stats);
  const std::string create =
      "CREATE TEMP TABLE eng_dup AS SELECT k.id FROM keyword AS k "
      "WHERE k.keyword = 'sequel';";
  ASSERT_TRUE(engine.Execute(create).ok());
  auto again = engine.Execute(create);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), common::StatusCode::kAlreadyExists);
  // Colliding with a *base* table is equally fatal and equally clean.
  auto base = engine.Execute(
      "CREATE TEMP TABLE title AS SELECT k.id FROM keyword AS k;");
  ASSERT_FALSE(base.ok());
  EXPECT_EQ(base.status().code(), common::StatusCode::kAlreadyExists);
  ASSERT_TRUE(db->catalog.DropTable("eng_dup").ok());
}

// ---- RenderSql round-trip ---------------------------------------------------

void ExpectSpecsEquivalent(const plan::QuerySpec& a, const plan::QuerySpec& b,
                           const std::string& name) {
  ASSERT_EQ(a.relations.size(), b.relations.size()) << name;
  for (size_t i = 0; i < a.relations.size(); ++i) {
    EXPECT_EQ(a.relations[i].table_name, b.relations[i].table_name) << name;
    EXPECT_EQ(a.relations[i].alias, b.relations[i].alias) << name;
  }
  ASSERT_EQ(a.filters.size(), b.filters.size()) << name;
  for (size_t i = 0; i < a.filters.size(); ++i) {
    const plan::ScanPredicate& fa = a.filters[i];
    const plan::ScanPredicate& fb = b.filters[i];
    EXPECT_EQ(fa.kind, fb.kind) << name << " filter " << i;
    EXPECT_EQ(fa.column.rel, fb.column.rel) << name << " filter " << i;
    EXPECT_EQ(fa.column.name, fb.column.name) << name << " filter " << i;
    EXPECT_EQ(fa.op, fb.op) << name << " filter " << i;
    EXPECT_EQ(fa.value, fb.value) << name << " filter " << i;
    EXPECT_EQ(fa.value2, fb.value2) << name << " filter " << i;
    EXPECT_EQ(fa.in_list, fb.in_list) << name << " filter " << i;
  }
  ASSERT_EQ(a.joins.size(), b.joins.size()) << name;
  for (size_t i = 0; i < a.joins.size(); ++i) {
    EXPECT_EQ(a.joins[i].left.rel, b.joins[i].left.rel) << name;
    EXPECT_EQ(a.joins[i].left.name, b.joins[i].left.name) << name;
    EXPECT_EQ(a.joins[i].right.rel, b.joins[i].right.rel) << name;
    EXPECT_EQ(a.joins[i].right.name, b.joins[i].right.name) << name;
  }
  ASSERT_EQ(a.outputs.size(), b.outputs.size()) << name;
  for (size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_EQ(a.outputs[i].column.rel, b.outputs[i].column.rel) << name;
    EXPECT_EQ(a.outputs[i].column.name, b.outputs[i].column.name) << name;
    EXPECT_EQ(a.outputs[i].min_agg, b.outputs[i].min_agg) << name;
  }
}

// Every one of the 113 workload queries must survive the render -> parse ->
// bind round trip with its structure intact: this is what lets the replay
// driver treat RenderSql output as the wire format for real clients.
TEST(RenderSqlTest, AllWorkloadQueriesRoundTrip) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto workload = workload::BuildJobLikeWorkload(db->catalog);
  ASSERT_EQ(workload->queries.size(), 113u);
  for (const auto& q : workload->queries) {
    const std::string rendered = RenderSql(*q);
    auto parsed = ParseStatement(rendered, db->catalog, q->name);
    ASSERT_TRUE(parsed.ok())
        << q->name << ": " << parsed.status().ToString() << "\n" << rendered;
    ExpectSpecsEquivalent(*q, *parsed->query, q->name);
  }
}

TEST(RenderSqlTest, RenderedQueryExecutesIdentically) {
  imdb::ImdbDatabase* db = SmallImdb();
  Engine engine(&db->catalog, &db->stats);
  for (const auto make :
       {workload::MakeQuery6d, workload::MakeQueryFig6,
        workload::MakeQuery16b}) {
    auto built = make(db->catalog);
    auto from_spec = [&](const plan::QuerySpec& spec) {
      auto ctx = optimizer::QueryContext::Bind(&spec, &db->catalog,
                                               &db->stats);
      EXPECT_TRUE(ctx.ok());
      optimizer::EstimatorModel model(ctx->get());
      optimizer::CostParams params;
      optimizer::Planner planner(ctx->get(), &model, params);
      auto planned = planner.Plan();
      EXPECT_TRUE(planned.ok());
      exec::Executor executor(&db->catalog, &db->stats, params);
      auto result = executor.Execute(spec, planned->root.get());
      EXPECT_TRUE(result.ok());
      return std::move(result.value());
    };
    exec::QueryResult want = from_spec(*built);
    auto got = engine.Execute(RenderSql(*built), built->name);
    ASSERT_TRUE(got.ok()) << built->name << ": " << got.status().ToString();
    EXPECT_EQ(got->aggregates, want.aggregates) << built->name;
    EXPECT_EQ(got->raw_rows, want.raw_rows) << built->name;
    EXPECT_EQ(got->exec_cost_units, want.cost_units) << built->name;
  }
}

TEST(RenderSqlTest, EscapesQuotesAndRoundTripsLiterals) {
  imdb::ImdbDatabase* db = SmallImdb();
  workload::QueryBuilder qb(&db->catalog, "quotes");
  int k = qb.AddRelation("keyword", "k");
  qb.FilterEq(k, "keyword", common::Value::Str("it's a trap"))
      .OutputMin(k, "keyword", "m");
  auto built = qb.Build();
  const std::string rendered = RenderSql(*built);
  EXPECT_NE(rendered.find("'it''s a trap'"), std::string::npos) << rendered;
  auto parsed = ParseStatement(rendered, db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->query->filters.size(), 1u);
  EXPECT_EQ(parsed->query->filters[0].value,
            common::Value::Str("it's a trap"));
}

}  // namespace
}  // namespace reopt::sql
