#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/planner.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::sql {
namespace {

using testing::SmallImdb;

// ---- Lexer ------------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("SELECT MIN(t.title) FROM title AS t WHERE "
                    "t.production_year >= 2000;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().type, TokenType::kKeyword);
  EXPECT_EQ(tokens->front().text, "SELECT");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Lex("'oops");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("SELECT -- this is a comment\n 1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 2u);
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("<= >= <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");  // != normalizes
}

// ---- Parser / binder ----------------------------------------------------------

TEST(ParserTest, ParsesJobStyleQuery) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "SELECT MIN(k.keyword) AS movie_keyword, MIN(t.title) AS hero_movie "
      "FROM keyword AS k, movie_keyword AS mk, title AS t "
      "WHERE k.keyword IN ('superhero', 'sequel') "
      "  AND t.production_year > 2000 "
      "  AND mk.keyword_id = k.id AND t.id = mk.movie_id;",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const plan::QuerySpec& q = *parsed->query;
  EXPECT_EQ(q.num_relations(), 3);
  EXPECT_EQ(q.joins.size(), 2u);
  EXPECT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.outputs.size(), 2u);
  EXPECT_TRUE(parsed->create_table_name.empty());
}

TEST(ParserTest, SqlMatchesQueryBuilderOn6d) {
  // The SQL rendering of the 6d analogue must parse back into an
  // equivalent spec (same counts, same estimated behavior).
  imdb::ImdbDatabase* db = SmallImdb();
  auto built = workload::MakeQuery6d(db->catalog);
  auto parsed = ParseStatement(
      "SELECT MIN(k.keyword), MIN(n.name), MIN(t.title) "
      "FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, "
      "     name AS n, title AS t "
      "WHERE k.keyword IN ('superhero','sequel','second-part',"
      "'marvel-comics','based-on-comic','tv-special','fight','violence') "
      "  AND n.name LIKE '%Downey%' AND t.production_year > 2000 "
      "  AND mk.keyword_id = k.id AND t.id = mk.movie_id "
      "  AND t.id = ci.movie_id AND ci.person_id = n.id;",
      db->catalog, "6d_sql");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->query->num_relations(), built->num_relations());
  EXPECT_EQ(parsed->query->joins.size(), built->joins.size());
  EXPECT_EQ(parsed->query->filters.size(), built->filters.size());
}

TEST(ParserTest, SqlQueryExecutesLikeBuiltQuery) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto run = [&](const plan::QuerySpec& q) {
    auto ctx = optimizer::QueryContext::Bind(&q, &db->catalog, &db->stats);
    EXPECT_TRUE(ctx.ok());
    optimizer::EstimatorModel model(ctx.value().get());
    optimizer::CostParams params;
    optimizer::Planner planner(ctx.value().get(), &model, params);
    auto planned = planner.Plan();
    EXPECT_TRUE(planned.ok());
    exec::Executor executor(&db->catalog, &db->stats, params);
    auto result = executor.Execute(q, planned->root.get());
    EXPECT_TRUE(result.ok());
    return std::move(result.value());
  };
  auto parsed = ParseStatement(
      "SELECT MIN(t.title) AS m FROM title AS t, movie_keyword AS mk, "
      "keyword AS k WHERE t.id = mk.movie_id AND mk.keyword_id = k.id "
      "AND k.keyword = 'superhero';",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  workload::QueryBuilder qb(&db->catalog, "same");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int k = qb.AddRelation("keyword", "k");
  qb.Join(t, "id", mk, "movie_id")
      .Join(mk, "keyword_id", k, "id")
      .FilterEq(k, "keyword", common::Value::Str("superhero"))
      .OutputMin(t, "title", "m");
  auto built = qb.Build();

  exec::QueryResult a = run(*parsed->query);
  exec::QueryResult b = run(*built);
  EXPECT_EQ(a.raw_rows, b.raw_rows);
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
  EXPECT_EQ(a.aggregates[0], b.aggregates[0]);
}

TEST(ParserTest, CreateTempTableAsSelect) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "CREATE TEMP TABLE temp1 AS "
      "SELECT mk.movie_id FROM keyword AS k, movie_keyword AS mk "
      "WHERE mk.keyword_id = k.id "
      "AND k.keyword = 'character-name-in-title';",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->create_table_name, "temp1");
  EXPECT_TRUE(parsed->temporary);
  EXPECT_EQ(parsed->query->num_relations(), 2);
  EXPECT_FALSE(parsed->query->outputs[0].min_agg);
}

TEST(ParserTest, BetweenAndIsNull) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "SELECT MIN(t.title) FROM title AS t "
      "WHERE t.production_year BETWEEN 1990 AND 2000 "
      "AND t.title IS NOT NULL;",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->query->filters.size(), 2u);
  EXPECT_EQ(parsed->query->filters[0].kind,
            plan::ScanPredicate::Kind::kBetween);
  EXPECT_EQ(parsed->query->filters[1].kind,
            plan::ScanPredicate::Kind::kIsNotNull);
}

TEST(ParserTest, ImplicitAliasAndBareAlias) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "SELECT MIN(title.title) FROM title WHERE title.id = 3;",
      db->catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto parsed2 = ParseStatement(
      "SELECT MIN(t.title) FROM title t WHERE t.id = 3;", db->catalog);
  ASSERT_TRUE(parsed2.ok()) << parsed2.status().ToString();
}

struct BadSql {
  const char* sql;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSql> {};

TEST_P(ParserErrorTest, Rejected) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(GetParam().sql, db->catalog);
  EXPECT_FALSE(parsed.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserErrorTest,
    ::testing::Values(
        BadSql{"FROM title t", "missing SELECT"},
        BadSql{"SELECT MIN(t.title) FROM nope t", "unknown table"},
        BadSql{"SELECT MIN(t.nope) FROM title t", "unknown column"},
        BadSql{"SELECT MIN(x.title) FROM title t", "unknown alias"},
        BadSql{"SELECT MIN(t.title) FROM title t, title t",
               "duplicate alias"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.id <",
               "dangling operator"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.id = 1 garbage",
               "trailing tokens"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.id < t.kind_id",
               "non-equi join"},
        BadSql{"SELECT MIN(t.title) FROM title t WHERE t.id = t.kind_id",
               "self comparison"}));

TEST(ParserTest, ParsedQueryBindsIntoContext) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto parsed = ParseStatement(
      "SELECT MIN(n.name) FROM name AS n, cast_info AS ci "
      "WHERE n.id = ci.person_id AND n.gender = 'f';",
      db->catalog);
  ASSERT_TRUE(parsed.ok());
  auto ctx = optimizer::QueryContext::Bind(parsed->query.get(), &db->catalog,
                                           &db->stats);
  EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
}

}  // namespace
}  // namespace reopt::sql
