#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/fail_point.h"
#include "common/rng.h"
#include "common/scope_guard.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace reopt::common {
namespace {

// ---- Status / Result -----------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such table: foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: no such table: foo");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r.value());
  EXPECT_EQ(*v, 7);
}

// ---- Value ---------------------------------------------------------------

TEST(ValueTest, NullOrdering) {
  Value null;
  EXPECT_TRUE(null.is_null());
  EXPECT_LT(null, Value::Int(0));
  EXPECT_LT(null, Value::Str(""));
  EXPECT_EQ(null, Value::Null_());
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_GT(Value::Int(-1), Value::Int(-2));
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_LT(Value::Int(1), Value::Real(1.5));
  EXPECT_EQ(Value::Int(2), Value::Real(2.0));
  EXPECT_GT(Value::Real(2.5), Value::Int(2));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc"), Value::Str("abd"));
  EXPECT_EQ(Value::Str("x"), Value::Str("x"));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Null_().ToString(), "NULL");
}

TEST(ValueTest, HashDistinguishesTypesAndValues) {
  std::set<uint64_t> hashes;
  hashes.insert(Value::Int(1).Hash());
  hashes.insert(Value::Int(2).Hash());
  hashes.insert(Value::Str("1").Hash());
  hashes.insert(Value::Null_().Hash());
  EXPECT_EQ(hashes.size(), 4u);
}

TEST(ValueTest, HashIsStable) {
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_EQ(Value::Int(99).Hash(), Value::Int(99).Hash());
}

// ---- Rng -----------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(9);
  std::map<int64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(13);
  int top10 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) <= 10) ++top10;
  }
  // Under theta=1, the top 10 of 1000 ranks carry ~39% of the mass.
  EXPECT_GT(static_cast<double>(top10) / n, 0.3);
}

TEST(ZipfTest, SampleRangeRespected) {
  ZipfSampler zipf(5, 1.2);
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 5);
  }
}

// ---- String utilities ------------------------------------------------------

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC dE"), "abc de");
}

TEST(StringUtilTest, SplitAndJoin) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StringUtilTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("hi", "hello"));
  EXPECT_TRUE(EndsWith("movie_id", "_id"));
  EXPECT_TRUE(Contains("abcdef", "cde"));
  EXPECT_FALSE(Contains("abc", "x"));
}

TEST(StringUtilTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrPrintf("%05d", 42), "00042");
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool match;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.text, c.pattern), c.match)
      << c.text << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, LikeMatchTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true}, LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true}, LikeCase{"hello", "h_lo", false},
        LikeCase{"hello", "%", true}, LikeCase{"", "%", true},
        LikeCase{"", "", true}, LikeCase{"", "_", false},
        LikeCase{"abc", "%a%b%c%", true}, LikeCase{"abc", "%c%a%", false},
        LikeCase{"Downey Robert Jr", "%Downey%Robert%", true},
        LikeCase{"Robert Downey Jr", "%Downey%Robert%", false},
        LikeCase{"xx", "x", false}, LikeCase{"x", "xx", false},
        LikeCase{"mississippi", "%ss%ss%", true},
        LikeCase{"mississippi", "m%pi", true},
        LikeCase{"aaa", "a%a", true},
        // Regression: a literal '%' / '_' in the TEXT must not swallow the
        // pattern's wildcard at the same position (the matcher used to try
        // the literal-character match first, so "a%b" LIKE 'a%' failed).
        LikeCase{"a%b", "a%", true}, LikeCase{"%%", "%", true},
        LikeCase{"%", "%", true}, LikeCase{"a%b", "a%b", true},
        LikeCase{"a_b", "a%", true}, LikeCase{"%a%", "%a%", true},
        LikeCase{"50% off", "50%", true}, LikeCase{"50% off", "%off", true},
        LikeCase{"a%b", "_%b", true}, LikeCase{"%", "_", true},
        LikeCase{"a%b", "b%", false}));

// ---- Simulated time ---------------------------------------------------------

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(CostUnitsToSeconds(kCostUnitsPerSecond), 1.0);
  EXPECT_DOUBLE_EQ(CostUnitsToMillis(kCostUnitsPerSecond), 1000.0);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(FormatSimSeconds(2.5), "2.50 s");
  EXPECT_EQ(FormatSimSeconds(0.1234), "123.4 ms");
  EXPECT_EQ(FormatSimSeconds(0.00005), "50.0 us");
}

// ---- ScopeGuard -------------------------------------------------------------

TEST(ScopeGuardTest, RunsOnNormalExit) {
  int runs = 0;
  {
    ScopeGuard guard([&runs] { ++runs; });
  }
  EXPECT_EQ(runs, 1);
}

TEST(ScopeGuardTest, RunsOnEarlyReturn) {
  int runs = 0;
  auto fn = [&runs](bool early) {
    ScopeGuard guard([&runs] { ++runs; });
    if (early) return 1;
    return 2;
  };
  EXPECT_EQ(fn(true), 1);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(fn(false), 2);
  EXPECT_EQ(runs, 2);
}

TEST(ScopeGuardTest, RunsDuringStackUnwinding) {
  int runs = 0;
  try {
    ScopeGuard guard([&runs] { ++runs; });
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(runs, 1);
}

TEST(ScopeGuardTest, DismissCancels) {
  int runs = 0;
  {
    ScopeGuard guard([&runs] { ++runs; });
    guard.Dismiss();
  }
  EXPECT_EQ(runs, 0);
}

TEST(ScopeGuardTest, MoveTransfersOwnership) {
  int runs = 0;
  {
    auto guard = MakeScopeGuard([&runs] { ++runs; });
    ScopeGuard moved = std::move(guard);
  }
  EXPECT_EQ(runs, 1);
}

TEST(ScopeGuardTest, MovedFromGuardDoesNotFire) {
  int runs = 0;
  {
    auto guard = MakeScopeGuard([&runs] { ++runs; });
    {
      ScopeGuard inner = std::move(guard);
    }
    EXPECT_EQ(runs, 1);  // fired exactly once, at the *inner* scope's end
  }
  EXPECT_EQ(runs, 1);  // the moved-from original stays disarmed
}

TEST(ScopeGuardTest, DismissThenExitNeverFires) {
  int runs = 0;
  auto fn = [&runs](bool commit) {
    auto guard = MakeScopeGuard([&runs] { ++runs; });
    if (commit) guard.Dismiss();  // commit path keeps the resource
  };
  fn(true);
  EXPECT_EQ(runs, 0);
  fn(false);
  EXPECT_EQ(runs, 1);  // rollback path fires
}

// ---- CHECK / UNREACHABLE death tests ---------------------------------------
// The macros abort with a recognizable diagnostic; these pin both the
// "fires on violation" and the "silent on success" halves of the contract.

TEST(CheckDeathTest, CheckAbortsWithDiagnostic) {
  EXPECT_DEATH(REOPT_CHECK(1 == 2), "CHECK failed: 1 == 2");
}

TEST(CheckDeathTest, CheckMsgIncludesMessage) {
  EXPECT_DEATH(REOPT_CHECK_MSG(false, "the invariant text"),
               "the invariant text");
}

TEST(CheckDeathTest, UnreachableAborts) {
  EXPECT_DEATH(REOPT_UNREACHABLE("impossible branch"),
               "UNREACHABLE: impossible branch");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  REOPT_CHECK(1 == 1);
  REOPT_CHECK_MSG(true, "never printed");
}

TEST(CheckDeathTest, CheckEvaluatesConditionOnce) {
  int evaluations = 0;
  REOPT_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_DEATH((void)r.value(), "value\\(\\) on error Result");
}

TEST(ResultDeathTest, ResultFromOkStatusAborts) {
  EXPECT_DEATH(Result<int> r((Status::OK())),
               "Result constructed from OK status");
}

// ---- Status-macro propagation ----------------------------------------------

namespace {

Status FailWhen(bool fail) {
  if (fail) return Status::InvalidArgument("asked to fail");
  return Status::OK();
}

Result<int> IntOrError(bool fail, int v) {
  if (fail) return Status::OutOfRange("no value");
  return v;
}

Status UsesReturnIfError(bool fail, int* ran) {
  REOPT_RETURN_IF_ERROR(FailWhen(fail));
  ++*ran;
  return Status::OK();
}

Result<int> UsesAssignOrReturn(bool fail) {
  REOPT_ASSIGN_OR_RETURN(int v, IntOrError(fail, 7));
  return v + 1;
}

// The PR-6 regression: two REOPT_ASSIGN_OR_RETURN on consecutive lines in
// ONE scope. Before the double-__LINE__ expansion fix both expanded to the
// same `result_line` temporary and failed to compile / shadowed. Keep the
// two macro uses on adjacent lines — that is the shape that broke.
Result<int> TwoAssignsInOneScope(bool fail_second) {
  REOPT_ASSIGN_OR_RETURN(int a, IntOrError(false, 10));
  REOPT_ASSIGN_OR_RETURN(int b, IntOrError(fail_second, 20));
  return a + b;
}

}  // namespace

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  int ran = 0;
  Status failed = UsesReturnIfError(true, &ran);
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ran, 0);  // code after the macro must not run on error
  EXPECT_TRUE(UsesReturnIfError(false, &ran).ok());
  EXPECT_EQ(ran, 1);
}

TEST(StatusMacroTest, AssignOrReturnBindsValue) {
  Result<int> ok = UsesAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesError) {
  Result<int> failed = UsesAssignOrReturn(true);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(failed.status().message(), "no value");
}

TEST(StatusMacroTest, TwoAssignsInOneScopeCompileAndCompose) {
  Result<int> ok = TwoAssignsInOneScope(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 30);
  Result<int> failed = TwoAssignsInOneScope(true);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kOutOfRange);
}

// ---- Lifecycle status codes -------------------------------------------------

TEST(StatusTest, LifecycleCodesNameAndClassify) {
  EXPECT_EQ(Status::Cancelled("c").ToString(), "Cancelled: c");
  EXPECT_EQ(Status::DeadlineExceeded("d").ToString(), "DeadlineExceeded: d");
  EXPECT_EQ(Status::ResourceExhausted("r").ToString(),
            "ResourceExhausted: r");
  EXPECT_EQ(Status::Unavailable("u").ToString(), "Unavailable: u");
  // Only Unavailable is transient: a deadline or a cancellation is a
  // deliberate outcome that retrying would defeat.
  EXPECT_TRUE(IsTransient(StatusCode::kUnavailable));
  EXPECT_FALSE(IsTransient(StatusCode::kCancelled));
  EXPECT_FALSE(IsTransient(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsTransient(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsTransient(StatusCode::kInternal));
}

// ---- Fail points (common/fail_point.h) --------------------------------------

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailPointTest, DisarmedRegistryNeverTriggers) {
  EXPECT_EQ(failpoint::ActiveCount(), 0);
  EXPECT_FALSE(failpoint::Triggered("common_test.none"));
  EXPECT_EQ(failpoint::Hits("common_test.none"), 0);
  EXPECT_TRUE(failpoint::ArmedNames().empty());
}

TEST_F(FailPointTest, AlwaysOnceAndNthSemantics) {
  ASSERT_TRUE(failpoint::Arm("common_test.p", "always").ok());
  EXPECT_TRUE(failpoint::Triggered("common_test.p"));
  EXPECT_TRUE(failpoint::Triggered("common_test.p"));
  EXPECT_EQ(failpoint::Hits("common_test.p"), 2);
  EXPECT_EQ(failpoint::Triggers("common_test.p"), 2);

  ASSERT_TRUE(failpoint::Arm("common_test.p", "once").ok());  // re-arm resets
  EXPECT_TRUE(failpoint::Triggered("common_test.p"));
  EXPECT_FALSE(failpoint::Triggered("common_test.p"));
  EXPECT_EQ(failpoint::Triggers("common_test.p"), 1);

  ASSERT_TRUE(failpoint::Arm("common_test.p", "nth:3").ok());
  EXPECT_FALSE(failpoint::Triggered("common_test.p"));
  EXPECT_FALSE(failpoint::Triggered("common_test.p"));
  EXPECT_TRUE(failpoint::Triggered("common_test.p"));   // exactly the 3rd hit
  EXPECT_FALSE(failpoint::Triggered("common_test.p"));  // and never again
}

TEST_F(FailPointTest, ProbabilityIsSeededAndDeterministic) {
  ASSERT_TRUE(failpoint::Arm("common_test.p", "prob:1.0:7").ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(failpoint::Triggered("common_test.p"));
  }
  ASSERT_TRUE(failpoint::Arm("common_test.p", "prob:0.0:7").ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(failpoint::Triggered("common_test.p"));
  }
  // A fractional probability replays identically under the same seed.
  std::vector<bool> first, second;
  ASSERT_TRUE(failpoint::Arm("common_test.p", "prob:0.5:11").ok());
  for (int i = 0; i < 64; ++i) {
    first.push_back(failpoint::Triggered("common_test.p"));
  }
  ASSERT_TRUE(failpoint::Arm("common_test.p", "prob:0.5:11").ok());
  for (int i = 0; i < 64; ++i) {
    second.push_back(failpoint::Triggered("common_test.p"));
  }
  EXPECT_EQ(first, second);
}

TEST_F(FailPointTest, ArmOffDisarmsAndDisarmAllClears) {
  ASSERT_TRUE(failpoint::Arm("common_test.a", "always").ok());
  ASSERT_TRUE(failpoint::Arm("common_test.b", "always").ok());
  EXPECT_EQ(failpoint::ArmedNames().size(), 2u);
  ASSERT_TRUE(failpoint::Arm("common_test.a", "off").ok());
  EXPECT_FALSE(failpoint::Triggered("common_test.a"));
  EXPECT_EQ(failpoint::ArmedNames().size(), 1u);
  failpoint::DisarmAll();
  EXPECT_EQ(failpoint::ActiveCount(), 0);
  EXPECT_FALSE(failpoint::Triggered("common_test.b"));
}

TEST_F(FailPointTest, SpecListArmsManyAndBadSpecsAreRejected) {
  ASSERT_TRUE(
      failpoint::ArmFromSpecList("common_test.a=once,common_test.b=nth:2")
          .ok());
  EXPECT_EQ(failpoint::ArmedNames().size(), 2u);
  EXPECT_EQ(failpoint::Arm("common_test.c", "nonsense").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(failpoint::Arm("common_test.c", "nth:0").ok());
  EXPECT_FALSE(failpoint::Arm("common_test.c", "prob:1.5:3").ok());
  EXPECT_FALSE(failpoint::Arm("common_test.c", "prob:abc:3").ok());
  EXPECT_FALSE(failpoint::ArmFromSpecList("no-equals-sign").ok());
}

TEST_F(FailPointTest, InjectFaultMacroReturnsUnavailable) {
  ASSERT_TRUE(failpoint::Arm("common_test.macro", "once").ok());
  auto body = []() -> Status {
    REOPT_INJECT_FAULT("common_test.macro");
    return Status::OK();
  };
  Status first = body();
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(body().ok());  // `once` is spent
}

}  // namespace
}  // namespace reopt::common
