// EXPLAIN / EXPLAIN ANALYZE-style rendering: the annotated plan is the
// interface the paper's re-optimization simulation reads, so its contents
// (estimates before execution, actuals after) are load-bearing.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "tests/test_util.h"
#include "workload/job_like.h"

namespace reopt::plan {
namespace {

using testing::SmallImdb;

struct PlannedQuery {
  std::unique_ptr<QuerySpec> query;
  std::unique_ptr<optimizer::QueryContext> ctx;
  PlanNodePtr root;
};

PlannedQuery Plan6d() {
  PlannedQuery out;
  imdb::ImdbDatabase* db = SmallImdb();
  out.query = workload::MakeQuery6d(db->catalog);
  out.ctx = std::move(optimizer::QueryContext::Bind(out.query.get(),
                                                    &db->catalog, &db->stats)
                          .value());
  optimizer::EstimatorModel model(out.ctx.get());
  optimizer::CostParams params;
  optimizer::Planner planner(out.ctx.get(), &model, params);
  out.root = std::move(planner.Plan()->root);
  return out;
}

TEST(ExplainTest, BeforeExecutionShowsEstimatesOnly) {
  PlannedQuery p = Plan6d();
  std::string text = ExplainPlan(*p.root, *p.query);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("est_rows="), std::string::npos);
  EXPECT_EQ(text.find("actual_rows="), std::string::npos);
  // Every relation's table name appears.
  for (const RelationRef& rel : p.query->relations) {
    EXPECT_NE(text.find(rel.table_name), std::string::npos)
        << rel.table_name;
  }
}

TEST(ExplainTest, AfterExecutionShowsActuals) {
  imdb::ImdbDatabase* db = SmallImdb();
  PlannedQuery p = Plan6d();
  optimizer::CostParams params;
  exec::Executor executor(&db->catalog, &db->stats, params);
  ASSERT_TRUE(executor.Execute(*p.query, p.root.get()).ok());
  std::string text = ExplainPlan(*p.root, *p.query);
  EXPECT_NE(text.find("actual_rows="), std::string::npos);
  EXPECT_NE(text.find("charged="), std::string::npos);
}

TEST(ExplainTest, CloneResetsActuals) {
  imdb::ImdbDatabase* db = SmallImdb();
  PlannedQuery p = Plan6d();
  optimizer::CostParams params;
  exec::Executor executor(&db->catalog, &db->stats, params);
  ASSERT_TRUE(executor.Execute(*p.query, p.root.get()).ok());
  PlanNodePtr copy = ClonePlan(*p.root);
  copy->PostOrder([](PlanNode* node) {
    EXPECT_DOUBLE_EQ(node->actual_rows, -1.0);
    EXPECT_DOUBLE_EQ(node->charged_cost, 0.0);
  });
  // Estimates survive the clone.
  EXPECT_DOUBLE_EQ(copy->est_rows, p.root->est_rows);
}

TEST(ExplainTest, IndentationReflectsTreeDepth) {
  PlannedQuery p = Plan6d();
  std::string text = ExplainPlan(*p.root, *p.query);
  // The root line starts at column 0; at least one child line is indented.
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text[0], ' ');
  EXPECT_NE(text.find("\n  "), std::string::npos);
}

}  // namespace
}  // namespace reopt::plan
