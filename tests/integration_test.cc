// End-to-end integration: runs a slice of the full workload through every
// configuration the paper compares (default estimator, perfect-(n),
// re-optimization) and checks the paper's qualitative claims hold on the
// test-scale database.
#include <gtest/gtest.h>

#include "reopt/query_runner.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/runner.h"

namespace reopt::workload {
namespace {

using reoptimizer::ModelSpec;
using reoptimizer::ReoptOptions;
using testing::MediumImdb;

struct Env {
  imdb::ImdbDatabase* db;
  std::unique_ptr<JobLikeWorkload> workload;
  std::unique_ptr<WorkloadRunner> runner;
};

Env* SharedEnv() {
  static Env* env = [] {
    auto* e = new Env();
    e->db = MediumImdb();
    e->workload = BuildJobLikeWorkload(e->db->catalog);
    e->runner = std::make_unique<WorkloadRunner>(e->db);
    return e;
  }();
  return env;
}

ReoptOptions ReoptOn(double threshold = 32.0) {
  ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = threshold;
  return r;
}

// A fixed slice across sizes, including the signature trap queries.
std::vector<const plan::QuerySpec*> Slice() {
  Env* env = SharedEnv();
  std::vector<const plan::QuerySpec*> out;
  for (const char* name : {"6d", "18a", "fig6", "16b", "25c", "30a"}) {
    out.push_back(env->workload->Find(name));
  }
  int generated = 0;
  for (const auto& q : env->workload->queries) {
    if (q->name[0] == 'q' && generated < 14) {
      out.push_back(q.get());
      ++generated;
    }
  }
  return out;
}

TEST(IntegrationTest, AllConfigurationsAgreeOnResults) {
  Env* env = SharedEnv();
  for (const plan::QuerySpec* q : Slice()) {
    auto est = env->runner->RunOne(q, ModelSpec::Estimator(), {});
    auto reopt = env->runner->RunOne(q, ModelSpec::Estimator(), ReoptOn());
    auto perfect = env->runner->RunOne(
        q, ModelSpec::PerfectN(q->num_relations()), {});
    ASSERT_TRUE(est.ok()) << q->name << est.status().ToString();
    ASSERT_TRUE(reopt.ok()) << q->name;
    ASSERT_TRUE(perfect.ok()) << q->name;
    EXPECT_EQ(est->raw_rows, reopt->raw_rows) << q->name;
    EXPECT_EQ(est->raw_rows, perfect->raw_rows) << q->name;
    for (size_t i = 0; i < est->aggregates.size(); ++i) {
      EXPECT_EQ(est->aggregates[i], reopt->aggregates[i]) << q->name;
      EXPECT_EQ(est->aggregates[i], perfect->aggregates[i]) << q->name;
    }
  }
}

TEST(IntegrationTest, PerfectBeatsDefaultOnSliceTotal) {
  Env* env = SharedEnv();
  double est_total = 0.0;
  double perfect_total = 0.0;
  for (const plan::QuerySpec* q : Slice()) {
    auto est = env->runner->RunOne(q, ModelSpec::Estimator(), {});
    auto perfect = env->runner->RunOne(
        q, ModelSpec::PerfectN(q->num_relations()), {});
    ASSERT_TRUE(est.ok());
    ASSERT_TRUE(perfect.ok());
    est_total += est->exec_seconds();
    perfect_total += perfect->exec_seconds();
  }
  // The paper: perfect estimates halve the workload execution time. On the
  // slice (trap-heavy) the gap is at least 1.5x.
  EXPECT_GT(est_total, 1.5 * perfect_total);
}

TEST(IntegrationTest, ReoptRecoversMostOfPerfectBenefit) {
  Env* env = SharedEnv();
  double est_total = 0.0;
  double reopt_total = 0.0;
  double perfect_total = 0.0;
  for (const plan::QuerySpec* q : Slice()) {
    auto est = env->runner->RunOne(q, ModelSpec::Estimator(), {});
    auto re = env->runner->RunOne(q, ModelSpec::Estimator(), ReoptOn());
    auto perfect = env->runner->RunOne(
        q, ModelSpec::PerfectN(q->num_relations()), {});
    ASSERT_TRUE(est.ok());
    ASSERT_TRUE(re.ok());
    ASSERT_TRUE(perfect.ok());
    est_total += est->exec_seconds();
    reopt_total += re->exec_seconds();
    perfect_total += perfect->exec_seconds();
  }
  EXPECT_LT(reopt_total, est_total);
  // "Achieving more than half of the benefit of perfect estimates."
  double benefit_perfect = est_total - perfect_total;
  double benefit_reopt = est_total - reopt_total;
  EXPECT_GT(benefit_reopt, 0.5 * benefit_perfect);
}

TEST(IntegrationTest, PerfectFourRecoversMostOfPerfectOnTraps) {
  // Section III: improvements materialize around perfect-(4).
  Env* env = SharedEnv();
  const plan::QuerySpec* q = env->workload->Find("18a");
  auto p0 = env->runner->RunOne(q, ModelSpec::Estimator(), {});
  auto p4 = env->runner->RunOne(q, ModelSpec::PerfectN(4), {});
  auto pall =
      env->runner->RunOne(q, ModelSpec::PerfectN(q->num_relations()), {});
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p4.ok());
  ASSERT_TRUE(pall.ok());
  // Tolerance: even a full oracle estimates index-NLJ probe matches
  // through edge selectivities, so charged costs can invert by a few
  // percent between adjacent horizons.
  EXPECT_LE(pall->exec_seconds(), p4->exec_seconds() * 1.10);
  EXPECT_LE(p4->exec_seconds(), p0->exec_seconds() * 1.10);
}

TEST(IntegrationTest, RunAllProducesOneRecordPerQuery) {
  // Uses a private runner over the small DB to keep runtime bounded.
  imdb::ImdbDatabase* db = testing::SmallImdb();
  auto workload = BuildJobLikeWorkload(db->catalog);
  WorkloadRunner runner(db);
  auto result = runner.RunAll(*workload, ModelSpec::Estimator(), {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records.size(), 113u);
  EXPECT_GT(result->TotalExecSeconds(), 0.0);
  EXPECT_GT(result->TotalPlanSeconds(), 0.0);
  for (const QueryRecord& r : result->records) {
    EXPECT_GT(r.exec_seconds, 0.0) << r.name;
    EXPECT_GE(r.num_tables, 4) << r.name;
    EXPECT_LE(r.num_tables, 17) << r.name;
  }
  EXPECT_NE(result->Find("6d"), nullptr);
}

TEST(IntegrationTest, ReoptNeverCatastrophicallyWorseOnSlice) {
  // Sec. V-D: individual regressions are possible (short queries), but on
  // the trap slice no query should blow up by more than ~3x in execution.
  Env* env = SharedEnv();
  for (const plan::QuerySpec* q : Slice()) {
    auto est = env->runner->RunOne(q, ModelSpec::Estimator(), {});
    auto re = env->runner->RunOne(q, ModelSpec::Estimator(), ReoptOn());
    ASSERT_TRUE(est.ok());
    ASSERT_TRUE(re.ok());
    EXPECT_LT(re->exec_seconds(), 3.0 * est->exec_seconds() + 0.05)
        << q->name;
  }
}

}  // namespace
}  // namespace reopt::workload
