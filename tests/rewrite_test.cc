#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/planner.h"
#include "reopt/rewrite.h"

#include "common/string_util.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::reoptimizer {
namespace {

using testing::SmallImdb;

// fig6 relation order: ci=0, cn=1, k=2, mc=3, mk=4, n=5, t=6.
constexpr int kCi = 0, kK = 2, kMk = 4, kN = 5, kT = 6;

TEST(ColumnsToMaterializeTest, CrossingEdgesAndOutputs) {
  auto query = workload::MakeQueryFig6(SmallImdb()->catalog);
  // Materialize {k, mk}: the crossing edge is mk.movie_id = t.id, plus no
  // outputs live in the subset -> exactly one column (mk.movie_id).
  plan::RelSet subset = plan::RelSet::Single(kK).With(kMk);
  std::vector<plan::ColumnRef> cols = ColumnsToMaterialize(*query, subset);
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_EQ(cols[0].rel, kMk);

  // Materialize {ci, n}: crossing edge ci.movie_id = t.id plus the output
  // MIN(n.name).
  subset = plan::RelSet::Single(kCi).With(kN);
  cols = ColumnsToMaterialize(*query, subset);
  ASSERT_EQ(cols.size(), 2u);
}

TEST(ColumnsToMaterializeTest, Deduplicates) {
  // In 6d, t.id joins both mk.movie_id and ci.movie_id; materializing
  // {t, mk} must emit t.id once even though two crossing edges use it...
  auto query = workload::MakeQuery6d(SmallImdb()->catalog);
  // 6d rels: ci=0, k=1, mk=2, n=3, t=4. Subset {mk, t}: crossing edges are
  // mk.keyword_id = k.id and t.id = ci.movie_id; output t.title.
  plan::RelSet subset = plan::RelSet::Single(2).With(4);
  std::vector<plan::ColumnRef> cols = ColumnsToMaterialize(*query, subset);
  // mk.keyword_id, t.id, t.title (k.keyword/n.name outputs are outside).
  EXPECT_EQ(cols.size(), 3u);
}

TEST(RewriteTest, StructureAfterRewrite) {
  auto query = workload::MakeQueryFig6(SmallImdb()->catalog);
  plan::RelSet subset = plan::RelSet::Single(kK).With(kMk);
  auto cols = ColumnsToMaterialize(*query, subset);
  auto rewritten = RewriteWithTemp(*query, subset, "tempX", cols, 0);

  EXPECT_EQ(rewritten->num_relations(), query->num_relations() - 1);
  EXPECT_EQ(rewritten->relations.back().table_name, "tempX");
  // Filters on k are consumed; the n LIKE filter survives.
  EXPECT_EQ(rewritten->filters.size(), query->filters.size() - 1);
  // Edges: k-mk dropped; mk-t remapped to temp; others intact.
  EXPECT_EQ(rewritten->joins.size(), query->joins.size() - 1);
  // All outputs preserved.
  EXPECT_EQ(rewritten->outputs.size(), query->outputs.size());
  EXPECT_EQ(rewritten->name, "fig6+r0");
}

TEST(RewriteTest, RewrittenQueryGivesSameAnswer) {
  // Materialize a sub-join for real, rewrite, execute both versions and
  // compare aggregates — the core correctness property of the Fig. 6
  // transformation.
  imdb::ImdbDatabase* db = SmallImdb();
  auto query = workload::MakeQueryFig6(db->catalog);
  optimizer::CostParams params;

  auto run = [&](const plan::QuerySpec& q) {
    auto ctx = optimizer::QueryContext::Bind(&q, &db->catalog, &db->stats);
    EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
    optimizer::EstimatorModel model(ctx.value().get());
    optimizer::Planner planner(ctx.value().get(), &model, params);
    auto planned = planner.Plan();
    EXPECT_TRUE(planned.ok());
    exec::Executor executor(&db->catalog, &db->stats, params);
    auto result = executor.Execute(q, planned->root.get());
    EXPECT_TRUE(result.ok());
    return std::move(result.value());
  };

  exec::QueryResult original = run(*query);

  // Materialize {k, mk} by hand.
  plan::RelSet subset = plan::RelSet::Single(kK).With(kMk);
  auto cols = ColumnsToMaterialize(*query, subset);
  auto ctx = optimizer::QueryContext::Bind(query.get(), &db->catalog,
                                           &db->stats);
  ASSERT_TRUE(ctx.ok());
  optimizer::EstimatorModel model(ctx.value().get());
  optimizer::Planner planner(ctx.value().get(), &model, params);
  auto planned = planner.Plan();
  ASSERT_TRUE(planned.ok());
  // Find (or build) a plan for the subset: plan the sub-join standalone by
  // wrapping a fresh DP over just those relations via a TempWrite of the
  // executor-materialized intermediate.
  auto write = std::make_unique<plan::PlanNode>();
  write->op = plan::PlanOp::kTempWrite;
  write->rels = subset;
  write->temp_table_name = "rewrite_equiv_temp";
  write->temp_columns = cols;
  {
    // Hand-built sub-plan: scan k, scan mk, hash join.
    auto k_scan = std::make_unique<plan::PlanNode>();
    k_scan->op = plan::PlanOp::kSeqScan;
    k_scan->rels = plan::RelSet::Single(kK);
    k_scan->scan_rel = kK;
    k_scan->filters = query->FiltersFor(kK);
    auto mk_scan = std::make_unique<plan::PlanNode>();
    mk_scan->op = plan::PlanOp::kSeqScan;
    mk_scan->rels = plan::RelSet::Single(kMk);
    mk_scan->scan_rel = kMk;
    mk_scan->filters = query->FiltersFor(kMk);
    auto join = std::make_unique<plan::PlanNode>();
    join->op = plan::PlanOp::kHashJoin;
    join->rels = subset;
    join->edges = query->JoinsBetween(plan::RelSet::Single(kK),
                                      plan::RelSet::Single(kMk));
    join->left = std::move(k_scan);
    join->right = std::move(mk_scan);
    write->left = std::move(join);
  }
  exec::Executor executor(&db->catalog, &db->stats, params);
  ASSERT_TRUE(executor.Execute(*query, write.get()).ok());

  auto rewritten = RewriteWithTemp(*query, subset, "rewrite_equiv_temp",
                                   cols, 0);
  exec::QueryResult after = run(*rewritten);

  EXPECT_EQ(original.raw_rows, after.raw_rows);
  ASSERT_EQ(original.aggregates.size(), after.aggregates.size());
  for (size_t i = 0; i < original.aggregates.size(); ++i) {
    EXPECT_EQ(original.aggregates[i], after.aggregates[i]) << i;
  }

  ASSERT_TRUE(db->catalog.DropTable("rewrite_equiv_temp").ok());
  db->stats.Remove("rewrite_equiv_temp");
}

// Creates an empty temp table whose schema matches the materialized
// columns (enough for binding the rewritten spec).
void StubTempTable(imdb::ImdbDatabase* db, const plan::QuerySpec& query,
                   const std::vector<plan::ColumnRef>& cols,
                   const std::string& name) {
  storage::Schema schema;
  for (size_t i = 0; i < cols.size(); ++i) {
    const storage::Table* src =
        db->catalog.FindTable(
            query.relations[static_cast<size_t>(cols[i].rel)].table_name);
    schema.AddColumn({common::StrPrintf("c%d", static_cast<int>(i)),
                      src->schema().column(cols[i].col).type});
  }
  ASSERT_TRUE(db->catalog.CreateTable(name, std::move(schema), true).ok());
}

TEST(RewriteTest, ChainedRewrites) {
  // Two successive rewrites (as the re-optimization loop performs) keep
  // the spec well-formed and bindable.
  imdb::ImdbDatabase* db = SmallImdb();
  auto query = workload::MakeQuery6d(db->catalog);
  // 6d rels: ci=0, k=1, mk=2, n=3, t=4.
  plan::RelSet first = plan::RelSet::Single(1).With(2);  // k + mk
  auto cols1 = ColumnsToMaterialize(*query, first);
  // mk.movie_id (crossing edge) + k.keyword (output).
  ASSERT_EQ(cols1.size(), 2u);
  StubTempTable(db, *query, cols1, "chain_temp_1");
  auto once = RewriteWithTemp(*query, first, "chain_temp_1", cols1, 0);
  auto bound1 =
      optimizer::QueryContext::Bind(once.get(), &db->catalog, &db->stats);
  ASSERT_TRUE(bound1.ok()) << bound1.status().ToString();

  // Second rewrite: fold {ci, n} (survivors of round 1: ci=0, n=1, t=2,
  // temp=3).
  plan::RelSet second = plan::RelSet::Single(0).With(1);
  auto cols2 = ColumnsToMaterialize(*once, second);
  StubTempTable(db, *once, cols2, "chain_temp_2");
  auto twice = RewriteWithTemp(*once, second, "chain_temp_2", cols2, 1);
  EXPECT_EQ(twice->num_relations(), 3);  // t, temp1, temp2
  EXPECT_EQ(twice->name, "6d+r0+r1");
  auto bound2 =
      optimizer::QueryContext::Bind(twice.get(), &db->catalog, &db->stats);
  EXPECT_TRUE(bound2.ok()) << bound2.status().ToString();
  db->catalog.DropTempTables();
}

}  // namespace
}  // namespace reopt::reoptimizer
