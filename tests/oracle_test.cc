// True-cardinality oracle tests: the factorized (Yannakakis-style) counter
// must agree exactly with materialized hash-join counting on every
// connected subset of real workload queries, and the fallback must handle
// cyclic graphs.
#include <gtest/gtest.h>

#include "optimizer/true_cardinality.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::optimizer {
namespace {

using testing::SmallImdb;

std::unique_ptr<QueryContext> Bind(const plan::QuerySpec* spec) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto ctx = QueryContext::Bind(spec, &db->catalog, &db->stats);
  EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
  return std::move(ctx.value());
}

TEST(OracleTest, SingleRelationIsFilteredCount) {
  auto query = workload::MakeQuery6d(SmallImdb()->catalog);
  auto ctx = Bind(query.get());
  TrueCardinalityOracle oracle(ctx.get());
  // keyword (rel 1) has the 8-hot-keyword IN filter.
  EXPECT_DOUBLE_EQ(oracle.True(plan::RelSet::Single(1)), 8.0);
}

TEST(OracleTest, FactorizedAgreesWithMaterializedOnAllConnectedSubsets) {
  auto query = workload::MakeQuery6d(SmallImdb()->catalog);
  auto ctx = Bind(query.get());
  TrueCardinalityOracle oracle(ctx.get());
  for (plan::RelSet set : ctx->graph().ConnectedSubsets()) {
    double fast = oracle.True(set);
    double slow = exec::ExactJoinCount(*query, set, ctx->bound());
    EXPECT_DOUBLE_EQ(fast, slow) << set.ToString();
  }
}

TEST(OracleTest, FactorizedAgreesOn18a) {
  auto query = workload::MakeQuery18a(SmallImdb()->catalog);
  auto ctx = Bind(query.get());
  TrueCardinalityOracle oracle(ctx.get());
  int checked = 0;
  for (plan::RelSet set : ctx->graph().ConnectedSubsets()) {
    if (set.count() > 5) continue;  // keep the materialized check fast
    EXPECT_DOUBLE_EQ(oracle.True(set),
                     exec::ExactJoinCount(*query, set, ctx->bound()))
        << set.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(OracleTest, CyclicSubsetFallsBackToMaterialization) {
  // Build a triangle: t - mk (movie), t - ci (movie), ci - mk (movie) —
  // the transitive-closure edge creates a cycle as in the paper's Fig. 6.
  imdb::ImdbDatabase* db = SmallImdb();
  workload::QueryBuilder qb(&db->catalog, "cycle");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int ci = qb.AddRelation("cast_info", "ci");
  qb.Join(t, "id", mk, "movie_id")
      .Join(t, "id", ci, "movie_id")
      .Join(ci, "movie_id", mk, "movie_id")
      .FilterCompare(t, "production_year", plan::CompareOp::kGt,
                     common::Value::Int(2010))
      .OutputMin(t, "title", "m");
  auto query = qb.Build();
  auto ctx = Bind(query.get());
  TrueCardinalityOracle oracle(ctx.get());
  plan::RelSet all = query->AllRelations();
  // The cyclic count must equal the tree count with the redundant edge
  // dropped (transitively implied equality).
  workload::QueryBuilder qb2(&db->catalog, "tree");
  int t2 = qb2.AddRelation("title", "t");
  int mk2 = qb2.AddRelation("movie_keyword", "mk");
  int ci2 = qb2.AddRelation("cast_info", "ci");
  qb2.Join(t2, "id", mk2, "movie_id")
      .Join(t2, "id", ci2, "movie_id")
      .FilterCompare(t2, "production_year", plan::CompareOp::kGt,
                     common::Value::Int(2010))
      .OutputMin(t2, "title", "m");
  auto tree_query = qb2.Build();
  auto tree_ctx = Bind(tree_query.get());
  TrueCardinalityOracle tree_oracle(tree_ctx.get());
  EXPECT_DOUBLE_EQ(oracle.True(all), tree_oracle.True(all));
}

TEST(OracleTest, MemoizationCountsComputations) {
  auto query = workload::MakeQuery6d(SmallImdb()->catalog);
  auto ctx = Bind(query.get());
  TrueCardinalityOracle oracle(ctx.get());
  plan::RelSet set(0b00110);
  oracle.True(set);
  int64_t computed = oracle.num_computed();
  oracle.True(set);
  oracle.True(set);
  EXPECT_EQ(oracle.num_computed(), computed);  // cache hits
  EXPECT_EQ(oracle.cache_size(), computed);
}

TEST(OracleTest, ReleaseScratchKeepsCounts) {
  auto query = workload::MakeQuery6d(SmallImdb()->catalog);
  auto ctx = Bind(query.get());
  TrueCardinalityOracle oracle(ctx.get());
  plan::RelSet all = query->AllRelations();
  double before = oracle.True(all);
  oracle.ReleaseScratch();
  int64_t computed = oracle.num_computed();
  EXPECT_DOUBLE_EQ(oracle.True(all), before);
  EXPECT_EQ(oracle.num_computed(), computed);  // still cached
}

TEST(OracleTest, PreloadAvoidsComputation) {
  auto query = workload::MakeQuery6d(SmallImdb()->catalog);
  auto ctx = Bind(query.get());
  TrueCardinalityOracle a(ctx.get());
  plan::RelSet all = query->AllRelations();
  double truth = a.True(all);

  TrueCardinalityOracle b(ctx.get());
  b.Preload(a.counts());
  EXPECT_DOUBLE_EQ(b.True(all), truth);
  EXPECT_EQ(b.num_computed(), 0);
}

TEST(OracleTest, MonotoneUnderExtraJoins) {
  // Adding an n:1 FK join (movie_keyword -> keyword, no filter) must not
  // change the count; adding a filtered relation can only shrink it.
  auto query = workload::MakeQueryFig6(SmallImdb()->catalog);
  auto ctx = Bind(query.get());
  TrueCardinalityOracle oracle(ctx.get());
  // rel indexes in fig6: ci=0, cn=1, k=2, mc=3, mk=4, n=5, t=6.
  double t_mk = oracle.True(plan::RelSet::Single(6).With(4));
  double t_mk_k = oracle.True(plan::RelSet::Single(6).With(4).With(2));
  EXPECT_LE(t_mk_k, t_mk);  // k is filtered to one keyword
  double t_ci = oracle.True(plan::RelSet::Single(6).With(0));
  double ci_alone = oracle.True(plan::RelSet::Single(0));
  EXPECT_DOUBLE_EQ(t_ci, ci_alone);  // every cast row has a movie
}

}  // namespace
}  // namespace reopt::optimizer
