// Validates the generated database: scale behaviour, indexing, and —
// critically — that the skew and join-crossing correlations the paper's
// failure modes depend on are actually present in the data.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/string_util.h"
#include "imdb/imdb.h"
#include "tests/test_util.h"

namespace reopt::imdb {
namespace {

using testing::SmallImdb;

TEST(ImdbTest, AllTwentyOneTablesPresent) {
  ImdbDatabase* db = SmallImdb();
  EXPECT_EQ(db->catalog.TableNames().size(), 21u);
  for (const char* name :
       {"title", "name", "cast_info", "movie_keyword", "keyword",
        "company_name", "company_type", "movie_companies", "movie_info",
        "movie_info_idx", "info_type", "kind_type", "link_type",
        "movie_link", "role_type", "aka_name", "aka_title", "person_info",
        "complete_cast", "comp_cast_type", "char_name"}) {
    EXPECT_NE(db->catalog.FindTable(name), nullptr) << name;
  }
}

TEST(ImdbTest, ScaleControlsRowCounts) {
  ImdbOptions small_opts;
  small_opts.scale = 0.02;
  auto tiny = BuildImdbDatabase(small_opts);
  ImdbDatabase* small = SmallImdb();  // scale 0.05
  double ratio =
      static_cast<double>(small->catalog.FindTable("title")->num_rows()) /
      static_cast<double>(tiny->catalog.FindTable("title")->num_rows());
  EXPECT_NEAR(ratio, 0.05 / 0.02, 0.5);
}

TEST(ImdbTest, DeterministicForSeed) {
  ImdbOptions options;
  options.scale = 0.02;
  auto a = BuildImdbDatabase(options);
  auto b = BuildImdbDatabase(options);
  const storage::Table* ta = a->catalog.FindTable("cast_info");
  const storage::Table* tb = b->catalog.FindTable("cast_info");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (common::RowIdx r = 0; r < std::min<int64_t>(ta->num_rows(), 200);
       ++r) {
    EXPECT_EQ(ta->GetRow(r), tb->GetRow(r));
  }
}

TEST(ImdbTest, EveryIdAndFkColumnIndexed) {
  ImdbDatabase* db = SmallImdb();
  for (const std::string& name : db->catalog.TableNames()) {
    const storage::Table* t = db->catalog.FindTable(name);
    for (common::ColumnIdx c = 0; c < t->num_columns(); ++c) {
      const storage::ColumnDef& def = t->schema().column(c);
      if (def.type == common::DataType::kInt64 &&
          (def.name == "id" || common::EndsWith(def.name, "_id"))) {
        EXPECT_NE(t->FindIndex(c), nullptr) << name << "." << def.name;
      }
    }
  }
}

TEST(ImdbTest, StatsAnalyzedForEveryTable) {
  ImdbDatabase* db = SmallImdb();
  for (const std::string& name : db->catalog.TableNames()) {
    const stats::TableStats* ts = db->stats.Find(name);
    ASSERT_NE(ts, nullptr) << name;
    EXPECT_DOUBLE_EQ(ts->row_count,
                     static_cast<double>(
                         db->catalog.FindTable(name)->num_rows()));
  }
}

TEST(ImdbTest, HotKeywordsAreFrequentInMovieKeyword) {
  // The 6d trap: hot keywords must be far more frequent than uniform.
  ImdbDatabase* db = SmallImdb();
  const storage::Table* mk = db->catalog.FindTable("movie_keyword");
  const storage::Table* kw = db->catalog.FindTable("keyword");
  common::ColumnIdx kw_id = mk->schema().FindColumn("keyword_id");
  int num_hot = db->options.num_hot_keywords;
  int64_t hot_rows = 0;
  for (common::RowIdx r = 0; r < mk->num_rows(); ++r) {
    if (mk->column(kw_id).GetInt(r) <= num_hot) ++hot_rows;
  }
  double hot_frac =
      static_cast<double>(hot_rows) / static_cast<double>(mk->num_rows());
  double uniform_frac = static_cast<double>(num_hot) /
                        static_cast<double>(kw->num_rows());
  // The ratio grows with the keyword-table size (uniform_frac shrinks);
  // 5x suffices at test scale, the benchmark scale sees >50x.
  EXPECT_GT(hot_frac, 3.0 * uniform_frac)
      << "hot keywords must defeat the uniformity assumption";
}

TEST(ImdbTest, BlockbustersClusterAfter2000) {
  // The join-crossing correlation: class-2 titles are post-2000.
  ImdbDatabase* db = SmallImdb();
  const storage::Table* title = db->catalog.FindTable("title");
  common::ColumnIdx year = title->schema().FindColumn("production_year");
  int64_t class2_total = 0;
  int64_t class2_post2000 = 0;
  for (common::RowIdx r = 0; r < title->num_rows(); ++r) {
    if (db->title_class[static_cast<size_t>(r + 1)] == 2) {
      ++class2_total;
      if (title->column(year).GetInt(r) >= 2000) ++class2_post2000;
    }
  }
  ASSERT_GT(class2_total, 0);
  EXPECT_EQ(class2_total, class2_post2000);
}

TEST(ImdbTest, BlockbustersHaveLargerCasts) {
  ImdbDatabase* db = SmallImdb();
  const storage::Table* ci = db->catalog.FindTable("cast_info");
  common::ColumnIdx movie = ci->schema().FindColumn("movie_id");
  std::map<int, int64_t> rows_by_class;
  std::map<int, int64_t> titles_by_class;
  for (size_t i = 1; i < db->title_class.size(); ++i) {
    ++titles_by_class[db->title_class[i]];
  }
  for (common::RowIdx r = 0; r < ci->num_rows(); ++r) {
    ++rows_by_class[db->title_class[static_cast<size_t>(
        ci->column(movie).GetInt(r))]];
  }
  double avg0 = static_cast<double>(rows_by_class[0]) /
                static_cast<double>(titles_by_class[0]);
  double avg2 = static_cast<double>(rows_by_class[2]) /
                static_cast<double>(titles_by_class[2]);
  EXPECT_GT(avg2, 3.0 * avg0);
}

TEST(ImdbTest, ProducerNotesCorrelateWithClass) {
  ImdbDatabase* db = SmallImdb();
  const storage::Table* ci = db->catalog.FindTable("cast_info");
  common::ColumnIdx movie = ci->schema().FindColumn("movie_id");
  common::ColumnIdx note = ci->schema().FindColumn("note");
  std::map<int, int64_t> producers;
  std::map<int, int64_t> total;
  for (common::RowIdx r = 0; r < ci->num_rows(); ++r) {
    int klass =
        db->title_class[static_cast<size_t>(ci->column(movie).GetInt(r))];
    ++total[klass];
    if (ci->column(note).GetString(r) == "(producer)") ++producers[klass];
  }
  double rate0 = static_cast<double>(producers[0]) /
                 static_cast<double>(total[0]);
  double rate2 = static_cast<double>(producers[2]) /
                 static_cast<double>(total[2]);
  EXPECT_GT(rate2, 2.0 * rate0);
}

TEST(ImdbTest, BudgetRowsCorrelateWithClass) {
  ImdbDatabase* db = SmallImdb();
  const storage::Table* mi = db->catalog.FindTable("movie_info_idx");
  common::ColumnIdx movie = mi->schema().FindColumn("movie_id");
  common::ColumnIdx itype = mi->schema().FindColumn("info_type_id");
  std::map<int, int64_t> budget;
  std::map<int, int64_t> titles_by_class;
  for (size_t i = 1; i < db->title_class.size(); ++i) {
    ++titles_by_class[db->title_class[i]];
  }
  for (common::RowIdx r = 0; r < mi->num_rows(); ++r) {
    if (mi->column(itype).GetInt(r) == 1) {  // budget
      ++budget[db->title_class[static_cast<size_t>(
          mi->column(movie).GetInt(r))]];
    }
  }
  double rate0 = static_cast<double>(budget[0]) /
                 static_cast<double>(titles_by_class[0]);
  double rate2 = static_cast<double>(budget[2]) /
                 static_cast<double>(titles_by_class[2]);
  EXPECT_GT(rate2, 5.0 * rate0);
}

TEST(ImdbTest, StarTokenPersonsSkewIntoCastInfo) {
  // The join-crossing correlation behind the name-LIKE traps: persons
  // whose names carry a star token are rare in `name` but heavily
  // over-represented in `cast_info` (stars appear in many movies).
  ImdbDatabase* db = SmallImdb();
  const storage::Table* name = db->catalog.FindTable("name");
  common::ColumnIdx col = name->schema().FindColumn("name");
  auto has_token = [&](common::RowIdx r) {
    const std::string& n = name->column(col).GetString(r);
    for (const std::string& tok : StarNameTokens()) {
      if (common::Contains(n, tok)) return true;
    }
    return false;
  };
  int64_t name_hits = 0;
  for (common::RowIdx r = 0; r < name->num_rows(); ++r) {
    if (has_token(r)) ++name_hits;
  }
  double name_frac = static_cast<double>(name_hits) /
                     static_cast<double>(name->num_rows());
  const storage::Table* ci = db->catalog.FindTable("cast_info");
  common::ColumnIdx person = ci->schema().FindColumn("person_id");
  int64_t ci_hits = 0;
  for (common::RowIdx r = 0; r < ci->num_rows(); ++r) {
    if (has_token(ci->column(person).GetInt(r) - 1)) ++ci_hits;
  }
  double ci_frac = static_cast<double>(ci_hits) /
                   static_cast<double>(ci->num_rows());
  EXPECT_GT(name_frac, 0.0);
  EXPECT_GT(ci_frac, 5.0 * name_frac);
}

// ---- Nasdaq (paper Tables IV/V) --------------------------------------------

TEST(NasdaqTest, ZipfVolumeConcentration) {
  NasdaqOptions options;
  options.num_companies = 4000;
  options.num_trades = 100000;
  auto db = BuildNasdaqDatabase(options);
  const storage::Table* trades = db->catalog.FindTable("trades");
  common::ColumnIdx cid = trades->schema().FindColumn("company_id");
  int64_t top40 = 0;
  for (common::RowIdx r = 0; r < trades->num_rows(); ++r) {
    if (trades->column(cid).GetInt(r) <= 40) ++top40;
  }
  double frac = static_cast<double>(top40) /
                static_cast<double>(trades->num_rows());
  // "40 stocks out of 4000 account for 50% of the total volume."
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.7);
}

TEST(NasdaqTest, SymbolsUniqueAndIndexed) {
  NasdaqOptions options;
  options.num_companies = 500;
  options.num_trades = 5000;
  auto db = BuildNasdaqDatabase(options);
  const storage::Table* company = db->catalog.FindTable("company");
  EXPECT_EQ(company->num_rows(), 500);
  EXPECT_NE(company->FindIndex(0), nullptr);  // id
  const storage::Table* trades = db->catalog.FindTable("trades");
  EXPECT_NE(
      trades->FindIndex(trades->schema().FindColumn("company_id")),
      nullptr);
}

}  // namespace
}  // namespace reopt::imdb
