// The service layer's differential and behavioral suite (tsan-labelled):
//
//  * Determinism: replaying all 113 workload queries through a concurrent
//    SqlServer — at 1/4/16 client sessions and 1/2 intra-query threads —
//    produces per-query replies byte-identical (aggregates, raw_rows,
//    plan/exec cost units, materialization count) to a serial
//    single-session run of the same SQL text.
//  * Admission control: blocking Submit applies backpressure without
//    deadlock when submissions exceed the worker budget; TrySubmit sheds
//    load when the bounded queue is full.
//  * Error isolation: malformed SQL, unknown tables and CREATE TEMP TABLE
//    name collisions fail their own statement with a clean Status while
//    the server keeps serving sibling sessions.
//  * Lifecycle: dependent statements (SELECT over a session's own CREATE
//    TEMP TABLE) work once the creating ticket completes; Shutdown drops
//    server-created temp tables and their statistics and is idempotent.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "reopt/query_runner.h"
#include "service/sql_server.h"
#include "sql/engine.h"
#include "tests/test_util.h"
#include "workload/job_like.h"

namespace reopt::service {
namespace {

using testing::SmallImdb;

// One statement's expected reply, from the serial single-session pass.
struct Expected {
  std::vector<common::Value> aggregates;
  int64_t raw_rows = 0;
  double plan_cost_units = 0.0;
  double exec_cost_units = 0.0;
  int num_materializations = 0;
};

reoptimizer::ReoptOptions ReoptOn() {
  reoptimizer::ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = 32.0;
  return r;
}

// The workload rendered as SQL text plus its serial single-session
// reference replies, computed once per binary (the expensive part of the
// differential suite).
struct Workbench {
  std::vector<std::string> names;
  std::vector<std::string> sql;
  std::vector<Expected> expected;
};

const Workbench& SharedWorkbench() {
  static Workbench* bench = [] {
    auto* wb = new Workbench();
    imdb::ImdbDatabase* db = SmallImdb();
    auto workload = workload::BuildJobLikeWorkload(db->catalog);
    reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                    optimizer::CostParams{});
    runner.set_temp_namespace("svc_ref");
    for (const auto& q : workload->queries) {
      wb->names.push_back(q->name);
      wb->sql.push_back(sql::RenderSql(*q));
      auto parsed = sql::ParseStatement(wb->sql.back(), db->catalog, "ref");
      EXPECT_TRUE(parsed.ok()) << q->name << ": "
                               << parsed.status().ToString();
      auto session = reoptimizer::QuerySession::Create(
          parsed->query.get(), &db->catalog, &db->stats);
      EXPECT_TRUE(session.ok()) << session.status().ToString();
      auto run = runner.Run(session->get(), reoptimizer::ModelSpec::Estimator(),
                            ReoptOn());
      EXPECT_TRUE(run.ok()) << q->name << ": " << run.status().ToString();
      wb->expected.push_back(Expected{run->aggregates, run->raw_rows,
                                      run->plan_cost_units,
                                      run->exec_cost_units,
                                      run->num_materializations});
    }
    return wb;
  }();
  return *bench;
}

void ExpectReplyMatches(const QueryReply& reply, const Expected& want,
                        const std::string& name) {
  ASSERT_TRUE(reply.status.ok()) << name << ": "
                                 << reply.status.ToString();
  EXPECT_EQ(reply.outcome.aggregates, want.aggregates) << name;
  EXPECT_EQ(reply.outcome.raw_rows, want.raw_rows) << name;
  EXPECT_EQ(reply.outcome.plan_cost_units, want.plan_cost_units) << name;
  EXPECT_EQ(reply.outcome.exec_cost_units, want.exec_cost_units) << name;
  EXPECT_EQ(reply.outcome.num_materializations, want.num_materializations)
      << name;
}

// ---- Differential suite -----------------------------------------------------

struct DiffConfig {
  int sessions;
  int workers;
  int intra_threads;
};

class ServiceDifferentialTest : public ::testing::TestWithParam<DiffConfig> {};

TEST_P(ServiceDifferentialTest, RepliesMatchSerialSingleSessionRun) {
  const DiffConfig config = GetParam();
  const Workbench& wb = SharedWorkbench();
  imdb::ImdbDatabase* db = SmallImdb();

  ServerOptions options;
  options.session_workers = config.workers;
  options.intra_query_threads = config.intra_threads;
  options.reopt = ReoptOn();
  SqlServer server(&db->catalog, &db->stats, options);

  // Deal the 113 statements round-robin to the client sessions; each client
  // thread submits its share and waits for its tickets.
  std::vector<SqlSession*> sessions;
  for (int s = 0; s < config.sessions; ++s) {
    sessions.push_back(server.OpenSession());
  }
  std::vector<std::vector<size_t>> shares(sessions.size());
  for (size_t qi = 0; qi < wb.sql.size(); ++qi) {
    shares[qi % shares.size()].push_back(qi);
  }
  std::vector<std::vector<TicketPtr>> tickets(sessions.size());
  std::vector<std::thread> clients;
  for (size_t c = 0; c < sessions.size(); ++c) {
    clients.emplace_back([&, c] {
      for (size_t qi : shares[c]) {
        tickets[c].push_back(sessions[c]->Submit(wb.sql[qi]));
      }
      for (const TicketPtr& t : tickets[c]) t->Wait();
    });
  }
  for (std::thread& t : clients) t.join();
  server.Shutdown();

  for (size_t c = 0; c < sessions.size(); ++c) {
    for (size_t i = 0; i < shares[c].size(); ++i) {
      const size_t qi = shares[c][i];
      ExpectReplyMatches(tickets[c][i]->Wait(), wb.expected[qi],
                         wb.names[qi]);
    }
  }
  ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(wb.sql.size()));
  EXPECT_EQ(stats.failed, 0);
}

INSTANTIATE_TEST_SUITE_P(
    SessionsByIntraThreads, ServiceDifferentialTest,
    ::testing::Values(DiffConfig{1, 1, 1}, DiffConfig{1, 1, 2},
                      DiffConfig{4, 4, 1}, DiffConfig{4, 4, 2},
                      DiffConfig{16, 8, 1}, DiffConfig{16, 8, 2}),
    [](const ::testing::TestParamInfo<DiffConfig>& info) {
      return "s" + std::to_string(info.param.sessions) + "w" +
             std::to_string(info.param.workers) + "i" +
             std::to_string(info.param.intra_threads);
    });

// The statement cache earns hits when many sessions send the same text,
// and cached replies stay identical to uncached ones.
TEST(ServiceCacheTest, RepeatedStatementHitsSharedCacheWithSameReply) {
  const Workbench& wb = SharedWorkbench();
  imdb::ImdbDatabase* db = SmallImdb();
  ServerOptions options;
  options.session_workers = 4;
  options.reopt = ReoptOn();
  SqlServer server(&db->catalog, &db->stats, options);

  constexpr int kClients = 8;
  const size_t qi = 0;
  std::vector<TicketPtr> tickets;
  for (int c = 0; c < kClients; ++c) {
    tickets.push_back(server.OpenSession()->Submit(wb.sql[qi]));
  }
  for (const TicketPtr& t : tickets) {
    ExpectReplyMatches(t->Wait(), wb.expected[qi], wb.names[qi]);
  }
  server.Shutdown();
  ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.completed, kClients);
  // All but the cache-filling execution(s) hit; with racing workers the
  // exact count varies, but at least one hit must occur for 8 identical
  // statements.
  EXPECT_GE(stats.cache_hits, 1);
}

// ---- Admission control ------------------------------------------------------

TEST(ServiceAdmissionTest, SubmitBackpressureNeverDeadlocks) {
  const Workbench& wb = SharedWorkbench();
  imdb::ImdbDatabase* db = SmallImdb();
  ServerOptions options;
  options.session_workers = 2;
  options.queue_capacity = 2;  // far fewer slots than in-flight submissions
  SqlServer server(&db->catalog, &db->stats, options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> ok_replies{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      SqlSession* session = server.OpenSession("c" + std::to_string(c));
      for (int i = 0; i < kPerThread; ++i) {
        // Keep the ticket alive past Wait(): the reply reference points
        // into it.
        TicketPtr ticket =
            session->Submit(wb.sql[(c * kPerThread + i) % wb.sql.size()]);
        if (ticket->Wait().status.ok()) ok_replies.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Shutdown();
  EXPECT_EQ(ok_replies.load(), kThreads * kPerThread);
  EXPECT_EQ(server.Snapshot().completed, kThreads * kPerThread);
}

TEST(ServiceAdmissionTest, TrySubmitShedsLoadWhenQueueIsFull) {
  const Workbench& wb = SharedWorkbench();
  imdb::ImdbDatabase* db = SmallImdb();
  ServerOptions options;
  options.session_workers = 1;
  options.queue_capacity = 1;
  options.reopt = ReoptOn();  // keeps the single worker busy longer
  SqlServer server(&db->catalog, &db->stats, options);
  SqlSession* filler = server.OpenSession("filler");
  SqlSession* shed = server.OpenSession("shed");

  // A background client keeps the worker and the 1-slot queue saturated
  // with blocking submissions.
  std::vector<TicketPtr> accepted;
  std::thread background([&] {
    for (int i = 0; i < 30; ++i) {
      accepted.push_back(filler->Submit(wb.sql[i % wb.sql.size()]));
    }
  });
  // While the worker executes, the queue is full; TrySubmit must reject
  // rather than block. (Between two executions the slot is briefly free, so
  // a few attempts may be accepted — one rejection is what admission
  // control owes us.)
  bool saw_rejection = false;
  std::vector<TicketPtr> shed_accepted;
  for (int i = 0; i < 1000 && !saw_rejection; ++i) {
    TicketPtr t = shed->TrySubmit(wb.sql[0]);
    if (t == nullptr) {
      saw_rejection = true;
    } else {
      shed_accepted.push_back(std::move(t));
    }
  }
  background.join();
  server.Shutdown();
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(server.Snapshot().rejected, 1);
  for (const TicketPtr& t : accepted) EXPECT_TRUE(t->Wait().status.ok());
  for (const TicketPtr& t : shed_accepted) {
    EXPECT_TRUE(t->Wait().status.ok());
  }
}

// ---- Error isolation --------------------------------------------------------

TEST(ServiceErrorTest, BadStatementsFailAloneWhileSiblingsKeepServing) {
  const Workbench& wb = SharedWorkbench();
  imdb::ImdbDatabase* db = SmallImdb();
  ServerOptions options;
  options.session_workers = 2;
  options.reopt = ReoptOn();  // match the reference replies
  SqlServer server(&db->catalog, &db->stats, options);
  SqlSession* good = server.OpenSession("good");
  SqlSession* bad = server.OpenSession("bad");

  const std::string create =
      "CREATE TEMP TABLE svc_err_dup AS SELECT k.id FROM keyword AS k "
      "WHERE k.keyword = 'superhero';";
  std::vector<TicketPtr> good_tickets;
  std::vector<TicketPtr> bad_tickets;
  for (int round = 0; round < 4; ++round) {
    good_tickets.push_back(good->Submit(wb.sql[round]));
    bad_tickets.push_back(bad->Submit("SELECT FROM WHERE;"));
    bad_tickets.push_back(bad->Submit(
        "SELECT MIN(x.title) FROM no_such_table AS x;"));
    bad_tickets.push_back(bad->Submit("'unterminated"));
    bad_tickets.push_back(bad->Submit(create));  // collides after round 0
  }
  for (const TicketPtr& t : bad_tickets) t->Wait();
  for (size_t i = 0; i < good_tickets.size(); ++i) {
    ExpectReplyMatches(good_tickets[i]->Wait(), wb.expected[i], wb.names[i]);
  }
  // Exactly one CREATE succeeded; every other bad statement failed with a
  // clean status (never a crash), 3 parse errors + 3 collisions per round
  // after the first.
  int bad_failures = 0;
  int collisions = 0;
  for (const TicketPtr& t : bad_tickets) {
    const QueryReply& reply = t->Wait();
    if (!reply.status.ok()) {
      ++bad_failures;
      if (reply.status.code() == common::StatusCode::kAlreadyExists) {
        ++collisions;
      }
    }
  }
  EXPECT_EQ(bad_failures, 4 * 4 - 1);  // all but the winning CREATE
  EXPECT_EQ(collisions, 3);
  // The server is still healthy after the error storm.
  EXPECT_TRUE(good->Execute(wb.sql[5]).status.ok());
  server.Shutdown();
  ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.failed, 4 * 4 - 1);
  EXPECT_EQ(db->catalog.FindTable("svc_err_dup"), nullptr)
      << "Shutdown must drop server-created temp tables";
}

// ---- Lifecycle --------------------------------------------------------------

TEST(ServiceLifecycleTest, DependentStatementsAndShutdownCleanup) {
  imdb::ImdbDatabase* db = SmallImdb();
  ServerOptions options;
  options.session_workers = 2;
  SqlServer server(&db->catalog, &db->stats, options);
  SqlSession* session = server.OpenSession("dep");

  // CREATE, wait for it, then SELECT over the new table: the dependent
  // statement flow a client drives by waiting on the earlier ticket.
  const QueryReply& created = session->Execute(
      "CREATE TEMP TABLE svc_dep AS SELECT mk.movie_id FROM keyword AS k, "
      "movie_keyword AS mk WHERE mk.keyword_id = k.id AND "
      "k.keyword = 'superhero';");
  ASSERT_TRUE(created.status.ok()) << created.status.ToString();
  EXPECT_EQ(created.outcome.created_table, "svc_dep");
  ASSERT_NE(db->catalog.FindTable("svc_dep"), nullptr);

  const QueryReply& selected = session->Execute(
      "SELECT MIN(t.title) FROM title AS t, svc_dep AS d "
      "WHERE t.id = d.mk_movie_id;");
  ASSERT_TRUE(selected.status.ok()) << selected.status.ToString();

  // The same SELECT through a plain serial engine must agree.
  sql::Engine engine(&db->catalog, &db->stats);
  auto direct = engine.Execute(
      "SELECT MIN(t.title) FROM title AS t, svc_dep AS d "
      "WHERE t.id = d.mk_movie_id;");
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(selected.outcome.aggregates, direct->aggregates);
  EXPECT_EQ(selected.outcome.raw_rows, direct->raw_rows);

  server.Shutdown();
  server.Shutdown();  // idempotent
  EXPECT_EQ(db->catalog.FindTable("svc_dep"), nullptr);
  EXPECT_EQ(db->stats.Find("svc_dep"), nullptr);

  // Post-shutdown submissions fail cleanly instead of hanging.
  TicketPtr after = session->Submit("SELECT MIN(t.title) FROM title AS t;");
  ASSERT_NE(after, nullptr);
  EXPECT_FALSE(after->Wait().status.ok());
  EXPECT_EQ(session->TrySubmit("SELECT MIN(t.title) FROM title AS t;"),
            nullptr);
}

// ---- Timed waits, cancellation, lifecycle counters --------------------------

TEST(ServiceLifecycleTest, WaitForTimesOutOnUnfulfilledTicket) {
  Ticket ticket;
  EXPECT_EQ(ticket.WaitFor(0.0), nullptr);
  EXPECT_EQ(ticket.WaitFor(0.01), nullptr);
  EXPECT_FALSE(ticket.done());
}

TEST(ServiceLifecycleTest, WaitForDeliversTheSameReplyAsWait) {
  const Workbench& wb = SharedWorkbench();
  imdb::ImdbDatabase* db = SmallImdb();
  ServerOptions options;
  options.session_workers = 1;
  options.reopt = ReoptOn();
  SqlServer server(&db->catalog, &db->stats, options);
  TicketPtr ticket = server.OpenSession()->Submit(wb.sql[0]);
  const QueryReply& reply = ticket->Wait();
  ExpectReplyMatches(reply, wb.expected[0], wb.names[0]);
  // A completed ticket answers WaitFor instantly, even at zero timeout,
  // with the same stable reply address.
  EXPECT_EQ(ticket->WaitFor(0.0), &reply);
  server.Shutdown();
}

TEST(ServiceLifecycleTest, CancelAfterCompletionIsANoOp) {
  const Workbench& wb = SharedWorkbench();
  imdb::ImdbDatabase* db = SmallImdb();
  ServerOptions options;
  options.session_workers = 1;
  options.reopt = ReoptOn();
  SqlServer server(&db->catalog, &db->stats, options);
  TicketPtr ticket = server.OpenSession()->Submit(wb.sql[0]);
  const QueryReply& reply = ticket->Wait();
  ticket->Cancel();  // best-effort: the statement already completed
  ExpectReplyMatches(reply, wb.expected[0], wb.names[0]);
  server.Shutdown();
  EXPECT_EQ(server.Snapshot().cancelled, 0);
}

TEST(ServiceLifecycleTest, LifecycleCountersAccountExactly) {
  const Workbench& wb = SharedWorkbench();
  imdb::ImdbDatabase* db = SmallImdb();
  ServerOptions options;
  options.session_workers = 1;
  options.reopt = ReoptOn();
  SqlServer server(&db->catalog, &db->stats, options);
  SqlSession* session = server.OpenSession();

  // An already-expired per-Submit deadline fails fast with
  // DeadlineExceeded (never executed, worker freed)...
  TicketPtr timed_out = session->Submit(wb.sql[0], /*timeout=*/1e-9);
  EXPECT_EQ(timed_out->Wait().status.code(),
            common::StatusCode::kDeadlineExceeded)
      << timed_out->Wait().status.ToString();
  // ...and the next statement on the same server still completes.
  ExpectReplyMatches(session->Submit(wb.sql[0])->Wait(), wb.expected[0],
                     wb.names[0]);
  server.Shutdown();

  ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_EQ(stats.retried, 0);
  EXPECT_EQ(stats.degraded, 0);
}

}  // namespace
}  // namespace reopt::service
