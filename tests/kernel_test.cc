// Tests for the relational evaluation kernel, including property tests that
// validate the hash join against a naive quadratic reference on random
// inputs drawn from the synthetic IMDB data.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/kernel.h"
#include "plan/join_graph.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::exec {
namespace {

using common::Value;
using testing::NaiveJoin;
using testing::SmallImdb;

// ---- EvalPredicate ----------------------------------------------------------

class PredicateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = SmallImdb()->catalog.FindTable("title");
    ASSERT_NE(table_, nullptr);
    year_col_ = table_->schema().FindColumn("production_year");
    title_col_ = table_->schema().FindColumn("title");
  }

  plan::ScanPredicate Compare(plan::CompareOp op, int64_t year) {
    plan::ScanPredicate p;
    p.column = plan::ColumnRef{0, year_col_, ""};
    p.kind = plan::ScanPredicate::Kind::kCompare;
    p.op = op;
    p.value = Value::Int(year);
    return p;
  }

  const storage::Table* table_;
  common::ColumnIdx year_col_;
  common::ColumnIdx title_col_;
};

TEST_F(PredicateFixture, CompareOpsAgreeWithDirectEvaluation) {
  auto count_matching = [&](const plan::ScanPredicate& p) {
    int64_t count = 0;
    for (common::RowIdx r = 0; r < table_->num_rows(); ++r) {
      if (EvalPredicate(p, *table_, r)) ++count;
    }
    return count;
  };
  int64_t lt = count_matching(Compare(plan::CompareOp::kLt, 2000));
  int64_t ge = count_matching(Compare(plan::CompareOp::kGe, 2000));
  EXPECT_EQ(lt + ge, table_->num_rows());
  int64_t eq = count_matching(Compare(plan::CompareOp::kEq, 2000));
  int64_t le = count_matching(Compare(plan::CompareOp::kLe, 2000));
  EXPECT_EQ(le, lt + eq);
  int64_t ne = count_matching(Compare(plan::CompareOp::kNe, 2000));
  EXPECT_EQ(ne + eq, table_->num_rows());
}

TEST_F(PredicateFixture, BetweenMatchesConjunction) {
  plan::ScanPredicate between;
  between.column = plan::ColumnRef{0, year_col_, ""};
  between.kind = plan::ScanPredicate::Kind::kBetween;
  between.value = Value::Int(1990);
  between.value2 = Value::Int(2005);
  for (common::RowIdx r = 0; r < std::min<int64_t>(table_->num_rows(), 500);
       ++r) {
    bool direct = EvalPredicate(Compare(plan::CompareOp::kGe, 1990), *table_,
                                r) &&
                  EvalPredicate(Compare(plan::CompareOp::kLe, 2005), *table_,
                                r);
    EXPECT_EQ(EvalPredicate(between, *table_, r), direct);
  }
}

TEST_F(PredicateFixture, InMatchesAnyEquality) {
  plan::ScanPredicate in;
  in.column = plan::ColumnRef{0, year_col_, ""};
  in.kind = plan::ScanPredicate::Kind::kIn;
  in.in_list = {Value::Int(2001), Value::Int(2002)};
  for (common::RowIdx r = 0; r < std::min<int64_t>(table_->num_rows(), 500);
       ++r) {
    bool direct =
        EvalPredicate(Compare(plan::CompareOp::kEq, 2001), *table_, r) ||
        EvalPredicate(Compare(plan::CompareOp::kEq, 2002), *table_, r);
    EXPECT_EQ(EvalPredicate(in, *table_, r), direct);
  }
}

TEST_F(PredicateFixture, LikeOnTitles) {
  plan::ScanPredicate like;
  like.column = plan::ColumnRef{0, title_col_, ""};
  like.kind = plan::ScanPredicate::Kind::kLike;
  like.value = Value::Str("Saga%");
  int64_t matches = 0;
  for (common::RowIdx r = 0; r < table_->num_rows(); ++r) {
    if (EvalPredicate(like, *table_, r)) ++matches;
  }
  EXPECT_GT(matches, 0);  // blockbusters exist
  EXPECT_LT(matches, table_->num_rows());

  plan::ScanPredicate not_like = like;
  not_like.kind = plan::ScanPredicate::Kind::kNotLike;
  int64_t non_matches = 0;
  for (common::RowIdx r = 0; r < table_->num_rows(); ++r) {
    if (EvalPredicate(not_like, *table_, r)) ++non_matches;
  }
  EXPECT_EQ(matches + non_matches, table_->num_rows());
}

TEST(PredicateNullTest, NullFailsComparisonsButMatchesIsNull) {
  const storage::Table* name = SmallImdb()->catalog.FindTable("name");
  common::ColumnIdx gender = name->schema().FindColumn("gender");
  plan::ScanPredicate is_null;
  is_null.column = plan::ColumnRef{0, gender, ""};
  is_null.kind = plan::ScanPredicate::Kind::kIsNull;
  plan::ScanPredicate is_not_null = is_null;
  is_not_null.kind = plan::ScanPredicate::Kind::kIsNotNull;
  plan::ScanPredicate eq_m;
  eq_m.column = plan::ColumnRef{0, gender, ""};
  eq_m.kind = plan::ScanPredicate::Kind::kCompare;
  eq_m.op = plan::CompareOp::kEq;
  eq_m.value = Value::Str("m");

  int64_t nulls = 0;
  for (common::RowIdx r = 0; r < name->num_rows(); ++r) {
    bool null_hit = EvalPredicate(is_null, *name, r);
    EXPECT_NE(null_hit, EvalPredicate(is_not_null, *name, r));
    if (null_hit) {
      ++nulls;
      EXPECT_FALSE(EvalPredicate(eq_m, *name, r));
    }
  }
  EXPECT_GT(nulls, 0);  // the generator produces ~2% null genders
}

// ---- FilterScan -----------------------------------------------------------

TEST(FilterScanTest, EmptyFilterKeepsEverything) {
  const storage::Table* t = SmallImdb()->catalog.FindTable("keyword");
  std::vector<common::RowIdx> rows = FilterScan(*t, {});
  EXPECT_EQ(static_cast<int64_t>(rows.size()), t->num_rows());
}

TEST(FilterScanTest, ConjunctionNarrows) {
  const storage::Table* t = SmallImdb()->catalog.FindTable("title");
  plan::ScanPredicate a;
  a.column = plan::ColumnRef{0, t->schema().FindColumn("production_year"), ""};
  a.kind = plan::ScanPredicate::Kind::kCompare;
  a.op = plan::CompareOp::kGt;
  a.value = Value::Int(2000);
  plan::ScanPredicate b = a;
  b.op = plan::CompareOp::kLe;
  b.value = Value::Int(2005);
  size_t just_a = FilterScan(*t, {&a}).size();
  size_t both = FilterScan(*t, {&a, &b}).size();
  EXPECT_LE(both, just_a);
  EXPECT_GT(both, 0u);
}

// ---- HashJoinIntermediates vs naive reference --------------------------------

struct JoinCase {
  const char* left_table;
  const char* left_col;
  const char* right_table;
  const char* right_col;
  int64_t left_limit;   // rows taken from each side (keeps naive feasible)
  int64_t right_limit;
};

class HashJoinPropertyTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(HashJoinPropertyTest, AgreesWithNaiveJoin) {
  const JoinCase& c = GetParam();
  imdb::ImdbDatabase* db = SmallImdb();

  plan::QuerySpec spec;
  spec.relations.push_back(plan::RelationRef{c.left_table, "l"});
  spec.relations.push_back(plan::RelationRef{c.right_table, "r"});
  BoundRelations rels = BindRelations(spec, db->catalog);

  plan::JoinEdge edge;
  edge.left = plan::ColumnRef{
      0, rels.table(0).schema().FindColumn(c.left_col), ""};
  edge.right = plan::ColumnRef{
      1, rels.table(1).schema().FindColumn(c.right_col), ""};
  ASSERT_NE(edge.left.col, common::kInvalidColumnIdx);
  ASSERT_NE(edge.right.col, common::kInvalidColumnIdx);

  auto take = [](int64_t n, int64_t limit) {
    std::vector<common::RowIdx> rows;
    for (int64_t i = 0; i < std::min(n, limit); ++i) rows.push_back(i);
    return rows;
  };
  Intermediate left = Intermediate::FromRows(
      0, take(rels.table(0).num_rows(), c.left_limit));
  Intermediate right = Intermediate::FromRows(
      1, take(rels.table(1).num_rows(), c.right_limit));

  std::vector<const plan::JoinEdge*> edges = {&edge};
  Intermediate hashed = HashJoinIntermediates(left, right, edges, rels);
  Intermediate naive = NaiveJoin(left, right, edges, rels);
  EXPECT_EQ(hashed.size(), naive.size());

  // Compare as multisets of (left_row, right_row) pairs.
  auto pairs = [](const Intermediate& im) {
    std::vector<std::pair<common::RowIdx, common::RowIdx>> out;
    int l = im.FindRel(0);
    int r = im.FindRel(1);
    for (int64_t t = 0; t < im.size(); ++t) {
      out.emplace_back(im.columns[static_cast<size_t>(l)][static_cast<size_t>(t)],
                       im.columns[static_cast<size_t>(r)][static_cast<size_t>(t)]);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(pairs(hashed), pairs(naive));
}

INSTANTIATE_TEST_SUITE_P(
    JoinPairs, HashJoinPropertyTest,
    ::testing::Values(
        JoinCase{"title", "id", "movie_keyword", "movie_id", 400, 2000},
        JoinCase{"keyword", "id", "movie_keyword", "keyword_id", 300, 1500},
        JoinCase{"name", "id", "cast_info", "person_id", 500, 1000},
        JoinCase{"title", "id", "cast_info", "movie_id", 250, 800},
        JoinCase{"company_name", "id", "movie_companies", "company_id", 200,
                 900},
        JoinCase{"info_type", "id", "movie_info_idx", "info_type_id", 113,
                 1200}));

TEST(HashJoinTest, MultiEdgeCompositeKey) {
  // Join movie_link to itself shape: two edges between the same pair must
  // both hold. Use movie_keyword joined to itself on (movie_id, keyword_id)
  // — every row matches itself at least once.
  imdb::ImdbDatabase* db = SmallImdb();
  plan::QuerySpec spec;
  spec.relations.push_back(plan::RelationRef{"movie_keyword", "a"});
  spec.relations.push_back(plan::RelationRef{"movie_keyword", "b"});
  BoundRelations rels = BindRelations(spec, db->catalog);
  common::ColumnIdx movie = rels.table(0).schema().FindColumn("movie_id");
  common::ColumnIdx kw = rels.table(0).schema().FindColumn("keyword_id");

  plan::JoinEdge e1;
  e1.left = plan::ColumnRef{0, movie, ""};
  e1.right = plan::ColumnRef{1, movie, ""};
  plan::JoinEdge e2;
  e2.left = plan::ColumnRef{0, kw, ""};
  e2.right = plan::ColumnRef{1, kw, ""};

  std::vector<common::RowIdx> rows;
  for (int64_t i = 0; i < 300; ++i) rows.push_back(i);
  Intermediate a = Intermediate::FromRows(0, rows);
  Intermediate b = Intermediate::FromRows(1, rows);
  Intermediate both =
      HashJoinIntermediates(a, b, {&e1, &e2}, rels);
  Intermediate only_movie = HashJoinIntermediates(a, b, {&e1}, rels);
  EXPECT_GE(both.size(), 300);          // reflexive matches
  EXPECT_LE(both.size(), only_movie.size());
}

// ---- ExactJoin / ExactJoinCount ------------------------------------------------

TEST(ExactJoinTest, SingleRelationIsFilterScan) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto query = workload::MakeQuery6d(db->catalog);
  BoundRelations rels = BindRelations(*query, db->catalog);
  // Relation 1 is `keyword` with the hot IN-list filter.
  Intermediate keyword = ExactJoin(*query, plan::RelSet::Single(1), rels);
  EXPECT_EQ(keyword.size(), 8);  // the 8 hot keywords
}

TEST(ExactJoinTest, CountMatchesMaterializedSize) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto query = workload::MakeQuery6d(db->catalog);
  BoundRelations rels = BindRelations(*query, db->catalog);
  // Connected subsets of 6d's graph (ci=0, k=1, mk=2, n=3, t=4).
  for (uint64_t bits : {0b00110ull, 0b10110ull, 0b10111ull, 0b11111ull}) {
    plan::RelSet set(bits);
    Intermediate joined = ExactJoin(*query, set, rels);
    EXPECT_DOUBLE_EQ(ExactJoinCount(*query, set, rels),
                     static_cast<double>(joined.size()))
        << set.ToString();
  }
}

TEST(ExactJoinCountTest, DisconnectedSetMultiplies) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto query = workload::MakeQuery6d(db->catalog);
  BoundRelations rels = BindRelations(*query, db->catalog);
  // Relations 1 (keyword) and 3 (name) are not adjacent.
  double k = ExactJoinCount(*query, plan::RelSet::Single(1), rels);
  double n = ExactJoinCount(*query, plan::RelSet::Single(3), rels);
  double both =
      ExactJoinCount(*query, plan::RelSet::Single(1).With(3), rels);
  EXPECT_DOUBLE_EQ(both, k * n);
}

}  // namespace
}  // namespace reopt::exec
